"""Tests for Bloom filters (repro.pps.bloom)."""

import random

import pytest

from repro.pps.bloom import BloomFilter, optimal_parameters


class TestOptimalParameters:
    def test_paper_parameters(self):
        """The paper's figures: fp 1e-5 gives 17 hashes, ~24 bits/element."""
        m, k = optimal_parameters(50, 1e-5)
        assert k == 17
        assert 23 <= m / 50 <= 25

    def test_looser_rate_needs_less(self):
        m1, k1 = optimal_parameters(100, 1e-2)
        m5, k5 = optimal_parameters(100, 1e-5)
        assert m1 < m5
        assert k1 < k5

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            optimal_parameters(0, 0.01)
        with pytest.raises(ValueError):
            optimal_parameters(10, 1.5)


class TestBloomFilter:
    def test_set_and_test(self):
        bf = BloomFilter(128)
        bf.set(5)
        assert bf.test(5)
        assert not bf.test(6)

    def test_positions_wrap(self):
        bf = BloomFilter(10)
        bf.set(25)
        assert bf.test(5)

    def test_set_all_test_all(self):
        bf = BloomFilter(256)
        bf.set_all([3, 99, 200])
        assert bf.test_all([3, 99, 200])
        assert not bf.test_all([3, 99, 201])

    def test_count_set(self):
        bf = BloomFilter(64)
        bf.set_all([1, 2, 3])
        assert bf.count_set() == 3

    def test_round_trip_bytes(self):
        bf = BloomFilter(100)
        bf.set_all([7, 55, 93])
        again = BloomFilter.from_bytes(bf.to_bytes(), 100)
        assert again == bf

    def test_fill_to_pads(self):
        bf = BloomFilter(512)
        bf.set_all([1, 2])
        bf.fill_to(50, random.Random(0))
        assert bf.count_set() == 50
        assert bf.test(1) and bf.test(2)  # original bits preserved

    def test_false_positive_rate_near_target(self):
        n_items, fp = 100, 1e-2
        m, k = optimal_parameters(n_items, fp)
        rng = random.Random(1)
        bf = BloomFilter(m)
        stored = [[rng.randrange(m) for _ in range(k)] for _ in range(n_items)]
        for positions in stored:
            bf.set_all(positions)
        false_pos = 0
        probes = 3000
        for _ in range(probes):
            candidate = [rng.randrange(m) for _ in range(k)]
            if bf.test_all(candidate):
                false_pos += 1
        assert false_pos / probes < fp * 8  # generous head room

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            BloomFilter(0)
