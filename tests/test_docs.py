"""The docs site stays honest without needing mkdocs installed.

CI's ``docs`` job builds the site with ``mkdocs build --strict`` (strict
mode turns broken internal links into failures).  That job only runs
where mkdocs is installable; this module re-checks the same invariants
dependency-free so tier-1 catches documentation rot on every run:

* every relative link in ``docs/*.md`` and ``README.md`` resolves to a
  real file, and intra-docs anchors point at a real heading;
* every page ``mkdocs.yml`` navigates to exists;
* the README actually points into ``docs/`` (it is an overview now, not
  the manual);
* code/doc cross-references that the docs lean on (module paths, CLI
  sub-commands) exist in the tree.
"""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
DOCS = REPO / "docs"

#: [text](target) markdown links, ignoring images and fenced-code blocks.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def _strip_fences(text: str) -> str:
    return re.sub(r"```.*?```", "", text, flags=re.S)


def _heading_anchors(md: Path) -> set:
    """GitHub/mkdocs-style slugs for every heading in *md*."""
    anchors = set()
    for line in _strip_fences(md.read_text()).splitlines():
        m = re.match(r"#+\s+(.*)", line)
        if not m:
            continue
        slug = m.group(1).strip().lower()
        slug = re.sub(r"[`*_()`.,:&!?/\"']", "", slug)
        slug = re.sub(r"\s+", "-", slug.strip())
        anchors.add(slug)
    return anchors


def _md_files():
    files = sorted(DOCS.glob("*.md"))
    assert files, "docs/ lost its pages"
    return files + [REPO / "README.md"]


def test_docs_pages_exist():
    names = {p.name for p in DOCS.glob("*.md")}
    assert {
        "index.md",
        "architecture.md",
        "kernels.md",
        "scenarios.md",
        "traces.md",
        "telemetry.md",
        "benchmarks.md",
    } <= names


def test_internal_links_resolve():
    problems = []
    for md in _md_files():
        for target in _LINK.findall(_strip_fences(md.read_text())):
            if re.match(r"[a-z]+://|mailto:", target):
                continue  # external; mkdocs --strict doesn't check these either
            path_part, _, anchor = target.partition("#")
            base = md.parent
            if path_part:
                resolved = (base / path_part).resolve()
                if not resolved.exists():
                    problems.append(f"{md.relative_to(REPO)}: broken link {target!r}")
                    continue
            else:
                resolved = md
            if anchor and resolved.suffix == ".md":
                if anchor not in _heading_anchors(resolved):
                    problems.append(
                        f"{md.relative_to(REPO)}: dead anchor {target!r}"
                    )
    assert not problems, "\n".join(problems)


def test_mkdocs_nav_matches_files():
    cfg = (REPO / "mkdocs.yml").read_text()
    nav_pages = re.findall(r":\s*([\w./-]+\.md)\s*$", cfg, flags=re.M)
    assert nav_pages, "mkdocs.yml lost its nav"
    for page in nav_pages:
        assert (DOCS / page).exists(), f"mkdocs.yml navigates to missing {page}"
    # every docs page is reachable from the nav (no orphan pages)
    orphans = {p.name for p in DOCS.glob("*.md")} - set(nav_pages)
    assert not orphans, f"docs pages missing from mkdocs.yml nav: {orphans}"


def test_readme_points_into_docs():
    readme = (REPO / "README.md").read_text()
    for page in ("docs/architecture.md", "docs/kernels.md", "docs/benchmarks.md"):
        assert page in readme, f"README no longer links to {page}"


def test_doc_code_references_exist():
    """Module paths and CLI sub-commands the docs name must be real."""
    text = "\n".join(p.read_text() for p in _md_files())
    for module in (
        "src/repro/sim/fastpath.py",
        "src/repro/kernels/csrc/sweep.c",
        "src/repro/core/covertable.py",
    ):
        short = module.split("src/repro/")[1].rsplit("/", 1)[-1]
        assert (REPO / module).exists(), f"docs reference a ghost: {module}"
        assert short.split(".")[0] in text, f"docs stopped mentioning {short}"
    from repro.cli import build_parser

    subcommands = {"compare", "deploy", "plan", "control", "matrix", "bench",
                   "kernels", "pps-demo", "traces", "record", "replay"}
    help_text = build_parser().format_help()
    for sub in subcommands:
        assert sub in help_text
