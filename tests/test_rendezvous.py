"""Tests for the DR baselines (repro.rendezvous)."""

import random

import pytest

from repro.core.objects import generate_objects
from repro.rendezvous import (
    PTN,
    DualPTN,
    DualSW,
    Randomized,
    RoarAlgorithm,
    ServerInfo,
    SlidingWindow,
    expected_harvest,
    load_imbalance,
    partitioning_level,
)


def make_servers(n, rng=None, hetero=False):
    rng = rng or random.Random(0)
    return [
        ServerInfo(f"node-{i}", rng.uniform(0.5, 2.0) if hetero else 1.0)
        for i in range(n)
    ]


def idle_estimator(name, fraction):
    return fraction


class TestBaseDefinitions:
    def test_partitioning_level(self):
        assert partitioning_level(12, 3) == 4.0

    def test_partitioning_level_invalid_r(self):
        with pytest.raises(ValueError):
            partitioning_level(10, 0)

    def test_load_imbalance_range(self):
        assert load_imbalance([1, 1, 1, 1]) == 1.0
        assert load_imbalance([4, 0, 0, 0]) == 4.0


class TestPTN:
    def test_cluster_count(self):
        algo = PTN(make_servers(12), p=4)
        assert len(algo.clusters) == 4
        assert sum(len(c) for c in algo.clusters) == 12

    def test_balanced_cluster_capacity(self):
        rng = random.Random(2)
        algo = PTN(make_servers(20, rng, hetero=True), p=4, rng=rng)
        caps = [sum(s.speed for s in c) for c in algo.clusters]
        assert max(caps) / min(caps) < 1.35

    def test_replicas_fill_one_cluster(self, rng):
        algo = PTN(make_servers(12), p=4, rng=rng)
        objs = generate_objects(20, rng)
        algo.place(objs)
        for obj in objs:
            holders = algo.replica_holders(obj)
            assert len(holders) == 3  # n/p = 3 servers per cluster
            clusters = {
                ci
                for ci, cl in enumerate(algo.clusters)
                for s in cl
                if s.name in holders
            }
            assert len(clusters) == 1

    def test_query_visits_every_cluster(self, rng):
        algo = PTN(make_servers(12), p=4, rng=rng)
        algo.place(generate_objects(100, rng))
        plan = algo.schedule(idle_estimator)
        assert len(plan) == 4
        assert algo.harvest(plan) == 1.0

    def test_schedule_picks_fastest_per_cluster(self, rng):
        servers = make_servers(8)
        servers[3].speed = 50.0
        algo = PTN(servers, p=2, rng=rng)
        algo.place(generate_objects(50, rng))

        def est(name, fraction):
            speed = next(s.speed for s in servers if s.name == name)
            return fraction / speed

        plan = algo.schedule(est)
        assert "node-3" in {a.server for a in plan}

    def test_schedule_skips_dead(self, rng):
        algo = PTN(make_servers(8), p=2, rng=rng)
        algo.place(generate_objects(20, rng))
        victim = algo.clusters[0][0]
        victim.alive = False
        plan = algo.schedule(idle_estimator)
        assert victim.name not in {a.server for a in plan}

    def test_whole_cluster_dead_raises(self, rng):
        algo = PTN(make_servers(4), p=2, rng=rng)
        algo.place(generate_objects(10, rng))
        for s in algo.clusters[0]:
            s.alive = False
        with pytest.raises(LookupError):
            algo.schedule(idle_estimator)

    def test_choice_count(self, rng):
        algo = PTN(make_servers(12), p=4)
        assert algo.choice_count() == 3**4

    def test_decrease_p_moves_lots_of_data(self, rng):
        algo = PTN(make_servers(12), p=4, rng=rng)
        algo.place(generate_objects(100, rng, size=100))
        moved = algo.change_p(3)
        assert moved > 0
        assert algo.p == 3
        assert len(algo.clusters) == 3
        # All queries still get full harvest.
        plan = algo.schedule(idle_estimator)
        assert algo.harvest(plan) == 1.0

    def test_increase_p(self, rng):
        algo = PTN(make_servers(12), p=3, rng=rng)
        algo.place(generate_objects(100, rng, size=100))
        algo.change_p(4)
        assert algo.p == 4
        plan = algo.schedule(idle_estimator)
        assert algo.harvest(plan) == 1.0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            PTN(make_servers(4), p=9)


class TestSlidingWindow:
    def test_requires_r_divides_n(self):
        with pytest.raises(ValueError):
            SlidingWindow(make_servers(10), r=3)

    def test_replicas_consecutive(self, rng):
        algo = SlidingWindow(make_servers(12), r=3, rng=rng)
        objs = generate_objects(30, rng)
        algo.place(objs)
        names = [s.name for s in algo.servers]
        for obj in objs:
            holders = algo.replica_holders(obj)
            assert len(holders) == 3
            start = names.index(holders[0])
            expected = [names[(start + j) % 12] for j in range(3)]
            assert holders == expected

    def test_query_full_harvest(self, rng):
        algo = SlidingWindow(make_servers(12), r=3, rng=rng)
        algo.place(generate_objects(200, rng))
        plan = algo.schedule(idle_estimator)
        assert len(plan) == 4  # p = n/r
        assert algo.harvest(plan) == 1.0

    def test_only_r_choices(self, rng):
        algo = SlidingWindow(make_servers(12), r=3, rng=rng)
        assert algo.choice_count() == 3

    def test_change_r_up_transfers_one_replica_per_object(self, rng):
        algo = SlidingWindow(make_servers(12), r=3, rng=rng)
        algo.place(generate_objects(50, rng, size=10))
        moved = algo.change_r(4)
        assert moved == 50 * 10
        assert algo.r == 4

    def test_change_r_down_is_free(self, rng):
        algo = SlidingWindow(make_servers(12), r=4, rng=rng)
        algo.place(generate_objects(50, rng, size=10))
        assert algo.change_r(3) == 0

    def test_failure_blocks_rotation(self, rng):
        algo = SlidingWindow(make_servers(12), r=3, rng=rng)
        algo.place(generate_objects(50, rng))
        # Kill one node in every rotation: no failure-free rotation left.
        for start in range(3):
            algo.servers[algo.query_nodes(start)[0]].alive = False
        with pytest.raises(LookupError):
            algo.schedule(idle_estimator)


class TestRandomized:
    def test_replica_count(self, rng):
        algo = Randomized(make_servers(20), r=4, c=2.0, rng=rng)
        objs = generate_objects(30, rng)
        algo.place(objs)
        for obj in objs:
            assert len(algo.replica_holders(obj)) == 8  # c * r

    def test_harvest_probabilistic_but_high(self):
        rng = random.Random(1)
        algo = Randomized(make_servers(40), r=5, c=2.0, rng=rng)
        algo.place(generate_objects(300, rng))
        harvests = []
        for _ in range(20):
            plan = algo.schedule(idle_estimator, rng=rng)
            harvests.append(algo.harvest(plan))
        mean_harvest = sum(harvests) / len(harvests)
        assert mean_harvest > 0.95  # ~98% expected with c=2

    def test_expected_harvest_formula(self):
        # c=2 gives ~1 - e^-4 ~= 98%.
        h = expected_harvest(100, 10, c=2.0)
        assert 0.95 < h < 1.0

    def test_expected_harvest_saturates(self):
        assert expected_harvest(10, 5, c=2.0) == 1.0

    def test_costs_double_per_op(self, rng):
        algo = Randomized(make_servers(40), r=5, c=2.0, rng=rng)
        algo.place(generate_objects(10, rng))
        plan = algo.schedule(idle_estimator, rng=rng)
        assert len(plan) == 16  # c * n/r = 2 * 8

    def test_change_r(self, rng):
        algo = Randomized(make_servers(20), r=4, c=2.0, rng=rng)
        algo.place(generate_objects(20, rng, size=10))
        moved = algo.change_r(6)
        assert moved > 0
        for obj in algo.objects:
            assert len(algo.replica_holders(obj)) == 12


class TestDualVariants:
    def test_dual_ptn_one_replica_per_cluster(self, rng):
        algo = DualPTN(make_servers(12), r=3, rng=rng)
        objs = generate_objects(30, rng)
        algo.place(objs)
        for obj in objs:
            assert len(algo.replica_holders(obj)) == 3

    def test_dual_ptn_full_harvest(self, rng):
        algo = DualPTN(make_servers(12), r=3, rng=rng)
        algo.place(generate_objects(100, rng))
        plan = algo.schedule(idle_estimator)
        assert algo.harvest(plan) == 1.0
        # Query runs inside exactly one cluster.
        assert len(plan) == 4

    def test_dual_sw_equidistant_replicas(self, rng):
        algo = DualSW(make_servers(12), r=3, rng=rng)
        objs = generate_objects(20, rng)
        algo.place(objs)
        for obj in objs:
            assert len(set(algo.replica_holders(obj))) >= 1

    def test_dual_sw_full_harvest(self, rng):
        algo = DualSW(make_servers(12), r=3, rng=rng)
        algo.place(generate_objects(100, rng))
        plan = algo.schedule(idle_estimator)
        assert algo.harvest(plan) == 1.0

    def test_dual_sw_change_r_relocates(self, rng):
        algo = DualSW(make_servers(12), r=3, rng=rng)
        algo.place(generate_objects(60, rng, size=10))
        moved = algo.change_r(4)
        assert moved > 60 * 10 * 0  # new replicas + relocation
        assert algo.r == 4


class TestRoarAdapter:
    def test_full_harvest(self, rng):
        algo = RoarAlgorithm(make_servers(12), p=4, rng=rng)
        algo.place(generate_objects(100, rng))
        plan = algo.schedule(idle_estimator)
        assert len(plan) == 4
        assert algo.harvest(plan) == 1.0

    def test_average_replication_near_r(self, rng):
        algo = RoarAlgorithm(make_servers(12), p=4, rng=rng)
        objs = generate_objects(300, rng)
        algo.place(objs)
        mean_replicas = sum(len(algo.replica_holders(o)) for o in objs) / len(objs)
        # An arc of 1/p intersects r full ranges plus the node straddling
        # its start: D/p + D*g per node (Section 4.6) => r+1 on average.
        r = 12 / 4
        assert r <= mean_replicas <= r + 1.01

    def test_two_rings_stores_both(self, rng):
        algo = RoarAlgorithm(make_servers(12), p=3, rng=rng, n_rings=2)
        objs = generate_objects(100, rng)
        algo.place(objs)
        ring_sets = [
            {node.name for node in ring} for ring in algo.rings
        ]
        for obj in objs[:20]:
            holders = set(algo.replica_holders(obj))
            for ring_names in ring_sets:
                assert holders & ring_names, "object missing from one ring"

    def test_change_p_down_moves_data(self, rng):
        algo = RoarAlgorithm(make_servers(12), p=4, rng=rng)
        algo.place(generate_objects(200, rng, size=10))
        moved = algo.change_p(2)
        assert moved > 0

    def test_change_p_up_is_free(self, rng):
        algo = RoarAlgorithm(make_servers(12), p=3, rng=rng)
        algo.place(generate_objects(100, rng, size=10))
        assert algo.change_p(6) == 0

    def test_choice_counts(self, rng):
        single = RoarAlgorithm(make_servers(12), p=4, rng=rng)
        double = RoarAlgorithm(make_servers(12), p=4, rng=rng, n_rings=2)
        assert single.choice_count() == 3.0
        assert double.choice_count() > single.choice_count()
