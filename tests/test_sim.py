"""Tests for the simulation substrate (repro.sim)."""

import math

import pytest

from repro.sim import (
    DelayLog,
    DiurnalTrace,
    NetworkModel,
    PoissonArrivals,
    QueryRecord,
    SimServer,
    Simulation,
    StepTrace,
    TrafficLedger,
    UniformArrivals,
    arrivals_from_rate_fn,
    linear_fit,
    md1_delay,
    md1_wait,
    min_p_for_delay,
    mm1_wait,
    percentile,
    utilisation,
)
from repro.sim.energy import PowerProfile, measure_energy


class TestSimulationEngine:
    def test_events_run_in_time_order(self):
        sim = Simulation()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_run_in_schedule_order(self):
        sim = Simulation()
        order = []
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(1.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_cancel(self):
        sim = Simulation()
        hit = []
        ev = sim.schedule(1.0, lambda: hit.append(1))
        ev.cancel()
        sim.run()
        assert not hit

    def test_run_until(self):
        sim = Simulation()
        hit = []
        sim.schedule(1.0, lambda: hit.append(1))
        sim.schedule(5.0, lambda: hit.append(2))
        sim.run(until=2.0)
        assert hit == [1]
        assert sim.now == 2.0

    def test_events_scheduled_during_run(self):
        sim = Simulation()
        order = []

        def first():
            order.append("first")
            sim.schedule(0.5, lambda: order.append("nested"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "nested"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulation().schedule(-1.0, lambda: None)


class TestSimServer:
    def test_service_time(self):
        s = SimServer("s", speed=100.0, fixed_overhead=0.5)
        assert s.service_time(50.0) == pytest.approx(1.0)

    def test_serial_queueing(self):
        s = SimServer("s", speed=10.0)
        f1 = s.submit(0.0, 10.0)  # 1s of work
        f2 = s.submit(0.0, 10.0)
        assert f1 == pytest.approx(1.0)
        assert f2 == pytest.approx(2.0)

    def test_idle_gap_not_counted(self):
        s = SimServer("s", speed=10.0)
        s.submit(0.0, 10.0)
        f = s.submit(5.0, 10.0)  # arrives after idle period
        assert f == pytest.approx(6.0)

    def test_estimate_matches_submit(self):
        s = SimServer("s", speed=10.0, fixed_overhead=0.1)
        est = s.estimate_finish(0.0, 20.0)
        assert s.submit(0.0, 20.0) == pytest.approx(est)

    def test_multi_lane(self):
        s = SimServer("s", speed=10.0, cores=2)
        f1 = s.submit(0.0, 10.0)
        f2 = s.submit(0.0, 10.0)
        f3 = s.submit(0.0, 10.0)
        assert f1 == pytest.approx(1.0)
        assert f2 == pytest.approx(1.0)  # second lane
        assert f3 == pytest.approx(2.0)  # queues behind lane 1

    def test_utilisation(self):
        s = SimServer("s", speed=10.0)
        s.submit(0.0, 50.0)  # 5s busy
        assert s.utilisation(10.0) == pytest.approx(0.5)

    def test_failed_server_rejects(self):
        s = SimServer("s", speed=1.0)
        s.fail()
        with pytest.raises(RuntimeError):
            s.submit(0.0, 1.0)

    def test_recover(self):
        s = SimServer("s", speed=1.0)
        s.fail()
        s.recover(3.0)
        assert s.submit(3.0, 1.0) == pytest.approx(4.0)

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            SimServer("s", speed=0.0)

    def test_trace_recording(self):
        s = SimServer("s", speed=10.0)
        s.keep_trace = True
        s.submit(0.0, 10.0, query_id=9)
        assert len(s.trace) == 1
        assert s.trace[0].query_id == 9
        assert s.trace[0].service == pytest.approx(1.0)


class TestWorkloads:
    def test_poisson_rate(self):
        arr = PoissonArrivals(100.0, seed=1)
        times = arr.times(5000)
        measured = len(times) / times[-1]
        assert measured == pytest.approx(100.0, rel=0.1)

    def test_poisson_monotonic(self):
        times = PoissonArrivals(10.0, seed=2).times(100)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_poisson_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)

    def test_uniform_arrivals(self):
        times = UniformArrivals(2.0).times(4)
        assert times == pytest.approx([0.5, 1.0, 1.5, 2.0])

    def test_diurnal_peak_to_trough(self):
        trace = DiurnalTrace(base_rate=10.0, period=100.0, peak_to_trough=3.0)
        rates = [trace.rate(t) for t in range(100)]
        assert max(rates) / min(rates) == pytest.approx(3.0, rel=0.05)

    def test_step_trace(self):
        trace = StepTrace([(0.0, 1.0), (10.0, 5.0)])
        assert trace.rate(5.0) == 1.0
        assert trace.rate(15.0) == 5.0
        assert trace.rate(-1.0) == 0.0

    def test_thinned_arrivals_follow_rate(self):
        trace = StepTrace([(0.0, 50.0), (50.0, 200.0)])
        times = arrivals_from_rate_fn(trace.rate, 100.0, max_rate=200.0, seed=3)
        first_half = sum(1 for t in times if t < 50)
        second_half = sum(1 for t in times if t >= 50)
        assert second_half > 2.5 * first_half


class TestQueueing:
    def test_md1_wait_zero_at_no_load(self):
        assert md1_wait(0.0, 1.0) == 0.0

    def test_md1_wait_grows_with_load(self):
        waits = [md1_wait(rho, 1.0) for rho in (0.2, 0.5, 0.8)]
        assert waits[0] < waits[1] < waits[2]

    def test_md1_saturation(self):
        assert math.isinf(md1_wait(1.0, 1.0))
        assert math.isinf(md1_delay(2.0, 1.0))

    def test_md1_half_of_mm1(self):
        assert md1_wait(0.5, 1.0) == pytest.approx(mm1_wait(0.5, 1.0) / 2)

    def test_utilisation(self):
        assert utilisation(10.0, 0.05, servers=1) == pytest.approx(0.5)

    def test_min_p_for_delay_finds_feasible(self):
        p = min_p_for_delay(
            target_delay=0.5,
            dataset_size=1000.0,
            total_speed=10000.0,
            n_servers=10,
            query_rate=1.0,
        )
        assert p is not None
        assert 1 <= p <= 10

    def test_min_p_increases_with_load(self):
        kwargs = dict(
            target_delay=0.5,
            dataset_size=1000.0,
            total_speed=10000.0,
            n_servers=10,
        )
        p_light = min_p_for_delay(query_rate=0.5, **kwargs)
        p_heavy = min_p_for_delay(query_rate=5.0, **kwargs)
        assert p_heavy >= p_light

    def test_min_p_infeasible_returns_none(self):
        assert (
            min_p_for_delay(
                target_delay=1e-9,
                dataset_size=1e9,
                total_speed=10.0,
                n_servers=2,
                query_rate=100.0,
            )
            is None
        )


class TestTracing:
    def test_linear_fit_recovers_line(self):
        xs = [0.0, 1.0, 2.0, 3.0]
        ys = [1.0, 3.0, 5.0, 7.0]
        slope, intercept = linear_fit(xs, ys)
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_linear_fit_edge_cases(self):
        assert linear_fit([], []) == (0.0, 0.0)
        assert linear_fit([1.0], [5.0]) == (0.0, 5.0)

    def test_percentile(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 4.0
        assert percentile(data, 50) == pytest.approx(2.5)

    def test_exploding_detection(self):
        log = DelayLog()
        for i in range(50):
            # Delay grows 0.5s per second of arrival time: exploding.
            log.add(QueryRecord(i, arrival=float(i), finish=float(i) + 0.5 * i))
        assert log.is_exploding()
        assert math.isinf(log.mean_delay())

    def test_stable_not_exploding(self):
        log = DelayLog()
        for i in range(50):
            log.add(QueryRecord(i, arrival=float(i), finish=float(i) + 0.2))
        assert not log.is_exploding()
        assert log.mean_delay() == pytest.approx(0.2)

    def test_yield_fraction(self):
        log = DelayLog()
        log.add(QueryRecord(0, 0.0, 1.0))
        log.dropped = 3
        assert log.yield_fraction() == pytest.approx(0.25)


class TestNetworkAndEnergy:
    def test_rtt_positive(self):
        nm = NetworkModel.data_center(seed=1)
        for _ in range(100):
            assert nm.sample_rtt() >= 0.0

    def test_zero_model(self):
        assert NetworkModel.zero().sample_rtt() == 0.0

    def test_wide_area_slower(self):
        assert NetworkModel.wide_area().rtt > NetworkModel.data_center().rtt

    def test_ledger_totals(self):
        ledger = TrafficLedger()
        ledger.record_query(4)
        ledger.record_result(4)
        ledger.record_update(3)
        assert ledger.total_messages == 11
        assert ledger.total_bytes > 0

    def test_ledger_merge(self):
        a, b = TrafficLedger(), TrafficLedger()
        a.record_query(2)
        b.record_query(3)
        assert a.merged(b).query_messages == 5

    def test_energy_idle_vs_busy(self):
        idle = SimServer("i", 10.0, power_idle=100.0, power_busy=200.0)
        busy = SimServer("b", 10.0, power_idle=100.0, power_busy=200.0)
        busy.submit(0.0, 100.0)  # 10s of work
        report = measure_energy([idle, busy], elapsed=10.0)
        # idle server: 1000 J; busy server: 2000 J.
        assert report.total_joules == pytest.approx(3000.0)

    def test_energy_savings(self):
        cheap = SimServer("c", 10.0, power_idle=100.0, power_busy=200.0)
        dear = SimServer("d", 10.0, power_idle=100.0, power_busy=200.0)
        dear.submit(0.0, 100.0)
        r_cheap = measure_energy([cheap], 10.0)
        r_dear = measure_energy([dear], 10.0)
        assert r_cheap.savings_vs(r_dear) == pytest.approx(0.5)

    def test_power_profile_interpolation(self):
        prof = PowerProfile(100.0, 300.0)
        assert prof.power(0.0) == 100.0
        assert prof.power(1.0) == 300.0
        assert prof.power(0.5) == 200.0
        assert prof.power(2.0) == 300.0  # clamped
