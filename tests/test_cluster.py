"""Tests for the cluster rig: models, comparison harness, deployment."""

import math
import random

import pytest

from repro.cluster import (
    ComparisonConfig,
    Deployment,
    DeploymentConfig,
    DynamicPController,
    MODEL_CATALOGUE,
    ec2_fleet,
    hen_testbed,
    heterogeneous_speeds,
    make_sim_server,
    run_comparison,
)
from repro.core.frontend import FrontEndConfig
from repro.sim import PoissonArrivals


class TestModels:
    def test_catalogue_has_table_7_1_models(self):
        for name in ("dell-1950", "dell-2950", "dell-1850", "sun-x4100"):
            assert name in MODEL_CATALOGUE

    def test_speed_ordering(self):
        """2950 > 1950 > 1850 > x4100, matching the paper's hardware."""
        speeds = {
            name: model.speed(in_memory=True)
            for name, model in MODEL_CATALOGUE.items()
        }
        assert speeds["dell-2950"] > speeds["dell-1950"]
        assert speeds["dell-1950"] > speeds["dell-1850"]
        assert speeds["dell-1850"] > speeds["sun-x4100"]

    def test_disk_slower_than_memory(self):
        for model in MODEL_CATALOGUE.values():
            assert model.speed(in_memory=False) < model.speed(in_memory=True)

    def test_hen_testbed_size_and_mix(self):
        pool = hen_testbed(47)
        assert len(pool) == 47
        names = {m.name for m in pool}
        assert len(names) >= 3  # genuinely heterogeneous

    def test_ec2_fleet_mild_variation(self):
        fleet = ec2_fleet(100)
        speeds = [m.speed() for m in fleet]
        assert max(speeds) / min(speeds) < 1.5

    def test_make_sim_server(self):
        server = make_sim_server("x", MODEL_CATALOGUE["dell-1950"])
        assert server.speed == MODEL_CATALOGUE["dell-1950"].speed(True)


class TestHeterogeneousSpeeds:
    def test_zero_heterogeneity_identical(self):
        speeds = heterogeneous_speeds(10, 0.0, mean=2.0)
        assert all(s == 2.0 for s in speeds)

    def test_spread_grows(self):
        rng = random.Random(1)
        lo = heterogeneous_speeds(500, 0.1, random.Random(1))
        hi = heterogeneous_speeds(500, 0.9, random.Random(1))
        spread = lambda xs: max(xs) / min(xs)
        assert spread(hi) > spread(lo)

    def test_invalid(self):
        with pytest.raises(ValueError):
            heterogeneous_speeds(5, 1.5)


class TestComparisonHarness:
    @pytest.mark.parametrize("algo", ["roar", "roar2", "ptn", "sw", "opt"])
    def test_all_algorithms_run(self, algo):
        cfg = ComparisonConfig(
            algorithm=algo, n_servers=18, p=3, query_rate=5.0, n_queries=150, seed=2
        )
        res = run_comparison(cfg)
        assert len(res.log.records) == 150
        assert res.raw_mean_delay > 0

    def test_paper_ordering_opt_ptn_roar_sw(self):
        """Fig 6.1's shape: OPT <= PTN <= ROAR <= SW on heterogeneous pools."""
        means = {}
        for algo in ("opt", "ptn", "roar", "sw"):
            cfg = ComparisonConfig(
                algorithm=algo, n_servers=36, p=6, query_rate=15.0,
                n_queries=400, seed=7,
            )
            means[algo] = run_comparison(cfg).raw_mean_delay
        assert means["opt"] <= means["ptn"] * 1.05
        assert means["ptn"] <= means["roar"] * 1.05
        assert means["roar"] <= means["sw"] * 1.05

    def test_optimisations_reduce_roar_delay(self):
        base = dict(n_servers=36, p=6, query_rate=15.0, n_queries=400, seed=7)
        plain = run_comparison(ComparisonConfig(algorithm="roar", **base))
        tuned = run_comparison(
            ComparisonConfig(algorithm="roar", adjust=True, splits=1, **base)
        )
        assert tuned.raw_mean_delay <= plain.raw_mean_delay * 1.02

    def test_pq_above_p_reduces_delay_at_low_load(self):
        base = dict(n_servers=36, p=6, query_rate=3.0, n_queries=300, seed=7)
        at_p = run_comparison(ComparisonConfig(algorithm="roar", **base))
        at_2p = run_comparison(ComparisonConfig(algorithm="roar", pq=12, **base))
        assert at_2p.raw_mean_delay < at_p.raw_mean_delay

    def test_two_rings_never_worse(self):
        base = dict(n_servers=36, p=6, query_rate=15.0, n_queries=400, seed=7)
        one = run_comparison(ComparisonConfig(algorithm="roar", **base))
        two = run_comparison(ComparisonConfig(algorithm="roar2", **base))
        assert two.raw_mean_delay <= one.raw_mean_delay * 1.05

    def test_overload_detected_as_exploding(self):
        cfg = ComparisonConfig(
            algorithm="roar",
            n_servers=12,
            p=3,
            query_rate=500.0,  # way past capacity
            n_queries=400,
            seed=3,
        )
        res = run_comparison(cfg)
        assert res.exploding
        assert math.isinf(res.mean_delay)

    def test_speed_error_degrades_delay(self):
        base = dict(n_servers=36, p=6, query_rate=15.0, n_queries=400, seed=7)
        good = run_comparison(ComparisonConfig(algorithm="roar", **base))
        bad = run_comparison(
            ComparisonConfig(algorithm="roar", speed_error=0.9, **base)
        )
        assert bad.raw_mean_delay >= good.raw_mean_delay * 0.95

    def test_sw_requires_divisibility(self):
        with pytest.raises(ValueError):
            run_comparison(
                ComparisonConfig(algorithm="sw", n_servers=10, p=3, n_queries=10)
            )

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            run_comparison(ComparisonConfig(algorithm="magic", n_queries=10))


class TestDeployment:
    def make_deployment(self, **overrides):
        defaults = dict(
            models=hen_testbed(12),
            p=3,
            dataset_size=1_000_000.0,
            seed=4,
        )
        defaults.update(overrides)
        return Deployment(DeploymentConfig(**defaults))

    def test_basic_queries_complete(self):
        dep = self.make_deployment()
        arrivals = PoissonArrivals(5.0, seed=1).times(50)
        log = dep.run_queries(arrivals, pq_fn=3)
        assert len(log.records) == 50
        assert all(r.delay > 0 for r in log.records)

    def test_higher_pq_lower_delay_light_load(self):
        slow = self.make_deployment(seed=5)
        fast = self.make_deployment(seed=5)
        arrivals = PoissonArrivals(2.0, seed=2).times(60)
        d_small = slow.run_queries(arrivals, pq_fn=3).raw_mean_delay()
        d_large = fast.run_queries(arrivals, pq_fn=9).raw_mean_delay()
        assert d_large < d_small

    def test_pq_below_p_store_rejected(self):
        dep = self.make_deployment(p=4)
        with pytest.raises(ValueError):
            dep.run_query(0.0, pq=2)

    def test_breakdown_components_sum_sensibly(self):
        dep = self.make_deployment()
        dep.run_query(0.0, pq=3)
        b = dep.breakdowns[0]
        assert b.total >= b.service
        assert b.scheduling > 0
        assert b.network >= 0

    def test_failure_does_not_lose_queries(self):
        dep = self.make_deployment(store_objects=True, n_objects_stored=500)
        arrivals = PoissonArrivals(5.0, seed=3).times(30)
        for t in arrivals[:10]:
            dep.run_query(t, 3)
        victim = next(iter(dep.servers))
        dep.fail_node(victim, arrivals[10])
        for t in arrivals[10:]:
            rec = dep.run_query(t, 3)
            assert rec.delay > 0
        assert len(dep.log.records) == 30

    def test_failed_node_gets_no_direct_work_after_detection(self):
        dep = self.make_deployment()
        victim = next(iter(dep.servers))
        dep.fail_node(victim, 0.0)
        for t in (1.0, 2.0, 3.0):
            dep.run_query(t, 3)
        assert dep.servers[victim].tasks_run == 0

    def test_updates_consume_capacity(self):
        dep = self.make_deployment()
        before = sum(s.busy_time for s in dep.servers.values())
        for i in range(20):
            dep.apply_update(float(i))
        after = sum(s.busy_time for s in dep.servers.values())
        assert after > before
        assert dep.ledger.update_messages > 0

    def test_energy_report(self):
        dep = self.make_deployment()
        dep.run_queries(PoissonArrivals(5.0, seed=1).times(20), pq_fn=3)
        report = dep.energy(elapsed=10.0)
        assert report.total_joules > 0
        assert report.busy_joules > 0

    def test_per_node_load(self):
        dep = self.make_deployment()
        dep.run_queries(PoissonArrivals(5.0, seed=1).times(20), pq_fn=3)
        loads = dep.per_node_load(10.0)
        assert len(loads) == 12
        assert all(0.0 <= v <= 1.0 for v in loads.values())

    def test_reset_measurements(self):
        dep = self.make_deployment()
        dep.run_query(0.0, 3)
        dep.reset_measurements()
        assert not dep.log.records
        assert dep.scheduling_wallclock == 0.0


class TestDynamicPController:
    def test_raises_pq_under_load(self):
        dep = Deployment(
            DeploymentConfig(models=hen_testbed(12), p=3, dataset_size=5e6, seed=6)
        )
        ctrl = DynamicPController(dep, target_delay=0.05, window=5)
        t = 0.0
        for _ in range(30):
            dep.run_query(t, ctrl.pq)
            ctrl.step(t)
            t += 0.05
        assert ctrl.pq > 3

    def test_lowers_pq_when_idle(self):
        dep = Deployment(
            DeploymentConfig(models=hen_testbed(12), p=3, dataset_size=1e5, seed=6)
        )
        ctrl = DynamicPController(dep, target_delay=5.0, window=5)
        ctrl.pq = 10
        t = 0.0
        for _ in range(30):
            dep.run_query(t, ctrl.pq)
            ctrl.step(t)
            t += 2.0
        assert ctrl.pq == 3  # back to the floor

    def test_pq_respects_floor(self):
        dep = Deployment(
            DeploymentConfig(models=hen_testbed(12), p=4, dataset_size=1e5, seed=6)
        )
        ctrl = DynamicPController(dep, target_delay=100.0, window=2, pq_min=1)
        for i in range(10):
            dep.run_query(float(i), ctrl.pq)
            ctrl.step(float(i))
        assert ctrl.pq >= 4
