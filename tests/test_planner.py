"""Tests for the configuration advisor (repro.analysis.planner)."""

import math

import pytest

from repro.analysis.planner import (
    ConfigOption,
    Recommendation,
    WorkloadSpec,
    recommend_configuration,
)


def spec(**overrides):
    base = dict(
        dataset_size=1e6,
        query_rate=5.0,
        update_rate=10.0,
        target_delay=0.5,
        speeds=[700_000.0] * 24,
        fixed_overhead=0.005,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


class TestRecommendation:
    def test_picks_smallest_feasible_p(self):
        rec = recommend_configuration(spec())
        assert rec.chosen is not None
        feasible = [o for o in rec.options if o.feasible]
        smallest = feasible[0]
        # Contract: the smallest feasible p, unless a larger p buys a real
        # bandwidth win (update-heavy workloads).
        assert (
            rec.chosen.p == smallest.p
            or rec.chosen.bandwidth < smallest.bandwidth
        )

    def test_chosen_meets_target(self):
        rec = recommend_configuration(spec())
        assert rec.chosen.predicted_delay <= 0.5
        assert rec.chosen.utilisation < 1.0

    def test_tighter_target_needs_larger_p(self):
        loose = recommend_configuration(spec(target_delay=1.0))
        tight = recommend_configuration(spec(target_delay=0.25))
        assert tight.chosen.p >= loose.chosen.p

    def test_higher_load_needs_larger_p(self):
        # update_rate ~ 0 isolates the delay-driven choice from the
        # bandwidth tie-break (heavy updates legitimately pull p up).
        light = recommend_configuration(spec(query_rate=1.0, update_rate=0.1))
        heavy = recommend_configuration(spec(query_rate=8.0, update_rate=0.1))
        assert heavy.chosen.p >= light.chosen.p

    def test_impossible_target_returns_none(self):
        rec = recommend_configuration(spec(target_delay=1e-6))
        assert rec.chosen is None
        assert "no partitioning level" in rec.reason

    def test_overload_returns_none(self):
        rec = recommend_configuration(spec(query_rate=1e6))
        assert rec.chosen is None

    def test_option_table_complete(self):
        rec = recommend_configuration(spec())
        assert len(rec.options) == 24
        assert [o.p for o in rec.options] == list(range(1, 25))
        for option in rec.options:
            assert option.r == pytest.approx(24 / option.p)

    def test_bandwidth_grows_with_p_for_query_heavy(self):
        rec = recommend_configuration(spec(query_rate=50.0, update_rate=0.1))
        bws = [o.bandwidth for o in rec.options]
        assert bws == sorted(bws)

    def test_bandwidth_falls_with_p_for_update_heavy(self):
        rec = recommend_configuration(spec(query_rate=0.01, update_rate=1000.0))
        bws = [o.bandwidth for o in rec.options]
        assert bws == sorted(bws, reverse=True)

    def test_heterogeneous_speeds_accepted(self):
        rec = recommend_configuration(
            spec(speeds=[300_000.0, 900_000.0] * 12)
        )
        assert rec.chosen is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            recommend_configuration(spec(speeds=[]))
        with pytest.raises(ValueError):
            recommend_configuration(spec(target_delay=0.0))

    def test_infeasible_options_marked(self):
        rec = recommend_configuration(spec(query_rate=8.0))
        assert any(not o.feasible for o in rec.options)
        assert any(o.feasible for o in rec.options)


class TestLiveMetricsAdvisor:
    """The planner consuming measured metrics (repro.control integration)."""

    def make_snapshot(self, qps):
        from repro.control.metrics import MetricsCollector
        from repro.sim.tracing import QueryRecord

        c = MetricsCollector(window=10.0)
        gap = 1.0 / qps
        for i in range(int(qps * 10)):
            t = i * gap
            c.observe_query(QueryRecord(query_id=i, arrival=t, finish=t + 0.1))
        return c.snapshot(10.0, record=False)

    def test_spec_uses_measured_rate(self):
        from repro.analysis.planner import spec_from_metrics

        snapshot = self.make_snapshot(qps=8.0)
        s = spec_from_metrics(
            snapshot,
            dataset_size=1e6,
            speeds=[700_000.0] * 24,
            target_delay=0.5,
            fixed_overhead=0.005,
        )
        assert s.query_rate == pytest.approx(8.0, rel=0.1)

    def test_idle_window_floors_rate(self):
        from repro.analysis.planner import spec_from_metrics

        class Empty:
            qps = 0.0

        s = spec_from_metrics(
            Empty(), dataset_size=1e6, speeds=[7e5] * 4, target_delay=0.5
        )
        assert s.query_rate > 0.0

    def test_recommend_from_metrics_tracks_load(self):
        from repro.analysis.planner import recommend_from_metrics

        kw = dict(
            dataset_size=1e6,
            speeds=[700_000.0] * 24,
            target_delay=0.5,
            fixed_overhead=0.005,
        )
        light = recommend_from_metrics(self.make_snapshot(qps=2.0), **kw)
        heavy = recommend_from_metrics(self.make_snapshot(qps=9.0), **kw)
        assert light.chosen is not None and heavy.chosen is not None
        assert heavy.chosen.p >= light.chosen.p
