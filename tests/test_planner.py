"""Tests for the configuration advisor (repro.analysis.planner)."""

import math

import pytest

from repro.analysis.planner import (
    ConfigOption,
    Recommendation,
    WorkloadSpec,
    recommend_configuration,
)


def spec(**overrides):
    base = dict(
        dataset_size=1e6,
        query_rate=5.0,
        update_rate=10.0,
        target_delay=0.5,
        speeds=[700_000.0] * 24,
        fixed_overhead=0.005,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


class TestRecommendation:
    def test_picks_smallest_feasible_p(self):
        rec = recommend_configuration(spec())
        assert rec.chosen is not None
        feasible = [o for o in rec.options if o.feasible]
        smallest = feasible[0]
        # Contract: the smallest feasible p, unless a larger p buys a real
        # bandwidth win (update-heavy workloads).
        assert (
            rec.chosen.p == smallest.p
            or rec.chosen.bandwidth < smallest.bandwidth
        )

    def test_chosen_meets_target(self):
        rec = recommend_configuration(spec())
        assert rec.chosen.predicted_delay <= 0.5
        assert rec.chosen.utilisation < 1.0

    def test_tighter_target_needs_larger_p(self):
        loose = recommend_configuration(spec(target_delay=1.0))
        tight = recommend_configuration(spec(target_delay=0.25))
        assert tight.chosen.p >= loose.chosen.p

    def test_higher_load_needs_larger_p(self):
        # update_rate ~ 0 isolates the delay-driven choice from the
        # bandwidth tie-break (heavy updates legitimately pull p up).
        light = recommend_configuration(spec(query_rate=1.0, update_rate=0.1))
        heavy = recommend_configuration(spec(query_rate=8.0, update_rate=0.1))
        assert heavy.chosen.p >= light.chosen.p

    def test_impossible_target_returns_none(self):
        rec = recommend_configuration(spec(target_delay=1e-6))
        assert rec.chosen is None
        assert "no partitioning level" in rec.reason

    def test_overload_returns_none(self):
        rec = recommend_configuration(spec(query_rate=1e6))
        assert rec.chosen is None

    def test_option_table_complete(self):
        rec = recommend_configuration(spec())
        assert len(rec.options) == 24
        assert [o.p for o in rec.options] == list(range(1, 25))
        for option in rec.options:
            assert option.r == pytest.approx(24 / option.p)

    def test_bandwidth_grows_with_p_for_query_heavy(self):
        rec = recommend_configuration(spec(query_rate=50.0, update_rate=0.1))
        bws = [o.bandwidth for o in rec.options]
        assert bws == sorted(bws)

    def test_bandwidth_falls_with_p_for_update_heavy(self):
        rec = recommend_configuration(spec(query_rate=0.01, update_rate=1000.0))
        bws = [o.bandwidth for o in rec.options]
        assert bws == sorted(bws, reverse=True)

    def test_heterogeneous_speeds_accepted(self):
        rec = recommend_configuration(
            spec(speeds=[300_000.0, 900_000.0] * 12)
        )
        assert rec.chosen is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            recommend_configuration(spec(speeds=[]))
        with pytest.raises(ValueError):
            recommend_configuration(spec(target_delay=0.0))

    def test_infeasible_options_marked(self):
        rec = recommend_configuration(spec(query_rate=8.0))
        assert any(not o.feasible for o in rec.options)
        assert any(o.feasible for o in rec.options)
