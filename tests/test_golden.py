"""Golden regression tests: seeded outputs of representative experiments.

The benchmark suite (`benchmarks/test_fig*`) asserts the paper's *shapes*
(orderings, trends); nothing pins the *values*, so a refactor could silently
drift every reproduced curve while all shape assertions keep passing.  These
tests pin a small set of representative seeded runs to checked-in numbers.

Tolerances: each pin uses rel=1e-6.  Every ingredient is deterministic given
the seed (the wall-clock scheduling charge is disabled via
``charge_scheduling=False``); the slack only absorbs cross-platform libm
differences in ``sin``/``exp``/``log``.  A *legitimate* change to scheduling
or simulation semantics will move these numbers: re-run the exact seeded
configurations below, paste the new constants, and justify the drift in the
PR that causes it (regeneration recipe: README, "Scenario matrix & testing
strategy").
"""

import pytest

from repro.cluster import (
    ComparisonConfig,
    Deployment,
    DeploymentConfig,
    hen_testbed,
    run_comparison,
)
from repro.core.frontend import FrontEndConfig
from repro.sim import PoissonArrivals

REL = 1e-6


class TestGoldenComparison:
    """Fig 6.1-style Chapter 6 algorithm comparison (n=90, p=9, seed=11)."""

    BASE = dict(
        n_servers=90, p=9, dataset_size=1e6, query_rate=12.0,
        n_queries=500, seed=11,
    )
    EXPECTED = {
        # algorithm: (raw mean delay s, p99 delay s, utilisation)
        "roar": (0.3583616905501358, 0.39522224264384404, 0.2610944671741061),
        "ptn": (0.17801821647271637, 0.24854146227599205, 0.20017827589846895),
        "sw": (0.3771124366959658, 0.44396058329834176, 0.28479982581165025),
    }

    @pytest.mark.parametrize("algo", sorted(EXPECTED))
    def test_pinned(self, algo):
        res = run_comparison(ComparisonConfig(algorithm=algo, **self.BASE))
        mean, p99, util = self.EXPECTED[algo]
        assert res.raw_mean_delay == pytest.approx(mean, rel=REL)
        assert res.p99_delay == pytest.approx(p99, rel=REL)
        assert res.server_utilisation == pytest.approx(util, rel=REL)


class TestGoldenDeployment:
    """Fig 7.1-style deployment point (hen 47, p=5, pq=10, opts on)."""

    def test_pinned(self):
        dep = Deployment(
            DeploymentConfig(
                models=hen_testbed(47),
                p=5,
                dataset_size=5e6,
                seed=3,
                fixed_overhead=0.004,
                frontend=FrontEndConfig(adjust_ranges=True, max_splits=1),
                charge_scheduling=False,
            )
        )
        dep.run_queries(PoissonArrivals(2.0, seed=1).times(60), pq_fn=10)
        assert dep.log.raw_mean_delay() == pytest.approx(
            0.2201653666873522, rel=REL
        )
        assert dep.log.percentile_delay(99) == pytest.approx(
            0.4542026287663308, rel=REL
        )
        # scheduler work is integer-exact: any sweep change shows up here
        assert dep.frontend.total_iterations == 2760


class TestGoldenFailureRun:
    """Fig 7.6-style run: two sudden failures mid-trace (seed 5/7)."""

    def test_pinned(self):
        dep = Deployment(
            DeploymentConfig(
                models=hen_testbed(16),
                p=4,
                dataset_size=2e6,
                seed=5,
                charge_scheduling=False,
            )
        )
        arrivals = PoissonArrivals(10.0, seed=7).times(300)
        mid = arrivals[150]
        for t in arrivals[:150]:
            dep.run_query(t, 5)
        dep.fail_node("node-2", mid)
        dep.fail_node("node-9", mid)
        for t in arrivals[150:]:
            dep.run_query(t, 5)
        assert not dep.log.is_exploding()
        assert len(dep.log.records) == 300
        assert dep.log.yield_fraction() == 1.0
        assert dep.log.raw_mean_delay() == pytest.approx(
            0.44921685835669195, rel=REL
        )
        assert dep.log.percentile_delay(99) == pytest.approx(
            0.8500445872167736, rel=REL
        )


class TestGoldenScenarios:
    """Scenario-matrix points (batched engine), pinned end to end."""

    EXPECTED = {
        # name: (offered, mean delay s, p99 delay s)
        "steady": (80, 0.30675853285793275, 0.880953625602088),
        "flash-crowd": (152, 1.2045498401538217, 2.4113885470428404),
    }

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_pinned(self, name):
        from repro.scenarios import builtin_scenarios, run_scenario_spec

        scens = {
            s.name: s
            for s in builtin_scenarios(n_servers=12, duration=15.0, p=4, seed=2)
        }
        res = run_scenario_spec(scens[name])
        offered, mean, p99 = self.EXPECTED[name]
        assert res.offered == offered
        assert res.dropped == 0
        assert res.mean_delay == pytest.approx(mean, rel=REL)
        assert res.p99_delay == pytest.approx(p99, rel=REL)


class TestGoldenBalancer:
    """Figs 7.9/7.10's range load balancer, pinned end to end.

    The benchmark (`benchmarks/test_fig7_9_10.py`) asserts only the
    *shape* (imbalance decays, ranges correlate with speeds, delay does
    not get worse); these pins freeze the seeded trajectory itself: the
    imbalance before/after, the rounds to convergence, and the mean query
    delay before/after balancing.  All randomness flows through
    ``repro._rng`` named streams, so the numbers are independent of test
    order -- the order-independence assertion holds that line, mirroring
    the Table 6.2 pin.
    """

    N, P, DATASET = 20, 4, 4e6

    # (rounds to stable, imbalance before, imbalance after,
    #  mean delay before s, mean delay after s)
    EXPECTED = (
        19,
        1.9128570763337223,
        1.2657580893883846,
        6.892158104899762,
        2.108285537614944,
    )

    def _measure(self):
        from repro._rng import ensure_rng
        from repro.core import Ring
        from repro.core.balance import LoadBalancer
        from repro.core.scheduler import schedule_heap
        from repro.sim import PoissonArrivals, SimServer

        rng = ensure_rng(None, seed=7)
        speeds = [rng.uniform(500_000.0, 3_000_000.0) for _ in range(self.N)]
        ring = Ring.uniform(self.N, speeds=speeds)

        def mean_delay():
            servers = {
                n.name: SimServer(n.name, n.speed, fixed_overhead=0.002)
                for n in ring
            }
            arrivals = PoissonArrivals(6.0, seed=12).times(150)
            total = 0.0
            for now in arrivals:
                def est(node, fraction):
                    s = servers[node.name]
                    return (
                        max(0.0, s.busy_until - now)
                        + fraction * self.DATASET / s.speed
                    )

                result = schedule_heap(ring, self.P, est)
                finish = max(
                    servers[node.name].submit(now, self.DATASET / self.P)
                    for node in result.assignment
                )
                total += finish - now
            return total / len(arrivals)

        balancer = LoadBalancer(ring)
        before_imbalance = balancer.imbalance()
        delay_before = mean_delay()
        rounds = balancer.run_until_stable(max_rounds=200)
        after_imbalance = balancer.imbalance()
        delay_after = mean_delay()
        return (
            rounds,
            before_imbalance,
            after_imbalance,
            delay_before,
            delay_after,
        )

    def test_pinned(self):
        rounds, imb0, imb1, d0, d1 = self._measure()
        e_rounds, e_imb0, e_imb1, e_d0, e_d1 = self.EXPECTED
        assert rounds == e_rounds
        assert imb0 == pytest.approx(e_imb0, rel=REL)
        assert imb1 == pytest.approx(e_imb1, rel=REL)
        assert d0 == pytest.approx(e_d0, rel=REL)
        assert d1 == pytest.approx(e_d1, rel=REL)

    def test_order_independent(self):
        """The pin may not depend on how many unseeded components ran
        before it (the classic seed-leakage failure mode)."""
        from repro._rng import ensure_rng

        first = self._measure()
        for _ in range(13):  # burn fallback streams, shifting the counter
            ensure_rng(None).random()
        second = self._measure()
        assert first == second
        assert second[0] == self.EXPECTED[0]


class TestGoldenReconfigTraffic:
    """Table 6.2's measured reconfiguration byte movement, pinned exactly.

    The benchmark (`benchmarks/test_tab6_2.py`) asserts only the *ordering*
    (ROAR cheaper than PTN, shrinking free); these pins freeze the measured
    byte counts themselves.  All randomness flows through named
    ``repro._rng`` streams, so the numbers are independent of test order
    (the order-independence assertion below holds the line: re-running the
    measurement after burning unrelated fallback streams must not move it).
    """

    N, P, D, OBJ_SIZE = 40, 8, 800, 100

    # (roar p->p/2, roar p/2->p, ptn p->p/2, ptn p/2->p), bytes moved
    EXPECTED = (400000, 0, 602000, 200000)

    def _measure(self):
        from repro._rng import ensure_rng
        from repro.core.objects import generate_objects
        from repro.rendezvous import PTN, RoarAlgorithm, ServerInfo

        objects = generate_objects(
            self.D, ensure_rng(None, seed=5), size=self.OBJ_SIZE
        )
        servers = [ServerInfo(f"node-{i}", 1.0) for i in range(self.N)]
        roar = RoarAlgorithm(servers, p=self.P, rng=ensure_rng(None, seed=1))
        roar.place(objects)
        roar_down = roar.change_p(self.P // 2)  # grow replicas
        roar_up = roar.change_p(self.P)  # shrink replicas (free)
        ptn = PTN(servers, p=self.P, rng=ensure_rng(None, seed=1))
        ptn.place(objects)
        ptn_down = ptn.change_p(self.P // 2)
        ptn_up = ptn.change_p(self.P)
        return roar_down, roar_up, ptn_down, ptn_up

    def test_pinned(self):
        assert self._measure() == self.EXPECTED

    def test_order_independent(self):
        """The pin may not depend on how many unseeded components ran
        before it (the classic seed-leakage failure mode)."""
        from repro._rng import ensure_rng

        first = self._measure()
        for _ in range(11):  # burn fallback streams, shifting the counter
            ensure_rng(None).random()
        assert self._measure() == first == self.EXPECTED
