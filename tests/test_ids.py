"""Tests for circular ID-space arithmetic (repro.core.ids)."""

import math

import pytest

from repro.core.ids import Arc, arcs_intersect, ccw_distance, cw_distance, frac, in_arc


class TestFrac:
    def test_identity_inside_unit(self):
        assert frac(0.25) == 0.25

    def test_zero(self):
        assert frac(0.0) == 0.0

    def test_wraps_above_one(self):
        assert frac(1.25) == pytest.approx(0.25)

    def test_wraps_negative(self):
        assert frac(-0.25) == pytest.approx(0.75)

    def test_exactly_one_maps_to_zero(self):
        assert frac(1.0) == 0.0

    def test_large_multiple(self):
        assert frac(7.125) == pytest.approx(0.125)

    def test_result_always_in_range(self):
        for x in (-3.7, -1e-18, 0.999999999, 12.3, -0.0):
            out = frac(x)
            assert 0.0 <= out < 1.0


class TestDistances:
    def test_cw_simple(self):
        assert cw_distance(0.1, 0.4) == pytest.approx(0.3)

    def test_cw_wrapping(self):
        assert cw_distance(0.9, 0.1) == pytest.approx(0.2)

    def test_cw_self_is_zero(self):
        assert cw_distance(0.5, 0.5) == 0.0

    def test_ccw_is_complement(self):
        assert ccw_distance(0.1, 0.4) == pytest.approx(0.7)

    def test_cw_plus_ccw_is_one(self):
        for a, b in ((0.2, 0.7), (0.9, 0.3), (0.0, 0.5)):
            assert cw_distance(a, b) + ccw_distance(a, b) == pytest.approx(1.0)


class TestInArc:
    def test_inside(self):
        assert in_arc(0.3, 0.2, 0.2)

    def test_start_is_inclusive(self):
        assert in_arc(0.2, 0.2, 0.2)

    def test_end_is_exclusive(self):
        assert not in_arc(0.4, 0.2, 0.2)

    def test_wrapping_arc(self):
        assert in_arc(0.05, 0.9, 0.2)
        assert not in_arc(0.5, 0.9, 0.2)

    def test_full_circle_contains_everything(self):
        assert in_arc(0.123, 0.7, 1.0)

    def test_empty_arc_contains_nothing(self):
        assert not in_arc(0.2, 0.2, 0.0)


class TestArcsIntersect:
    def test_overlapping(self):
        assert arcs_intersect(0.1, 0.3, 0.2, 0.3)

    def test_disjoint(self):
        assert not arcs_intersect(0.1, 0.1, 0.5, 0.1)

    def test_wrap_overlap(self):
        assert arcs_intersect(0.9, 0.2, 0.0, 0.05)

    def test_touching_endpoints_do_not_intersect(self):
        # [0.1, 0.2) and [0.2, 0.3) share no point (half-open).
        assert not arcs_intersect(0.1, 0.1, 0.2, 0.1)

    def test_full_circle_intersects_all(self):
        assert arcs_intersect(0.0, 1.0, 0.5, 0.001)

    def test_empty_never_intersects(self):
        assert not arcs_intersect(0.1, 0.0, 0.0, 1.0)


class TestArc:
    def test_canonicalises_start(self):
        assert Arc(1.25, 0.1).start == pytest.approx(0.25)

    def test_end(self):
        assert Arc(0.9, 0.2).end == pytest.approx(0.1)

    def test_full_circle_flag(self):
        assert Arc(0.3, 1.0).is_full_circle
        assert not Arc(0.3, 0.999).is_full_circle

    def test_contains_half_open(self):
        arc = Arc(0.2, 0.3)
        assert arc.contains(0.2)
        assert arc.contains(0.49)
        assert not arc.contains(0.5)

    def test_contains_arc_nested(self):
        assert Arc(0.1, 0.5).contains_arc(Arc(0.2, 0.2))

    def test_contains_arc_overhanging(self):
        assert not Arc(0.1, 0.5).contains_arc(Arc(0.5, 0.2))

    def test_contains_arc_wrapping(self):
        assert Arc(0.9, 0.3).contains_arc(Arc(0.95, 0.2))

    def test_intersection_length_simple(self):
        assert Arc(0.1, 0.3).intersection_length(Arc(0.2, 0.3)) == pytest.approx(0.2)

    def test_intersection_length_disjoint(self):
        assert Arc(0.1, 0.1).intersection_length(Arc(0.5, 0.1)) == 0.0

    def test_intersection_length_nested(self):
        assert Arc(0.0, 0.8).intersection_length(Arc(0.2, 0.2)) == pytest.approx(0.2)

    def test_intersection_with_full_circle(self):
        assert Arc(0.0, 1.0).intersection_length(Arc(0.3, 0.25)) == pytest.approx(0.25)

    def test_expand_and_shrink(self):
        arc = Arc(0.4, 0.2)
        assert arc.expand(0.1).length == pytest.approx(0.3)
        assert arc.shrink(0.1).length == pytest.approx(0.1)
        assert arc.shrink(0.5).length == 0.0

    def test_length_clamped_to_circle(self):
        assert Arc(0.0, 2.5).length == 1.0

    def test_midpoint_wraps(self):
        assert Arc(0.9, 0.2).midpoint() == pytest.approx(0.0)

    def test_split(self):
        lo, hi = Arc(0.2, 0.4).split(0.3)
        assert lo.start == pytest.approx(0.2)
        assert lo.length == pytest.approx(0.1)
        assert hi.start == pytest.approx(0.3)
        assert hi.length == pytest.approx(0.3)

    def test_split_outside_raises(self):
        with pytest.raises(ValueError):
            Arc(0.2, 0.1).split(0.5)

    def test_negative_length_clamped(self):
        assert Arc(0.5, -0.3).is_empty
