"""Tests for range adjustment and sub-query splitting (repro.core.adjust)."""

import random

import pytest

from repro.core import Ring, generate_objects
from repro.core.adjust import (
    QueryPlan,
    adjust_ranges,
    plan_from_schedule,
    split_slowest,
)
from repro.core.ids import cw_distance, frac
from repro.core.node import RoarNode, dedup_matches
from repro.core.scheduler import schedule_heap


def windows_tile_circle(plan: QueryPlan) -> bool:
    return abs(plan.total_width() - 1.0) < 1e-9


def coverage_exact(plan: QueryPlan, query_id: int, object_ids) -> bool:
    """Every object falls in exactly one sub-query window."""
    subs = plan.to_subqueries(query_id)
    for oid in object_ids:
        hits = sum(1 for s in subs if dedup_matches(oid, s))
        if hits != 1:
            return False
    return True


@pytest.fixture
def planned(hetero_ring, work_estimator):
    result = schedule_heap(hetero_ring, 3, work_estimator)
    return plan_from_schedule(result, work_estimator)


class TestPlanFromSchedule:
    def test_windows_tile(self, planned):
        assert windows_tile_circle(planned)

    def test_each_window_is_one_over_p(self, planned):
        for sub in planned.subs:
            assert sub.width == pytest.approx(1.0 / 3)

    def test_dest_equals_window_end(self, planned):
        for sub in planned.subs:
            assert sub.dest == pytest.approx(sub.window_end)

    def test_coverage(self, planned, rng):
        oids = [rng.random() for _ in range(300)]
        assert coverage_exact(planned, 1, oids)


class TestAdjustRanges:
    def test_preserves_tiling(self, planned, hetero_ring, work_estimator):
        adjusted = adjust_ranges(planned, hetero_ring, work_estimator, p_store=3)
        assert windows_tile_circle(adjusted)

    def test_preserves_coverage(self, planned, hetero_ring, work_estimator, rng):
        adjusted = adjust_ranges(planned, hetero_ring, work_estimator, p_store=3)
        oids = [rng.random() for _ in range(300)]
        assert coverage_exact(adjusted, 1, oids)

    def test_never_worsens_makespan(self, work_estimator):
        for seed in range(8):
            rng = random.Random(seed)
            ring = Ring.proportional([rng.uniform(0.3, 3.0) for _ in range(9)])
            result = schedule_heap(ring, 3, work_estimator)
            plan = plan_from_schedule(result, work_estimator)
            before = plan.makespan
            after = adjust_ranges(plan, ring, work_estimator, p_store=3).makespan
            assert after <= before + 1e-12

    def test_adjusted_objects_are_stored_on_assignees(self, work_estimator, rng):
        """The coverage constraints: shifted window contents must actually be
        replicated on the node that now matches them (Fig 4.6)."""
        p = 3
        ring = Ring.proportional([rng.uniform(0.5, 2.5) for _ in range(9)])
        objects = generate_objects(400, rng)
        stores = {}
        for node in ring:
            store = RoarNode(node)
            store.load_objects(objects, p, ring.range_of(node))
            stores[node.name] = store

        result = schedule_heap(ring, p, work_estimator)
        plan = adjust_ranges(
            plan_from_schedule(result, work_estimator), ring, work_estimator, p
        )
        matched = {}
        for i, planned_sub in enumerate(plan.subs):
            sub = planned_sub.to_subquery(1, i)
            local = stores[planned_sub.node.name].execute(sub)
            window_count = sum(
                1 for o in objects if dedup_matches(o.oid, sub)
            )
            # Everything in the window must be present locally.
            assert len(local) == window_count
            for obj in local:
                matched[obj.key] = matched.get(obj.key, 0) + 1
        assert len(matched) == len(objects)
        assert all(v == 1 for v in matched.values())

    def test_single_subquery_plan_untouched(self, work_estimator, uniform_ring):
        result = schedule_heap(uniform_ring, 1, work_estimator)
        plan = plan_from_schedule(result, work_estimator)
        adjusted = adjust_ranges(plan, uniform_ring, work_estimator, p_store=1)
        assert len(adjusted.subs) == 1


class TestSplitSlowest:
    def test_adds_subqueries(self, work_estimator):
        rng = random.Random(4)
        # One clearly slow node so the split has something to fix.
        speeds = [3.0] * 8 + [0.3]
        ring = Ring.proportional(speeds)
        result = schedule_heap(ring, 3, work_estimator)
        plan = plan_from_schedule(result, work_estimator)
        split = split_slowest(plan, ring, work_estimator, p_store=3, max_splits=1)
        assert len(split.subs) in (3, 4)

    def test_improves_or_keeps_makespan(self, work_estimator):
        for seed in range(8):
            rng = random.Random(seed)
            ring = Ring.proportional([rng.uniform(0.2, 3.0) for _ in range(10)])
            result = schedule_heap(ring, 5, work_estimator)
            plan = plan_from_schedule(result, work_estimator)
            before = plan.makespan
            split = split_slowest(plan, ring, work_estimator, p_store=5, max_splits=2)
            assert split.makespan <= before + 1e-12

    def test_preserves_tiling_and_coverage(self, work_estimator, rng):
        ring = Ring.proportional([rng.uniform(0.2, 3.0) for _ in range(10)])
        result = schedule_heap(ring, 5, work_estimator)
        plan = plan_from_schedule(result, work_estimator)
        split = split_slowest(plan, ring, work_estimator, p_store=5, max_splits=3)
        assert windows_tile_circle(split)
        oids = [rng.random() for _ in range(300)]
        assert coverage_exact(split, 1, oids)

    def test_split_pieces_are_stored_on_assignees(self, work_estimator, rng):
        p = 4
        speeds = [2.0] * 7 + [0.25]
        ring = Ring.proportional(speeds)
        objects = generate_objects(500, rng)
        stores = {}
        for node in ring:
            store = RoarNode(node)
            store.load_objects(objects, p, ring.range_of(node))
            stores[node.name] = store
        result = schedule_heap(ring, p, work_estimator)
        plan = split_slowest(
            plan_from_schedule(result, work_estimator),
            ring,
            work_estimator,
            p,
            max_splits=2,
        )
        matched = {}
        for i, planned_sub in enumerate(plan.subs):
            sub = planned_sub.to_subquery(1, i)
            local = stores[planned_sub.node.name].execute(sub)
            window_count = sum(1 for o in objects if dedup_matches(o.oid, sub))
            assert len(local) == window_count, (
                f"sub {i} on {planned_sub.node.name}: stored {len(local)} of "
                f"{window_count} window objects"
            )
            for obj in local:
                matched[obj.key] = matched.get(obj.key, 0) + 1
        assert len(matched) == len(objects)
        assert all(v == 1 for v in matched.values())

    def test_zero_splits_is_identity(self, planned, hetero_ring, work_estimator):
        out = split_slowest(planned, hetero_ring, work_estimator, 3, max_splits=0)
        assert out is planned
