"""Shared fixtures for the test suite."""

import random

import pytest

from repro._rng import reset_default_streams
from repro.core import Ring, RingNode
from repro.pps.crypto import keygen_deterministic


@pytest.fixture(autouse=True)
def _isolated_rng_streams():
    """Each test starts from fallback-stream zero.

    Without this, components that fall back to :func:`repro._rng.ensure_rng`
    draw streams from a process-global counter, so results depend on how
    many unseeded constructions earlier tests performed -- i.e. on test
    *order*.  Resetting per test makes every test deterministic under
    arbitrary reordering (pytest -p no:randomly style).
    """
    reset_default_streams()
    yield


@pytest.fixture
def rng():
    return random.Random(12345)


@pytest.fixture
def key():
    return keygen_deterministic("unit-test-key")


@pytest.fixture
def uniform_ring():
    """8 equal-speed nodes with equal ranges."""
    return Ring.uniform(8)


@pytest.fixture
def hetero_ring():
    """6 nodes with speeds 1..3 and ranges proportional to speed."""
    return Ring.proportional([1.0, 2.0, 3.0, 1.0, 2.0, 3.0])


@pytest.fixture
def work_estimator():
    """Finish estimator for an idle system: work fraction / speed."""

    def estimate(node, fraction):
        return fraction / node.speed

    return estimate
