"""Execute the public surface's doctest examples.

The docstring examples on the public API (``Deployment.run_queries_fast``,
the scenario spec vocabulary, the ``repro`` CLI parser, the circular-id
helpers) are contracts: if the code drifts, the docs must fail, not rot.
This module runs them as part of tier-1, so every example in the
documentation (and in ``docs/``, which links to these docstrings) stays
executable.
"""

import doctest
from pathlib import Path

import pytest

pytest.importorskip("numpy")  # run_queries_fast examples need the fast path

import repro.admission.base
import repro.admission.records
import repro.cli
import repro.cluster.deployment
import repro.core.ids
import repro.obs.audit
import repro.obs.manifest
import repro.obs.profiler
import repro.scenarios.spec
import repro.telemetry.archive
import repro.traces.registry
import repro.traces.spec

#: every module whose docstring examples are part of the documented
#: contract; add modules here when giving them doctest examples.
DOCTEST_MODULES = (
    repro.admission.base,
    repro.admission.records,
    repro.cli,
    repro.cluster.deployment,
    repro.core.ids,
    repro.obs.audit,
    repro.obs.manifest,
    repro.obs.profiler,
    repro.scenarios.spec,
    repro.telemetry.archive,
    repro.traces.registry,
    repro.traces.spec,
)

#: docs-site pages whose ``>>>`` examples are executable contracts too;
#: the docs CI job and tier-1 both run them.
DOCTEST_PAGES = (
    "scenarios.md",
    "traces.md",
    "observability.md",
    "admission.md",
)


@pytest.mark.parametrize(
    "module", DOCTEST_MODULES, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    result = doctest.testmod(
        module, optionflags=doctest.ELLIPSIS, verbose=False
    )
    assert result.attempted > 0, f"{module.__name__} lost its doctest examples"
    assert result.failed == 0


@pytest.mark.parametrize("page", DOCTEST_PAGES)
def test_docs_page_doctests(page):
    path = Path(__file__).resolve().parents[1] / "docs" / page
    result = doctest.testfile(
        str(path), module_relative=False,
        optionflags=doctest.ELLIPSIS, verbose=False,
    )
    assert result.attempted > 0, f"docs/{page} lost its doctest examples"
    assert result.failed == 0
