"""Admission control: registry, policies, invariants, bit-identity.

Three layers of hardening for the admission subsystem (ISSUE-10):

* unit tests over the registry/policy vocabulary and the ShedLog
  round-trip through the archive layer;
* hypothesis property tests for the four admission invariants (AIMD
  rate clamping, no sheds below the queue cap, delay_gated honouring
  the SLO, admitted backlog bounded by the cap on any seed);
* differential bit-identity tests: ``admission="none"`` must be
  byte-identical to the pre-admission seed -- BatchResult arrays,
  telemetry columns, and rng stream states, on both engines, on every
  exact kernel, including the ``REPRO_NO_COMPILED_KERNEL`` fallback
  subprocess.
"""

import dataclasses
import math
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._rng import capture_streams
from repro.admission import (
    AIMDAdmission,
    DelayGatedAdmission,
    NoneAdmission,
    ShedLog,
    admission_from_archive,
    build_admission,
    canonical_spec,
    explain_admission,
    get_policy,
    is_known_policy,
    policy_names,
    policy_specs,
    render_admission,
    resolve_admission,
)
from repro.cluster import Deployment, DeploymentConfig, hen_testbed
from repro.scenarios import AdmissionSpec, builtin_scenarios
from repro.sim import PoissonArrivals


def _deployment(n=8, seed=3):
    return Deployment(
        DeploymentConfig(
            models=hen_testbed(n), p=4, dataset_size=1e6, seed=seed,
            charge_scheduling=False,
        )
    )


# -- registry -------------------------------------------------------------


class TestRegistry:
    def test_policy_names(self):
        names = policy_names()
        assert {"none", "aimd", "delay_gated"} <= set(names)

    def test_aliases_resolve(self):
        assert canonical_spec("accept-all") == "none"
        assert canonical_spec("delay") == "delay_gated"
        assert canonical_spec("delay:slo=2") == "delay_gated:slo=2"

    def test_none_is_passthrough(self):
        policy = get_policy("none")
        assert policy.passthrough
        assert resolve_admission("none") is None
        assert resolve_admission(None) is None
        assert resolve_admission("accept-all") is None

    def test_active_policies_resolve_to_instances(self):
        assert isinstance(resolve_admission("aimd"), AIMDAdmission)
        assert isinstance(resolve_admission("delay_gated"), DelayGatedAdmission)

    def test_spec_parameters(self):
        policy = get_policy("aimd:floor=2,capacity=40,slo=0.5")
        assert policy.slo == 0.5
        assert policy.floor == 2.0
        assert policy.capacity == 40.0

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            get_policy("bogus")
        assert not is_known_policy("bogus")
        assert is_known_policy("aimd:floor=2")

    def test_instance_passthrough(self):
        inst = DelayGatedAdmission()
        assert get_policy(inst) is inst
        assert resolve_admission(inst) is inst
        assert resolve_admission(NoneAdmission()) is None

    def test_policy_specs_rows(self):
        rows = {r["name"]: r for r in policy_specs()}
        assert rows["none"]["passthrough"] is True
        assert rows["aimd"]["passthrough"] is False
        assert all(r["description"] for r in rows.values())

    def test_build_admission_from_spec(self):
        spec = AdmissionSpec(policy="aimd", slo=0.5, floor=2.0, capacity=40.0)
        policy = build_admission(spec)
        assert isinstance(policy, AIMDAdmission)
        assert policy.slo == 0.5
        assert policy.floor == 2.0
        assert build_admission(None) is None
        assert build_admission(AdmissionSpec(policy="none")) is None

    def test_admission_spec_validates(self):
        with pytest.raises(ValueError):
            AdmissionSpec(policy="bogus")
        with pytest.raises(ValueError):
            AdmissionSpec(slo=0.0)
        with pytest.raises(ValueError):
            AdmissionSpec(tick=-1.0)


# -- ShedLog --------------------------------------------------------------


class TestShedLog:
    def test_roundtrip_through_archive(self, tmp_path):
        from repro.telemetry.archive import read_archive, write_archive_columns

        log = ShedLog()
        log.record_shed(1.0, 10, "rate", backlog=0.5, signal=0.0)
        log.record_shed(2.0, 20, "queue-cap", backlog=3.0, signal=1.0)
        log.record_shed(2.5, 21, "rate", backlog=0.2, signal=0.0)
        log.record_tick(3.0, 25, rate=8.0, p99=1.5, backlog_hwm=3.0,
                        accepted=23, shed=3, cap_queries=16.0)
        path = tmp_path / "shed.npz"
        write_archive_columns(
            str(path), log.columns(), meta={"admission": log.meta(policy="aimd")}
        )
        sheds, ticks, meta = admission_from_archive(read_archive(str(path)))
        assert [s.reason for s in sheds] == ["rate", "queue-cap", "rate"]
        assert sheds[1].query_index == 20
        assert ticks[0].accepted == 23 and ticks[0].shed == 3
        assert meta["policy"] == "aimd"

    def test_chunk_rows_are_deltas(self):
        log = ShedLog()
        log.record_chunk(0, 10, 4)
        log.record_chunk(10, 6, 9)  # running shed total 9 -> delta 5
        cols = log.columns()
        assert cols["shedchunk_shed"].tolist() == [4, 5]
        assert cols["shedchunk_accepted"].tolist() == [10, 6]

    def test_no_admission_columns_raises(self, tmp_path):
        from repro.telemetry.archive import read_archive, write_archive_columns

        path = tmp_path / "plain.npz"
        write_archive_columns(
            str(path), {"log_arrival": np.array([1.0])}, meta={}
        )
        with pytest.raises(ValueError):
            admission_from_archive(read_archive(str(path)))

    def test_render_admission(self):
        log = ShedLog()
        log.record_shed(1.0, 5, "p99", backlog=0.4, signal=2.0)
        log.record_tick(2.0, 9, rate=math.nan, p99=2.0, backlog_hwm=0.4,
                        accepted=8, shed=1, cap_queries=12.0)
        sheds, ticks = log.records(log.meta(policy="delay_gated", slo=1.0))
        text = render_admission(sheds, ticks, meta=log.meta(policy="delay_gated"))
        assert "policy=delay_gated" in text
        assert "p99=1" in text
        assert "shed: 1" in text


# -- property tests: the four admission invariants ------------------------

tick_inputs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0),  # p99 seen at the tick
        st.floats(min_value=0.0, max_value=20.0),  # backlog before the tick
    ),
    min_size=1,
    max_size=40,
)


class TestAdmissionInvariants:
    @given(ticks=tick_inputs,
           floor=st.floats(min_value=0.5, max_value=5.0),
           capacity=st.floats(min_value=5.0, max_value=200.0))
    @settings(max_examples=60, deadline=None)
    def test_aimd_rate_stays_within_floor_and_capacity(
        self, ticks, floor, capacity
    ):
        policy = AIMDAdmission(
            slo=1.0, floor=floor, capacity=capacity, increase=7.0, decrease=0.5
        )
        now = 0.0
        for p99, backlog in ticks:
            now += 1.0
            # drive the windowed p99 through observed delays and the
            # backlog through an admit, exactly like the engine does
            policy.observe(now, p99)
            policy.admit(0, now, min(backlog, policy.queue_cap * 0.99))
            policy.tick(now)
            assert floor <= policy.current_rate() <= capacity

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           backlogs=st.lists(st.floats(min_value=0.0, max_value=100.0),
                             min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_no_policy_sheds_on_queue_cap_below_the_cap(self, seed, backlogs):
        """Below the cap, a shed can only come from the policy's own gate."""
        for spec in ("aimd:floor=1,capacity=10,rate=1,burst=1",
                     "delay_gated"):
            policy = get_policy(spec)
            now = 0.0
            for backlog in backlogs:
                now += 0.01
                reason = policy.admit(0, now, backlog)
                if backlog < policy.queue_cap:
                    assert reason != "queue-cap"
                else:
                    assert reason == "queue-cap"

    @given(backlogs=st.lists(
        st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=60
    ))
    @settings(max_examples=60, deadline=None)
    def test_accept_all_none_policy_never_sheds(self, backlogs):
        policy = NoneAdmission()
        now = 0.0
        for backlog in backlogs:
            now += 0.5
            assert policy.admit(0, now, backlog) is None
        assert policy.shed == 0
        assert policy.accepted == len(backlogs)

    @given(delays=st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=0, max_size=50
    ))
    @settings(max_examples=60, deadline=None)
    def test_delay_gated_never_sheds_while_p99_within_slo(self, delays):
        policy = DelayGatedAdmission(slo=1.0, window=100.0)
        now = 0.0
        for d in delays:  # every observed delay is <= the 1.0s SLO
            now += 0.1
            policy.observe(now, d)
        for _ in range(10):
            now += 0.1
            reason = policy.admit(0, now, 0.5 * policy.queue_cap)
            assert reason is None
        assert policy.shed == 0

    @given(delays=st.lists(
        st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=50
    ))
    @settings(max_examples=60, deadline=None)
    def test_delay_gated_sheds_iff_windowed_p99_over_slo(self, delays):
        policy = DelayGatedAdmission(slo=1.0, window=100.0)
        now = 0.0
        for d in delays:
            now += 0.1
            policy.observe(now, d)
        p99 = policy.window.percentile(99, now)
        reason = policy.admit(0, now, 0.0)
        assert (reason == "p99") == (p99 > 1.0)

    @given(seed=st.integers(min_value=0, max_value=1000),
           spec=st.sampled_from([
               "aimd:slo=0.5,cap_multiple=2",
               "aimd:slo=1,cap_multiple=4,floor=5,capacity=60",
               "delay_gated:slo=0.5,cap_multiple=2",
               "delay_gated:slo=1,cap_multiple=1",
           ]))
    @settings(max_examples=25, deadline=None)
    def test_admitted_backlog_never_exceeds_cap_on_any_seed(self, seed, spec):
        """Engine-level: under overload, accepted queries always found the
        busiest-server backlog below the configured cap (>= cap sheds)."""
        policy = get_policy(spec)
        dep = _deployment(n=6, seed=seed % 7 + 1)
        arrivals = PoissonArrivals(120.0, seed=seed).times(300)
        result = dep.run_queries_fast(arrivals, 4, admission=policy)
        assert policy.max_admitted_backlog < policy.queue_cap
        assert result.shed == policy.shed
        assert result.completed == policy.accepted


# -- differential bit-identity: admission="none" is the seed --------------


def _run_batch(engine, admission, seed=5, kernel=None):
    from repro.sim.fastpath import run_queries_reference

    dep = _deployment(seed=seed)
    arrivals = PoissonArrivals(80.0, seed=seed).times(400)
    if engine == "reference":
        result = run_queries_reference(dep, arrivals, 4, admission=admission)
    else:
        result = dep.run_queries_fast(
            arrivals, 4, admission=admission, kernel=kernel
        )
    return dep, result


def _assert_batches_identical(a, b):
    assert a.latencies.tobytes() == b.latencies.tobytes()
    assert a.finishes.tobytes() == b.finishes.tobytes()
    assert a.query_ids.tobytes() == b.query_ids.tobytes()
    assert a.pqs.tobytes() == b.pqs.tobytes()
    assert (a.completed, a.dropped, a.shed) == (b.completed, b.dropped, b.shed)


class TestNonePolicyBitIdentity:
    @pytest.mark.parametrize("engine", ["batched", "reference"])
    def test_engine_arrays_and_streams_identical(self, engine):
        from repro._rng import reset_default_streams

        reset_default_streams()
        base_dep, base = _run_batch(engine, admission=None)
        base_streams = capture_streams()
        reset_default_streams()
        dep, run = _run_batch(engine, admission="none")
        assert run.shed == 0
        _assert_batches_identical(base, run)
        assert dep.log.delays() == base_dep.log.delays()
        assert capture_streams() == base_streams

    def test_exact_kernels_identical(self):
        from repro.kernels import kernel_specs

        _, base = _run_batch("batched", admission=None)
        for row in kernel_specs():
            if not row["available"] or row["exact"] is not True:
                continue
            _, run = _run_batch("batched", admission="none", kernel=row["name"])
            assert run.shed == 0, row["name"]
            _assert_batches_identical(base, run)

    def test_scenario_archives_identical(self, tmp_path):
        """Scenario runs with an explicit policy="none" AdmissionSpec are
        column-identical to runs with no admission block at all."""
        from repro.scenarios import run_scenario_spec
        from repro.telemetry.archive import archive_diff, read_archive

        scens = {
            s.name: s
            for s in builtin_scenarios(n_servers=10, duration=8.0, p=4, seed=2)
        }
        for name in ("steady", "sustained-overload"):
            scenario = scens[name]
            bare = dataclasses.replace(scenario, admission=None)
            spec = AdmissionSpec(policy="none")
            explicit = dataclasses.replace(scenario, admission=spec)
            path_a = tmp_path / f"{name}-bare.npz"
            path_b = tmp_path / f"{name}-none.npz"
            ra = run_scenario_spec(bare, archive_path=str(path_a))
            rb = run_scenario_spec(explicit, archive_path=str(path_b))
            assert rb.shed == 0 and ra.shed == 0
            assert ra.p99_delay == rb.p99_delay
            diff = archive_diff(
                read_archive(str(path_a)), read_archive(str(path_b))
            )
            assert diff["gated_identical"], diff

    def test_no_compiled_kernel_subprocess_identical(self):
        """The pure-python fallback build agrees byte for byte too."""
        code = """
import json, sys
from repro.cluster import Deployment, DeploymentConfig, hen_testbed
from repro.sim import PoissonArrivals

def run(admission):
    dep = Deployment(DeploymentConfig(
        models=hen_testbed(8), p=4, dataset_size=1e6, seed=5,
        charge_scheduling=False,
    ))
    arrivals = PoissonArrivals(80.0, seed=5).times(300)
    res = dep.run_queries_fast(arrivals, 4, admission=admission)
    return res.latencies.tobytes().hex(), res.shed

base, _ = run(None)
none_run, shed = run("none")
print(json.dumps({"identical": base == none_run, "shed": shed}))
"""
        env = {
            "REPRO_NO_COMPILED_KERNEL": "1",
            "PYTHONPATH": "src",
            "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
        }
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=120,
            cwd=Path(__file__).resolve().parents[1], env=env,
        )
        assert proc.returncode == 0, proc.stderr
        import json

        payload = json.loads(proc.stdout.strip().splitlines()[-1])
        assert payload == {"identical": True, "shed": 0}


# -- active policies: engine parity + explain reconstruction --------------


class TestActivePolicyBehaviour:
    @pytest.mark.parametrize("spec", [
        "aimd:slo=0.5,cap_multiple=2,floor=20,capacity=300",
        "delay_gated:slo=0.5,cap_multiple=2",
    ])
    def test_engines_agree_under_overload(self, spec):
        _, fast = _run_batch("batched", admission=get_policy(spec))
        _, ref = _run_batch("reference", admission=get_policy(spec))
        assert fast.shed > 0
        _assert_batches_identical(fast, ref)

    def test_shed_queries_consume_no_rng_and_no_log_rows(self):
        dep, run = _run_batch(
            "batched", admission=get_policy("delay_gated:slo=0.2,cap_multiple=1")
        )
        assert run.shed > 0
        assert dep.log.n_records == run.completed
        # shed slots: NaN latency, -1 query id, pq recorded
        nan_slots = int(np.isnan(run.latencies).sum())
        assert nan_slots == run.shed + run.dropped
        assert int((run.query_ids == -1).sum()) == run.shed + run.dropped

    def test_explain_checks_pass_on_archived_run(self, tmp_path):
        from repro.scenarios import run_scenario_spec
        from repro.telemetry.archive import read_archive

        scens = {
            s.name: s
            for s in builtin_scenarios(n_servers=10, duration=8.0, p=4, seed=2)
        }
        scenario = scens["sustained-overload"]
        scenario = dataclasses.replace(
            scenario,
            admission=dataclasses.replace(scenario.admission, policy="aimd"),
        )
        path = tmp_path / "aimd.npz"
        result = run_scenario_spec(scenario, archive_path=str(path))
        assert result.shed > 0
        archive = read_archive(str(path))
        sheds, ticks, meta = admission_from_archive(archive)
        assert len(sheds) == result.shed
        assert meta["policy"] == "aimd"
        checks = explain_admission(archive)
        assert checks and all(ok for _, ok, _, _ in checks)
        # every shed decision carries its exact arrival-stream index
        assert all(0 <= s.query_index < result.offered for s in sheds)

    def test_goodput_ordering_on_sustained_overload(self):
        """The ISSUE-10 acceptance bar: under 2x overload both active
        policies beat accept-all on goodput AND p99."""
        from repro.scenarios import run_scenario_spec

        scens = {
            s.name: s
            for s in builtin_scenarios(n_servers=10, duration=10.0, p=4, seed=2)
        }
        base = scens["sustained-overload"]
        results = {}
        for policy in ("none", "aimd", "delay_gated"):
            scenario = dataclasses.replace(
                base, admission=dataclasses.replace(base.admission, policy=policy)
            )
            results[policy] = run_scenario_spec(scenario)
        for policy in ("aimd", "delay_gated"):
            assert results[policy].goodput > results["none"].goodput
            assert results[policy].p99_delay < results["none"].p99_delay
