"""Tests for the membership server (repro.core.membership, Section 4.9)."""

import random

import pytest

from repro.core import MembershipServer


class TestBuildBalanced:
    def test_single_ring_all_nodes(self):
        ms = MembershipServer.build_balanced([1.0] * 10)
        assert len(ms.rings) == 1
        assert len(ms.rings[0]) == 10
        ms.rings[0].validate()

    def test_rings_have_similar_capacity(self):
        rng = random.Random(5)
        speeds = [rng.uniform(0.5, 3.0) for _ in range(40)]
        ms = MembershipServer.build_balanced(speeds, n_rings=4)
        caps = [ms.ring_capacity(i) for i in range(4)]
        assert max(caps) / min(caps) < 1.2

    def test_ranges_proportional_to_speed(self):
        ms = MembershipServer.build_balanced([1.0, 3.0])
        ring = ms.rings[0]
        for node in ring:
            expected = node.speed / 4.0
            assert ring.range_of(node).length == pytest.approx(expected)


class TestAddRemove:
    def test_add_to_empty(self):
        ms = MembershipServer()
        node = ms.add_server("s0", 1.0)
        assert len(ms.rings[0]) == 1
        assert ms.rings[0].range_of(node).length == 1.0

    def test_add_splits_hottest(self):
        ms = MembershipServer.build_balanced([1.0, 1.0, 0.2])
        ring = ms.rings[0]
        hot = ms.hottest_node(ring)
        hot_len_before = ring.range_of(hot).length
        ms.add_server("newbie", 1.0)
        assert ring.range_of(hot).length == pytest.approx(hot_len_before / 2)
        ring.validate()

    def test_add_picks_least_capacity_ring(self):
        ms = MembershipServer(n_rings=2)
        ms.add_server("a", 5.0, ring_id=0)
        node = ms.add_server("b", 1.0)  # should go to empty ring 1
        assert node.ring_id == 1

    def test_remove_and_rejoin_gets_old_range(self):
        ms = MembershipServer.build_balanced([1.0, 1.0, 1.0, 1.0])
        ring = ms.rings[0]
        old_start = ring.get("node-2").start
        ms.remove_server("node-2")
        assert len(ring) == 3
        node = ms.add_server("node-2", 1.0)
        assert node.start == pytest.approx(old_start)

    def test_remove_unknown_raises(self):
        ms = MembershipServer()
        with pytest.raises(KeyError):
            ms.remove_server("ghost")

    def test_long_term_failure_redistributes(self):
        ms = MembershipServer.build_balanced([1.0] * 5)
        ms.handle_long_term_failure("node-3")
        assert len(ms.rings[0]) == 4
        ms.rings[0].validate()


class TestGlobalRebalancing:
    def test_move_cool_to_hot(self):
        ms = MembershipServer.build_balanced([1.0] * 8)
        ring = ms.rings[0]
        # Make node-0 very hot by removing its neighbours.
        ms.remove_server("node-1")
        ms.remove_server("node-2")
        moved = ms.move_cool_to_hot()
        assert moved
        assert ms.moves == 1
        ring.validate()

    def test_no_move_when_balanced(self):
        ms = MembershipServer.build_balanced([1.0] * 8)
        assert not ms.move_cool_to_hot()

    def test_no_move_with_two_nodes(self):
        ms = MembershipServer.build_balanced([1.0, 5.0])
        assert not ms.move_cool_to_hot()


class TestDiurnalScaling:
    def test_rings_needed(self):
        ms = MembershipServer(n_rings=4)
        assert ms.rings_needed(10.0, capacity_per_ring=4.0) == 3
        assert ms.rings_needed(0.1, capacity_per_ring=4.0) == 1

    def test_set_active_rings(self):
        ms = MembershipServer.build_balanced([1.0] * 8, n_rings=4)
        active = ms.set_active_rings(2)
        assert active == [0, 1]
        assert len(ms.active_rings()) == 2

    def test_at_least_one_ring_stays_active(self):
        ms = MembershipServer.build_balanced([1.0] * 4, n_rings=2)
        ms.set_active_rings(0)
        assert len(ms.active_rings()) == 1

    def test_total_capacity_tracks_active(self):
        ms = MembershipServer.build_balanced([1.0] * 8, n_rings=4)
        full = ms.total_capacity()
        ms.set_active_rings(2)
        assert ms.total_capacity() == pytest.approx(full / 2)

    def test_invalid_capacity(self):
        ms = MembershipServer()
        with pytest.raises(ValueError):
            ms.rings_needed(1.0, 0.0)
