"""Tests for the scheduling algorithms (repro.core.scheduler)."""

import random

import pytest

from repro.core import Ring, RingNode
from repro.core.scheduler import (
    assignment_at,
    schedule_heap,
    schedule_naive,
    schedule_random,
)


class TestHeapEqualsNaive:
    """Algorithm 1 must find the same optimum as the O(np) sweep."""

    @pytest.mark.parametrize("p", [1, 2, 3, 4, 6, 8, 12])
    def test_uniform_ring(self, p, work_estimator):
        ring = Ring.uniform(24, speeds=[1 + (i % 5) for i in range(24)])
        h = schedule_heap(ring, p, work_estimator)
        n = schedule_naive(ring, p, work_estimator)
        assert h.makespan == pytest.approx(n.makespan, rel=1e-9)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_proportional_rings(self, seed, work_estimator):
        rng = random.Random(seed)
        n = rng.randint(5, 30)
        ring = Ring.proportional([rng.uniform(0.3, 3.0) for _ in range(n)])
        p = rng.randint(1, n)
        h = schedule_heap(ring, p, work_estimator)
        nv = schedule_naive(ring, p, work_estimator)
        assert h.makespan == pytest.approx(nv.makespan, rel=1e-9)

    def test_multi_ring_heap_equals_naive(self, work_estimator):
        rng = random.Random(3)
        ring_a = Ring.proportional(
            [rng.uniform(0.5, 2.0) for _ in range(8)], name_prefix="a", ring_id=0
        )
        ring_b = Ring.proportional(
            [rng.uniform(0.5, 2.0) for _ in range(8)], name_prefix="b", ring_id=1
        )
        for node in ring_b:
            node.ring_id = 1
        h = schedule_heap([ring_a, ring_b], 4, work_estimator)
        nv = schedule_naive([ring_a, ring_b], 4, work_estimator)
        assert h.makespan == pytest.approx(nv.makespan, rel=1e-9)


class TestScheduleProperties:
    def test_p_subqueries_assigned(self, hetero_ring, work_estimator):
        result = schedule_heap(hetero_ring, 3, work_estimator)
        assert len(result.assignment) == 3
        assert len(result.finishes) == 3

    def test_start_id_within_first_window(self, hetero_ring, work_estimator):
        result = schedule_heap(hetero_ring, 3, work_estimator)
        assert 0.0 <= result.start_id < 1.0 / 3 + 1e-9

    def test_makespan_is_max_finish(self, hetero_ring, work_estimator):
        result = schedule_heap(hetero_ring, 3, work_estimator)
        assert result.makespan == pytest.approx(max(result.finishes))

    def test_iterations_bounded_by_n(self, work_estimator):
        ring = Ring.uniform(40)
        result = schedule_heap(ring, 8, work_estimator)
        # One rotation event per node boundary crossing the sweep window.
        assert result.iterations <= 40 + 8

    def test_prefers_fast_servers(self, work_estimator):
        # One very fast node; with p=1 the scheduler must pick it.
        ring = Ring.uniform(6, speeds=[1, 1, 100, 1, 1, 1])
        result = schedule_heap(ring, 1, work_estimator)
        assert result.assignment[0].name == "node-2"

    def test_p_must_be_positive(self, uniform_ring, work_estimator):
        with pytest.raises(ValueError):
            schedule_heap(uniform_ring, 0, work_estimator)

    def test_empty_ring_raises(self, work_estimator):
        with pytest.raises(LookupError):
            schedule_heap(Ring(), 2, work_estimator)

    def test_single_node_ring(self, work_estimator):
        ring = Ring([RingNode("solo", 0.3, speed=2.0)])
        result = schedule_heap(ring, 2, work_estimator)
        assert all(n.name == "solo" for n in result.assignment)

    def test_includes_dead_nodes_in_sweep(self, work_estimator):
        """Section 4.4: the front-end ignores failures when choosing the
        starting point; failed targets are replaced later."""
        ring = Ring.uniform(4)
        ring.get("node-1").alive = False
        result = schedule_heap(ring, 4, work_estimator)
        assert {n.name for n in result.assignment} == {
            "node-0",
            "node-1",
            "node-2",
            "node-3",
        }


class TestRandomScheduler:
    def test_never_better_than_exhaustive(self, work_estimator):
        rng = random.Random(1)
        ring = Ring.proportional([rng.uniform(0.3, 3.0) for _ in range(15)])
        best = schedule_naive(ring, 5, work_estimator).makespan
        for k in (1, 3, 10):
            r = schedule_random(ring, 5, work_estimator, k=k, rng=random.Random(7))
            assert r.makespan >= best - 1e-12

    def test_more_starts_never_hurt(self, work_estimator):
        rng = random.Random(2)
        ring = Ring.proportional([rng.uniform(0.3, 3.0) for _ in range(20)])
        seeds = random.Random(11)
        r1 = schedule_random(ring, 4, work_estimator, k=1, rng=random.Random(5))
        r20 = schedule_random(ring, 4, work_estimator, k=20, rng=random.Random(5))
        assert r20.makespan <= r1.makespan + 1e-12

    def test_k_must_be_positive(self, uniform_ring, work_estimator):
        with pytest.raises(ValueError):
            schedule_random(uniform_ring, 2, work_estimator, k=0)


class TestAssignmentAt:
    def test_matches_owner_lookup(self, hetero_ring, work_estimator):
        assignment, finishes = assignment_at([hetero_ring], 3, 0.05, work_estimator)
        for i, node in enumerate(assignment):
            point = (0.05 + i / 3) % 1.0
            assert hetero_ring.node_in_charge(point) is node

    def test_multi_ring_picks_faster(self, work_estimator):
        slow = Ring([RingNode("slow", 0.0, speed=1.0, ring_id=0)])
        fast = Ring([RingNode("fast", 0.0, speed=10.0, ring_id=1)])
        assignment, _ = assignment_at([slow, fast], 2, 0.1, work_estimator)
        assert all(n.name == "fast" for n in assignment)


class TestComplexityCounters:
    def test_heap_does_fewer_estimates_than_naive(self, work_estimator):
        # Non-degenerate (random-position) ring: uniform rings collapse the
        # naive sweep's rotation offsets onto a handful of values.
        rng = random.Random(9)
        ring = Ring.proportional([rng.uniform(0.5, 2.0) for _ in range(60)])
        h = schedule_heap(ring, 20, work_estimator)
        n = schedule_naive(ring, 20, work_estimator)
        # O(n log p) + final p vs O(n*p): clear separation at this size.
        assert h.estimates < n.estimates / 3
