"""Tests for the scenario matrix engine (specs, runner, matrix, CLI)."""

import pytest

np = pytest.importorskip("numpy")

from repro.scenarios import (
    ChurnSpec,
    ControlSpec,
    EventSpec,
    Scenario,
    UpdateSpec,
    WorkloadSpec,
    build_deployment,
    builtin_scenarios,
    run_matrix,
    run_scenario_spec,
)
from repro.scenarios.runner import auto_rate, build_models, generate_arrivals


def small(name="t", **kw):
    defaults = dict(
        n_servers=8,
        p=3,
        dataset_size=1e6,
        seed=5,
        workload=WorkloadSpec(kind="poisson", rate=8.0, duration=10.0),
    )
    defaults.update(kw)
    return Scenario(name=name, **defaults)


class TestSpecs:
    def test_workload_validation(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            WorkloadSpec(kind="nope")
        with pytest.raises(ValueError, match="rate"):
            WorkloadSpec(rate=0.0)
        with pytest.raises(ValueError, match="trace"):
            WorkloadSpec(kind="replay")

    def test_event_validation(self):
        with pytest.raises(ValueError, match="unknown event action"):
            EventSpec(at=1.0, action="explode")
        with pytest.raises(ValueError, match="needs a value"):
            EventSpec(at=1.0, action="set-pq")

    def test_scenario_validation(self):
        with pytest.raises(ValueError, match="unknown fleet"):
            small(fleet="mainframe")
        with pytest.raises(ValueError, match="speeds"):
            small(fleet="custom")
        with pytest.raises(ValueError, match="pq"):
            small(pq=2)  # < p

    def test_control_validation(self):
        with pytest.raises(ValueError, match="unknown policies"):
            ControlSpec(policies=("time-travel",))

    def test_needs_stores(self):
        assert not small().needs_stores
        assert small(
            events=(EventSpec(at=1.0, action="repartition", value=4),)
        ).needs_stores
        assert small(
            control=ControlSpec(policies=("repartition",))
        ).needs_stores
        assert not small(
            control=ControlSpec(policies=("elasticity",))
        ).needs_stores

    def test_with_overrides(self):
        base = small()
        grid = [base.with_(seed=s) for s in range(3)]
        assert [s.seed for s in grid] == [0, 1, 2]
        assert grid[0].workload == base.workload

    def test_batch_interval_deprecated_and_ignored(self):
        from repro.scenarios.spec import UpdateSpec

        with pytest.warns(DeprecationWarning, match="batch_interval"):
            spec = UpdateSpec(rate=10.0, batch_interval=1.0)
        assert spec.rate == 10.0  # construction still succeeds (compat)
        # the replacement is the exact-time action queue: not passing the
        # knob is silent, and nothing downstream reads it
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            UpdateSpec(rate=10.0)

    def test_builtin_scenarios_carry_no_batch_interval(self):
        from repro.scenarios.matrix import builtin_scenarios

        for scenario in builtin_scenarios(n_servers=8, duration=5.0, p=4):
            if scenario.updates is not None:
                assert scenario.updates.batch_interval is None


class TestWorkloads:
    @pytest.mark.parametrize("kind", ["poisson", "diurnal", "flash-crowd", "ramp"])
    def test_arrivals_deterministic_and_bounded(self, kind):
        sc = small(workload=WorkloadSpec(kind=kind, rate=30.0, duration=12.0))
        a1, a2 = generate_arrivals(sc), generate_arrivals(sc)
        assert np.array_equal(a1, a2)
        assert a1.size > 0
        assert (np.diff(a1) >= 0).all()
        assert a1[-1] <= 12.0

    def test_flash_crowd_has_a_surge(self):
        sc = small(
            workload=WorkloadSpec(
                kind="flash-crowd", rate=40.0, duration=30.0, surge_factor=5.0
            )
        )
        arr = generate_arrivals(sc)
        pre = ((arr >= 0.0) & (arr < 7.5)).sum() / 7.5
        mid = ((arr >= 7.5) & (arr < 16.5)).sum() / 9.0
        assert mid > 2.5 * pre

    def test_replay_is_verbatim(self):
        trace = (0.5, 1.0, 2.5)
        sc = small(workload=WorkloadSpec(kind="replay", trace=trace))
        assert generate_arrivals(sc).tolist() == list(trace)

    def test_uniform_spacing(self):
        sc = small(workload=WorkloadSpec(kind="uniform", rate=10.0, duration=2.0))
        arr = generate_arrivals(sc)
        assert arr.size == 20
        assert np.allclose(np.diff(arr), 0.1)

    def test_auto_rate_scales_with_pool(self):
        models = build_models(small(n_servers=8))
        assert auto_rate(models, 3, 1e6) < auto_rate(
            build_models(small(n_servers=16)), 3, 1e6
        )


class TestRunner:
    def test_engines_agree_exactly(self):
        # The whole point of the matrix: reference and batched engines are
        # the same experiment.  Events included; logs must match exactly.
        sc = small(
            events=(
                EventSpec(at=3.0, action="fail", count=1),
                EventSpec(at=6.0, action="recover"),
                EventSpec(at=7.0, action="add-server"),
            )
        )
        r_ref = run_scenario_spec(sc, engine="reference")
        r_fast = run_scenario_spec(sc, engine="batched")
        assert r_ref.offered == r_fast.offered
        assert r_ref.completed == r_fast.completed
        assert r_ref.dropped == r_fast.dropped
        assert r_ref.mean_delay == r_fast.mean_delay
        assert r_ref.p99_delay == r_fast.p99_delay
        assert r_ref.servers_end == r_fast.servers_end

    def test_runs_are_reproducible(self):
        sc = small(updates=UpdateSpec(rate=10.0))
        a = run_scenario_spec(sc)
        b = run_scenario_spec(sc)
        assert a.mean_delay == b.mean_delay
        assert a.p99_delay == b.p99_delay
        assert a.updates_applied == b.updates_applied

    def test_events_apply(self):
        sc = small(
            events=(
                EventSpec(at=2.0, action="fail-rack", count=2),
                EventSpec(at=5.0, action="rebuild"),
                EventSpec(at=6.0, action="add-server", count=2),
                EventSpec(at=7.0, action="set-pq", value=5),
                EventSpec(at=8.0, action="rebalance"),
            )
        )
        res = run_scenario_spec(sc)
        assert res.events_applied == 5
        # rack rebuilt (2 removed) then 2 added back
        assert res.servers_end == 8
        assert res.pq_end == 5
        assert res.completed + res.dropped == res.offered

    def test_churn_and_updates(self):
        sc = small(
            churn=ChurnSpec(interval=2.0, add=1, remove=1),
            updates=UpdateSpec(rate=15.0, zipf_s=1.2, hotspots=8),
        )
        res = run_scenario_spec(sc)
        assert res.updates_applied > 50
        assert res.events_applied >= 4  # churn ticks
        assert res.yield_fraction == 1.0

    def test_zipf_updates_skew_load(self):
        # With heavy skew the hottest replica holders do measurably more
        # update work than the median server.
        sc = small(
            workload=WorkloadSpec(kind="poisson", rate=2.0, duration=10.0),
            updates=UpdateSpec(rate=200.0, zipf_s=1.5, hotspots=4, jitter=0.0),
        )
        dep = build_deployment(sc)
        from repro.scenarios.runner import _generate_updates

        for t, pos in _generate_updates(sc, 10.0):
            dep.apply_update(t, at=pos)
        tasks = sorted(s.tasks_run for s in dep.servers.values())
        assert tasks[-1] > 2 * max(1, tasks[len(tasks) // 2])

    def test_repartition_event(self):
        sc = small(
            events=(EventSpec(at=2.0, action="repartition", value=4),),
            workload=WorkloadSpec(kind="poisson", rate=8.0, duration=12.0),
        )
        assert sc.needs_stores
        res = run_scenario_spec(sc)
        assert res.p_store_end == 4.0  # walked online from 3 to 4

    def test_control_loop_reacts(self):
        sc = small(
            n_servers=10,
            workload=WorkloadSpec(
                kind="flash-crowd", rate=30.0, duration=30.0, surge_factor=6.0
            ),
            control=ControlSpec(
                policies=("elasticity",), slo_p99=0.15, interval=2.0
            ),
        )
        res = run_scenario_spec(sc)
        assert res.control_actions > 0
        assert res.servers_end > res.servers_start

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_scenario_spec(small(), engine="warp")


class TestMatrix:
    def test_builtin_battery_shape(self):
        scens = builtin_scenarios(n_servers=12, duration=10.0)
        assert len(scens) >= 6
        names = [s.name for s in scens]
        assert len(set(names)) == len(names)
        # the composition scenario exists and stacks surge onto failure
        cross = next(s for s in scens if s.name == "crowd-x-rack")
        assert cross.workload.kind == "flash-crowd"
        assert any(e.action == "fail-rack" for e in cross.events)
        assert cross.control is not None

    def test_matrix_runs_and_renders(self):
        scens = builtin_scenarios(n_servers=8, duration=6.0, p=3)
        res = run_matrix(scens)
        assert len(res.results) == len(scens)
        table = res.table()
        for s in scens:
            assert s.name in table
        header = table.splitlines()[0]
        for col in ("yield%", "p99_ms", "plan_p"):
            assert col in header
        csv = res.to_csv()
        assert csv.count("\n") == len(scens) + 1

    def test_matrix_progress_callback(self):
        seen = []
        scens = builtin_scenarios(n_servers=8, duration=4.0, p=3)[:2]
        run_matrix(scens, progress=lambda s, r: seen.append(s.name))
        assert seen == [s.name for s in scens]


class TestMatrixCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["matrix", "--list"]) == 0
        out = capsys.readouterr().out
        assert "flash-crowd" in out and "crowd-x-rack" in out

    def test_small_sweep(self, capsys, tmp_path):
        from repro.cli import main

        csv_path = tmp_path / "matrix.csv"
        code = main(
            [
                "matrix",
                "--servers", "8",
                "-p", "3",
                "--duration", "5",
                "--scenario", "steady",
                "--scenario", "flash-crowd",
                "--csv", str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "steady" in out and "flash-crowd" in out
        assert csv_path.exists()
        assert csv_path.read_text().startswith("scenario,")

    def test_unknown_scenario_errors(self, capsys):
        from repro.cli import main

        assert main(["matrix", "--scenario", "nope"]) == 2


class TestExactEventTime:
    """The action queue: stimuli land between two specific queries."""

    def test_event_lands_between_exact_queries(self):
        # Replay trace so the arrival order is explicit: the fail at t=2.5
        # must be visible to the query at t=3.0, with no batch-boundary lag.
        trace = (1.0, 2.0, 3.0, 4.0, 5.0)
        sc = small(
            workload=WorkloadSpec(kind="replay", trace=trace),
            events=(EventSpec(at=2.5, action="fail", target="node-1"),),
        )
        res = run_scenario_spec(sc, engine="batched")

        # manual reference interleaving -- the ground truth
        dep = build_deployment(sc)
        for t in (1.0, 2.0):
            dep.run_query(t, sc.p)
        dep.fail_node("node-1", 2.5)
        for t in (3.0, 4.0, 5.0):
            dep.run_query(t, sc.p)
        got = run_scenario_spec(sc, engine="reference")
        assert res.mean_delay == got.mean_delay
        ref_delays = [r.delay for r in dep.log.records]
        run = run_scenario_spec(sc, engine="batched")
        assert run.completed == len(ref_delays)
        assert run.mean_delay == sum(ref_delays) / len(ref_delays)

    def test_engines_agree_with_exact_time_updates(self):
        sc = small(
            updates=UpdateSpec(rate=40.0, zipf_s=1.3, hotspots=6),
            events=(EventSpec(at=4.0, action="fail", count=1),
                    EventSpec(at=7.0, action="recover")),
        )
        r_ref = run_scenario_spec(sc, engine="reference")
        r_fast = run_scenario_spec(sc, engine="batched")
        assert r_ref.updates_applied == r_fast.updates_applied > 100
        assert r_ref.mean_delay == r_fast.mean_delay
        assert r_ref.p99_delay == r_fast.p99_delay
        assert r_ref.offered == r_fast.offered

    def test_set_pq_after_inflight_repartition_completes(self):
        # Regression: the set-pq action pumps the simulation, which can
        # complete an in-flight repartition (p 3 -> 2 downloads finishing
        # inside the action).  The batched engine's stored-level mirror
        # must refresh, or pq=2 would be rejected against a stale p=3.
        sc = small(
            workload=WorkloadSpec(kind="poisson", rate=8.0, duration=14.0),
            events=(
                EventSpec(at=2.0, action="repartition", value=2),
                EventSpec(at=9.0, action="set-pq", value=2),
            ),
            store_objects=True,
        )
        r_fast = run_scenario_spec(sc, engine="batched")
        r_ref = run_scenario_spec(sc, engine="reference")
        assert r_fast.p_store_end == r_ref.p_store_end == 2.0
        assert r_fast.pq_end == r_ref.pq_end == 2
        assert r_fast.mean_delay == r_ref.mean_delay
