"""Tests for storage nodes and the dedup matching rules (repro.core.node)."""

import random

import pytest

from repro.core import Ring, RingNode, generate_objects, replication_range
from repro.core.ids import Arc, frac
from repro.core.node import RoarNode, SubQuery, dedup_matches
from repro.core.objects import DataObject


def make_subqueries(pq, start=0.0, query_id=1):
    return [
        SubQuery.normal(query_id, frac(start + i / pq), pq, index=i)
        for i in range(pq)
    ]


class TestSubQuery:
    def test_normal_widths(self):
        sub = SubQuery.normal(1, 0.5, 4)
        assert sub.dedup_width == pytest.approx(0.25)
        assert sub.local_width == pytest.approx(0.25)
        assert sub.dedup_origin == sub.dest

    def test_work_fraction(self):
        sub = SubQuery.normal(1, 0.0, 8)
        assert sub.work_fraction() == pytest.approx(0.125)


class TestDedupMatching:
    def test_object_just_before_query_matches(self):
        sub = SubQuery.normal(1, 0.5, 4)
        assert dedup_matches(0.4, sub)

    def test_object_at_query_point_does_not_match(self):
        # Strict inequality id_object < id_query (eq 4.1).
        sub = SubQuery.normal(1, 0.5, 4)
        assert not dedup_matches(0.5, sub)

    def test_object_exactly_window_behind_matches(self):
        # id_object + 1/pq >= id_query is inclusive (eq 4.2).
        sub = SubQuery.normal(1, 0.5, 4)
        assert dedup_matches(0.25, sub)

    def test_object_too_far_behind_does_not_match(self):
        sub = SubQuery.normal(1, 0.5, 4)
        assert not dedup_matches(0.2, sub)

    def test_wrapping_window(self):
        sub = SubQuery.normal(1, 0.05, 4)
        assert dedup_matches(0.9, sub)
        assert not dedup_matches(0.5, sub)

    @pytest.mark.parametrize("pq", [1, 2, 3, 5, 8, 13])
    def test_exactly_one_subquery_matches_each_object(self, pq, rng):
        """The coverage invariant: pq equally spaced sub-queries partition
        the object space exactly (Section 4.2)."""
        objects = [rng.random() for _ in range(500)]
        subs = make_subqueries(pq, start=rng.random())
        for oid in objects:
            hits = sum(1 for s in subs if dedup_matches(oid, s))
            assert hits == 1, f"object {oid} matched {hits} times with pq={pq}"

    def test_pq_larger_than_p_still_partitions(self, rng):
        subs = make_subqueries(7, start=0.123)
        for oid in (rng.random() for _ in range(300)):
            assert sum(1 for s in subs if dedup_matches(oid, s)) == 1


class TestRoarNodeStorage:
    def make_node(self, start=0.0, length_hint=0.25):
        ring_node = RingNode("n0", start)
        return RoarNode(ring_node)

    def test_should_store_intersecting(self):
        node = self.make_node()
        node_range = Arc(0.0, 0.25)
        obj = DataObject(oid=0.1)
        assert node.should_store(obj, p=4, node_range=node_range)

    def test_should_store_overhanging_from_before(self):
        # Object at 0.9 with arc [0.9, 1.15) reaches into [0.0, 0.25).
        node = self.make_node()
        obj = DataObject(oid=0.9)
        assert node.should_store(obj, p=4, node_range=Arc(0.0, 0.25))

    def test_should_not_store_far_object(self):
        node = self.make_node()
        obj = DataObject(oid=0.5)
        assert not node.should_store(obj, p=4, node_range=Arc(0.0, 0.25))

    def test_load_objects_counts_and_bytes(self, rng):
        node = self.make_node()
        objs = generate_objects(200, rng, size=100)
        loaded = node.load_objects(objs, p=4, node_range=Arc(0.0, 0.25))
        assert loaded == node.stored_count()
        assert node.bytes_downloaded == loaded * 100
        # Roughly (1/p + range) of objects: (0.25 + 0.25) * 200 = ~100.
        assert 60 <= loaded <= 140

    def test_load_is_idempotent(self, rng):
        node = self.make_node()
        objs = generate_objects(100, rng)
        first = node.load_objects(objs, p=4, node_range=Arc(0.0, 0.25))
        second = node.load_objects(objs, p=4, node_range=Arc(0.0, 0.25))
        assert second == 0
        assert node.stored_count() == first

    def test_drop_outside_after_p_increase(self, rng):
        node = self.make_node()
        objs = generate_objects(300, rng)
        node.load_objects(objs, p=2, node_range=Arc(0.0, 0.25))
        before = node.stored_count()
        dropped = node.drop_outside(p=4, node_range=Arc(0.0, 0.25))
        assert dropped > 0
        assert node.stored_count() == before - dropped
        # Everything left genuinely belongs at p=4.
        for obj in node.store:
            assert replication_range(obj, 4).intersects(Arc(0.0, 0.25))


class TestRoarNodeExecution:
    def test_execute_returns_only_dedup_window(self, rng):
        ring_node = RingNode("n0", 0.5)
        node = RoarNode(ring_node)
        objs = generate_objects(400, rng)
        node.load_objects(objs, p=4, node_range=Arc(0.5, 0.25))
        sub = SubQuery.normal(1, 0.6, 4)
        got = node.execute(sub)
        for obj in got:
            assert dedup_matches(obj.oid, sub)

    def test_execute_with_predicate(self, rng):
        ring_node = RingNode("n0", 0.0)
        node = RoarNode(ring_node)
        objs = [DataObject(oid=0.1 + i * 0.001, key=f"k{i}") for i in range(50)]
        node.load_objects(objs, p=2, node_range=Arc(0.0, 0.5))
        sub = SubQuery.normal(1, 0.3, 2)
        got = node.execute(sub, predicate=lambda o: o.key.endswith("0"))
        assert got
        assert all(o.key.endswith("0") for o in got)

    def test_matching_work_counts(self, rng):
        ring_node = RingNode("n0", 0.0)
        node = RoarNode(ring_node)
        objs = generate_objects(200, rng)
        node.load_objects(objs, p=2, node_range=Arc(0.0, 0.5))
        sub = SubQuery.normal(1, 0.25, 2)
        assert node.matching_work(sub) == len(node.execute(sub))


class TestFullSystemCoverage:
    """End-to-end invariant: nodes + storage rule + query rule = exact cover."""

    @pytest.mark.parametrize("p,pq", [(4, 4), (4, 6), (3, 7), (5, 5)])
    def test_every_object_matched_exactly_once(self, p, pq, rng):
        ring = Ring.proportional([rng.uniform(0.5, 2.0) for _ in range(12)])
        objects = generate_objects(300, rng)
        stores = {}
        for ring_node in ring:
            store = RoarNode(ring_node)
            store.load_objects(objects, p, ring.range_of(ring_node))
            stores[ring_node.name] = store

        start = rng.random()
        matched: dict[str, int] = {}
        for i in range(pq):
            dest = frac(start + i / pq)
            sub = SubQuery.normal(1, dest, pq, index=i)
            owner = ring.node_in_charge(dest)
            for obj in stores[owner.name].execute(sub):
                matched[obj.key] = matched.get(obj.key, 0) + 1

        assert len(matched) == len(objects), "some objects were never matched"
        assert all(v == 1 for v in matched.values()), "duplicate matches"
