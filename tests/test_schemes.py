"""Tests for the PPS matching schemes (repro.pps.schemes)."""

import random

import pytest

from repro.pps.schemes import (
    BloomKeywordScheme,
    DictionaryKeywordScheme,
    EqualityScheme,
    InequalityScheme,
    Partition,
    RangeScheme,
    RankedScheme,
    dyadic_partitions,
    exponential_reference_points,
    linear_reference_points,
)

WORDS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]


class TestEquality:
    def test_match_equal(self, key):
        s = EqualityScheme(key)
        m = s.encrypt_metadata("hello world")
        assert s.match(m, s.encrypt_query("hello world"))

    def test_no_match_different(self, key):
        s = EqualityScheme(key)
        m = s.encrypt_metadata("hello")
        assert not s.match(m, s.encrypt_query("goodbye"))

    def test_metadata_unlinkable(self, key):
        """Same plaintext encrypts differently (nonce)."""
        s = EqualityScheme(key)
        m1 = s.encrypt_metadata("same")
        m2 = s.encrypt_metadata("same")
        assert m1.payload != m2.payload

    def test_queries_deterministic(self, key):
        """Equal queries are identical -- the covering relation (Def 7)."""
        s = EqualityScheme(key)
        assert s.encrypt_query("q").payload == s.encrypt_query("q").payload

    def test_cover(self, key):
        s = EqualityScheme(key)
        q1, q2 = s.encrypt_query("a"), s.encrypt_query("a")
        q3 = s.encrypt_query("b")
        assert s.cover(q1, q2)
        assert not s.cover(q1, q3)

    def test_wrong_key_never_matches(self, key):
        from repro.pps.crypto import keygen_deterministic

        s1 = EqualityScheme(key)
        s2 = EqualityScheme(keygen_deterministic("other"))
        m = s1.encrypt_metadata("x")
        assert not s1.match(m, s2.encrypt_query("x"))

    def test_scheme_mismatch_rejected(self, key):
        s = EqualityScheme(key)
        b = BloomKeywordScheme(key, max_words=4)
        m = b.encrypt_metadata(["x"])
        with pytest.raises(ValueError):
            s.match(m, s.encrypt_query("x"))

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            EqualityScheme(b"")


class TestBloomKeyword:
    @pytest.fixture
    def scheme(self, key):
        return BloomKeywordScheme(key, max_words=8, fp_rate=1e-5)

    def test_stored_words_match(self, scheme):
        m = scheme.encrypt_metadata(WORDS[:4])
        for w in WORDS[:4]:
            assert scheme.match(m, scheme.encrypt_query(w))

    def test_absent_words_do_not_match(self, scheme):
        m = scheme.encrypt_metadata(WORDS[:4])
        for w in WORDS[4:]:
            assert not scheme.match(m, scheme.encrypt_query(w))

    def test_case_insensitive(self, scheme):
        m = scheme.encrypt_metadata(["Alpha"])
        assert scheme.match(m, scheme.encrypt_query("alpha"))

    def test_too_many_words_rejected(self, scheme):
        with pytest.raises(ValueError):
            scheme.encrypt_metadata([f"w{i}" for i in range(9)])

    def test_filters_have_constant_population(self, key):
        """Goh's padding defence: set-bit counts don't leak word counts."""
        from repro.pps.bloom import BloomFilter

        scheme = BloomKeywordScheme(key, max_words=8, rng=random.Random(0))
        m_small = scheme.encrypt_metadata(["one"])
        m_large = scheme.encrypt_metadata(WORDS[:8])
        bf_small = BloomFilter.from_bytes(m_small.payload[1], scheme.filter_bits)
        bf_large = BloomFilter.from_bytes(m_large.payload[1], scheme.filter_bits)
        # Padded to the same target population (up to collision noise).
        assert abs(bf_small.count_set() - bf_large.count_set()) < 25

    def test_nonce_randomises_filters(self, scheme):
        m1 = scheme.encrypt_metadata(["alpha"])
        m2 = scheme.encrypt_metadata(["alpha"])
        assert m1.payload[0] != m2.payload[0]
        assert m1.payload[1] != m2.payload[1]

    def test_no_false_negatives_bulk(self, key, rng):
        scheme = BloomKeywordScheme(key, max_words=10)
        for _ in range(30):
            words = [f"word{rng.randrange(1000)}" for _ in range(5)]
            m = scheme.encrypt_metadata(words)
            for w in words:
                assert scheme.match(m, scheme.encrypt_query(w))

    def test_false_positive_rate_low(self, key, rng):
        scheme = BloomKeywordScheme(key, max_words=10, fp_rate=1e-5)
        m = scheme.encrypt_metadata(["stored1", "stored2"])
        hits = sum(
            1
            for i in range(2000)
            if scheme.match(m, scheme.encrypt_query(f"absent{i}"))
        )
        assert hits <= 1  # 2000 * 1e-5 = 0.02 expected


class TestDictionaryKeyword:
    @pytest.fixture
    def scheme(self, key):
        return DictionaryKeywordScheme(key, WORDS)

    def test_match_stored(self, scheme):
        m = scheme.encrypt_metadata(["alpha", "gamma"])
        assert scheme.match(m, scheme.encrypt_query("alpha"))
        assert scheme.match(m, scheme.encrypt_query("gamma"))

    def test_no_false_positives_ever(self, scheme):
        """Unlike Bloom, the dictionary scheme is exact."""
        m = scheme.encrypt_metadata(["alpha", "gamma"])
        for w in WORDS:
            expected = w in ("alpha", "gamma")
            assert scheme.match(m, scheme.encrypt_query(w)) == expected

    def test_empty_document(self, scheme):
        m = scheme.encrypt_metadata([])
        for w in WORDS:
            assert not scheme.match(m, scheme.encrypt_query(w))

    def test_unknown_word_raises(self, scheme):
        with pytest.raises(KeyError):
            scheme.encrypt_query("nonexistent")
        with pytest.raises(KeyError):
            scheme.encrypt_metadata(["nonexistent"])

    def test_metadata_blinded_per_nonce(self, scheme):
        m1 = scheme.encrypt_metadata(["alpha"])
        m2 = scheme.encrypt_metadata(["alpha"])
        assert m1.payload[1] != m2.payload[1]

    def test_metadata_size_is_dictionary_bits(self, scheme):
        m = scheme.encrypt_metadata(["alpha"])
        assert len(m.payload[1]) == (len(WORDS) + 7) // 8

    def test_duplicate_dictionary_rejected(self, key):
        with pytest.raises(ValueError):
            DictionaryKeywordScheme(key, ["a", "a"])

    def test_match_costs_single_prf(self, scheme):
        m = scheme.encrypt_metadata(["alpha"])
        q = scheme.encrypt_query("alpha")
        before = scheme.hash_invocations
        scheme.match(m, q)
        assert scheme.hash_invocations == before + 1


class TestInequality:
    @pytest.fixture
    def scheme(self, key):
        return InequalityScheme(key, linear_reference_points(0, 1000, 101))

    def test_greater_than(self, scheme):
        m = scheme.encrypt_metadata(700)
        assert scheme.match(m, scheme.encrypt_query((">", 500)))
        assert not scheme.match(m, scheme.encrypt_query((">", 800)))

    def test_less_than(self, scheme):
        m = scheme.encrypt_metadata(300)
        assert scheme.match(m, scheme.encrypt_query(("<", 500)))
        assert not scheme.match(m, scheme.encrypt_query(("<", 200)))

    def test_exact_at_reference_point(self, scheme):
        """Queries landing exactly on reference points are exact."""
        for value, op, threshold, expected in [
            (500, ">", 400, True),
            (500, ">", 500, False),  # strict
            (500, "<", 600, True),
        ]:
            m = scheme.encrypt_metadata(value)
            q = scheme.encrypt_query((op, threshold))
            assert scheme.match(m, q) == expected

    def test_query_approximated_to_nearest(self, scheme):
        # 503 is nearest to the 500 reference point.
        assert scheme.approximate_query(">", 503) == ">500.0"

    def test_exponential_points_density(self):
        points = exponential_reference_points(1e9)
        assert len(points) < 120  # paper: ~100 points for 4-byte ints
        assert points[0] == 1.0
        assert points[-1] == 1e9

    def test_exponential_relative_precision(self):
        points = exponential_reference_points(1e6)
        # Precision scales with magnitude: the gap never exceeds the lower
        # point itself (worst case at decade starts: 1->2, 10->20, ...).
        for a, b in zip(points, points[1:]):
            assert (b - a) <= a + 1e-9

    def test_invalid_op(self, scheme):
        with pytest.raises(ValueError):
            scheme.encrypt_query(("=", 5))

    def test_bloom_base_variant(self, key):
        scheme = InequalityScheme(
            key, linear_reference_points(0, 100, 11), base="bloom"
        )
        m = scheme.encrypt_metadata(55)
        assert scheme.match(m, scheme.encrypt_query((">", 30)))
        assert not scheme.match(m, scheme.encrypt_query(("<", 30)))


class TestRange:
    @pytest.fixture
    def scheme(self, key):
        return RangeScheme(key, dyadic_partitions(0, 1024, levels=7))

    def test_match_inside(self, scheme):
        m = scheme.encrypt_metadata(300)
        assert scheme.match(m, scheme.encrypt_query((256, 512)))

    def test_no_match_outside(self, scheme):
        m = scheme.encrypt_metadata(300)
        assert not scheme.match(m, scheme.encrypt_query((512, 1024)))

    def test_dyadic_queries_exact(self, scheme, rng):
        """Power-of-two aligned ranges approximate exactly."""
        for _ in range(20):
            level = rng.randrange(3, 7)
            width = 1024 // (2**level)
            lo = rng.randrange(0, 1024 - width + 1, width)
            value = rng.uniform(lo, lo + width - 1e-9)
            m = scheme.encrypt_metadata(value)
            assert scheme.match(m, scheme.encrypt_query((lo, lo + width)))

    def test_approximation_error_bounded(self, scheme, rng):
        for _ in range(50):
            lo = rng.uniform(0, 900)
            hi = lo + rng.uniform(10, 100)
            err = scheme.approximation_error(lo, hi)
            assert err <= (hi - lo) * 1.2 + 16  # coarse but bounded

    def test_offset_partitions_help(self, key):
        plain = RangeScheme(key, dyadic_partitions(0, 1024, 6, with_offsets=False))
        offset = RangeScheme(key, dyadic_partitions(0, 1024, 6, with_offsets=True))
        # A query straddling a plain-partition boundary.
        err_plain = plain.approximation_error(224, 288)
        err_offset = offset.approximation_error(224, 288)
        assert err_offset <= err_plain

    def test_partition_subset_of(self):
        part = Partition(0, 100, width=10)
        assert part.subset_of(0) == 0
        assert part.subset_of(95) == 9
        with pytest.raises(ValueError):
            part.subset_of(101)

    def test_partition_bounds(self):
        part = Partition(0, 100, width=30, offset=15)
        a, b = part.bounds_of(0)
        assert a == 0.0  # clipped to the domain
        assert b == 15.0


class TestRanked:
    @pytest.fixture
    def scheme(self, key):
        return RankedScheme(key, thresholds=(1, 5, 10), max_keywords=20)

    def test_top_rank_matches(self, scheme):
        kws = [f"kw{i}" for i in range(15)]
        m = scheme.encrypt_metadata(kws)
        assert scheme.match(m, scheme.encrypt_query(("kw0", 1)))
        assert scheme.match(m, scheme.encrypt_query(("kw3", 5)))

    def test_low_rank_does_not_match_tight_threshold(self, scheme):
        kws = [f"kw{i}" for i in range(15)]
        m = scheme.encrypt_metadata(kws)
        assert not scheme.match(m, scheme.encrypt_query(("kw7", 5)))
        assert scheme.match(m, scheme.encrypt_query(("kw7", 10)))

    def test_plain_keyword_query_ignores_rank(self, scheme):
        kws = [f"kw{i}" for i in range(15)]
        m = scheme.encrypt_metadata(kws)
        assert scheme.match(m, scheme.encrypt_query("kw14"))

    def test_paper_word_count(self, key):
        """Default thresholds add 1+5+10+25 = 41 rank words (Section 5.5.4)."""
        scheme = RankedScheme(key, max_keywords=50)
        words = scheme.rank_words([f"k{i}" for i in range(50)])
        assert len(words) == 50 + 41

    def test_unknown_threshold_rejected(self, scheme):
        with pytest.raises(ValueError):
            scheme.encrypt_query(("kw0", 7))

    def test_too_many_keywords(self, scheme):
        with pytest.raises(ValueError):
            scheme.encrypt_metadata([f"k{i}" for i in range(21)])
