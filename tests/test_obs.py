"""Tests for the observability layer (:mod:`repro.obs`).

Four contracts under test:

* **profiler** -- phase attribution is exclusive (nested frames subtract
  their time from the parent) and sums to at most the measured wall; a
  profiled run is *bit-identical* to an unprofiled one (BatchResult
  arrays, telemetry columns, rng stream states) on both engines and all
  exact kernels; profiler-off adds zero per-query python (no
  ``PhaseProfiler`` is ever constructed); profiler-on costs <3%
  end-to-end at 1k servers (perf-marked);
* **audit** -- every controller tick leaves one decision record carrying
  the window inputs and the exact arrival-stream index it landed at; the
  records survive the archive round trip and ``repro explain``
  cross-checks them against the archived delay columns;
* **manifests** -- archives, recordings, and bench snapshots carry
  provenance (git revision, config hash, host); the bench ``--check``
  gate warns (never fails) on host mismatch and attributes speedup drift
  to a phase;
* **CLI** -- ``repro profile`` / ``repro explain`` /
  ``repro archive info --require-manifest`` exit codes and output.
"""

import json
import math
from bisect import bisect_right

import pytest

np = pytest.importorskip("numpy")

from repro._rng import capture_streams
from repro.cluster import Deployment, DeploymentConfig, hen_testbed
from repro.kernels.registry import kernel_available
from repro.obs.audit import (
    DecisionLog,
    DecisionRecord,
    decisions_from_archive,
    explain_archive,
    render_decisions,
)
from repro.obs.manifest import build_manifest, config_hash, git_revision
from repro.obs.profiler import PHASES, PhaseProfiler, resolve_profile
from repro.sim import PoissonArrivals
from repro.sim.fastpath import Action, run_queries_reference
from repro.telemetry.archive import read_archive, write_archive_columns


def _build(n=16, seed=1, p=4):
    return Deployment(
        DeploymentConfig(
            models=hen_testbed(n),
            p=p,
            dataset_size=200_000.0,
            seed=seed,
            charge_scheduling=False,
        )
    )


def _kernels_under_test():
    """exact_numpy always; the compiled kernel when the toolchain exists."""
    names = ["exact_numpy"]
    if kernel_available("compiled"):
        names.append("compiled")
    return names


# ---------------------------------------------------------------------------
# PhaseProfiler unit behaviour
# ---------------------------------------------------------------------------


class TestPhaseProfiler:
    def test_nested_frames_are_exclusive(self):
        prof = PhaseProfiler()
        prof.begin("flush")
        prof.begin("listeners")
        inner = prof.end()
        outer = prof.end()
        assert outer >= inner >= 0
        # the child's inclusive time was subtracted from the parent
        assert prof.totals_ns["flush"] + prof.totals_ns["listeners"] <= outer
        assert prof.counts == {"flush": 1, "listeners": 1}

    def test_add_ns_inside_open_frame_not_double_counted(self):
        prof = PhaseProfiler()
        prof.begin("flush")
        prof.add_ns("sweep_commit", 5_000)
        prof.end()
        assert prof.totals_ns["sweep_commit"] == 5_000
        # the external 5us was charged out of the flush frame too
        assert prof.totals_ns["flush"] + 5_000 >= 0
        total = prof.total_ns()
        assert total == prof.totals_ns["flush"] + 5_000

    def test_summary_and_per_query(self):
        prof = PhaseProfiler()
        prof.add_ns("sweep_commit", 4_000)
        prof.add_ns("flush", 1_000)
        prof.add_wall(10e-6)  # 10_000 ns wall
        s = prof.summary()
        assert s["wall_ns"] == 10_000
        assert s["phases"]["sweep_commit"] == {"ns": 4_000, "calls": 1}
        assert s["coverage"] == pytest.approx(0.5)
        assert prof.phase_us_per_query(2) == {
            "flush": 0.5,
            "sweep_commit": 2.0,
        }

    def test_render_table_lists_phases_and_wall(self):
        prof = PhaseProfiler()
        prof.add_ns("sweep_commit", 4_000)
        prof.add_wall(1e-5)
        table = prof.render_table(10)
        assert "sweep_commit" in table
        assert "other" in table and "wall" in table
        assert "covered" in table

    def test_chunk_columns_and_chrome_trace(self):
        prof = PhaseProfiler()
        t0 = prof.epoch_ns
        prof.record_chunk(0, 100, t0 + 1_000, 10_000, 20_000, 5_000)
        prof.record_chunk(100, 50, t0 + 50_000, 1_000, 2_000, 500)
        cols = prof.columns()
        assert cols["prof_chunk_start"].tolist() == [0, 100]
        assert cols["prof_chunk_nq"].tolist() == [100, 50]
        assert cols["prof_chunk_kernel_ns"].tolist() == [20_000, 2_000]
        trace = prof.chrome_trace()
        engine = [e for e in trace["traceEvents"] if e["cat"] == "engine"]
        # 3 phase spans per chunk, laid out back to back
        assert len(engine) == 6
        first = [e for e in engine if e["args"]["chunk"] == 0]
        assert [e["name"] for e in first] == [
            "arrival_draw", "sweep_commit", "flush",
        ]
        assert first[1]["ts"] == pytest.approx(first[0]["ts"] + first[0]["dur"])
        # timestamps are relative to the profiler epoch, in microseconds
        assert first[0]["ts"] == pytest.approx(1.0)

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        prof = PhaseProfiler()
        prof.record_chunk(0, 10, prof.epoch_ns, 100, 200, 50)
        path = tmp_path / "trace.json"
        prof.write_chrome_trace(path)
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert loaded["traceEvents"]

    def test_resolve_profile_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert resolve_profile(None) is None
        assert resolve_profile(False) is None
        assert isinstance(resolve_profile(True), PhaseProfiler)
        existing = PhaseProfiler()
        assert resolve_profile(existing) is existing
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert isinstance(resolve_profile(None), PhaseProfiler)
        # explicit kwarg beats the environment
        assert resolve_profile(False) is None
        monkeypatch.setenv("REPRO_PROFILE", "off")
        assert resolve_profile(None) is None

    def test_phase_names_cover_engine_sites(self):
        # the documented phase vocabulary is the engine's contract; a
        # rename must update both
        assert set(PHASES) == {
            "arrival_draw", "sweep_commit", "commit", "flush", "listeners",
            "actions", "delegate", "materialise", "reference",
        }


# ---------------------------------------------------------------------------
# Bit-identity: profiling must not perturb results
# ---------------------------------------------------------------------------


def _result_state(dep, result):
    """Everything a profiled run must reproduce byte-for-byte."""
    return {
        "arrivals": result.arrivals.tobytes(),
        "latencies": result.latencies.tobytes(),
        "finishes": result.finishes.tobytes(),
        "query_ids": result.query_ids.tobytes(),
        "pqs": result.pqs.tobytes(),
        "completed": result.completed,
        "dropped": result.dropped,
        "fast_scheduled": result.fast_scheduled,
        "delegated": result.delegated,
        "chunk_sizes": list(result.chunk_sizes),
        "actions_applied": result.actions_applied,
        "log_arrival": dep.log.column("arrival").tobytes(),
        "log_finish": dep.log.column("finish").tobytes(),
        "bd_total": dep.breakdowns.column("total").tobytes(),
        "rng_streams": capture_streams(),
        "network_rng": dep.network.rng.getstate(),
    }


class TestProfiledBitIdentity:
    def _actions(self):
        # a mid-run action forces span cuts + the materialise/action phases
        return [Action(index=150, time=3.75, fn=lambda now: None, scope="none")]

    @pytest.mark.parametrize("kernel", _kernels_under_test())
    def test_batched_engine_identical(self, kernel):
        arrivals = PoissonArrivals(40.0, seed=7).times(300)

        dep_a = _build(seed=3)
        plain = dep_a.run_queries_fast(
            arrivals, 4, actions=self._actions(), kernel=kernel
        )
        state_plain = _result_state(dep_a, plain)
        assert plain.profile is None

        dep_b = _build(seed=3)
        prof = dep_b.run_queries_fast(
            arrivals, 4, actions=self._actions(), kernel=kernel, profile=True
        )
        state_prof = _result_state(dep_b, prof)
        assert prof.profile is not None
        assert prof.profile.totals_ns  # it measured something

        assert state_plain == state_prof

    def test_reference_engine_identical(self):
        arrivals = PoissonArrivals(40.0, seed=9).times(200)

        dep_a = _build(seed=5)
        plain = run_queries_reference(dep_a, arrivals, 4, actions=self._actions())
        state_plain = _result_state(dep_a, plain)

        dep_b = _build(seed=5)
        prof = run_queries_reference(
            dep_b, arrivals, 4, actions=self._actions(), profile=True
        )
        state_prof = _result_state(dep_b, prof)
        assert prof.profile is not None
        assert "reference" in prof.profile.totals_ns

        assert state_plain == state_prof

    def test_env_var_enables_profiling(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        dep = _build()
        result = dep.run_queries_fast([0.01 * i for i in range(50)], 4)
        assert result.profile is not None
        assert result.profile.coverage() > 0


# ---------------------------------------------------------------------------
# Overhead guards
# ---------------------------------------------------------------------------


class TestProfilerOverhead:
    def test_off_constructs_no_profiler(self, monkeypatch):
        """Profiler-off runs never even instantiate a PhaseProfiler.

        Same monkeypatch trick as the zero-per-query telemetry test: make
        construction explode, prove the engine's ``if prof is not None``
        guards keep the hot path profiler-free.
        """
        monkeypatch.delenv("REPRO_PROFILE", raising=False)

        def boom(self):  # pragma: no cover - the assert is the point
            raise AssertionError("PhaseProfiler built on an unprofiled run")

        monkeypatch.setattr(PhaseProfiler, "__init__", boom)
        dep = _build()
        arrivals = PoissonArrivals(60.0, seed=8).times(400)
        result = dep.run_queries_fast(arrivals, 4)
        assert result.completed == 400
        assert result.profile is None

        dep_ref = _build()
        ref = run_queries_reference(dep_ref, arrivals[:50], 4)
        assert ref.profile is None

    @pytest.mark.perf
    def test_on_costs_under_three_percent_at_1k_servers(self):
        """Profiler-on end-to-end cost stays <3% on the 1k-server sweep.

        Chunk-granular instrumentation (a handful of clock reads per
        ~4096-query chunk) is what keeps this cheap; a per-query
        instrumentation regression shows up here immediately.
        """
        arrivals = PoissonArrivals(1500.0, seed=4).times(30_000)

        def wall(profile):
            best = math.inf
            for _ in range(3):
                dep = Deployment(
                    DeploymentConfig(
                        models=hen_testbed(1000),
                        p=5,
                        dataset_size=5e6,
                        seed=2,
                        charge_scheduling=False,
                    )
                )
                res = dep.run_queries_fast(arrivals, 5, profile=profile)
                best = min(best, res.wall_seconds)
            return best

        plain = wall(False)
        profiled = wall(True)
        assert profiled <= plain * 1.03, (
            f"profiled {profiled:.3f}s vs plain {plain:.3f}s "
            f"({profiled / plain - 1:.1%} overhead)"
        )

    def test_phase_totals_cover_the_wall(self):
        """Acceptance: phase totals sum to within 5% of the measured wall."""
        dep = _build(n=32)
        arrivals = PoissonArrivals(200.0, seed=6).times(5_000)
        result = dep.run_queries_fast(arrivals, 4, profile=True)
        prof = result.profile
        assert prof.total_ns() <= prof.wall_ns  # exclusive, disjoint
        assert prof.coverage() > 0.95


# ---------------------------------------------------------------------------
# DecisionLog + archive round trip
# ---------------------------------------------------------------------------


class _FakeAction:
    def __init__(self, time, kind="add_server", value=7.0, detail="p99 over"):
        self.time = time
        self.controller = "slo-elasticity"
        self.kind = kind
        self.detail = detail
        self.value = value


class _FakeSnapshot:
    p50, p95, p99 = 0.1, 0.4, 0.9
    max_queue_depth = 3.0
    mean_utilisation = 0.75
    qps = 42.0
    n_queries = 120
    n_servers = 16


class TestDecisionLog:
    def test_records_actions_and_holds(self):
        log = DecisionLog()
        log.record_hold(5.0, 10, "slo-elasticity", "no-signal")
        log.record_action(_FakeAction(7.5), query_index=33,
                          snapshot=_FakeSnapshot())
        assert len(log) == 2
        records = log.records()
        assert [r.kind for r in records] == ["hold", "add_server"]
        hold, act = records
        assert hold.is_hold and not act.is_hold
        assert hold.value is None and math.isnan(hold.p99)
        assert act.query_index == 33
        assert act.p99 == pytest.approx(0.9)
        assert act.backlog == pytest.approx(3.0)
        assert act.n_queries == 120 and act.n_servers == 16
        assert act.detail == "p99 over"

    def test_string_interning_round_trips(self):
        log = DecisionLog()
        for i in range(5):
            log.record_hold(float(i), i, "ctrl-a" if i % 2 else "ctrl-b",
                            "steady")
        meta = log.meta(window=20.0)
        assert sorted(meta["controllers"]) == ["ctrl-a", "ctrl-b"]
        assert meta["kinds"] == ["hold"]
        assert meta["window"] == 20.0
        recs = log.records()
        assert [r.controller for r in recs] == [
            "ctrl-b", "ctrl-a", "ctrl-b", "ctrl-a", "ctrl-b",
        ]

    def test_archive_round_trip(self, tmp_path):
        log = DecisionLog()
        log.record_hold(5.0, 120, "slo-elasticity", "steady",
                        snapshot=_FakeSnapshot())
        log.record_action(_FakeAction(9.0), query_index=250,
                         snapshot=_FakeSnapshot())
        path = tmp_path / "dec.npz"
        write_archive_columns(path, log.columns(),
                              meta={"decisions": log.meta(window=20.0)})
        arch = read_archive(path)
        records = decisions_from_archive(arch)
        assert [dataclass_tuple(r) for r in records] == [
            dataclass_tuple(r) for r in log.records()
        ]
        assert records[1].query_index == 250
        assert records[1].value == pytest.approx(7.0)

    def test_archive_without_decisions_raises(self, tmp_path):
        path = tmp_path / "plain.npz"
        write_archive_columns(
            path, {"log_arrival": np.zeros(3)}, meta={}
        )
        with pytest.raises(ValueError, match="no decision columns"):
            decisions_from_archive(read_archive(path))

    def test_render_decisions_table(self):
        log = DecisionLog()
        log.record_action(_FakeAction(9.0), query_index=250,
                         snapshot=_FakeSnapshot())
        out = render_decisions(log.records())
        assert "slo-elasticity" in out and "add_server" in out
        assert "250" in out


def dataclass_tuple(rec: DecisionRecord):
    """NaN-tolerant comparison key for DecisionRecord."""
    def norm(v):
        if isinstance(v, float) and math.isnan(v):
            return "nan"
        return v

    return tuple(norm(getattr(rec, f)) for f in rec.__dataclass_fields__)


# ---------------------------------------------------------------------------
# Scenario integration: decisions land at exact indices, explain agrees
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def crowd_x_rack_archive(tmp_path_factory):
    """One archived crowd-x-rack run (the SLO loop acts during the surge)."""
    from repro.scenarios import builtin_scenarios
    from repro.scenarios.runner import execute_scenario

    sc = next(
        s for s in builtin_scenarios(n_servers=16, duration=120.0, rate=40.0)
        if s.name == "crowd-x-rack"
    )
    path = tmp_path_factory.mktemp("obs") / "crowd-x-rack.npz"
    execution = execute_scenario(sc, archive_path=path)
    return sc, execution, path


class TestScenarioDecisions:
    def test_decisions_land_at_exact_query_indices(self, crowd_x_rack_archive):
        sc, execution, _ = crowd_x_rack_archive
        log = execution.decisions
        assert log is not None and len(log) > 0
        records = log.records()
        arrivals = execution.batch.arrivals.tolist()
        interval = sc.control.interval
        for rec in records:
            # ticks fire on the control interval, at the index of the
            # first query arriving at or after the tick time
            assert rec.time == pytest.approx(
                round(rec.time / interval) * interval
            )
            assert rec.query_index == bisect_right(arrivals, rec.time)
        kinds = {r.kind for r in records}
        assert "hold" in kinds
        assert kinds - {"hold"}, "the SLO loop never acted during the surge"

    def test_archived_decisions_match_live_log(self, crowd_x_rack_archive):
        _, execution, path = crowd_x_rack_archive
        arch = read_archive(path)
        archived = decisions_from_archive(arch)
        live = execution.decisions.records()
        assert [dataclass_tuple(r) for r in archived] == [
            dataclass_tuple(r) for r in live
        ]

    def test_explain_cross_check_passes(self, crowd_x_rack_archive):
        _, _, path = crowd_x_rack_archive
        arch = read_archive(path)
        checks = explain_archive(arch)
        assert checks
        for rec, ok, p99, n_window in checks:
            assert ok, (
                f"decision at t={rec.time} q#{rec.query_index}: recorded "
                f"p99={rec.p99} but archive reconstructs {p99} "
                f"over {n_window} rows"
            )

    def test_decision_log_identical_across_engines(self):
        from repro.scenarios import builtin_scenarios
        from repro.scenarios.runner import execute_scenario

        sc = next(
            s for s in builtin_scenarios(n_servers=12, duration=60.0, rate=30.0)
            if s.name == "crowd-x-rack"
        )
        logs = {}
        for engine in ("batched", "reference"):
            execution = execute_scenario(sc, engine=engine)
            logs[engine] = [
                dataclass_tuple(r) for r in execution.decisions.records()
            ]
        assert logs["batched"] == logs["reference"]

    def test_control_runner_decisions_match_action_goldens(self):
        """ScenarioRunner's decision log agrees with Controller.actions."""
        from repro.control.runner import ScenarioConfig, ScenarioRunner

        runner = ScenarioRunner(
            ScenarioConfig(
                scenario="flash-crowd", n_servers=12, duration=120.0, seed=1
            )
        )
        report = runner.run()
        assert report.decisions is not None
        acted = [r for r in report.decisions.records() if not r.is_hold]
        golden = [a for c in runner.controllers for a in c.actions]
        golden.sort(key=lambda a: a.time)
        assert [(r.time, r.controller, r.kind, r.detail) for r in acted] == [
            (a.time, a.controller, a.kind, a.detail) for a in golden
        ]
        # every tick (hold or action) carries the inputs it saw
        for rec in report.decisions.records():
            if rec.kind != "hold" or rec.detail != "no-signal":
                assert not math.isnan(rec.p99)
            assert rec.query_index >= 0


# ---------------------------------------------------------------------------
# Manifests
# ---------------------------------------------------------------------------


class TestManifest:
    def test_build_manifest_fields(self):
        m = build_manifest(
            kernel="compiled",
            seeds={"deployment": 1, "arrivals": 4},
            config={"servers": 16},
        )
        assert m["schema"] == 1
        assert m["kernel"] == "compiled"
        assert m["seeds"] == {"deployment": 1, "arrivals": 4}
        assert m["config_hash"] == config_hash({"servers": 16})
        assert set(m) >= {"git_revision", "python", "machine", "host"}
        # JSON-safe by construction
        json.dumps(m)

    def test_config_hash_is_order_independent(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_git_revision_in_checkout(self):
        rev = git_revision()
        assert rev == "unknown" or all(
            c in "0123456789abcdef" for c in rev
        )

    def test_profile_totals_fold_in(self):
        prof = PhaseProfiler()
        prof.add_ns("sweep_commit", 1_000)
        m = build_manifest(profile=prof)
        assert m["profile_ns"] == {"sweep_commit": 1_000}
        assert "profile_ns" not in build_manifest(profile=PhaseProfiler())

    def test_identical_runs_produce_identical_manifests(self):
        kw = dict(kernel="exact_numpy", seeds={"s": 1}, config={"n": 4})
        assert build_manifest(**kw) == build_manifest(**kw)

    def test_recording_carries_manifest(self, tmp_path):
        from repro.scenarios import builtin_scenarios
        from repro.scenarios.runner import execute_scenario
        from repro.traces.record import read_recording

        sc = next(
            s for s in builtin_scenarios(n_servers=8, duration=20.0, rate=20.0)
            if s.name == "steady"
        )
        path = tmp_path / "steady.rec.npz"
        execute_scenario(sc, record_path=path)
        rec = read_recording(path)
        manifest = rec.meta["manifest"]
        assert manifest["git_revision"] == git_revision()
        assert manifest["kernel"] == "exact_numpy"
        assert manifest["config_hash"]

    def test_scenario_archive_carries_manifest(self, crowd_x_rack_archive):
        _, _, path = crowd_x_rack_archive
        arch = read_archive(path)
        manifest = arch.meta["manifest"]
        assert manifest["git_revision"] == git_revision()
        assert "host" in manifest


# ---------------------------------------------------------------------------
# Bench provenance + phase attribution
# ---------------------------------------------------------------------------


def _bench_snapshot(speedup, phases=None, host="alpha"):
    sweep = {
        "servers": 200,
        "queries": 1000,
        "fast_us_per_query": 10.0,
        "ref_us_per_query": 10.0 * speedup,
        "speedup_vs_reference": speedup,
        "identical_sample": True,
        "chunks": 1,
        "chunk_size_histogram": {"<=1024": 1},
    }
    if phases is not None:
        sweep["phases"] = phases
    return {
        "schema": 1,
        "revision": "deadbee",
        "profile": "full",
        "python": "3.x",
        "machine": "x86_64",
        "host": host,
        "manifest": {"schema": 1, "host": host, "machine": "x86_64"},
        "sweeps": {"a": sweep},
    }


class TestBenchProvenance:
    def test_sweep_carries_phase_columns(self):
        from repro.bench import SweepSpec, run_sweep

        tiny = SweepSpec("tiny", servers=10, queries=200, rate=30.0, pq=4,
                         ref_queries=60)
        s = run_sweep(tiny)
        assert s["phases"], "profiled sub-run produced no phase columns"
        assert set(s["phases"]) <= set(PHASES)
        assert all(v >= 0 for v in s["phases"].values())
        assert 0.0 < s["profile_coverage"] <= 1.0

    def test_collect_smoke_carries_manifest(self):
        from repro.bench import collect

        snap = collect("smoke")
        assert snap["host"]
        assert snap["manifest"]["git_revision"] == git_revision()
        assert snap["manifest"]["bench_profile"] == "smoke"
        for sweep in snap["sweeps"].values():
            assert "phases" in sweep

    def test_host_mismatch_warns_never_gates(self):
        from repro.bench import baseline_warnings, check_against_baseline

        cur = _bench_snapshot(10.0, host="runner-1")
        base = _bench_snapshot(10.0, host="runner-2")
        warnings = baseline_warnings(cur, base)
        assert any("host mismatch" in w for w in warnings)
        assert check_against_baseline(cur, base) == []
        assert baseline_warnings(cur, cur) == []

    def test_machine_mismatch_warns(self):
        from repro.bench import baseline_warnings

        cur = _bench_snapshot(10.0)
        base = _bench_snapshot(10.0)
        base["manifest"]["machine"] = base["machine"] = "aarch64"
        assert any("machine mismatch" in w for w in baseline_warnings(cur, base))

    def test_regression_names_the_grown_phase(self):
        from repro.bench import check_against_baseline

        base = _bench_snapshot(
            20.0, phases={"sweep_commit": 5.0, "flush": 5.0}
        )
        cur = _bench_snapshot(
            10.0, phases={"sweep_commit": 15.0, "flush": 5.0}
        )
        problems = check_against_baseline(cur, base)
        assert problems
        assert any("phase attribution: sweep_commit" in p for p in problems)

    def test_no_attribution_without_phase_columns(self):
        from repro.bench import check_against_baseline

        base = _bench_snapshot(20.0)
        cur = _bench_snapshot(10.0)
        problems = check_against_baseline(cur, base)
        assert problems
        assert all("phase attribution" not in p for p in problems)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestObsCLI:
    def test_profile_prints_phase_table(self, capsys, tmp_path):
        from repro.cli import main

        trace = tmp_path / "trace.json"
        summary = tmp_path / "profile.json"
        rc = main([
            "profile", "--servers", "16", "--queries", "500", "--rate",
            "60", "--pq", "4", "--chrome-trace", str(trace),
            "--json", str(summary),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sweep_commit" in out and "wall" in out
        loaded = json.loads(trace.read_text())
        assert loaded["traceEvents"]
        payload = json.loads(summary.read_text())
        assert payload["manifest"]["git_revision"] == git_revision()
        assert payload["phases_us_per_query"]

    def test_profile_reference_engine(self, capsys):
        from repro.cli import main

        rc = main([
            "profile", "--servers", "8", "--queries", "80", "--rate", "40",
            "--pq", "3", "--engine", "reference",
        ])
        assert rc == 0
        assert "reference" in capsys.readouterr().out

    def test_explain_reconstructs_timeline(self, capsys, tmp_path,
                                           crowd_x_rack_archive):
        from repro.cli import main

        _, execution, path = crowd_x_rack_archive
        out_json = tmp_path / "timeline.json"
        rc = main(["explain", str(path), "--json", str(out_json)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "every record matches" in out
        assert "slo-elasticity" in out
        payload = json.loads(out_json.read_text())
        assert len(payload) == len(execution.decisions)
        assert all(entry["check"] for entry in payload)

    def test_explain_rejects_decisionless_archive(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "plain.npz"
        write_archive_columns(path, {"log_arrival": np.zeros(2)}, meta={})
        rc = main(["explain", str(path)])
        assert rc == 2
        assert "neither control decisions" in capsys.readouterr().err

    def test_archive_info_manifest_gate(self, capsys, tmp_path,
                                        crowd_x_rack_archive):
        from repro.cli import main

        _, _, with_manifest = crowd_x_rack_archive
        rc = main(["archive", "info", str(with_manifest), "--require-manifest"])
        assert rc == 0
        assert "manifest" in capsys.readouterr().out

        bare = tmp_path / "bare.npz"
        write_archive_columns(
            bare,
            {"log_arrival": np.zeros(2), "log_finish": np.ones(2)},
            meta={},
        )
        rc = main(["archive", "info", str(bare), "--require-manifest"])
        assert rc == 1
        assert "no provenance manifest" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# ArchiveWriter extra columns
# ---------------------------------------------------------------------------


class TestExtraColumns:
    def test_collision_with_streamed_column_refused(self, tmp_path):
        from repro.telemetry.archive import ArchiveWriter

        dep = _build(n=8)
        writer = ArchiveWriter(tmp_path / "run.npz")
        dep.chunk_listeners.append(writer)
        dep.run_queries_fast([0.02 * i for i in range(40)], 4)
        dep.chunk_listeners.remove(writer)
        with pytest.raises(ValueError, match="collides"):
            writer.close(extra_columns={"log_arrival": np.zeros(2)})
