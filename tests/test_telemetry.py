"""The columnar telemetry subsystem: columns, logs, listeners, archives.

Four contracts under test:

* **columns** -- ``array_percentile`` is bit-identical to the historic
  sorted-list interpolation; ``GrowArray`` is an append-only float64
  column with amortised growth;
* **lazy logs** -- ``DelayLog``/``RecordView`` present the legacy
  list-of-records API over columns, materialising records only on access;
* **listeners** -- chunk listeners observe whole flushed chunks; the
  legacy per-query ``query_listeners`` shim is driven off the same arrays
  bit-identically (and warns once, it is deprecated); listener-free runs
  execute zero per-query python;
* **archives** -- ``write_archive``/``read_archive`` round-trip the
  columns exactly, and ``archive_diff`` applies the wall-clock gate the
  differential tests use.
"""

import math
import random
import warnings

import pytest

np = pytest.importorskip("numpy")

from repro.cluster import Deployment, DeploymentConfig, hen_testbed
from repro.control.metrics import LatencyHistogram, MetricsCollector, SlidingWindow
from repro.sim import PoissonArrivals
from repro.telemetry.columns import GrowArray, array_percentile
from repro.telemetry.listeners import (
    ChunkArrays,
    ChunkListener,
    ListenerList,
    _reset_deprecation_warning,
)
from repro.telemetry.records import (
    BreakdownLog,
    DelayLog,
    QueryBreakdown,
    QueryRecord,
)
from repro.telemetry.archive import (
    ARCHIVE_SCHEMA,
    archive_diff,
    archive_info,
    read_archive,
    write_archive,
)


def _legacy_percentile(values, q):
    """The historic sorted-list formula, verbatim."""
    vals = sorted(values)
    pos = (q / 100.0) * (len(vals) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return vals[lo]
    return vals[lo] + (vals[hi] - vals[lo]) * (pos - lo)


def _build(n=16, p=4, seed=3, **kw):
    cfg = DeploymentConfig(
        models=hen_testbed(n),
        p=p,
        dataset_size=2e6,
        seed=seed,
        charge_scheduling=False,
        **kw,
    )
    return Deployment(cfg)


class TestColumns:
    def test_percentile_matches_sorted_formula_bit_for_bit(self):
        rng = random.Random(7)
        for n in (1, 2, 3, 10, 101, 1000):
            values = [rng.expovariate(3.0) for _ in range(n)]
            arr = np.array(values)
            for q in (0, 1, 25, 50, 75, 90, 95, 99, 99.9, 100):
                assert array_percentile(arr, q) == _legacy_percentile(values, q)

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            array_percentile(np.array([]), 50)

    def test_growarray_append_extend_view(self):
        g = GrowArray()
        for i in range(100):
            g.append(float(i))
        g.extend([100.0, 101.0])
        assert g.n == 102
        assert g.view().tolist() == [float(i) for i in range(102)]
        # the copy is decoupled from further growth
        c = g.copy()
        g.append(999.0)
        assert c.size == 102

    def test_growarray_shift_down(self):
        g = GrowArray()
        g.extend(np.arange(10.0))
        g.shift_down(4)
        assert g.view().tolist() == [4.0, 5.0, 6.0, 7.0, 8.0, 9.0]


class TestDelayLog:
    def _filled(self, k=5):
        log = DelayLog()
        for i in range(k):
            log.add(QueryRecord(query_id=i + 1, arrival=0.1 * i,
                                finish=0.1 * i + 0.05, pq=4, subqueries=4))
        return log

    def test_records_list_compat(self):
        log = self._filled(5)
        recs = log.records
        assert len(recs) == 5 and bool(recs)
        assert recs[0].query_id == 1
        assert recs[-1].query_id == 5
        assert [r.query_id for r in recs] == [1, 2, 3, 4, 5]
        assert [r.query_id for r in recs[1:3]] == [2, 3]
        assert [r.query_id for r in recs[-2:]] == [4, 5]
        with pytest.raises(IndexError):
            recs[5]

    def test_records_append_feeds_columns(self):
        log = self._filled(2)
        log.records.append(QueryRecord(query_id=9, arrival=1.0, finish=1.5))
        assert log.n_records == 3
        assert log.column("query_id").tolist() == [1, 2, 9]
        assert log.delays()[-1] == 0.5

    def test_append_columns_bulk(self):
        log = DelayLog()
        log.append_columns(
            np.array([1, 2], dtype=np.int64),
            np.array([0.0, 0.1]),
            np.array([0.2, 0.4]),
            np.array([4, 4], dtype=np.int64),
            np.array([4, 4], dtype=np.int64),
            np.array([0.0, 0.0]),
        )
        assert log.delays() == [0.2, 0.30000000000000004]
        assert log.records[1].pq == 4

    def test_stats_match_record_based(self):
        log = self._filled(20)
        delays = log.delays()
        assert log.raw_mean_delay() == sum(delays) / len(delays)
        assert log.max_delay() == max(delays)
        assert log.percentile_delay(95) == _legacy_percentile(delays, 95)

    def test_breakdown_log_columns(self):
        bd = BreakdownLog()
        bd.append(QueryBreakdown(scheduling=0.0, network=0.01, queueing=0.1,
                                 service=0.2, total=0.31))
        bd.append_columns(np.zeros(2), np.full(2, 0.01), np.full(2, 0.2),
                          np.full(2, 0.3), np.full(2, 0.51))
        assert len(bd) == 3
        assert bd.column("total").tolist() == [0.31, 0.51, 0.51]
        assert bd[1].queueing == 0.2
        assert [b.network for b in bd] == [0.01, 0.01, 0.01]


class TestSlidingWindow:
    def test_out_of_order_add_rejected(self):
        w = SlidingWindow(10.0)
        w.add(1.0, 0.5)
        with pytest.raises(ValueError):
            w.add(0.5, 0.1)

    def test_out_of_order_extend_rejected(self):
        w = SlidingWindow(10.0)
        w.add(1.0, 0.5)
        with pytest.raises(ValueError):
            w.extend(np.array([0.5, 2.0]), np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            w.extend(np.array([2.0, 1.5]), np.array([0.1, 0.2]))

    def test_prune_and_stats(self):
        w = SlidingWindow(5.0)
        for t in range(12):
            w.add(float(t), float(t))
        # pruning at now=11 keeps t >= 11 - 5, i.e. samples 6..11
        vals = w.values(11.0)
        assert vals == [float(t) for t in range(12) if t >= 11 - 5]
        assert w.mean() == sum(vals) / len(vals)
        assert w.percentile(50) == _legacy_percentile(vals, 50)

    def test_compaction_preserves_live_samples(self):
        w = SlidingWindow(10.0)
        n = 10_000
        ts = np.arange(n, dtype=float) * 0.01
        w.extend(ts, ts)
        # pruning at the end of the trace drops all but the last 10s and
        # compacts the columns without losing the live suffix
        live = w.values(float(ts[-1]))
        assert live[-1] == ts[-1]
        assert live[0] >= ts[-1] - 10.0
        assert all(b >= a for a, b in zip(live, live[1:]))
        assert w._lo == 0 and w._t.n < 4096  # compaction really ran


class TestLatencyHistogram:
    def test_record_many_matches_scalar_loop(self):
        rng = random.Random(5)
        values = [rng.expovariate(2.0) for _ in range(500)] + [0.0, 1e9]
        h_scalar, h_bulk = LatencyHistogram(), LatencyHistogram()
        for v in values:
            h_scalar.record(v)
        h_bulk.record_many(np.array(values))
        assert h_scalar.counts == h_bulk.counts


class _CollectingChunkListener(ChunkListener):
    def __init__(self):
        self.chunks = []

    def observe_chunk(self, arrays, start, nq):
        # arrays are borrowed views: copy anything retained
        self.chunks.append((start, nq, arrays.arrivals.copy(),
                            arrays.finishes.copy()))


class TestChunkListeners:
    def test_chunks_cover_the_run_contiguously(self):
        dep = _build()
        listener = _CollectingChunkListener()
        dep.chunk_listeners.append(listener)
        arrivals = PoissonArrivals(40.0, seed=2).times(300)
        dep.run_queries_fast(arrivals, 4)
        assert sum(nq for _, nq, _, _ in listener.chunks) == 300
        pos = 0
        for start, nq, arr, fin in listener.chunks:
            assert start == pos
            assert len(arr) == len(fin) == nq
            pos += nq
        observed = np.concatenate([a for _, _, a, _ in listener.chunks])
        assert observed.tolist() == dep.log.column("arrival").tolist()

    def test_metrics_collector_chunk_vs_per_query_identical(self):
        dep_chunk, dep_legacy = _build(seed=5), _build(seed=5)
        mc_chunk = MetricsCollector(window=30.0)
        mc_legacy = MetricsCollector(window=30.0)
        mc_chunk.attach(dep_chunk)  # modern: chunk_listeners
        dep_legacy.query_listeners.append(mc_legacy.observe_query)
        arrivals = PoissonArrivals(50.0, seed=4).times(400)
        dep_chunk.run_queries_fast(arrivals, 4)
        dep_legacy.run_queries_fast(arrivals, 4)
        assert mc_chunk.queries_seen == mc_legacy.queries_seen == 400
        assert mc_chunk.window.values() == mc_legacy.window.values()
        assert mc_chunk.histogram.counts == mc_legacy.histogram.counts
        now = arrivals[-1]
        snap_a = mc_chunk.snapshot(now, record=False)
        snap_b = mc_legacy.snapshot(now, record=False)
        assert snap_a == snap_b

    def test_chunkarrays_delays_and_len(self):
        rec = QueryRecord(query_id=1, arrival=0.5, finish=0.8, pq=4,
                          subqueries=4)
        chunk = ChunkArrays.from_record(
            rec, QueryBreakdown(scheduling=0.0, network=0.01, queueing=0.1,
                                service=0.19, total=0.3))
        assert len(chunk) == 1
        assert chunk.delays().tolist() == [0.8 - 0.5]


class TestDeprecationShim:
    def test_legacy_listener_bit_identical_to_reference_path(self):
        _reset_deprecation_warning()
        slow, fast = _build(seed=9), _build(seed=9)
        seen_slow, seen_fast = [], []
        with pytest.warns(DeprecationWarning, match="query_listeners"):
            slow.query_listeners.append(
                lambda r: seen_slow.append(
                    (r.query_id, r.arrival, r.finish, r.pq, r.subqueries))
            )
        # the warning fires once per process, not once per append
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            fast.query_listeners.append(
                lambda r: seen_fast.append(
                    (r.query_id, r.arrival, r.finish, r.pq, r.subqueries))
            )
        arrivals = PoissonArrivals(40.0, seed=6).times(250)
        slow.run_queries(arrivals, 4)
        fast.run_queries_fast(arrivals, 4)
        assert seen_fast == seen_slow
        assert len(seen_fast) == 250

    def test_multifrontend_listener_list_is_typed(self):
        from repro.cluster.multifrontend import MultiFrontEndDeployment

        assert isinstance(
            getattr(MultiFrontEndDeployment, "__init__", None), object
        )
        # the constructor annotation went through the same shim; the
        # instance check is done structurally to avoid building a full
        # multi-frontend cluster here
        import inspect

        src = inspect.getsource(MultiFrontEndDeployment.__init__)
        assert "ListenerList()" in src

    def test_listener_list_is_a_list(self):
        _reset_deprecation_warning()
        ll = ListenerList()
        with pytest.warns(DeprecationWarning):
            ll.append(lambda r: None)
        assert isinstance(ll, list) and len(ll) == 1


class TestZeroPerQueryTelemetry:
    def test_listener_free_run_never_materialises_records(self, monkeypatch):
        """Action-free, listener-free spans run zero per-query python."""
        import repro.sim.fastpath as fastpath

        def boom(*a, **kw):  # pragma: no cover - the assert is the point
            raise AssertionError(
                "drive_legacy_listeners called on a listener-free run"
            )

        monkeypatch.setattr(fastpath, "drive_legacy_listeners", boom)
        dep = _build()
        arrivals = PoissonArrivals(60.0, seed=8).times(500)
        result = dep.run_queries_fast(arrivals, 4)
        assert result.completed == 500
        assert dep.log.n_records == 500


class TestArchive:
    def _archived(self, tmp_path, seed=1, n=64):
        dep = _build(seed=seed)
        dep.run_queries_fast(PoissonArrivals(40.0, seed=seed).times(n), 4)
        path = tmp_path / f"run-{seed}.npz"
        write_archive(path, dep, meta={"scenario": "test", "seed": seed})
        return dep, path

    def test_round_trip_exact(self, tmp_path):
        dep, path = self._archived(tmp_path)
        arch = read_archive(path)
        assert arch.meta["schema"] == ARCHIVE_SCHEMA
        assert arch.meta["scenario"] == "test"
        assert arch.n_queries == 64
        assert np.array_equal(arch.columns["log_arrival"],
                              dep.log.column("arrival"))
        assert np.array_equal(arch.columns["bd_total"],
                              dep.breakdowns.column("total"))
        assert arch.delays().tolist() == dep.log.delays()

    def test_info_fields(self, tmp_path):
        dep, path = self._archived(tmp_path)
        info = archive_info(read_archive(path))
        assert info["n_queries"] == 64 and info["dropped"] == 0
        assert info["file_bytes"] > 0
        assert info["bytes_per_query"] == info["file_bytes"] / 64
        delays = dep.log.delays()
        assert info["mean_delay"] == float(np.array(delays).sum() / 64)
        assert info["p95_delay"] == _legacy_percentile(delays, 95)

    def test_diff_identical_and_divergent(self, tmp_path):
        _, path_a = self._archived(tmp_path, seed=1)
        _, path_b = self._archived(tmp_path, seed=2)
        a = read_archive(path_a)
        assert archive_diff(a, read_archive(path_a))["identical"]
        diff = archive_diff(a, read_archive(path_b))
        assert not diff["identical"] and not diff["gated_identical"]
        assert diff["columns"]["log_finish"]["first_divergence"] >= 0

    def test_diff_gates_out_wall_clock_columns(self, tmp_path):
        _, path = self._archived(tmp_path)
        a, b = read_archive(path), read_archive(path)
        b.columns["log_scheduling"] = b.columns["log_scheduling"] + 1.0
        b.columns["bd_scheduling"] = b.columns["bd_scheduling"] + 1.0
        diff = archive_diff(a, b)
        assert not diff["identical"]
        assert diff["gated_identical"]  # wall-clock divergence only

    def test_schema_mismatch_refused(self, tmp_path):
        import json

        path = tmp_path / "bad.npz"
        payload = np.frombuffer(
            json.dumps({"schema": 999}).encode(), dtype=np.uint8)
        np.savez_compressed(path, meta_json=payload)
        with pytest.raises(ValueError, match="schema"):
            read_archive(path)


class TestArchiveCli:
    def test_info_diff_and_gate(self, tmp_path, capsys):
        from repro.cli import main

        dep = _build()
        dep.run_queries_fast(PoissonArrivals(40.0, seed=3).times(128), 4)
        a, b = str(tmp_path / "a.npz"), str(tmp_path / "b.npz")
        write_archive(a, dep, meta={"scenario": "cli"})
        write_archive(b, dep, meta={"scenario": "cli"})
        assert main(["archive", "info", a]) == 0
        assert "queries        : 128" in capsys.readouterr().out
        assert main(["archive", "diff", a, b]) == 0
        # a generous gate passes, an impossible one fails
        assert main(["archive", "info", a,
                     "--gate-bytes-per-query", "100000"]) == 0
        assert main(["archive", "info", a,
                     "--gate-bytes-per-query", "0.001"]) == 1

    def test_diff_exits_nonzero_on_divergence(self, tmp_path, capsys):
        from repro.cli import main

        dep_a, dep_b = _build(seed=1), _build(seed=2)
        dep_a.run_queries_fast(PoissonArrivals(40.0, seed=1).times(64), 4)
        dep_b.run_queries_fast(PoissonArrivals(40.0, seed=2).times(64), 4)
        a, b = str(tmp_path / "a.npz"), str(tmp_path / "b.npz")
        write_archive(a, dep_a)
        write_archive(b, dep_b)
        assert main(["archive", "diff", a, b]) == 1
        assert "DIVERGENT" in capsys.readouterr().out
