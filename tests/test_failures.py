"""Tests for failure fall-back (repro.core.failures, Section 4.4)."""

import random

import pytest

from repro.core import Ring, RingNode, generate_objects
from repro.core.failures import (
    FailureCoverageError,
    replacement_subqueries,
    split_failed,
)
from repro.core.ids import cw_distance, frac
from repro.core.node import RoarNode, SubQuery, dedup_matches


def build_stored_ring(n, p, n_objects, rng):
    ring = Ring.proportional([rng.uniform(0.5, 2.0) for _ in range(n)])
    objects = generate_objects(n_objects, rng)
    stores = {}
    for node in ring:
        store = RoarNode(node)
        store.load_objects(objects, p, ring.range_of(node))
        stores[node.name] = store
    return ring, objects, stores


class TestReplacementGeometry:
    def test_replacements_bracket_failed_range(self, rng):
        ring, _, _ = build_stored_ring(12, 4, 0, rng)
        failed = ring.get("node-5")
        failed.alive = False
        original = SubQuery.normal(1, ring.range_of(failed).midpoint(), 4)
        pieces = replacement_subqueries(ring, failed, original, 4, rng=rng)
        fail_range = ring.range_of(failed)
        assert 1 <= len(pieces) <= 2
        # The last piece is delivered strictly after the failed range.
        assert cw_distance(fail_range.end, pieces[-1].dest) < 1.0 / 4
        if len(pieces) == 2:
            # First piece delivered strictly before the failed range,
            # maximally separated from the second (1/p apart).
            assert cw_distance(pieces[0].dest, fail_range.start) < 1.0 / 4
            assert cw_distance(pieces[0].dest, pieces[-1].dest) == pytest.approx(
                pieces[0].local_width, abs=1e-9
            )

    def test_replacements_partition_original_window(self, rng):
        ring, _, _ = build_stored_ring(12, 4, 0, rng)
        failed = ring.get("node-3")
        failed.alive = False
        original = SubQuery.normal(7, ring.range_of(failed).midpoint(), 4)
        pieces = replacement_subqueries(ring, failed, original, 4, rng=rng)
        # The pieces' windows exactly tile the original window.
        total = sum(p.dedup_width for p in pieces)
        assert total == pytest.approx(original.dedup_width, abs=1e-9)
        assert pieces[-1].dedup_origin == original.dedup_origin
        assert all(p.query_id == 7 for p in pieces)

    def test_wide_failed_range_raises(self):
        # Two nodes, p=4: each node's range (0.5) exceeds 1/p.
        ring = Ring.uniform(2)
        failed = ring.get("node-0")
        failed.alive = False
        original = SubQuery.normal(1, 0.25, 4)
        with pytest.raises(FailureCoverageError):
            replacement_subqueries(ring, failed, original, 4)

    def test_avoids_other_failed_nodes(self, rng):
        ring, _, _ = build_stored_ring(16, 4, 0, rng)
        failed = ring.nodes()[5]
        failed.alive = False
        # Kill one neighbour too; resolution must land on alive nodes.
        ring.nodes()[4].alive = False
        original = SubQuery.normal(1, ring.range_of(failed).midpoint(), 4)
        resolved = split_failed(ring, [original], 4, rng=random.Random(0))
        assert resolved
        assert all(node.alive for _, node in resolved)

    def test_mass_failure_recursion(self):
        """Even when most of a replacement window is dead, recursion finds
        alive targets and keeps exact coverage."""
        rng = random.Random(77)
        p = 4
        ring, objects, stores = build_stored_ring(24, p, 300, rng)
        # Kill 10 of 24 nodes.
        for idx in (1, 2, 3, 7, 8, 12, 13, 17, 20, 21):
            ring.nodes()[idx].alive = False
        start = rng.random()
        subs = [
            SubQuery.normal(1, frac(start + i / p), p, index=i) for i in range(p)
        ]
        resolved = split_failed(ring, subs, p, rng=rng)
        matched = {}
        for sub, node in resolved:
            assert node.alive
            for obj in stores[node.name].execute(sub):
                matched[obj.key] = matched.get(obj.key, 0) + 1
        assert len(matched) == len(objects)
        assert all(v == 1 for v in matched.values())


class TestCoverageAfterFailure:
    """The invariant that matters: after replacement, the query still matches
    every object exactly once."""

    @pytest.mark.parametrize("seed", range(5))
    def test_single_failure_exact_coverage(self, seed):
        rng = random.Random(seed)
        p = 4
        ring, objects, stores = build_stored_ring(16, p, 400, rng)
        failed = ring.nodes()[rng.randrange(16)]
        failed.alive = False

        start = rng.random()
        subs = [
            SubQuery.normal(1, frac(start + i / p), p, index=i) for i in range(p)
        ]
        resolved = split_failed(ring, subs, p, rng=rng)
        assert all(node.alive for _, node in resolved)

        matched = {}
        for sub, node in resolved:
            for obj in stores[node.name].execute(sub):
                matched[obj.key] = matched.get(obj.key, 0) + 1
        assert len(matched) == len(objects), (
            f"missed {len(objects) - len(matched)} objects"
        )
        assert all(v == 1 for v in matched.values()), "duplicate matches"

    def test_multiple_failures_exact_coverage(self):
        rng = random.Random(42)
        p = 5
        ring, objects, stores = build_stored_ring(25, p, 500, rng)
        for idx in (2, 3, 11, 19):
            ring.nodes()[idx].alive = False

        start = rng.random()
        subs = [
            SubQuery.normal(1, frac(start + i / p), p, index=i) for i in range(p)
        ]
        resolved = split_failed(ring, subs, p, rng=rng)
        matched = {}
        for sub, node in resolved:
            assert node.alive
            for obj in stores[node.name].execute(sub):
                matched[obj.key] = matched.get(obj.key, 0) + 1
        assert len(matched) == len(objects)
        assert all(v == 1 for v in matched.values())

    def test_subquery_count_grows_by_one_per_failed_target(self, rng):
        p = 4
        ring, _, _ = build_stored_ring(16, p, 0, rng)
        failed = ring.nodes()[0]
        failed.alive = False
        # Aim one sub-query straight at the failed node.
        subs = [
            SubQuery.normal(1, frac(failed.start + 1e-6 + i / p), p, index=i)
            for i in range(p)
        ]
        resolved = split_failed(ring, subs, p, rng=rng)
        assert len(resolved) == p + 1

    def test_alive_targets_pass_through_unchanged(self, rng):
        p = 4
        ring, _, _ = build_stored_ring(16, p, 0, rng)
        subs = [SubQuery.normal(1, i / p + 0.01, p, index=i) for i in range(p)]
        resolved = split_failed(ring, subs, p, rng=rng)
        assert [s for s, _ in resolved] == subs


class TestAdjacentFailureRuns:
    """Contiguous dead runs must re-cover fully or raise -- never silently
    lose objects (regression: the fall-back used to anchor the replacement
    width to the single dead node, overshooting the replication reach when
    its neighbour was dead too)."""

    def _harvest(self, ring, stores, objects, p, rng):
        start = rng.random()
        subs = [
            SubQuery.normal(1, frac(start + i / p), p, index=i) for i in range(p)
        ]
        resolved = split_failed(ring, subs, p, rng=rng)
        matched = {}
        for sub, node in resolved:
            assert node.alive
            for obj in stores[node.name].execute(sub):
                matched[obj.key] = matched.get(obj.key, 0) + 1
        assert set(matched.values()) <= {1}, "duplicate matches"
        return matched

    def test_adjacent_pair_recovers_fully_or_raises(self):
        for seed in range(25):
            rng = random.Random(seed)
            p = 3
            ring, objects, stores = build_stored_ring(9, p, 80, rng)
            nodes = ring.nodes()
            kill = rng.randrange(len(nodes))
            dead = [nodes[kill], nodes[(kill + 1) % len(nodes)]]
            for node in dead:
                node.alive = False
            run_length = sum(ring.range_of(n).length for n in dead)
            try:
                matched = self._harvest(ring, stores, objects, p, rng)
            except FailureCoverageError:
                # Honest unavailability: acceptable whenever re-covering is
                # impossible (wide run, or no alive placement geometry).
                continue
            assert len(matched) == len(objects), (
                f"seed {seed}: silent partial harvest "
                f"({len(matched)}/{len(objects)}) with dead run "
                f"{run_length:.3f} vs arc {1.0 / p:.3f}"
            )

    def test_wide_dead_run_raises_not_partial(self):
        rng = random.Random(3)
        p = 4
        ring, objects, stores = build_stored_ring(8, p, 60, rng)
        # Kill enough adjacent nodes that the dead run exceeds 1/p.
        nodes = ring.nodes()
        dead_len = 0.0
        i = 0
        while dead_len <= 1.0 / p:
            nodes[i % len(nodes)].alive = False
            dead_len += ring.range_of(nodes[i % len(nodes)]).length
            i += 1
        start = rng.random()
        subs = [
            SubQuery.normal(1, frac(start + k / p), p, index=k) for k in range(p)
        ]
        with pytest.raises(FailureCoverageError):
            # Some sub-query must land on the dead run; full coverage of its
            # window is impossible, so the fall-back must say so.
            for _ in range(20):  # any start; retry to hit the dead run
                split_failed(ring, subs, p, rng=rng)
                start = rng.random()
                subs = [
                    SubQuery.normal(1, frac(start + k / p), p, index=k)
                    for k in range(p)
                ]

    def test_single_failure_behaviour_unchanged(self, rng):
        # The combined-run logic must collapse to the seed behaviour when
        # neighbours are alive (the differential fast-path tests depend on
        # identical rng draws here).
        ring, objects, stores = build_stored_ring(12, 4, 100, rng)
        ring.nodes()[5].alive = False
        matched = self._harvest(ring, stores, objects, 4, rng)
        assert len(matched) == len(objects)
