"""The scheduling-kernel subsystem: registry, ABI, and the differential line.

Three layers of guarantee:

* **registry** -- names resolve, parameters parse, unknown kernels fail
  loudly, availability is reported honestly;
* **exact kernels** -- ``exact_numpy`` (the oracle) is bit-identical to the
  per-query reference path (i.e. to the pre-refactor inline sweep), and
  ``compiled`` is bit-identical to the oracle across every regime the
  engine supports (multi-ring, failures/delegation, mid-batch membership
  changes, varying pq) plus the full builtin scenario battery;
* **bounded kernels** -- ``approx_topk`` stays inside the deviation bound
  its docstring documents, measured by the divergence harness on all 8
  builtin scenarios at the size the contract names, and degenerates to
  the oracle on small fleets (the dense fallback).
"""

import subprocess
import sys

import pytest

np = pytest.importorskip("numpy")

from test_fastpath import _build, assert_deployments_identical

from repro.kernels import (
    DEFAULT_KERNEL,
    KernelUnavailableError,
    SweepKernel,
    available_kernels,
    get_kernel,
    kernel_names,
    kernel_specs,
    register_kernel,
)
from repro.kernels.approx import ApproxTopKKernel
from repro.kernels.compiled import compiled_available, compiled_unavailable_reason
from repro.kernels.divergence import (
    battery_divergence,
    render_divergence,
    scenario_divergence,
)
from repro.kernels.registry import is_known_kernel
from repro.sim import PoissonArrivals

needs_compiled = pytest.mark.skipif(
    not compiled_available(),
    reason=f"compiled kernel unavailable: {compiled_unavailable_reason()}",
)


class TestRegistry:
    def test_builtins_registered(self):
        names = kernel_names()
        assert ("exact_numpy", "compiled", "approx_topk") == names

    def test_default_is_exact(self):
        assert DEFAULT_KERNEL == "exact_numpy"
        kernel = get_kernel(None)
        assert kernel.name == "exact_numpy"
        assert kernel.exact

    def test_aliases(self):
        assert get_kernel("exact").name == "exact_numpy"
        assert get_kernel("approx").name == "approx_topk"

    def test_instance_passthrough(self):
        kernel = get_kernel("approx_topk")
        assert get_kernel(kernel) is kernel

    def test_parameter_suffix(self):
        kernel = get_kernel("approx_topk:stride=16,top_k=3")
        assert kernel.stride == 16
        assert kernel.top_k == 3

    def test_bad_parameter_suffix(self):
        with pytest.raises(ValueError, match="key=value"):
            get_kernel("approx_topk:stride")

    def test_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown scheduling kernel"):
            get_kernel("quantum")

    def test_is_known_kernel(self):
        assert is_known_kernel("exact_numpy")
        assert is_known_kernel("approx_topk:stride=8")
        assert not is_known_kernel("quantum")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_kernel("exact_numpy", lambda: None)

    def test_third_party_registration(self):
        from repro.kernels import registry

        class Custom(SweepKernel):
            name = "custom-test"
            exact = True

        register_kernel("custom-test", Custom, replace=True)
        try:
            assert get_kernel("custom-test").name == "custom-test"
        finally:
            # the registry is process-global: leaking a select-less kernel
            # would break any later registry-enumerating test or CLI run
            registry._FACTORIES.pop("custom-test", None)
        assert "custom-test" not in kernel_names()

    def test_kernel_specs_rows(self):
        rows = {r["name"]: r for r in kernel_specs()}
        assert rows["exact_numpy"]["available"]
        assert rows["exact_numpy"]["exact"] is True
        assert rows["approx_topk"]["exact"] is False
        # compiled is either available or carries a reason, never silent
        comp = rows["compiled"]
        assert comp["available"] or comp["reason"]

    def test_available_kernels_subset(self):
        avail = available_kernels()
        assert "exact_numpy" in avail
        assert set(avail) <= set(kernel_names())

    def test_bad_approx_parameters(self):
        with pytest.raises(ValueError, match="stride"):
            ApproxTopKKernel(stride=0)
        with pytest.raises(ValueError, match="top_k"):
            ApproxTopKKernel(top_k=0)


class TestExactKernelIsOracle:
    """`exact_numpy` == the pre-refactor inline sweep == the reference path."""

    def test_default_run_uses_exact_and_matches_reference(self):
        arrivals = PoissonArrivals(40.0, seed=9).times(400)
        slow, fast = _build(), _build()
        slow.run_queries(arrivals, 5)
        fast.run_queries_fast(arrivals, 5, kernel="exact_numpy")
        assert_deployments_identical(slow, fast)

    def test_explicit_equals_default(self):
        arrivals = PoissonArrivals(30.0, seed=3).times(300)
        a, b = _build(n=16), _build(n=16)
        a.run_queries_fast(arrivals, 5)
        b.run_queries_fast(arrivals, 5, kernel="exact_numpy")
        assert_deployments_identical(a, b)


@needs_compiled
class TestCompiledKernel:
    """The C kernel must be bit-identical to the oracle in every regime."""

    def _compare(self, run):
        exact, compiled = _build(n=16, seed=5), _build(n=16, seed=5)
        run(exact, "exact_numpy")
        run(compiled, "compiled")
        assert_deployments_identical(exact, compiled)

    def test_identical_plain(self):
        arrivals = PoissonArrivals(40.0, seed=9).times(500)
        self._compare(lambda dep, k: dep.run_queries_fast(arrivals, 5, kernel=k))

    def test_identical_multi_ring(self):
        arrivals = PoissonArrivals(25.0, seed=13).times(300)
        exact = _build(n=20, seed=7, n_rings=2)
        compiled = _build(n=20, seed=7, n_rings=2)
        exact.run_queries_fast(arrivals, 5, kernel="exact_numpy")
        compiled.run_queries_fast(arrivals, 5, kernel="compiled")
        assert_deployments_identical(exact, compiled)

    def test_identical_with_failures_and_delegation(self):
        arrivals = PoissonArrivals(30.0, seed=11).times(400)
        mid = arrivals[len(arrivals) // 3]
        pre = [t for t in arrivals if t < mid]
        post = [t for t in arrivals if t >= mid]

        def run(dep, kernel):
            dep.run_queries_fast(pre, 5, kernel=kernel)
            dep.fail_node("node-3", mid)
            dep.fail_node("node-7", mid)
            result = dep.run_queries_fast(post, 5, kernel=kernel)
            assert result.delegated > 0
            return result

        self._compare(run)

    def test_identical_varying_pq(self):
        arrivals = PoissonArrivals(25.0, seed=17).times(300)

        def pq_fn(t):
            return 4 + (int(t * 3) % 3)

        self._compare(lambda dep, k: dep.run_queries_fast(arrivals, pq_fn, kernel=k))

    def test_identical_across_membership_actions(self):
        from repro.cluster.models import MODEL_CATALOGUE
        from repro.sim.fastpath import Action

        arrivals = PoissonArrivals(30.0, seed=19).times(300)
        k1 = 120

        def run(dep, kernel):
            actions = [
                Action(
                    k1,
                    arrivals[k1 - 1],
                    lambda now: dep.add_server(
                        MODEL_CATALOGUE["dell-2950"], now=now
                    )
                    and None,
                )
            ]
            dep.run_queries_fast(arrivals, 5, actions=actions, kernel=kernel)

        self._compare(run)

    def test_zero_divergence_on_battery(self):
        for report in battery_divergence("compiled"):
            assert report.identical, (
                f"compiled diverged on {report.scenario}: "
                f"{report.diverged} queries"
            )


class TestApproxKernel:
    def test_dense_fallback_is_exact_on_small_fleets(self):
        """Below the dense cutoff (4*stride configs) the sampled kernel
        degenerates to the oracle by construction -- the whole builtin
        battery at its default test size must be bit-identical."""
        for report in battery_divergence("approx_topk"):
            assert report.identical, (
                f"approx_topk diverged on the dense-fallback battery "
                f"({report.scenario})"
            )

    def test_within_documented_bound_on_battery(self):
        """The docstring contract, measured at the size it names."""
        bound = ApproxTopKKernel.bound
        reports = battery_divergence(
            "approx_topk", n_servers=40, p=5, duration=15.0
        )
        for report in reports:
            assert report.within(bound), (
                f"approx_topk broke its documented bound on "
                f"{report.scenario}: decision={report.decision_divergence:.3f} "
                f"regret_p99={report.makespan_regret_p99:.3f} "
                f"lat_p99={report.latency_rel_p99:.3f} "
                f"mean={report.mean_delay_rel:.3f} vs {bound}"
            )

    def test_makespan_regret_never_negative(self):
        """The examined set is a subset of the oracle's candidates, so the
        kernel can never *beat* the oracle's predicted makespan."""
        from repro.scenarios.matrix import builtin_scenarios

        scen = [
            s
            for s in builtin_scenarios(n_servers=40, duration=10.0, p=5)
            if s.name == "flash-crowd"
        ][0]
        report = scenario_divergence(scen, "approx_topk")
        assert report.decisions > 0
        assert report.makespan_regret_p99 >= 0.0

    def test_bound_matches_docstring(self):
        """The docstring numbers and the programmatic bound must agree."""
        doc = ApproxTopKKernel.__doc__
        bound = ApproxTopKKernel.bound
        assert f"{bound.decision_divergence * 100:.0f}%" in doc
        assert f"{bound.makespan_regret_p99 * 100:.0f}%" in doc
        assert f"{bound.latency_rel_p99 * 100:.0f}%" in doc
        assert f"{bound.mean_delay_rel * 100:.0f}%" in doc


class TestDivergenceHarness:
    def test_exact_vs_itself_reports_identity(self):
        from repro.scenarios.matrix import builtin_scenarios

        scen = builtin_scenarios(n_servers=10, duration=8.0, p=4)[0]
        report = scenario_divergence(scen, "exact_numpy")
        assert report.identical
        assert report.config_divergence == 0.0
        assert report.decision_divergence == 0.0
        assert report.makespan_regret_p99 == 0.0
        assert report.queries > 0
        assert report.compared == report.queries

    def test_render_divergence_table(self):
        reports = battery_divergence(
            "exact_numpy",
            scenarios=None,
            n_servers=10,
            duration=8.0,
            p=4,
        )
        table = render_divergence(reports)
        assert "steady" in table
        assert "decision%" in table
        assert len(table.splitlines()) == len(reports) + 2

    def test_unknown_kernel_fails_fast(self):
        with pytest.raises(ValueError, match="unknown scheduling kernel"):
            battery_divergence("quantum")


class TestScenarioKernelKnob:
    def test_spec_rejects_unknown_kernel(self):
        from repro.scenarios import Scenario

        with pytest.raises(ValueError, match="unknown scheduling kernel"):
            Scenario(name="x", kernel="quantum")

    def test_scenario_kernel_flows_to_result(self):
        from repro.scenarios import Scenario, WorkloadSpec, run_scenario_spec

        scen = Scenario(
            name="k",
            n_servers=8,
            p=3,
            kernel="approx_topk",
            workload=WorkloadSpec(rate=20.0, duration=4.0),
        )
        res = run_scenario_spec(scen)
        assert res.kernel == "approx_topk"
        assert res.completed > 0

    def test_run_matrix_kernel_override(self):
        from repro.scenarios import Scenario, WorkloadSpec, run_matrix

        scen = Scenario(
            name="k",
            n_servers=8,
            p=3,
            workload=WorkloadSpec(rate=20.0, duration=4.0),
        )
        res = run_matrix([scen], kernel="approx_topk")
        assert res.results[0].kernel == "approx_topk"
        assert "kernel" in res.COLUMNS
        assert "approx_topk" in res.table()

    def test_reference_engine_reports_reference(self):
        from repro.scenarios import Scenario, WorkloadSpec, run_scenario_spec

        scen = Scenario(
            name="k",
            n_servers=8,
            p=3,
            workload=WorkloadSpec(rate=20.0, duration=4.0),
        )
        res = run_scenario_spec(scen, engine="reference")
        assert res.kernel == "reference"


class TestBenchKernelDimension:
    def test_run_sweep_reports_kernels(self):
        from repro.bench import PROFILES, run_sweep

        sweep = run_sweep(PROFILES["smoke"][0], kernels=["approx_topk"])
        rows = sweep["kernels"]
        assert rows["exact_numpy"]["available"]
        assert rows["exact_numpy"]["sweep_speedup_vs_exact"] == 1.0
        assert rows["exact_numpy"]["identical_to_exact"]
        assert "approx_topk" in rows

    def test_unavailable_kernel_recorded_not_fatal(self, monkeypatch):
        from repro.bench import PROFILES, run_sweep
        from repro.kernels import registry

        def boom():
            raise KernelUnavailableError("no toolchain (test)")

        monkeypatch.setitem(registry._FACTORIES, "compiled", boom)
        sweep = run_sweep(PROFILES["smoke"][0], kernels=["compiled"])
        row = sweep["kernels"]["compiled"]
        assert row["available"] is False
        assert "toolchain" in row["reason"]


def _result_bytes(result):
    """Every array of a BatchResult, as raw bytes (NaN-pattern exact)."""
    return (
        result.arrivals.tobytes(),
        result.latencies.tobytes(),
        result.finishes.tobytes(),
        result.query_ids.tobytes(),
        result.pqs.tobytes(),
    )


class TestFusedCommitSeam:
    """The bulk sweep+commit seam: one `commit_batch` call per chunk.

    The seam has three implementations of the same float-op sequence --
    the engine's inline per-query loop, the kernel base class's python
    `commit_batch`, and `roar_commit_batch` in C -- and they must be
    byte-interchangeable: identical `BatchResult` arrays, identical
    deployment state, identical chunk cuts.
    """

    def _run(self, kernel, *, with_actions=False, n=16, queries=400):
        from repro.sim.fastpath import Action

        arrivals = PoissonArrivals(40.0, seed=9).times(queries)
        dep = _build(n=n, seed=5)
        actions = None
        if with_actions:
            k1, k2 = queries // 3, 2 * queries // 3
            actions = [
                Action(k1, arrivals[k1 - 1], lambda now: None, scope="none"),
                Action(
                    k2,
                    arrivals[k2 - 1],
                    lambda now: dep.apply_update(now) or None,
                    scope="busy",
                ),
            ]
        result = dep.run_queries_fast(
            arrivals, 5, record_assignments=True, actions=actions, kernel=kernel
        )
        return dep, result

    def test_python_seam_byte_identical_to_inline_loop(self, monkeypatch):
        """The bulk seam vs the inline per-query loop, pure python both
        sides: this is the 'without the C kernel' half of the fused-commit
        contract, and it runs under REPRO_NO_COMPILED_KERNEL unchanged."""
        from repro.sim import fastpath

        monkeypatch.setattr(fastpath, "BULK_MIN_SPAN", 10**9)  # force inline
        dep_inline, r_inline = self._run("exact_numpy")
        monkeypatch.setattr(fastpath, "BULK_MIN_SPAN", 0)  # force the seam
        dep_bulk, r_bulk = self._run("exact_numpy")

        assert _result_bytes(r_inline) == _result_bytes(r_bulk)
        assert r_inline.assignments == r_bulk.assignments
        assert r_inline.chunk_sizes == r_bulk.chunk_sizes
        assert_deployments_identical(dep_inline, dep_bulk)

    @needs_compiled
    def test_fused_c_byte_identical_to_python_seam(self):
        """`BatchResult` arrays with and without the C kernel, byte for
        byte -- the fused-commit acceptance bar."""
        dep_py, r_py = self._run("exact_numpy")
        dep_c, r_c = self._run("compiled")
        assert _result_bytes(r_py) == _result_bytes(r_c)
        assert r_py.assignments == r_c.assignments
        assert r_py.chunk_sizes == r_c.chunk_sizes
        assert_deployments_identical(dep_py, dep_c)

    @needs_compiled
    def test_fused_c_with_actions_and_traces(self):
        """Actions cut the bulk spans; traces, listeners, and the reserve
        parity must survive the cuts identically."""
        dep_py, r_py = self._run("exact_numpy", with_actions=True)
        dep_c, r_c = self._run("compiled", with_actions=True)
        assert r_py.actions_applied == r_c.actions_applied == 2
        assert _result_bytes(r_py) == _result_bytes(r_c)
        assert r_py.chunk_sizes == r_c.chunk_sizes
        assert_deployments_identical(dep_py, dep_c)

    @needs_compiled
    def test_fused_c_multiple_pq_tables(self):
        """pq changes via actions exercise the sibling-table Q refresh
        after a bulk span (only the active entry's Q is maintained in C)."""
        from repro.sim.fastpath import Action

        arrivals = PoissonArrivals(30.0, seed=21).times(300)

        def run(dep, kernel):
            actions = [
                Action(100, arrivals[99], lambda now: 6, scope="none"),
                Action(200, arrivals[199], lambda now: 4, scope="none"),
            ]
            dep.run_queries_fast(arrivals, 4, actions=actions, kernel=kernel)

        a, b = _build(n=16, seed=5), _build(n=16, seed=5)
        run(a, "exact_numpy")
        run(b, "compiled")
        assert_deployments_identical(a, b)

    def test_fused_commit_flag_shape(self):
        """The seam's routing flag: compiled fuses, the python kernels
        don't (they take the seam only when the span amortises it)."""
        assert SweepKernel.fused_commit is False
        assert get_kernel("exact_numpy").fused_commit is False
        if compiled_available():
            assert get_kernel("compiled").fused_commit is True

    def test_bulk_seam_under_forced_pure_python_fallback(self):
        """End-to-end under REPRO_NO_COMPILED_KERNEL: the bulk-commit seam
        must produce byte-identical BatchResult arrays against the
        per-query reference path with no C kernel anywhere."""
        code = (
            "import numpy as np\n"
            "from repro.kernels.compiled import compiled_available\n"
            "from repro._rng import reset_default_streams\n"
            "from repro.cluster import Deployment, DeploymentConfig, hen_testbed\n"
            "from repro.sim import PoissonArrivals\n"
            "assert not compiled_available()\n"
            "def build():\n"
            "    reset_default_streams()\n"
            "    return Deployment(DeploymentConfig(models=hen_testbed(12),\n"
            "        p=4, dataset_size=2e6, seed=3, charge_scheduling=False))\n"
            "arr = PoissonArrivals(40.0, seed=9).times(300)\n"
            "slow, fast = build(), build()\n"
            "slow.run_queries(arr, 4)\n"
            "res = fast.run_queries_fast(arr, 4)\n"
            "assert res.fast_scheduled == 300\n"
            "a = [(r.query_id, r.arrival, r.finish) for r in slow.log.records]\n"
            "b = [(r.query_id, r.arrival, r.finish) for r in fast.log.records]\n"
            "assert a == b\n"
            "print('seam-fallback-ok')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={
                "REPRO_NO_COMPILED_KERNEL": "1",
                "PYTHONPATH": "src",
                "PATH": "/usr/bin:/bin",
            },
            cwd=str(__import__("pathlib").Path(__file__).resolve().parents[1]),
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "seam-fallback-ok" in proc.stdout


class TestCompiledFallbackWithoutToolchain:
    def test_disabled_compiled_kernel_degrades_gracefully(self):
        """With the build disabled, the registry refuses `compiled` with a
        clear reason and the exact kernel still serves -- the pure-python
        fallback story behind the `repro[fast]` extra."""
        code = (
            "from repro.kernels import get_kernel, available_kernels\n"
            "from repro.kernels.base import KernelUnavailableError\n"
            "from repro.kernels.compiled import compiled_available\n"
            "assert not compiled_available()\n"
            "assert 'compiled' not in available_kernels()\n"
            "try:\n"
            "    get_kernel('compiled')\n"
            "except KernelUnavailableError as exc:\n"
            "    assert 'disabled' in str(exc)\n"
            "else:\n"
            "    raise SystemExit('compiled kernel should be unavailable')\n"
            "assert get_kernel(None).name == 'exact_numpy'\n"
            "print('fallback-ok')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={
                "REPRO_NO_COMPILED_KERNEL": "1",
                "PYTHONPATH": "src",
                "PATH": "/usr/bin:/bin",
            },
            cwd=str(__import__("pathlib").Path(__file__).resolve().parents[1]),
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "fallback-ok" in proc.stdout
