"""Tests for the TCP incast transport model (repro.sim.transport)."""

import pytest

from repro.sim.transport import IncastModel, TransportConfig


class TestBurstLosses:
    def test_small_bursts_lossless(self):
        model = IncastModel()
        assert model.burst_losses(4) == 0

    def test_large_bursts_lose(self):
        model = IncastModel()
        assert model.burst_losses(500) > 0

    def test_losses_monotone_in_p(self):
        model = IncastModel()
        losses = [model.burst_losses(p) for p in (10, 100, 400, 1000)]
        assert losses == sorted(losses)

    def test_bigger_buffer_fewer_losses(self):
        small = IncastModel(TransportConfig(buffer_packets=64))
        big = IncastModel(TransportConfig(buffer_packets=1024))
        assert big.burst_losses(300) < small.burst_losses(300)

    def test_threshold_consistent(self):
        model = IncastModel()
        threshold = model.incast_threshold()
        assert model.burst_losses(threshold) == 0
        assert model.burst_losses(threshold + 1) > 0


class TestCollection:
    def test_no_loss_single_round(self):
        model = IncastModel()
        result = model.collect(8)
        assert result.rounds == 1
        assert result.packets_lost == 0
        assert result.collection_time < 0.01

    def test_incast_pays_min_rto(self):
        model = IncastModel()
        p = model.incast_threshold() * 4
        result = model.collect(p)
        assert result.rounds > 1
        assert result.collection_time >= model.config.min_rto

    def test_small_min_rto_fixes_it(self):
        """The paper's fix: reducing min RTO makes recovery take ~ms."""
        slow = IncastModel(TransportConfig(min_rto=0.200))
        fast = IncastModel(TransportConfig(min_rto=0.002))
        p = slow.incast_threshold() * 4
        t_slow = slow.mean_collection_time(p)
        t_fast = fast.mean_collection_time(p)
        assert t_fast < t_slow / 5

    def test_collection_time_grows_with_p(self):
        model = IncastModel()
        times = [model.mean_collection_time(p) for p in (8, 64, 512)]
        assert times == sorted(times)

    def test_rounds_bounded(self):
        model = IncastModel(TransportConfig(resync_fraction=1.0, max_rounds=10))
        result = model.collect(100_000)
        assert result.rounds <= 10

    def test_no_resync_single_timeout(self):
        model = IncastModel(TransportConfig(resync_fraction=0.0))
        p = model.incast_threshold() * 2
        result = model.collect(p)
        # Stranded flows retransmit staggered after one timeout; nothing
        # re-synchronises, so no further rounds are needed.
        assert result.flows_lost > 0
        assert result.collection_time >= model.config.min_rto
