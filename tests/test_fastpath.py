"""Differential tests: the batched fast path vs. the per-query reference.

The batched path (cover tables + array mirrors) is only landable if it is
*indistinguishable* from the reference path: same per-query server sets,
same latencies, same traces, same statistics, same scheduler work counters,
bit for bit.  These tests hold that line at both layers:

* scheduler level: ``CoverTable.schedule`` vs ``schedule_heap`` over random
  rings, estimates, and multi-ring overlays (hypothesis);
* deployment level: ``run_queries_fast`` vs ``run_queries`` over full
  simulated deployments, including mid-run failures (the delegation path),
  heterogeneous fleets, multiple rings, and time-varying pq.
"""

import random

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings, strategies as st

from repro.cluster import Deployment, DeploymentConfig, hen_testbed
from repro.core import CoverTable, Ring, schedule_heap
from repro.core.frontend import FrontEndConfig
from repro.sim import PoissonArrivals, batched_poisson_times


def _estimates_for(table, busy, speeds, now, dataset, fixed):
    """Per-ring estimate arrays with the reference estimator's float ops."""
    work = table.work
    wd = work * dataset
    out = []
    for rt in table.ring_tables:
        b = np.array([busy[n.name] for n in rt.nodes])
        s = np.array([speeds[n.name] for n in rt.nodes])
        out.append((np.maximum(b - now, 0.0) + fixed) + (wd / s))
    return out


def _reference_estimator(busy, speeds, now, dataset, fixed):
    def estimate(node, fraction):
        backlog = max(0.0, busy[node.name] - now)
        return backlog + fixed + (fraction * dataset) / speeds[node.name]

    return estimate


def assert_schedule_identical(h, f):
    assert h.start_id == f.start_id
    assert [n.name for n in h.assignment] == [n.name for n in f.assignment]
    assert h.finishes == f.finishes
    assert h.makespan == f.makespan
    assert h.iterations == f.iterations
    assert h.estimates == f.estimates


class TestCoverTableDifferential:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=1, max_value=32),
        p=st.integers(min_value=1, max_value=12),
    )
    def test_matches_heap_single_ring(self, seed, n, p):
        rng = random.Random(seed)
        ring = Ring.proportional([rng.uniform(0.2, 4.0) for _ in range(n)])
        busy = {nd.name: rng.uniform(0.0, 2.0) for nd in ring}
        speeds = {nd.name: nd.speed for nd in ring}
        now = rng.uniform(0.0, 1.0)
        dataset, fixed = 1e6, 0.004
        h = schedule_heap(
            ring, p, _reference_estimator(busy, speeds, now, dataset, fixed)
        )
        table = CoverTable([ring], p)
        f = table.schedule(_estimates_for(table, busy, speeds, now, dataset, fixed))
        assert_schedule_identical(h, f)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        p=st.integers(min_value=1, max_value=10),
    )
    def test_matches_heap_uniform_ring_ties(self, seed, p):
        # Uniform rings make many boundary crossings coincide: the EPS
        # tie-group logic is what is under test here.
        rng = random.Random(seed)
        n = rng.randint(2, 24)
        ring = Ring.uniform(n)
        busy = {nd.name: rng.choice([0.0, 0.5, 0.5, 1.0]) for nd in ring}
        speeds = {nd.name: nd.speed for nd in ring}
        est = _reference_estimator(busy, speeds, 0.0, 1e6, 0.0)
        h = schedule_heap(ring, p, est)
        table = CoverTable([ring], p)
        f = table.schedule(_estimates_for(table, busy, speeds, 0.0, 1e6, 0.0))
        assert_schedule_identical(h, f)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        p=st.integers(min_value=1, max_value=8),
        n_rings=st.integers(min_value=2, max_value=3),
    )
    def test_matches_heap_multi_ring(self, seed, p, n_rings):
        rng = random.Random(seed)
        rings = []
        for ri in range(n_rings):
            n = rng.randint(1, 16)
            rings.append(
                Ring.proportional(
                    [rng.uniform(0.2, 4.0) for _ in range(n)],
                    name_prefix=f"r{ri}n",
                    ring_id=ri,
                )
            )
        busy = {}
        speeds = {}
        for ring in rings:
            for nd in ring:
                busy[nd.name] = rng.uniform(0.0, 2.0)
                speeds[nd.name] = nd.speed
        est = _reference_estimator(busy, speeds, 0.0, 2e6, 0.006)
        h = schedule_heap(rings, p, est)
        table = CoverTable(rings, p)
        f = table.schedule(_estimates_for(table, busy, speeds, 0.0, 2e6, 0.006))
        assert_schedule_identical(h, f)

    def test_cache_invalidates_on_reconfig(self):
        from repro.core import CoverTableCache, RingNode

        ring = Ring.uniform(8)
        cache = CoverTableCache()
        t1 = cache.get([ring], 4)
        assert cache.get([ring], 4) is t1  # same version -> cached
        ring.add_node(RingNode("late", 0.9376))
        t2 = cache.get([ring], 4)
        assert t2 is not t1  # reconfiguration invalidated the table
        assert len(t2.ring_tables[0].nodes) == 9


def _build(n=24, p=4, seed=3, **kw):
    cfg = DeploymentConfig(
        models=hen_testbed(n),
        p=p,
        dataset_size=2e6,
        seed=seed,
        charge_scheduling=False,
        **kw,
    )
    dep = Deployment(cfg)
    for server in dep.servers.values():
        server.keep_trace = True
    return dep


def _trace_sets(dep):
    out = {}
    for name, server in dep.servers.items():
        for t in server.trace:
            out.setdefault(t.query_id, set()).add(
                (name, t.arrival, t.start, t.finish, t.work)
            )
    return out


def assert_deployments_identical(slow, fast):
    assert [
        (r.query_id, r.arrival, r.finish, r.pq, r.subqueries)
        for r in slow.log.records
    ] == [
        (r.query_id, r.arrival, r.finish, r.pq, r.subqueries)
        for r in fast.log.records
    ]
    assert slow.log.dropped == fast.log.dropped
    assert _trace_sets(slow) == _trace_sets(fast)
    assert slow.frontend.total_iterations == fast.frontend.total_iterations
    assert slow.frontend.total_estimates == fast.frontend.total_estimates
    assert slow.frontend.queries_scheduled == fast.frontend.queries_scheduled
    assert slow.ledger == fast.ledger
    for name in slow.servers:
        assert slow.servers[name].busy_until == fast.servers[name].busy_until
        assert slow.servers[name].busy_time == fast.servers[name].busy_time
        assert slow.servers[name].tasks_run == fast.servers[name].tasks_run
    for name, st_slow in slow.frontend.stats.items():
        st_fast = fast.frontend.stats[name]
        assert st_slow.speed_estimate == st_fast.speed_estimate
        assert st_slow.busy_until == st_fast.busy_until
        assert st_slow.outstanding == st_fast.outstanding
        assert st_slow.completed == st_fast.completed
        assert st_slow.last_seen == st_fast.last_seen


class TestDeploymentDifferential:
    def test_identical_latencies_and_server_sets(self):
        arrivals = PoissonArrivals(40.0, seed=9).times(600)
        slow, fast = _build(), _build()
        slow.run_queries(arrivals, 5)
        result = fast.run_queries_fast(arrivals, 5, record_assignments=True)
        assert_deployments_identical(slow, fast)
        assert result.completed == 600
        assert result.delegated == 0
        # recorded assignments agree with the executed traces
        traces = _trace_sets(fast)
        for qid, names in zip(result.query_ids, result.assignments):
            assert set(names) == {entry[0] for entry in traces[qid]}

    def test_identical_with_failures(self):
        arrivals = PoissonArrivals(30.0, seed=11).times(400)
        mid = arrivals[len(arrivals) // 3]
        pre = [t for t in arrivals if t < mid]
        post = [t for t in arrivals if t >= mid]

        def run(dep, fast):
            runner = dep.run_queries_fast if fast else dep.run_queries
            runner(pre, 5)
            dep.fail_node("node-3", mid)
            dep.fail_node("node-7", mid)
            return runner(post, 5)

        slow, fast = _build(n=16), _build(n=16)
        run(slow, False)
        result = run(fast, True)
        assert result.delegated > 0  # failures exercised the delegation path
        assert_deployments_identical(slow, fast)
        # the rngs advanced identically (failure splitting draws from them)
        assert slow.frontend.rng.random() == fast.frontend.rng.random()
        assert slow.network.rng.random() == fast.network.rng.random()

    def test_identical_with_drops(self):
        # Kill enough adjacent capacity that some dead range exceeds 1/p:
        # those queries must drop identically on both paths.
        def run(dep, fast):
            runner = dep.run_queries_fast if fast else dep.run_queries
            names = sorted(dep.servers)[:3]
            for name in names:
                dep.fail_node(name, 0.0)
            arrivals = PoissonArrivals(10.0, seed=21).times(150)
            runner(arrivals, 4)

        slow, fast = _build(n=8, p=4, seed=5), _build(n=8, p=4, seed=5)
        run(slow, False)
        run(fast, True)
        assert_deployments_identical(slow, fast)

    def test_identical_multi_ring(self):
        arrivals = PoissonArrivals(25.0, seed=13).times(300)
        slow = _build(n=20, seed=7, n_rings=2)
        fast = _build(n=20, seed=7, n_rings=2)
        slow.run_queries(arrivals, 5)
        fast.run_queries_fast(arrivals, 5)
        assert_deployments_identical(slow, fast)

    def test_identical_varying_pq(self):
        arrivals = PoissonArrivals(25.0, seed=17).times(300)
        pq_fn = lambda t: 4 + (int(t * 3) % 3)
        slow, fast = _build(p=4), _build(p=4)
        slow.run_queries(arrivals, pq_fn)
        fast.run_queries_fast(arrivals, pq_fn)
        assert_deployments_identical(slow, fast)

    def test_identical_across_membership_changes(self):
        from repro.cluster.models import MODEL_CATALOGUE

        arrivals = PoissonArrivals(30.0, seed=19).times(300)
        third = len(arrivals) // 3
        chunks = [
            arrivals[:third],
            arrivals[third : 2 * third],
            arrivals[2 * third :],
        ]

        def run(dep, fast):
            runner = dep.run_queries_fast if fast else dep.run_queries
            runner(chunks[0], 5)
            dep.add_server(MODEL_CATALOGUE["dell-2950"], now=chunks[1][0])
            runner(chunks[1], 5)
            dep.remove_server("node-2", now=chunks[2][0])
            runner(chunks[2], 5)

        slow, fast = _build(n=12, seed=23), _build(n=12, seed=23)
        run(slow, False)
        run(fast, True)
        assert_deployments_identical(slow, fast)

    def test_rejects_unsupported_frontend_config(self):
        dep = Deployment(
            DeploymentConfig(
                models=hen_testbed(8),
                p=4,
                seed=1,
                frontend=FrontEndConfig(adjust_ranges=True),
            )
        )
        with pytest.raises(ValueError, match="batched path"):
            dep.run_queries_fast([0.1], 4)

    def test_batch_result_arrays(self):
        dep = _build(n=12)
        arrivals = list(batched_poisson_times(20.0, 100, seed=3))
        result = dep.run_queries_fast(arrivals, 5)
        assert result.latencies.shape == (100,)
        assert result.completed == 100
        assert not np.isnan(result.latencies).any()
        assert result.mean_latency() == pytest.approx(
            sum(r.delay for r in dep.log.records) / 100
        )
        assert result.percentile_latency(99) >= result.percentile_latency(50)
        assert (result.pqs == 5).all()
        assert (result.query_ids >= 1).all()


# -- exact-time action queue ---------------------------------------------------
from repro.sim.fastpath import Action, CHUNK_CAP, run_queries_reference


def _interleaved_reference(dep, arrivals, pq, stimuli):
    """Reference semantics: run_query with *stimuli* = [(index, fn)] fired
    immediately before the query at that position."""
    si = 0
    stimuli = sorted(stimuli, key=lambda s: s[0])
    for q_i, t in enumerate(arrivals):
        while si < len(stimuli) and stimuli[si][0] <= q_i:
            stimuli[si][1]()
            si += 1
        dep.run_query(t, pq)
    while si < len(stimuli):
        stimuli[si][1]()
        si += 1


class TestActionQueue:
    def test_midbatch_update_visible_to_next_query(self):
        """The acceptance regression: an update landing between queries k-1
        and k is visible to query k itself -- no batch-boundary lag."""
        arrivals = PoissonArrivals(30.0, seed=7).times(200)
        k = 120
        t_u = (arrivals[k - 1] + arrivals[k]) / 2.0
        pos = 0.37

        slow, fast, plain = _build(n=10), _build(n=10), _build(n=10)
        _interleaved_reference(
            slow, arrivals, 4, [(k, lambda: slow.apply_update(t_u, at=pos))]
        )
        result = fast.run_queries_fast(
            arrivals,
            4,
            actions=[
                Action(
                    index=k,
                    time=t_u,
                    fn=lambda now: fast.apply_update(now, at=pos) or None,
                    scope="busy",
                )
            ],
        )
        assert result.actions_applied == 1
        assert_deployments_identical(slow, fast)

        # and the update really changes the very next query (visibility)
        plain.run_queries_fast(arrivals, 4)
        d_with = [r.delay for r in fast.log.records]
        d_without = [r.delay for r in plain.log.records]
        assert d_with[:k] == d_without[:k]
        assert d_with[k] != d_without[k]

    def test_membership_change_midbatch(self):
        from repro.cluster.models import MODEL_CATALOGUE

        arrivals = PoissonArrivals(25.0, seed=3).times(240)
        k1, k2 = 80, 160
        t1 = arrivals[k1 - 1]
        t2 = arrivals[k2 - 1]

        slow, fast = _build(n=12, seed=9), _build(n=12, seed=9)
        _interleaved_reference(
            slow,
            arrivals,
            5,
            [
                (k1, lambda: slow.add_server(MODEL_CATALOGUE["dell-2950"], now=t1)),
                (k2, lambda: slow.remove_server("node-2", now=t2)),
            ],
        )
        result = fast.run_queries_fast(
            arrivals,
            5,
            actions=[
                Action(
                    k1,
                    t1,
                    lambda now: fast.add_server(
                        MODEL_CATALOGUE["dell-2950"], now=now
                    )
                    and None,
                ),
                Action(
                    k2, t2, lambda now: fast.remove_server("node-2", now=now)
                ),
            ],
        )
        assert result.actions_applied == 2
        assert_deployments_identical(slow, fast)

    def test_failure_and_recovery_midbatch(self):
        arrivals = PoissonArrivals(25.0, seed=13).times(300)
        k1, k2 = 90, 210
        t1, t2 = arrivals[k1 - 1], arrivals[k2 - 1]
        names = ("node-3", "node-7")

        def fail_all(dep, now):
            for x in names:
                dep.fail_node(x, now)

        def recover_all(dep, now):
            for x in names:
                dep.recover_node(x, now)

        slow, fast = _build(n=10, seed=5), _build(n=10, seed=5)
        _interleaved_reference(
            slow,
            arrivals,
            5,
            [(k1, lambda: fail_all(slow, t1)), (k2, lambda: recover_all(slow, t2))],
        )
        result = fast.run_queries_fast(
            arrivals,
            5,
            actions=[
                Action(k1, t1, lambda now: fail_all(fast, now), "values"),
                Action(k2, t2, lambda now: recover_all(fast, now), "values"),
            ],
        )
        assert result.delegated > 0  # failure window went through fall-back
        assert_deployments_identical(slow, fast)
        assert slow.frontend.rng.random() == fast.frontend.rng.random()
        assert slow.network.rng.random() == fast.network.rng.random()

    def test_action_changes_pq_at_exact_index(self):
        arrivals = PoissonArrivals(20.0, seed=21).times(150)
        k = 70
        slow, fast = _build(n=12), _build(n=12)
        slow.run_queries(arrivals, lambda t: 4 if t < arrivals[k] else 6)
        result = fast.run_queries_fast(
            arrivals,
            4,
            actions=[Action(k, arrivals[k - 1], lambda now: 6, "none")],
        )
        assert list(result.pqs[:k]) == [4] * k
        assert list(result.pqs[k:]) == [6] * (len(arrivals) - k)
        assert_deployments_identical(slow, fast)

    def test_trailing_and_leading_actions(self):
        arrivals = PoissonArrivals(20.0, seed=2).times(50)
        fired = []
        fast = _build(n=8)
        result = fast.run_queries_fast(
            arrivals,
            4,
            actions=[
                Action(0, 0.0, lambda now: fired.append(("head", now)) or None, "none"),
                Action(
                    10_000, 99.0, lambda now: fired.append(("tail", now)) or None, "none"
                ),
            ],
        )
        assert result.actions_applied == 2
        assert [k for k, _ in fired] == ["head", "tail"]
        assert result.completed == 50

    def test_reference_engine_matches_fast_engine_with_actions(self):
        arrivals = PoissonArrivals(30.0, seed=17).times(200)
        k = 66
        t_u = arrivals[k - 1]

        def acts(dep):
            return [
                Action(
                    k, t_u, lambda now: dep.apply_update(now, at=0.5) or None, "busy"
                )
            ]

        a, b = _build(n=10, seed=11), _build(n=10, seed=11)
        ra = a.run_queries_fast(arrivals, 4, actions=acts(a))
        rb = run_queries_reference(b, arrivals, 4, actions=acts(b))
        assert_deployments_identical(a, b)
        assert list(ra.query_ids) == list(rb.query_ids)
        assert [x for x in ra.latencies] == [x for x in rb.latencies]
        assert rb.fast_scheduled == 0 and rb.delegated == len(arrivals)

    def test_rejects_bad_actions(self):
        dep = _build(n=8)
        with pytest.raises(ValueError, match="scope"):
            Action(0, 0.0, lambda now: None, "bogus")
        with pytest.raises(ValueError, match="index"):
            Action(-1, 0.0, lambda now: None)
        with pytest.raises(TypeError, match="Action"):
            dep.run_queries_fast([0.1], 4, actions=[object()])


class TestChunkedAccounting:
    def test_hot_servers_repeated_in_chunk_stay_bitwise(self):
        """Tiny pool + pq close to n: every server is hit many times per
        chunk and repeatedly within single queries; float accumulation
        order (np.add.at) must still match the sequential reference."""
        arrivals = PoissonArrivals(60.0, seed=31).times(500)
        slow, fast = _build(n=4, p=3, seed=3), _build(n=4, p=3, seed=3)
        slow.run_queries(arrivals, 3)
        fast.run_queries_fast(arrivals, 3)
        assert_deployments_identical(slow, fast)

    def test_chunk_sizes_histogram(self):
        arrivals = PoissonArrivals(40.0, seed=9).times(300)
        fast = _build(n=10)
        k = 100
        result = fast.run_queries_fast(
            arrivals,
            4,
            actions=[Action(k, arrivals[k - 1], lambda now: None, "none")],
        )
        # chunks cut at the action and at batch end
        assert sum(result.chunk_sizes) == result.fast_scheduled == 300
        assert result.chunk_sizes == [100, 200]
        assert all(c <= CHUNK_CAP for c in result.chunk_sizes)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**10),
        n=st.integers(min_value=6, max_value=14),
        idxs=st.lists(
            st.integers(min_value=0, max_value=119), min_size=1, max_size=4
        ),
    )
    def test_random_action_schedules_differential(self, seed, n, idxs):
        arrivals = PoissonArrivals(25.0, seed=seed).times(120)
        kinds = ["update", "fail", "recover"]
        slow, fast = _build(n=n, seed=seed + 1), _build(n=n, seed=seed + 1)
        name = sorted(slow.servers)[seed % n]

        def mk(dep, i, kind):
            t = arrivals[i - 1] if i else 0.0
            if kind == "update":
                return (
                    lambda now: dep.apply_update(now, at=(seed % 97) / 97.0)
                    or None
                ), "busy", t
            if kind == "fail":
                return (lambda now: dep.fail_node(name, now)), "values", t
            return (
                lambda now: dep.recover_node(name, now)
                if dep.servers[name].failed
                else None
            ), "values", t

        stimuli, fast_actions = [], []
        for j, i in enumerate(sorted(idxs)):
            kind = kinds[(seed + j) % 3]
            fn_s, _, t = mk(slow, i, kind)
            stimuli.append((i, lambda fn=fn_s, tt=t: fn(tt)))
            fn_f, scope, t = mk(fast, i, kind)
            fast_actions.append(Action(i, t, fn_f, scope))
        _interleaved_reference(slow, arrivals, 4, stimuli)
        fast.run_queries_fast(arrivals, 4, actions=fast_actions)
        assert_deployments_identical(slow, fast)


class TestEngineEdges:
    def test_chunk_cap_splits_chunks(self, monkeypatch):
        import repro.sim.fastpath as fp

        monkeypatch.setattr(fp, "CHUNK_CAP", 64)
        arrivals = PoissonArrivals(30.0, seed=5).times(200)
        slow, fast = _build(n=10), _build(n=10)
        slow.run_queries(arrivals, 4)
        result = fast.run_queries_fast(arrivals, 4)
        assert max(result.chunk_sizes) <= 64
        assert len(result.chunk_sizes) >= 4
        assert sum(result.chunk_sizes) == 200
        assert_deployments_identical(slow, fast)

    def test_multi_lane_servers_fall_back_to_reference(self):
        slow, fast = _build(n=8), _build(n=8)
        for dep in (slow, fast):
            s = dep.servers["node-0"]
            s.cores = 2
            s._lane_busy_until = [0.0, 0.0]
        arrivals = PoissonArrivals(20.0, seed=3).times(80)
        slow.run_queries(arrivals, 4)
        result = fast.run_queries_fast(arrivals, 4)
        assert result.fast_scheduled == 0  # routed through the reference path
        assert result.completed == 80
        assert_deployments_identical(slow, fast)

    def test_pq_below_stored_level_raises(self):
        dep = _build(n=10, p=5)
        with pytest.raises(ValueError, match="below stored partitioning"):
            dep.run_queries_fast([0.1, 0.2], 3)
