"""Tests for multiple front-end scheduling (repro.cluster.multifrontend)."""

import random

import pytest

from repro.cluster.multifrontend import MultiFrontEndDeployment
from repro.sim import PoissonArrivals


def make_speeds(n=18, seed=2):
    rng = random.Random(seed)
    return [rng.uniform(300_000.0, 900_000.0) for _ in range(n)]


class TestBasics:
    def test_queries_complete(self):
        dep = MultiFrontEndDeployment(make_speeds(), p=3, n_frontends=2)
        dep.run(PoissonArrivals(5.0, seed=1).times(60))
        assert len(dep.log.records) == 60
        assert all(r.delay > 0 for r in dep.log.records)

    def test_round_robin_across_frontends(self):
        dep = MultiFrontEndDeployment(make_speeds(), p=3, n_frontends=3)
        dep.run(PoissonArrivals(5.0, seed=1).times(30))
        # Every front-end scheduled its share.
        for fe in dep.frontends:
            assert fe.queries_scheduled == 10

    def test_single_frontend_allowed(self):
        dep = MultiFrontEndDeployment(make_speeds(), p=3, n_frontends=1)
        dep.run(PoissonArrivals(5.0, seed=1).times(20))
        assert dep.estimate_divergence() == 0.0

    def test_invalid_frontend_count(self):
        with pytest.raises(ValueError):
            MultiFrontEndDeployment(make_speeds(), p=3, n_frontends=0)


class TestDecoupling:
    def test_estimates_stay_coherent(self):
        """Slow EWMAs keep independent front-ends' speed estimates close
        (the paper's anti-oscillation prescription)."""
        dep = MultiFrontEndDeployment(
            make_speeds(), p=3, n_frontends=3, ewma_alpha=0.05
        )
        dep.run(PoissonArrivals(8.0, seed=3).times(300))
        assert dep.estimate_divergence() < 0.25

    def test_fast_ewma_diverges_more(self):
        slow = MultiFrontEndDeployment(
            make_speeds(), p=3, n_frontends=3, ewma_alpha=0.05, seed=4
        )
        fast = MultiFrontEndDeployment(
            make_speeds(), p=3, n_frontends=3, ewma_alpha=0.9, seed=4
        )
        arrivals = PoissonArrivals(8.0, seed=3).times(300)
        slow.run(arrivals)
        fast.run(arrivals)
        assert slow.estimate_divergence() <= fast.estimate_divergence() + 0.05

    def test_decoupled_close_to_shared_view(self):
        """Decoupled scheduling costs little vs a perfectly shared view at
        moderate load (Section 4.8.3's claim)."""
        arrivals = PoissonArrivals(4.0, seed=5).times(250)
        shared = MultiFrontEndDeployment(
            make_speeds(), p=3, n_frontends=2, shared_view=True, seed=6
        )
        decoupled = MultiFrontEndDeployment(
            make_speeds(), p=3, n_frontends=2, shared_view=False, seed=6
        )
        d_shared = shared.run(list(arrivals)).raw_mean_delay()
        d_dec = decoupled.run(list(arrivals)).raw_mean_delay()
        assert d_dec < d_shared * 2.5

    def test_utilisation_reported(self):
        dep = MultiFrontEndDeployment(make_speeds(), p=3, n_frontends=2)
        dep.run(PoissonArrivals(5.0, seed=1).times(50))
        assert 0.0 < dep.utilisation() <= 1.0
