"""Tests for PPS crypto primitives (repro.pps.crypto)."""

import pytest

from repro.pps.crypto import (
    FeistelPermutation,
    derive_key,
    keygen,
    keygen_deterministic,
    prf,
    prf_bit,
    prf_int,
)


class TestKeys:
    def test_keygen_length(self):
        assert len(keygen()) == 20
        assert len(keygen(32)) == 32

    def test_keygen_random(self):
        assert keygen() != keygen()

    def test_deterministic_keygen(self):
        assert keygen_deterministic("seed") == keygen_deterministic("seed")
        assert keygen_deterministic("a") != keygen_deterministic("b")

    def test_deterministic_keygen_length(self):
        assert len(keygen_deterministic("x", 64)) == 64

    def test_derive_key_independent(self, key):
        k1 = derive_key(key, "one")
        k2 = derive_key(key, "two")
        assert k1 != k2
        assert derive_key(key, "one") == k1


class TestPRF:
    def test_deterministic(self, key):
        assert prf(key, "msg") == prf(key, "msg")

    def test_key_sensitivity(self, key):
        other = keygen_deterministic("other")
        assert prf(key, "msg") != prf(other, "msg")

    def test_message_sensitivity(self, key):
        assert prf(key, "a") != prf(key, "b")

    def test_accepts_bytes_and_str(self, key):
        assert prf(key, "msg") == prf(key, b"msg")

    def test_output_length(self, key):
        assert len(prf(key, "x")) == 20  # SHA-1

    def test_prf_int_in_range(self, key):
        for i in range(100):
            assert 0 <= prf_int(key, f"m{i}", 97) < 97

    def test_prf_int_roughly_uniform(self, key):
        buckets = [0] * 10
        for i in range(5000):
            buckets[prf_int(key, f"m{i}", 10)] += 1
        assert min(buckets) > 300  # expectation 500 each

    def test_prf_int_invalid_modulus(self, key):
        with pytest.raises(ValueError):
            prf_int(key, "m", 0)

    def test_prf_bit(self, key):
        bits = [prf_bit(key, f"m{i}") for i in range(2000)]
        assert set(bits) == {0, 1}
        assert 800 < sum(bits) < 1200


class TestFeistelPermutation:
    @pytest.mark.parametrize("domain", [1, 2, 7, 64, 100, 1000, 4097])
    def test_is_bijection(self, key, domain):
        perm = FeistelPermutation(key, domain)
        images = {perm.encrypt(x) for x in range(domain)}
        assert images == set(range(domain))

    @pytest.mark.parametrize("domain", [7, 100, 1000])
    def test_decrypt_inverts(self, key, domain):
        perm = FeistelPermutation(key, domain)
        for x in range(domain):
            assert perm.decrypt(perm.encrypt(x)) == x

    def test_different_keys_differ(self, key):
        a = FeistelPermutation(derive_key(key, "a"), 1000)
        b = FeistelPermutation(derive_key(key, "b"), 1000)
        mapped_same = sum(1 for x in range(1000) if a.encrypt(x) == b.encrypt(x))
        assert mapped_same < 30  # ~1 expected by chance

    def test_looks_shuffled(self, key):
        perm = FeistelPermutation(key, 1000)
        fixed_points = sum(1 for x in range(1000) if perm.encrypt(x) == x)
        assert fixed_points < 20  # expectation ~1

    def test_domain_bounds_enforced(self, key):
        perm = FeistelPermutation(key, 10)
        with pytest.raises(ValueError):
            perm.encrypt(10)
        with pytest.raises(ValueError):
            perm.decrypt(-1)

    def test_invalid_domain(self, key):
        with pytest.raises(ValueError):
            FeistelPermutation(key, 0)
