"""Property-based tests (hypothesis) for the core invariants.

These are the invariants DESIGN.md section 6 calls out: ring partition
exactness, sub-query coverage, scheduler optimality, failure fall-back
coverage, arc algebra, and the PPS schemes' correctness.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Ring, RingNode, generate_objects
from repro.core.adjust import adjust_ranges, plan_from_schedule, split_slowest
from repro.core.failures import split_failed
from repro.core.ids import Arc, cw_distance, frac, in_arc
from repro.core.node import RoarNode, SubQuery, dedup_matches
from repro.core.scheduler import schedule_heap, schedule_naive
from repro.pps.crypto import FeistelPermutation, keygen_deterministic
from repro.pps.schemes import BloomKeywordScheme, EqualityScheme

# -- strategies -----------------------------------------------------------

points = st.floats(min_value=0.0, max_value=1.0, exclude_max=True)
lengths = st.floats(min_value=0.0, max_value=1.0)
speeds_lists = st.lists(
    st.floats(min_value=0.1, max_value=10.0), min_size=2, max_size=20
)


class TestArcAlgebra:
    @given(x=st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_frac_in_unit_interval(self, x):
        out = frac(x)
        assert 0.0 <= out < 1.0

    @given(a=points, b=points)
    def test_distances_complementary(self, a, b):
        d = cw_distance(a, b)
        assert 0.0 <= d < 1.0
        # The two distances sum to 0 (same point, within float resolution)
        # or 1 (a full turn).
        total = d + cw_distance(b, a)
        assert min(abs(total), abs(total - 1.0)) < 1e-9

    @given(p=points, s=points, ln=lengths)
    def test_in_arc_matches_exact_arithmetic_off_boundary(self, p, s, ln):
        """``in_arc`` vs exact rational arithmetic, away from float dust.

        Containment is positional (``point`` against ``start + length``),
        chosen because it agrees with bisect ring ownership at every
        boundary (see ``in_arc``'s docstring; hypothesis falsified both
        the old distance-based formula *and* the partition invariant it
        was supposed to uphold -- ``cw_distance`` can round an offset onto
        exactly ``length`` from below, or collapse a ``-1e-83`` offset to
        ``0.0``).  No float formula can match real arithmetic within an
        ulp of the half-open end boundary, so the contract is: exact
        agreement everywhere except that dust zone.
        """
        from fractions import Fraction

        if ln >= 1.0:
            assert in_arc(p, s, ln)
            return
        offset = (Fraction(p) - Fraction(s)) % 1
        if abs(offset - Fraction(ln)) > Fraction(1, 10**12):
            assert in_arc(p, s, ln) == (offset < Fraction(ln))
        # any arc longer than the dust zone owns its own start point
        if ln > 1e-9:
            assert in_arc(s, s, ln)

    @given(s=points, ln=st.floats(min_value=0.01, max_value=0.99), at=points)
    def test_split_preserves_length(self, s, ln, at):
        arc = Arc(s, ln)
        offset = cw_distance(arc.start, at)
        if offset > ln:
            return  # split point outside
        lo, hi = arc.split(at)
        assert lo.length + hi.length == pytest.approx(ln, abs=1e-9)

    @given(
        s1=points,
        l1=st.floats(min_value=0.01, max_value=0.8),
        s2=points,
        l2=st.floats(min_value=0.01, max_value=0.8),
    )
    def test_intersection_symmetric(self, s1, l1, s2, l2):
        a, b = Arc(s1, l1), Arc(s2, l2)
        assert a.intersects(b) == b.intersects(a)
        assert a.intersection_length(b) == pytest.approx(
            b.intersection_length(a), abs=1e-9
        )

    @given(
        s1=points,
        l1=st.floats(min_value=0.01, max_value=0.8),
        s2=points,
        l2=st.floats(min_value=0.01, max_value=0.8),
    )
    def test_intersection_length_bounded(self, s1, l1, s2, l2):
        a, b = Arc(s1, l1), Arc(s2, l2)
        overlap = a.intersection_length(b)
        assert -1e-12 <= overlap <= min(l1, l2) + 1e-9
        if overlap > 1e-9:
            assert a.intersects(b)


class TestRingPartition:
    @given(speeds=speeds_lists)
    def test_proportional_ranges_partition(self, speeds):
        ring = Ring.proportional(speeds)
        ring.validate()
        total = sum(ring.range_of(n).length for n in ring)
        assert total == pytest.approx(1.0, abs=1e-9)

    @given(speeds=speeds_lists, point=points)
    def test_exactly_one_owner(self, speeds, point):
        ring = Ring.proportional(speeds)
        owner = ring.node_in_charge(point)
        owners = [n for n in ring if ring.range_of(n).contains(point)]
        assert owners == [owner]


class TestCoverageInvariant:
    @settings(max_examples=40, deadline=None)
    @given(
        pq=st.integers(min_value=1, max_value=12),
        start=points,
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_subquery_windows_partition_objects(self, pq, start, seed):
        rng = random.Random(seed)
        oids = [rng.random() for _ in range(100)]
        subs = [
            SubQuery.normal(1, frac(start + i / pq), pq, index=i)
            for i in range(pq)
        ]
        for oid in oids:
            assert sum(1 for s in subs if dedup_matches(oid, s)) == 1

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=4, max_value=16),
        p=st.integers(min_value=2, max_value=6),
    )
    def test_stored_system_exact_coverage(self, seed, n, p):
        rng = random.Random(seed)
        ring = Ring.proportional([rng.uniform(0.5, 2.0) for _ in range(n)])
        objects = generate_objects(120, rng)
        stores = {}
        for node in ring:
            store = RoarNode(node)
            store.load_objects(objects, p, ring.range_of(node))
            stores[node.name] = store
        start = rng.random()
        matched = {}
        for i in range(p):
            dest = frac(start + i / p)
            sub = SubQuery.normal(1, dest, p, index=i)
            for obj in stores[ring.node_in_charge(dest).name].execute(sub):
                matched[obj.key] = matched.get(obj.key, 0) + 1
        assert len(matched) == len(objects)
        assert set(matched.values()) <= {1}


class TestSchedulerOptimality:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=2, max_value=24),
    )
    def test_heap_equals_naive(self, seed, n):
        rng = random.Random(seed)
        ring = Ring.proportional([rng.uniform(0.2, 4.0) for _ in range(n)])
        p = rng.randint(1, n)
        est = lambda node, fr: fr / node.speed
        h = schedule_heap(ring, p, est)
        nv = schedule_naive(ring, p, est)
        assert h.makespan == pytest.approx(nv.makespan, rel=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=3, max_value=16),
    )
    def test_optimisations_never_hurt(self, seed, n):
        rng = random.Random(seed)
        ring = Ring.proportional([rng.uniform(0.2, 4.0) for _ in range(n)])
        p = rng.randint(2, n)
        est = lambda node, fr: fr / node.speed
        result = schedule_heap(ring, p, est)
        plan = plan_from_schedule(result, est)
        before = plan.makespan
        adjusted = adjust_ranges(plan, ring, est, p)
        assert adjusted.makespan <= before + 1e-12
        split = split_slowest(adjusted, ring, est, p, max_splits=1)
        assert split.makespan <= adjusted.makespan + 1e-12
        assert split.total_width() == pytest.approx(1.0, abs=1e-9)


class TestFailureFallback:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        kill=st.integers(min_value=0, max_value=100),
    )
    def test_coverage_survives_one_failure(self, seed, kill):
        rng = random.Random(seed)
        n, p = 16, 4
        ring = Ring.proportional([rng.uniform(0.5, 2.0) for _ in range(n)])
        objects = generate_objects(150, rng)
        stores = {}
        for node in ring:
            store = RoarNode(node)
            store.load_objects(objects, p, ring.range_of(node))
            stores[node.name] = store
        ring.nodes()[kill % n].alive = False

        start = rng.random()
        subs = [
            SubQuery.normal(1, frac(start + i / p), p, index=i) for i in range(p)
        ]
        resolved = split_failed(ring, subs, p, rng=rng)
        matched = {}
        for sub, node in resolved:
            assert node.alive
            for obj in stores[node.name].execute(sub):
                matched[obj.key] = matched.get(obj.key, 0) + 1
        assert len(matched) == len(objects)
        assert set(matched.values()) <= {1}


class TestMembershipChurnInvariants:
    """Invariants under adversarial interleavings of membership operations.

    For random sequences of add_server / remove_server / fail / recover /
    rebuild / reconfigure(p) against a live deployment with real object
    stores:

    * the ring always partitions [0, 1) exactly (no gaps, no overlap);
    * whenever reconfiguration is stable, every node holds exactly the
      replicas its range demands at the stored level -- nothing beyond the
      replication intent;
    * every query either achieves full single-match coverage of the object
      set, or the failure fall-back raises and the deployment drops the
      query into the yield accounting -- never silent partial results.
    """

    OPS = ("add", "remove", "fail", "recover", "rebuild", "reconfig")

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        ops=st.lists(
            st.tuples(
                st.sampled_from(OPS), st.integers(min_value=0, max_value=2**16)
            ),
            min_size=3,
            max_size=8,
        ),
    )
    def test_churn_preserves_partition_and_coverage(self, seed, ops):
        from repro.cluster import Deployment, DeploymentConfig, hen_testbed
        from repro.core.failures import FailureCoverageError
        from repro.core.reconfig import ReconfigPhase

        rng = random.Random(seed)
        dep = Deployment(
            DeploymentConfig(
                models=hen_testbed(8),
                p=3,
                dataset_size=1e6,
                seed=seed,
                store_objects=True,
                n_objects_stored=60,
                charge_scheduling=False,
            )
        )
        now = 0.0
        for op, op_seed in ops:
            now += 1.0
            op_rng = random.Random(op_seed)
            self._apply(dep, op, op_rng, now)
            for ring_obj in dep.rings:
                ring_obj.validate()  # exact partition, sorted, no duplicates
            rc = dep.reconfig
            if rc is not None and rc.phase == ReconfigPhase.STABLE:
                self._check_replication_intent(dep)
            self._check_query_coverage_or_drop(dep, op_rng, now)

    def _apply(self, dep, op, rng, now):
        from repro.cluster.models import MODEL_CATALOGUE
        from repro.core.reconfig import ReconfigPhase

        ring = dep.rings[0]
        if op == "add":
            dep.add_server(MODEL_CATALOGUE["dell-1850"], now=now)
        elif op == "remove":
            alive = [n.name for n in ring if dep.servers[n.name].failed is False]
            if len(ring) > 4 and alive:
                dep.remove_server(rng.choice(sorted(alive)), now=now)
        elif op == "fail":
            alive = sorted(
                name for name, s in dep.servers.items() if not s.failed
            )
            if len(alive) > 2:
                dep.fail_node(rng.choice(alive), now)
        elif op == "recover":
            dead = sorted(name for name, s in dep.servers.items() if s.failed)
            if dead:
                dep.recover_node(rng.choice(dead), now)
        elif op == "rebuild":
            dead = sorted(name for name, s in dep.servers.items() if s.failed)
            if dead and len(ring) > 4:
                dep.handle_long_term_failure(dead[0], now=now)
        elif op == "reconfig":
            rc = dep.reconfig
            if rc is not None and rc.phase == ReconfigPhase.STABLE:
                p_new = rng.randint(2, max(2, min(len(ring), 5)))
                if p_new != rc.p_target:
                    rc.request_p(p_new)
                    for node in list(rc.ring):
                        rc.node_step(node.name)

    def _check_replication_intent(self, dep):
        # Replicas may exceed the intent transiently (Section 4.5: surplus
        # is dropped lazily after range shrinks), but an object the stored
        # level demands must NEVER be missing -- that would break coverage.
        ring = dep.rings[0]
        rc = dep.reconfig
        p_store = rc.p_store
        for node in ring:
            store = dep.stores[node.name]
            expected = {
                obj.key
                for obj in rc.objects
                if store.should_store(obj, p_store, ring.range_of(node))
            }
            actual = {obj.key for obj in store.store}
            assert expected <= actual, (
                f"{node.name} is missing replicas its range demands at "
                f"p={p_store:g}: {expected - actual}"
            )

    def _check_query_coverage_or_drop(self, dep, rng, now):
        from repro.core.failures import FailureCoverageError

        ring = dep.rings[0]
        rc = dep.reconfig
        pq = int(math.ceil(rc.safe_pq - 1e-9))
        start = rng.random()
        subs = [
            SubQuery.normal(1, frac(start + i / pq), pq, index=i)
            for i in range(pq)
        ]
        try:
            resolved = split_failed(ring, subs, rc.p_store, rng=rng)
        except FailureCoverageError:
            # The probe raising is placement-dependent (its own rng and
            # start); only a *structural* hole -- a contiguous dead run at
            # least one replication arc wide, which every query's sub-query
            # grid must hit and no placement can bridge -- guarantees the
            # deployment drops.  There, the yield-accounting path must
            # drop the query, never serve partial results.
            if dep.max_dead_range() >= 1.0 / rc.p_store:
                dropped_before = dep.log.dropped
                assert dep.run_query(now, pq) is None
                assert dep.log.dropped == dropped_before + 1
            return
        matched: dict = {}
        for sub, node in resolved:
            assert node.alive, "fall-back routed a sub-query to a dead node"
            for obj in dep.stores[node.name].execute(sub):
                matched[obj.key] = matched.get(obj.key, 0) + 1
        assert len(matched) == len(rc.objects), "incomplete harvest"
        assert set(matched.values()) <= {1}, "object matched more than once"


class TestPRPProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        domain=st.integers(min_value=1, max_value=512),
        seed=st.text(min_size=1, max_size=8),
    )
    def test_feistel_bijective(self, domain, seed):
        perm = FeistelPermutation(keygen_deterministic(seed), domain)
        seen = set()
        for x in range(domain):
            y = perm.encrypt(x)
            assert 0 <= y < domain
            assert perm.decrypt(y) == x
            seen.add(y)
        assert len(seen) == domain


class TestSchemeProperties:
    @settings(max_examples=30, deadline=None)
    @given(value=st.text(min_size=0, max_size=40))
    def test_equality_roundtrip(self, value):
        scheme = EqualityScheme(keygen_deterministic("prop"))
        m = scheme.encrypt_metadata(value)
        assert scheme.match(m, scheme.encrypt_query(value))

    @settings(max_examples=25, deadline=None)
    @given(
        words=st.lists(
            st.text(
                alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
                min_size=1,
                max_size=10,
            ),
            min_size=1,
            max_size=6,
            unique=True,
        )
    )
    def test_bloom_no_false_negatives(self, words):
        scheme = BloomKeywordScheme(
            keygen_deterministic("prop"), max_words=6, pad_filters=False
        )
        m = scheme.encrypt_metadata(words)
        for w in words:
            assert scheme.match(m, scheme.encrypt_query(w))
