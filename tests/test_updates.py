"""Tests for update propagation and rack awareness (repro.core.updates)."""

import random

import pytest

from repro.core import Ring, generate_objects
from repro.core.updates import (
    PropagationReport,
    RackLayout,
    propagate_many,
    propagate_update,
)
from repro.core.objects import DataObject


@pytest.fixture
def ring():
    return Ring.uniform(16)


class TestRackLayout:
    def test_aligned_groups_consecutive(self, ring):
        layout = RackLayout(ring, rack_size=4, aligned=True)
        nodes = ring.nodes()
        assert layout.rack_of[nodes[0].name] == layout.rack_of[nodes[3].name]
        assert layout.rack_of[nodes[0].name] != layout.rack_of[nodes[4].name]
        assert layout.n_racks() == 4

    def test_striped_scatters(self, ring):
        layout = RackLayout(ring, rack_size=4, aligned=False)
        nodes = ring.nodes()
        assert layout.rack_of[nodes[0].name] != layout.rack_of[nodes[1].name]

    def test_invalid_rack_size(self, ring):
        with pytest.raises(ValueError):
            RackLayout(ring, rack_size=0)

    def test_racks_spanned(self, ring):
        layout = RackLayout(ring, rack_size=4, aligned=True)
        nodes = ring.nodes()
        assert layout.racks_spanned(nodes[:4]) == 1
        assert layout.racks_spanned(nodes[2:6]) == 2


class TestPropagation:
    def test_all_holders_written(self, ring, rng):
        layout = RackLayout(ring, rack_size=4)
        obj = DataObject(oid=0.1, size=100)
        report = propagate_update(ring, layout, obj, p=4)
        # Arc of 1/4 over 16 uniform nodes: 4 full + 1 straddling = 5.
        assert report.replicas_written == 5
        assert report.total_bytes == 500

    def test_ring_forward_mostly_intra_rack(self, ring):
        layout = RackLayout(ring, rack_size=4, aligned=True)
        obj = DataObject(oid=0.0, size=100)
        report = propagate_update(ring, layout, obj, p=4, strategy="ring-forward")
        # Injection crosses once; consecutive hops cross at most once more
        # (the arc spans at most 2 racks when aligned).
        assert report.cross_rack_bytes <= 2 * obj.size

    def test_backend_push_crosses_per_replica(self, ring):
        layout = RackLayout(ring, rack_size=4, aligned=True)
        obj = DataObject(oid=0.0, size=100)
        report = propagate_update(ring, layout, obj, p=4, strategy="backend-push")
        assert report.cross_rack_bytes == report.replicas_written * obj.size

    def test_shared_fs_pays_upload_too(self, ring):
        layout = RackLayout(ring, rack_size=4, aligned=True)
        obj = DataObject(oid=0.0, size=100)
        report = propagate_update(ring, layout, obj, p=4, strategy="shared-fs")
        assert report.total_bytes == (report.replicas_written + 1) * obj.size

    def test_alignment_reduces_cross_rack(self, ring, rng):
        objects = generate_objects(100, rng, size=100)
        aligned = RackLayout(ring, rack_size=4, aligned=True)
        striped = RackLayout(ring, rack_size=4, aligned=False)
        a = propagate_many(ring, aligned, objects, p=4, strategy="ring-forward")
        s = propagate_many(ring, striped, objects, p=4, strategy="ring-forward")
        assert a.cross_rack_bytes < s.cross_rack_bytes * 0.8

    def test_ring_forward_beats_backend_cross_sectionally(self, ring, rng):
        """The Section 4.9.2 claim: with rack-aligned placement the
        peer-to-peer forwarding uses ~l+1 cross-rack copies per update
        instead of r."""
        objects = generate_objects(100, rng, size=100)
        layout = RackLayout(ring, rack_size=4, aligned=True)
        fwd = propagate_many(ring, layout, objects, p=4, strategy="ring-forward")
        push = propagate_many(ring, layout, objects, p=4, strategy="backend-push")
        assert fwd.cross_rack_bytes < push.cross_rack_bytes
        assert fwd.total_bytes == push.total_bytes  # same replicas land

    def test_dead_nodes_skipped(self, ring):
        layout = RackLayout(ring, rack_size=4)
        ring.nodes()[0].alive = False
        obj = DataObject(oid=0.99, size=100)
        report = propagate_update(ring, layout, obj, p=4)
        names = {n.name for n in ring.nodes_covering(
            __import__("repro.core.objects", fromlist=["replication_range"]).replication_range(obj, 4))}
        assert report.replicas_written < len(names) or "node-0" not in names

    def test_unknown_strategy(self, ring):
        layout = RackLayout(ring, rack_size=4)
        with pytest.raises(ValueError):
            propagate_update(ring, layout, DataObject(oid=0.1), 4, strategy="carrier-pigeon")

    def test_report_merge(self):
        a = PropagationReport(1, 100, 50, 2)
        b = PropagationReport(2, 200, 100, 3)
        m = a.merged(b)
        assert (m.replicas_written, m.total_bytes, m.cross_rack_bytes, m.hops) == (
            3,
            300,
            150,
            5,
        )
