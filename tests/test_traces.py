"""Tests for the real-trace replay engine (registry, loaders, record/replay)."""

import os
import subprocess
import sys

import pytest

np = pytest.importorskip("numpy")

from repro.scenarios import (
    EventSpec,
    Scenario,
    UpdateSpec,
    WorkloadSpec,
    execute_scenario,
    scenario_from_dict,
    scenario_to_dict,
    trace_scenario,
)
from repro.traces import (
    CsvTraceLoader,
    JsonlTraceLoader,
    Trace,
    TraceFormatError,
    TraceLoader,
    TraceSpec,
    canonical_spec,
    get_loader,
    infer_loader,
    is_known_loader,
    is_recording,
    load_trace,
    loader_names,
    loader_specs,
    read_recording,
    recording_to_archive,
    register_loader,
    replay_recording,
)
from repro.traces import registry as trace_registry


def small(name="t", **kw):
    defaults = dict(
        n_servers=8,
        p=3,
        dataset_size=1e6,
        seed=5,
        workload=WorkloadSpec(kind="poisson", rate=8.0, duration=6.0),
    )
    defaults.update(kw)
    return Scenario(name=name, **defaults)


def write_csv(tmp_path, text, name="trace.csv"):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


GOLDEN_CSV = (
    "time,kind,pos\n"
    "0.0,query,\n"
    "0.5,update,0.25\n"
    "1.0,,\n"
    "2.0,write,1.75\n"
    "3.5,request,\n"
)


class TestTrace:
    def test_validation(self):
        with pytest.raises(ValueError, match="sorted ascending"):
            Trace(arrivals=(2.0, 1.0))
        with pytest.raises(ValueError, match="non-negative"):
            Trace(arrivals=(-1.0, 2.0))
        with pytest.raises(ValueError, match="one-dimensional"):
            Trace(arrivals=[[0.0, 1.0]])
        with pytest.raises(ValueError, match=r"outside \[0, 1\)"):
            Trace(arrivals=(0.0,), updates=((1.0, 1.5),))
        with pytest.raises(ValueError, match="sorted by time"):
            Trace(arrivals=(0.0,), updates=((2.0, 0.5), (1.0, 0.5)))

    def test_properties(self):
        t = Trace(arrivals=(0.0, 1.0, 2.0), updates=((3.0, 0.5),))
        assert (t.n_queries, t.n_updates) == (3, 1)
        assert t.horizon == 3.0  # last stimulus is the update
        assert Trace(arrivals=()).horizon == 0.0

    def test_normalised_rebase_and_scale(self):
        t = Trace(arrivals=(100.0, 101.0, 104.0), updates=((102.0, 0.5),))
        n = t.normalised(time_scale=0.5)
        assert n.arrivals.tolist() == [0.0, 0.5, 2.0]
        assert n.updates == ((1.0, 0.5),)
        raw = t.normalised(rebase=False)
        assert raw.arrivals[0] == 100.0

    def test_normalised_limit_drops_trailing_updates(self):
        t = Trace(arrivals=(0.0, 1.0, 5.0), updates=((0.5, 0.1), (4.0, 0.2)))
        n = t.normalised(limit=2)
        assert n.n_queries == 2
        assert n.updates == ((0.5, 0.1),)  # the t=4 update is past t=1
        with pytest.raises(ValueError, match="time_scale"):
            t.normalised(time_scale=0.0)


class TestTraceSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="source"):
            TraceSpec(source="")
        with pytest.raises(ValueError, match="time_scale"):
            TraceSpec(source="x.csv", time_scale=-1.0)
        with pytest.raises(ValueError, match="limit"):
            TraceSpec(source="x.csv", limit=0)
        with pytest.raises(ValueError, match="unknown trace loader"):
            TraceSpec(source="x.csv", loader="nope")
        assert TraceSpec(source="x.csv").kind == "trace"

    def test_load_and_horizon(self, tmp_path):
        src = write_csv(tmp_path, GOLDEN_CSV)
        spec = TraceSpec(source=src)
        trace = spec.load()
        assert trace.n_queries == 3
        assert spec.horizon == trace.horizon == 3.5


class TestRegistry:
    def test_builtin_names_and_aliases(self):
        names = loader_names()
        assert {"csv", "jsonl", "archive", "recording"} <= set(names)
        assert canonical_spec("ndjson") == "jsonl"
        assert canonical_spec("rec") == "recording"
        assert canonical_spec("csv:time_col=ts") == "csv:time_col=ts"
        assert is_known_loader("jsonl") and is_known_loader("ndjson")
        assert not is_known_loader("nope")
        rows = loader_specs()
        by_name = {r["name"]: r for r in rows}
        assert "ndjson" in by_name["jsonl"]["aliases"]
        assert all(r["description"] for r in rows)

    def test_param_suffix_reaches_constructor(self):
        loader = get_loader("csv:time_col=ts,delimiter=;")
        assert isinstance(loader, CsvTraceLoader)
        assert loader.time_col == "ts" and loader.delimiter == ";"
        with pytest.raises(ValueError, match="key=value"):
            get_loader("csv:oops")
        with pytest.raises(ValueError, match="unknown trace loader"):
            get_loader("nope")
        # an instance passes straight through
        inst = JsonlTraceLoader(time_key="t")
        assert get_loader(inst) is inst

    def test_register_loader_third_party(self, tmp_path):
        class LinesLoader(TraceLoader):
            name = "lines"
            description = "one arrival per line"

            def load(self, source):
                with open(source) as fp:
                    times = [float(x) for x in fp if x.strip()]
                return self._finish(source, times, [], {})

        register_loader("test-lines", LinesLoader, replace=True)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_loader("test-lines", LinesLoader)
            path = tmp_path / "t.txt"
            path.write_text("0.5\n0.1\n0.9\n")
            trace = load_trace(str(path), loader="test-lines")
            assert trace.n_queries == 3
            assert trace.arrivals.tolist() == pytest.approx([0.0, 0.4, 0.8])
        finally:
            trace_registry._FACTORIES.pop("test-lines", None)

    def test_infer_loader(self, tmp_path):
        assert infer_loader("a/b.CSV") == "csv"
        assert infer_loader("x.jsonl") == "jsonl"
        assert infer_loader("x.ndjson") == "jsonl"
        with pytest.raises(TraceFormatError, match="cannot infer"):
            infer_loader("trace.parquet")


class TestCsvLoader:
    def test_golden_round_trip(self, tmp_path):
        src = write_csv(tmp_path, GOLDEN_CSV)
        trace = load_trace(src)
        assert trace.arrivals.tolist() == [0.0, 1.0, 3.5]
        # positions wrap mod 1.0: 1.75 -> 0.75
        assert trace.updates == ((0.5, 0.25), (2.0, 0.75))
        assert trace.meta["loader"] == "csv"

    def test_custom_columns(self, tmp_path):
        src = write_csv(tmp_path, "ts;op;key\n1.0;q;\n2.0;write;0.5\n")
        trace = load_trace(
            src, loader="csv:time_col=ts,kind_col=op,pos_col=key,delimiter=;"
        )
        assert trace.n_queries == 1 and trace.updates == ((1.0, 0.5),)

    def test_missing_time_column_suggests_fix(self, tmp_path):
        src = write_csv(tmp_path, "ts,kind\n1.0,query\n")
        with pytest.raises(TraceFormatError, match="csv:time_col=<name>"):
            load_trace(src)

    def test_errors_name_file_and_line(self, tmp_path):
        src = write_csv(tmp_path, "time,kind,pos\n1.0,query,\nbad,query,\n")
        with pytest.raises(TraceFormatError, match=r"\.csv:3: cannot parse"):
            load_trace(src)
        src = write_csv(tmp_path, "time,kind,pos\n-2.0,query,\n", "neg.csv")
        with pytest.raises(TraceFormatError, match="neg.csv:2: negative time"):
            load_trace(src)
        src = write_csv(tmp_path, "time,kind,pos\n1.0,explode,\n", "kind.csv")
        with pytest.raises(TraceFormatError, match="kind.csv:2: unknown row kind"):
            load_trace(src)
        src = write_csv(tmp_path, "time,kind,pos\n1.0,update,\n", "pos.csv")
        with pytest.raises(TraceFormatError, match="pos.csv:2: update row missing"):
            load_trace(src)

    def test_empty_and_query_free_files(self, tmp_path):
        src = write_csv(tmp_path, "", "empty.csv")
        with pytest.raises(TraceFormatError, match="empty file"):
            load_trace(src)
        src = write_csv(tmp_path, "time,kind,pos\n1.0,update,0.5\n", "u.csv")
        with pytest.raises(TraceFormatError, match="no query rows"):
            load_trace(src)
        with pytest.raises(TraceFormatError, match="cannot open"):
            load_trace(str(tmp_path / "missing.csv"))


class TestJsonlLoader:
    def test_golden_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"time": 0.0}\n'
            "\n"
            '{"time": 0.5, "kind": "update", "pos": 0.25}\n'
            '{"time": 2.0, "kind": "read"}\n'
        )
        trace = load_trace(str(path))
        assert trace.arrivals.tolist() == [0.0, 2.0]
        assert trace.updates == ((0.5, 0.25),)

    def test_errors_name_file_and_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"time": 0.0}\n{oops\n')
        with pytest.raises(TraceFormatError, match="bad.jsonl:2: invalid JSON"):
            load_trace(str(path))
        path.write_text('[1, 2]\n')
        with pytest.raises(TraceFormatError, match="expected a JSON object"):
            load_trace(str(path))
        path.write_text('{"ts": 0.0}\n')
        with pytest.raises(TraceFormatError, match="jsonl:time_key=<name>"):
            load_trace(str(path))


class TestArchiveAndRecordingLoaders:
    def test_archive_round_trip(self, tmp_path):
        from repro.telemetry.archive import read_archive, write_archive

        execution = execute_scenario(small(seed=11))
        arch_path = str(tmp_path / "run.npz")
        write_archive(arch_path, execution.deployment)
        trace = load_trace(arch_path, rebase=False)  # inferred: plain archive
        arch = read_archive(arch_path)
        expected = np.sort(np.asarray(arch.columns["log_arrival"]))
        assert np.array_equal(trace.arrivals, expected)
        assert trace.updates == ()
        assert trace.meta["loader"] == "archive"

    def test_recording_loader_reoffers_full_stimulus(self, tmp_path):
        rec_path = str(tmp_path / "run.rec.npz")
        scenario = small(seed=7, updates=UpdateSpec(rate=4.0))
        execute_scenario(scenario, record_path=rec_path)
        assert is_recording(rec_path)
        rec = read_recording(rec_path)
        trace = load_trace(rec_path, rebase=False)  # inferred: recording
        assert trace.meta["loader"] == "recording"
        assert np.array_equal(trace.arrivals, np.sort(rec.stimulus.arrivals))
        assert len(trace.updates) == len(rec.stimulus.updates) > 0

    def test_is_recording_rejects_plain_archives(self, tmp_path):
        from repro.telemetry.archive import write_archive

        execution = execute_scenario(small(seed=3))
        arch_path = str(tmp_path / "plain.npz")
        write_archive(arch_path, execution.deployment)
        assert not is_recording(arch_path)
        assert infer_loader(arch_path) == "archive"
        with pytest.raises(ValueError, match="not a recording"):
            read_recording(arch_path)


class TestStreamingArchive:
    def assert_stream_matches_buffered(self, scenario, engine, tmp_path):
        from repro.telemetry.archive import archive_diff, read_archive, write_archive

        stream_path = str(tmp_path / f"stream-{engine}.npz")
        execution = execute_scenario(
            scenario, engine=engine, archive_path=stream_path
        )
        buffered_path = str(tmp_path / f"buffered-{engine}.npz")
        write_archive(buffered_path, execution.deployment)
        diff = archive_diff(read_archive(buffered_path), read_archive(stream_path))
        assert diff["identical"], diff
        arch = read_archive(stream_path)
        assert arch.meta["dropped"] == execution.deployment.log.dropped

    def test_streamed_equals_buffered_batched(self, tmp_path):
        self.assert_stream_matches_buffered(small(seed=13), "batched", tmp_path)

    def test_streamed_equals_buffered_reference(self, tmp_path):
        # the reference engine feeds the writer record by record
        # (observe_record -> one-row chunks), not whole chunks
        self.assert_stream_matches_buffered(small(seed=13), "reference", tmp_path)

    def test_streamed_under_rack_failure_drops(self, tmp_path):
        scenario = small(
            name="rf",
            seed=17,
            workload=WorkloadSpec(kind="poisson", rate=30.0, duration=6.0),
            events=(EventSpec(at=2.0, action="fail-rack", count=3),),
        )
        self.assert_stream_matches_buffered(scenario, "batched", tmp_path)

    def test_writer_lifecycle(self, tmp_path):
        from repro.telemetry.archive import ArchiveWriter, read_archive

        path = str(tmp_path / "empty.npz")
        with ArchiveWriter(path) as writer:
            writer.abort()  # nothing written, spool cleaned up
        assert not os.path.exists(path)
        writer = ArchiveWriter(path)
        writer.close()
        arch = read_archive(path)
        assert all(len(col) == 0 for col in arch.columns.values())


class TestRecordReplay:
    @pytest.fixture()
    def recording(self, tmp_path):
        scenario = small(seed=21, updates=UpdateSpec(rate=3.0))
        rec_path = str(tmp_path / "run.rec.npz")
        execute_scenario(scenario, engine="batched", record_path=rec_path)
        return rec_path

    def test_replay_identical_same_engine(self, recording):
        report = replay_recording(recording)
        assert report.verified and report.identical
        assert report.mismatching_columns == []

    def test_replay_identical_reference_engine(self, recording):
        report = replay_recording(recording, engine="reference")
        assert report.identical, report.mismatching_columns

    def test_replay_identical_across_kernels(self, recording):
        from repro.kernels import available_kernels

        for kernel in ("exact_numpy", "compiled"):
            if kernel not in available_kernels():
                continue
            report = replay_recording(recording, kernel=kernel)
            assert report.identical, (kernel, report.mismatching_columns)

    def test_replay_archive_matches_recording_baseline(self, recording, tmp_path):
        from repro.telemetry.archive import archive_diff, read_archive

        base_path = str(tmp_path / "base.npz")
        recording_to_archive(read_recording(recording), base_path)
        replayed_path = str(tmp_path / "replayed.npz")
        report = replay_recording(recording, archive_path=replayed_path)
        assert report.identical
        diff = archive_diff(read_archive(base_path), read_archive(replayed_path))
        assert diff["identical"], diff
        # wall-clock columns are omitted on both sides -- that is what
        # keeps record/replay diffs --strict-meaningful across machines
        assert "log_scheduling" not in read_archive(base_path).columns
        assert "log_scheduling" not in read_archive(replayed_path).columns

    def test_replay_without_verify(self, recording):
        report = replay_recording(recording, verify=False)
        assert not report.verified and not report.identical

    def test_replay_no_compiled_kernel_subprocess(self, recording):
        code = (
            "from repro.traces import replay_recording\n"
            f"report = replay_recording({recording!r})\n"
            "assert report.identical, report.mismatching_columns\n"
            "print('replay-ok', report.kernel)\n"
        )
        env = dict(os.environ)
        env["REPRO_NO_COMPILED_KERNEL"] = "1"
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "replay-ok" in proc.stdout


class TestTraceWorkloads:
    def test_trace_scenario_runs_on_both_engines(self, tmp_path):
        src = write_csv(
            tmp_path,
            "time,kind,pos\n"
            + "".join(f"{0.25 * i:.2f},query,\n" for i in range(40))
            + "4.0,update,0.5\n",
        )
        scenario = trace_scenario(src, n_servers=8, p=3, dataset_size=1e6)
        fast = execute_scenario(scenario, engine="batched")
        slow = execute_scenario(scenario, engine="reference")
        assert fast.updates_applied == slow.updates_applied == 1
        for col in ("query_id", "arrival", "finish", "pq"):
            assert np.array_equal(
                fast.deployment.log.column(col),
                slow.deployment.log.column(col),
            ), col

    def test_scenario_dict_round_trip(self, tmp_path):
        from repro.scenarios import builtin_scenarios

        for scenario in builtin_scenarios(n_servers=8, duration=5.0, p=3):
            assert scenario_from_dict(scenario_to_dict(scenario)) == scenario
        ts = trace_scenario("log.csv", loader="csv:time_col=ts", limit=10)
        round_tripped = scenario_from_dict(scenario_to_dict(ts))
        assert round_tripped == ts
        assert isinstance(round_tripped.workload, TraceSpec)
        with pytest.raises(ValueError, match="workload"):
            scenario_from_dict(
                {**scenario_to_dict(ts), "workload": {"__type__": "martian"}}
            )


class TestTraceCli:
    def test_traces_lists_loaders(self, capsys):
        from repro.cli import main

        assert main(["traces"]) == 0
        out = capsys.readouterr().out
        assert "csv" in out and "jsonl" in out and "recording" in out

    def test_traces_info(self, tmp_path, capsys):
        from repro.cli import main

        src = write_csv(tmp_path, GOLDEN_CSV)
        assert main(["traces", "--info", src]) == 0
        out = capsys.readouterr().out
        assert "queries" in out and "updates" in out

    def test_traces_info_malformed_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        src = write_csv(tmp_path, "ts,kind\n1.0,query\n")
        assert main(["traces", "--info", src]) == 1
        assert "time_col" in capsys.readouterr().err

    def test_record_replay_smoke(self, tmp_path, capsys):
        from repro.cli import main

        rec = str(tmp_path / "steady.rec.npz")
        code = main(
            [
                "record", "--scenario", "steady", "--servers", "8",
                "-p", "3", "--duration", "5", "--dataset", "1e6",
                "--out", rec,
            ]
        )
        assert code == 0
        assert "recorded" in capsys.readouterr().out
        assert main(["replay", rec]) == 0
        assert "identical" in capsys.readouterr().out
        assert main(["replay", rec, "--engine", "reference"]) == 0
        assert "identical" in capsys.readouterr().out
        assert main(["replay", rec, "--no-verify"]) == 0
        assert "skipped" in capsys.readouterr().out

    def test_replay_unreadable_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        missing = str(tmp_path / "nope.npz")
        assert main(["replay", missing]) == 2
        assert "cannot replay" in capsys.readouterr().err

    def test_matrix_trace_row(self, tmp_path, capsys):
        from repro.cli import main

        src = write_csv(tmp_path, GOLDEN_CSV)
        code = main(
            [
                "matrix", "--servers", "8", "-p", "3", "--duration", "5",
                "--scenario", "steady", "--trace", src,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace" in out

    def test_matrix_malformed_trace_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        src = write_csv(tmp_path, "ts,kind\n1.0,query\n")
        code = main(
            ["matrix", "--scenario", "steady", "--duration", "5",
             "--trace", src]
        )
        assert code == 2
        assert "time_col" in capsys.readouterr().err
