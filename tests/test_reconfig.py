"""Tests for online reconfiguration (repro.core.reconfig, Section 4.5)."""

import random

import pytest

from repro.core import Ring, generate_objects
from repro.core.node import RoarNode, SubQuery, dedup_matches
from repro.core.ids import frac
from repro.core.reconfig import ReconfigPhase, Reconfigurator


@pytest.fixture
def system(rng):
    ring = Ring.proportional([rng.uniform(0.5, 2.0) for _ in range(12)])
    objects = generate_objects(300, rng)
    stores = {n.name: RoarNode(n) for n in ring}
    recon = Reconfigurator(ring, stores, objects, p_initial=4)
    recon.initial_load()
    return ring, objects, stores, recon


def run_query_coverage(ring, objects, stores, pq, rng):
    """Run one pq-way query; return per-object match counts."""
    start = rng.random()
    matched = {}
    for i in range(pq):
        dest = frac(start + i / pq)
        sub = SubQuery.normal(1, dest, pq, index=i)
        owner = ring.node_in_charge(dest)
        for obj in stores[owner.name].execute(sub):
            matched[obj.key] = matched.get(obj.key, 0) + 1
    return matched


class TestInitialLoad:
    def test_every_object_replicated(self, system):
        ring, objects, stores, recon = system
        total = sum(s.stored_count() for s in stores.values())
        # Each object on >= 1 server; with r = n/p = 3 average replicas.
        assert total >= len(objects)

    def test_queries_work_at_initial_p(self, system, rng):
        ring, objects, stores, recon = system
        matched = run_query_coverage(ring, objects, stores, 4, rng)
        assert len(matched) == len(objects)
        assert all(v == 1 for v in matched.values())


class TestIncreasingP:
    def test_immediately_safe(self, system):
        ring, objects, stores, recon = system
        status = recon.request_p(6)
        assert status.phase == ReconfigPhase.SHRINKING_REPLICAS
        # New pq usable right away (Section 4.5).
        assert recon.safe_pq == 6

    def test_queries_correct_before_drops_complete(self, system, rng):
        """Mid-transition: nodes still hold p=4 replicas, queries use pq=6."""
        ring, objects, stores, recon = system
        recon.request_p(6)
        matched = run_query_coverage(ring, objects, stores, 6, rng)
        assert len(matched) == len(objects)
        assert all(v == 1 for v in matched.values())

    def test_drops_free_space(self, system, rng):
        ring, objects, stores, recon = system
        before = sum(s.stored_count() for s in stores.values())
        recon.request_p(6)
        recon.run_all_steps()
        after = sum(s.stored_count() for s in stores.values())
        assert after < before
        assert recon.status().phase == ReconfigPhase.STABLE
        matched = run_query_coverage(ring, objects, stores, 6, rng)
        assert len(matched) == len(objects)


class TestDecreasingP:
    def test_not_safe_until_downloads_finish(self, system):
        ring, objects, stores, recon = system
        status = recon.request_p(3)
        assert status.phase == ReconfigPhase.GROWING_REPLICAS
        # Must keep using the old (larger) p until confirmed.
        assert recon.safe_pq == 4

    def test_queries_correct_mid_transition_at_old_pq(self, system, rng):
        ring, objects, stores, recon = system
        recon.request_p(3)
        # Some nodes have downloaded, some not.
        for name in list(recon._pending)[:5]:
            recon.node_step(name)
        matched = run_query_coverage(ring, objects, stores, 4, rng)
        assert len(matched) == len(objects)
        assert all(v == 1 for v in matched.values())

    def test_safe_after_all_steps(self, system, rng):
        ring, objects, stores, recon = system
        recon.request_p(3)
        recon.run_all_steps()
        assert recon.safe_pq == 3
        assert recon.status().phase == ReconfigPhase.STABLE
        matched = run_query_coverage(ring, objects, stores, 3, rng)
        assert len(matched) == len(objects)
        assert all(v == 1 for v in matched.values())

    def test_growth_transfers_bytes(self, system):
        ring, objects, stores, recon = system
        before = recon.bytes_moved
        recon.request_p(3)
        moved = recon.run_all_steps()
        assert moved > 0
        assert recon.bytes_moved == before + moved

    def test_transfer_close_to_minimum(self, system):
        """ROAR's transfer for p->p' is ~D * (1/p' - 1/p) * n object-copies,
        the minimal possible (Section 3.4)."""
        ring, objects, stores, recon = system
        expected = recon.expected_transfer(3)
        recon.request_p(3)
        moved = recon.run_all_steps()
        assert moved == pytest.approx(expected, rel=0.35)


class TestStateMachine:
    def test_concurrent_reconfig_rejected(self, system):
        _, _, _, recon = system
        recon.request_p(3)
        with pytest.raises(RuntimeError):
            recon.request_p(6)

    def test_same_p_is_noop(self, system):
        _, _, _, recon = system
        status = recon.request_p(4)
        assert status.phase == ReconfigPhase.STABLE
        assert recon.reconfigurations == 0

    def test_invalid_p_rejected(self, system):
        _, _, _, recon = system
        with pytest.raises(ValueError):
            recon.request_p(0)

    def test_node_step_idempotent(self, system):
        _, _, _, recon = system
        recon.request_p(3)
        name = next(iter(recon._pending))
        recon.node_step(name)
        assert recon.node_step(name) == 0

    def test_roundtrip_p_change(self, system, rng):
        """4 -> 2 -> 6 -> 4 keeps queries exact throughout."""
        ring, objects, stores, recon = system
        for p_new in (2, 6, 4):
            recon.request_p(p_new)
            recon.run_all_steps()
            matched = run_query_coverage(ring, objects, stores, p_new, rng)
            assert len(matched) == len(objects)
            assert all(v == 1 for v in matched.values())
