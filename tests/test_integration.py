"""End-to-end integration: Privacy Preserving Search running on ROAR.

Builds the whole stack -- synthetic corpus, encrypted metadata, a ROAR ring
of metadata stores, front-end scheduling, per-node partial loading and
encrypted matching -- and checks the distributed result equals plaintext
ground truth, including across reconfigurations and failures.
"""

import random

import pytest

from repro.core import Ring, RingNode
from repro.core.failures import split_failed
from repro.core.ids import Arc, cw_distance, frac
from repro.core.node import SubQuery, dedup_matches
from repro.core.scheduler import schedule_heap
from repro.pps import (
    CorpusConfig,
    MetadataCodec,
    MetadataStore,
    MultiPredicateQuery,
    Predicate,
    StoredItem,
    generate_corpus,
)


class PPSOnRoar:
    """A miniature in-process deployment of PPS over a ROAR ring."""

    def __init__(self, key, n_nodes=8, n_files=300, p=4, seed=11):
        self.p = p
        rng = random.Random(seed)
        self.codec = MetadataCodec(key, max_content_keywords=10)
        self.files = generate_corpus(
            CorpusConfig(n_files=n_files, keywords_per_file=6, seed=seed)
        )
        self.items = [
            StoredItem(rng.random(), self.codec.encrypt_file(f)) for f in self.files
        ]
        self.plain_by_id = {
            item.item_id: f for item, f in zip(self.items, self.files)
        }
        self.ring = Ring.proportional(
            [rng.uniform(0.5, 2.0) for _ in range(n_nodes)]
        )
        # Each node's store holds the items whose replication arc (1/p)
        # intersects the node's range.
        self.stores = {}
        for node in self.ring:
            node_range = self.ring.range_of(node)
            mine = [
                it
                for it in self.items
                if Arc(it.item_id, 1.0 / p).intersects(node_range)
            ]
            self.stores[node.name] = MetadataStore(mine, chunk_size=64)
        self.rng = rng

    def run_query(self, match_fn, pq=None, with_failures=False):
        """Distribute one encrypted query; returns matched item ids."""
        pq = pq or self.p
        est = lambda node, fr: fr / node.speed
        result = schedule_heap(self.ring, pq, est)
        subs = [
            SubQuery.normal(1, frac(result.start_id + i / pq), pq, index=i)
            for i in range(pq)
        ]
        if with_failures:
            resolved = split_failed(self.ring, subs, self.p, rng=self.rng)
        else:
            resolved = [(s, self.ring.node_in_charge(s.dest)) for s in subs]

        matched_ids = []
        for sub, node in resolved:
            store = self.stores[node.name]
            # Partial loading: only the sub-query's window is read.
            window = Arc(
                frac(sub.dedup_origin - sub.dedup_width), sub.dedup_width
            )
            for item in store.load_range(window):
                if dedup_matches(item.item_id, sub) and match_fn(item.metadata):
                    matched_ids.append(item.item_id)
        return matched_ids


@pytest.fixture(scope="module")
def system():
    from repro.pps.crypto import keygen_deterministic

    return PPSOnRoar(keygen_deterministic("integration"))


class TestDistributedEncryptedSearch:
    def test_keyword_query_matches_ground_truth(self, system):
        target = system.files[0].keywords[0]
        enc_q = system.codec.encrypt_predicate(Predicate("keyword", "=", target))
        got = sorted(system.run_query(lambda m: system.codec.match(m, enc_q)))
        truth = sorted(
            item.item_id
            for item, f in zip(system.items, system.files)
            if target in f.keywords
        )
        assert got == truth
        assert len(got) >= 1

    def test_size_query_matches_ground_truth(self, system):
        enc_q = system.codec.encrypt_predicate(Predicate("size", ">", 100_000))
        got = set(system.run_query(lambda m: system.codec.match(m, enc_q)))
        # The encoding is reference-point exact for values above points.
        threshold = min(
            p for p in system.codec.size_points if p >= 100_000
        )
        truth_definite = {
            item.item_id
            for item, f in zip(system.items, system.files)
            if f.size > threshold
        }
        assert truth_definite <= got

    def test_no_duplicate_results(self, system):
        target = system.files[5].keywords[0]
        enc_q = system.codec.encrypt_predicate(Predicate("keyword", "=", target))
        got = system.run_query(lambda m: system.codec.match(m, enc_q))
        assert len(got) == len(set(got))

    def test_pq_above_p_same_results(self, system):
        target = system.files[2].keywords[1]
        enc_q = system.codec.encrypt_predicate(Predicate("keyword", "=", target))
        fn = lambda m: system.codec.match(m, enc_q)
        at_p = sorted(system.run_query(fn, pq=system.p))
        at_2p = sorted(system.run_query(fn, pq=2 * system.p))
        assert at_p == at_2p

    def test_multi_predicate_and(self, system):
        f = system.files[7]
        preds = [
            (system.codec.scheme, system.codec.encrypt_predicate(
                Predicate("keyword", "=", f.keywords[0]))),
            (system.codec.scheme, system.codec.encrypt_predicate(
                Predicate("keyword", "=", f.keywords[1]))),
        ]
        query = MultiPredicateQuery(
            [(s, q) for s, q in preds], op="and", dynamic_ordering=False
        )
        got = set(system.run_query(query.matches))
        truth = {
            item.item_id
            for item, pf in zip(system.items, system.files)
            if f.keywords[0] in pf.keywords and f.keywords[1] in pf.keywords
        }
        assert got == truth

    def test_results_survive_node_failure(self, system):
        target = system.files[3].keywords[0]
        enc_q = system.codec.encrypt_predicate(Predicate("keyword", "=", target))
        fn = lambda m: system.codec.match(m, enc_q)
        truth = sorted(system.run_query(fn))
        victim = system.ring.nodes()[2]
        victim.alive = False
        try:
            got = sorted(system.run_query(fn, with_failures=True))
        finally:
            victim.alive = True
        assert got == truth

    def test_partial_loading_reads_less_than_full_scan(self, system):
        store = next(iter(system.stores.values()))
        store.bytes_read = 0
        narrow = Arc(0.1, 0.05)
        store.load_range(narrow)
        narrow_bytes = store.bytes_read
        store.bytes_read = 0
        store.load_range(Arc(0.0, 1.0))
        full_bytes = store.bytes_read
        assert narrow_bytes < full_bytes


class TestReconfigurationEndToEnd:
    def test_results_stable_across_p_change(self, key):
        """Store at p=4, query at pq=4; shrink replicas to p=8 and query at
        pq=8: identical results (Section 4.5's invariant)."""
        system = PPSOnRoar(key, n_nodes=8, n_files=200, p=4, seed=23)
        target = system.files[1].keywords[0]
        enc_q = system.codec.encrypt_predicate(Predicate("keyword", "=", target))
        fn = lambda m: system.codec.match(m, enc_q)
        before = sorted(system.run_query(fn, pq=4))
        # pq=8 against replicas stored at p=4 is always safe.
        after = sorted(system.run_query(fn, pq=8))
        assert before == after
