"""Tests for the ROAR ring structure (repro.core.ring)."""

import pytest

from repro.core import Ring, RingNode
from repro.core.ids import Arc


class TestConstruction:
    def test_uniform_ranges(self):
        ring = Ring.uniform(4)
        for node in ring:
            assert ring.range_of(node).length == pytest.approx(0.25)

    def test_uniform_with_speeds(self):
        ring = Ring.uniform(3, speeds=[1.0, 2.0, 3.0])
        assert [n.speed for n in ring.nodes()] == [1.0, 2.0, 3.0]

    def test_uniform_speed_length_mismatch(self):
        with pytest.raises(ValueError):
            Ring.uniform(3, speeds=[1.0])

    def test_proportional_ranges_match_speed(self):
        ring = Ring.proportional([1.0, 3.0])
        lengths = {n.name: ring.range_of(n).length for n in ring}
        assert lengths["node-0"] == pytest.approx(0.25)
        assert lengths["node-1"] == pytest.approx(0.75)

    def test_proportional_rejects_zero_total(self):
        with pytest.raises(ValueError):
            Ring.proportional([0.0, 0.0])

    def test_validate_passes(self):
        Ring.uniform(10).validate()
        Ring.proportional([1, 2, 3, 4]).validate()


class TestLookups:
    def test_node_in_charge_basic(self):
        ring = Ring.uniform(4)  # starts at 0, .25, .5, .75
        assert ring.node_in_charge(0.1).name == "node-0"
        assert ring.node_in_charge(0.3).name == "node-1"
        assert ring.node_in_charge(0.99).name == "node-3"

    def test_node_in_charge_at_boundary(self):
        ring = Ring.uniform(4)
        assert ring.node_in_charge(0.25).name == "node-1"

    def test_node_in_charge_wraps_before_first(self):
        ring = Ring(
            [RingNode("a", 0.2), RingNode("b", 0.7)]
        )
        # Point 0.1 is before the first start: owned by the last node.
        assert ring.node_in_charge(0.1).name == "b"

    def test_node_in_charge_empty_raises(self):
        with pytest.raises(LookupError):
            Ring().node_in_charge(0.5)

    def test_successor_predecessor_cycle(self):
        ring = Ring.uniform(5)
        node = ring.get("node-2")
        assert ring.successor(node).name == "node-3"
        assert ring.predecessor(node).name == "node-1"
        assert ring.successor(ring.get("node-4")).name == "node-0"

    def test_get_missing(self):
        with pytest.raises(KeyError):
            Ring.uniform(2).get("nope")


class TestEdits:
    def test_add_node_shrinks_previous_owner(self):
        ring = Ring.uniform(2)  # node-0 at 0, node-1 at 0.5
        ring.add_node(RingNode("new", 0.25))
        assert ring.range_of(ring.get("node-0")).length == pytest.approx(0.25)
        assert ring.range_of(ring.get("new")).length == pytest.approx(0.25)
        ring.validate()

    def test_add_duplicate_position_raises(self):
        ring = Ring.uniform(2)
        with pytest.raises(ValueError):
            ring.add_node(RingNode("dup", 0.0))

    def test_remove_node_absorbed_by_predecessor(self):
        ring = Ring.uniform(4)
        victim = ring.get("node-2")
        ring.remove_node(victim)
        assert len(ring) == 3
        assert ring.range_of(ring.get("node-1")).length == pytest.approx(0.5)
        ring.validate()

    def test_move_start_changes_ranges(self):
        ring = Ring.uniform(4)
        node = ring.get("node-1")  # at 0.25
        ring.move_start(node, 0.30)
        assert ring.range_of(ring.get("node-0")).length == pytest.approx(0.30)
        assert ring.range_of(node).length == pytest.approx(0.20)
        ring.validate()

    def test_move_start_cannot_cross_neighbour(self):
        ring = Ring.uniform(4)
        node = ring.get("node-1")
        with pytest.raises(ValueError):
            ring.move_start(node, 0.6)  # past node-2 at 0.5

    def test_single_node_owns_everything(self):
        ring = Ring([RingNode("solo", 0.4)])
        assert ring.range_of(ring.get("solo")).length == 1.0
        assert ring.node_in_charge(0.99).name == "solo"
        assert ring.node_in_charge(0.0).name == "solo"


class TestDerived:
    def test_total_speed_excludes_dead(self):
        ring = Ring.uniform(3, speeds=[1.0, 2.0, 4.0])
        ring.get("node-1").alive = False
        assert ring.total_speed() == pytest.approx(5.0)

    def test_nodes_covering_arc(self):
        ring = Ring.uniform(4)
        covering = ring.nodes_covering(Arc(0.2, 0.2))  # spans node-0 and node-1
        names = {n.name for n in covering}
        assert names == {"node-0", "node-1"}

    def test_nodes_covering_wrapping_arc(self):
        ring = Ring.uniform(4)
        covering = ring.nodes_covering(Arc(0.9, 0.2))
        names = {n.name for n in covering}
        assert names == {"node-3", "node-0"}

    def test_ranges_partition_circle(self):
        ring = Ring.proportional([3, 1, 4, 1, 5, 9, 2, 6])
        total = sum(ring.range_of(n).length for n in ring)
        assert total == pytest.approx(1.0)

    def test_alive_nodes_filter(self):
        ring = Ring.uniform(3)
        ring.get("node-0").alive = False
        assert len(ring.alive_nodes()) == 2
