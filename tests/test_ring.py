"""Tests for the ROAR ring structure (repro.core.ring)."""

import pytest

from repro.core import Ring, RingNode
from repro.core.ids import Arc


class TestConstruction:
    def test_uniform_ranges(self):
        ring = Ring.uniform(4)
        for node in ring:
            assert ring.range_of(node).length == pytest.approx(0.25)

    def test_uniform_with_speeds(self):
        ring = Ring.uniform(3, speeds=[1.0, 2.0, 3.0])
        assert [n.speed for n in ring.nodes()] == [1.0, 2.0, 3.0]

    def test_uniform_speed_length_mismatch(self):
        with pytest.raises(ValueError):
            Ring.uniform(3, speeds=[1.0])

    def test_proportional_ranges_match_speed(self):
        ring = Ring.proportional([1.0, 3.0])
        lengths = {n.name: ring.range_of(n).length for n in ring}
        assert lengths["node-0"] == pytest.approx(0.25)
        assert lengths["node-1"] == pytest.approx(0.75)

    def test_proportional_rejects_zero_total(self):
        with pytest.raises(ValueError):
            Ring.proportional([0.0, 0.0])

    def test_validate_passes(self):
        Ring.uniform(10).validate()
        Ring.proportional([1, 2, 3, 4]).validate()


class TestLookups:
    def test_node_in_charge_basic(self):
        ring = Ring.uniform(4)  # starts at 0, .25, .5, .75
        assert ring.node_in_charge(0.1).name == "node-0"
        assert ring.node_in_charge(0.3).name == "node-1"
        assert ring.node_in_charge(0.99).name == "node-3"

    def test_node_in_charge_at_boundary(self):
        ring = Ring.uniform(4)
        assert ring.node_in_charge(0.25).name == "node-1"

    def test_node_in_charge_wraps_before_first(self):
        ring = Ring(
            [RingNode("a", 0.2), RingNode("b", 0.7)]
        )
        # Point 0.1 is before the first start: owned by the last node.
        assert ring.node_in_charge(0.1).name == "b"

    def test_node_in_charge_empty_raises(self):
        with pytest.raises(LookupError):
            Ring().node_in_charge(0.5)

    def test_successor_predecessor_cycle(self):
        ring = Ring.uniform(5)
        node = ring.get("node-2")
        assert ring.successor(node).name == "node-3"
        assert ring.predecessor(node).name == "node-1"
        assert ring.successor(ring.get("node-4")).name == "node-0"

    def test_get_missing(self):
        with pytest.raises(KeyError):
            Ring.uniform(2).get("nope")


class TestEdits:
    def test_add_node_shrinks_previous_owner(self):
        ring = Ring.uniform(2)  # node-0 at 0, node-1 at 0.5
        ring.add_node(RingNode("new", 0.25))
        assert ring.range_of(ring.get("node-0")).length == pytest.approx(0.25)
        assert ring.range_of(ring.get("new")).length == pytest.approx(0.25)
        ring.validate()

    def test_add_duplicate_position_raises(self):
        ring = Ring.uniform(2)
        with pytest.raises(ValueError):
            ring.add_node(RingNode("dup", 0.0))

    def test_remove_node_absorbed_by_predecessor(self):
        ring = Ring.uniform(4)
        victim = ring.get("node-2")
        ring.remove_node(victim)
        assert len(ring) == 3
        assert ring.range_of(ring.get("node-1")).length == pytest.approx(0.5)
        ring.validate()

    def test_move_start_changes_ranges(self):
        ring = Ring.uniform(4)
        node = ring.get("node-1")  # at 0.25
        ring.move_start(node, 0.30)
        assert ring.range_of(ring.get("node-0")).length == pytest.approx(0.30)
        assert ring.range_of(node).length == pytest.approx(0.20)
        ring.validate()

    def test_move_start_cannot_cross_neighbour(self):
        ring = Ring.uniform(4)
        node = ring.get("node-1")
        with pytest.raises(ValueError):
            ring.move_start(node, 0.6)  # past node-2 at 0.5

    def test_single_node_owns_everything(self):
        ring = Ring([RingNode("solo", 0.4)])
        assert ring.range_of(ring.get("solo")).length == 1.0
        assert ring.node_in_charge(0.99).name == "solo"
        assert ring.node_in_charge(0.0).name == "solo"


class TestDerived:
    def test_total_speed_excludes_dead(self):
        ring = Ring.uniform(3, speeds=[1.0, 2.0, 4.0])
        ring.get("node-1").alive = False
        assert ring.total_speed() == pytest.approx(5.0)

    def test_nodes_covering_arc(self):
        ring = Ring.uniform(4)
        covering = ring.nodes_covering(Arc(0.2, 0.2))  # spans node-0 and node-1
        names = {n.name for n in covering}
        assert names == {"node-0", "node-1"}

    def test_nodes_covering_wrapping_arc(self):
        ring = Ring.uniform(4)
        covering = ring.nodes_covering(Arc(0.9, 0.2))
        names = {n.name for n in covering}
        assert names == {"node-3", "node-0"}

    def test_ranges_partition_circle(self):
        ring = Ring.proportional([3, 1, 4, 1, 5, 9, 2, 6])
        total = sum(ring.range_of(n).length for n in ring)
        assert total == pytest.approx(1.0)

    def test_alive_nodes_filter(self):
        ring = Ring.uniform(3)
        ring.get("node-0").alive = False
        assert len(ring.alive_nodes()) == 2


class TestEdgeCases:
    """Boundary conditions for structural edits (control-plane elasticity
    shrinks rings node by node, so the empty/near-empty cases matter)."""

    def test_remove_last_node_leaves_empty_ring(self):
        ring = Ring([RingNode("only", 0.3)])
        ring.remove_node(ring.get("only"))
        assert len(ring) == 0
        ring.validate()  # empty partition is vacuously valid
        with pytest.raises(LookupError):
            ring.node_in_charge(0.5)

    def test_remove_down_to_single_node_owns_circle(self):
        ring = Ring.uniform(3)
        ring.remove_node(ring.get("node-1"))
        ring.remove_node(ring.get("node-2"))
        survivor = ring.get("node-0")
        assert ring.range_of(survivor).length == pytest.approx(1.0)
        assert ring.node_in_charge(0.999) is survivor
        ring.validate()

    def test_readding_after_removal_restores_partition(self):
        ring = Ring.uniform(4)
        node = ring.get("node-2")
        ring.remove_node(node)
        ring.add_node(node)
        assert len(ring) == 4
        ring.validate()
        assert ring.node_in_charge(0.5) is node

    def test_insert_at_existing_start_rejected(self):
        ring = Ring.uniform(4)
        with pytest.raises(ValueError):
            ring.add_node(RingNode("clash", 0.25))

    def test_insert_within_eps_of_existing_start_rejected(self):
        from repro.core.ids import EPS

        ring = Ring.uniform(4)
        with pytest.raises(ValueError):
            ring.add_node(RingNode("clash", 0.25 + EPS / 2))

    def test_insert_within_eps_across_wrap_rejected(self):
        from repro.core.ids import EPS

        ring = Ring.uniform(4)  # a node sits at start 0.0
        with pytest.raises(ValueError):
            ring.add_node(RingNode("clash", 1.0 - EPS / 2))

    def test_insert_after_failed_insert_leaves_ring_intact(self):
        ring = Ring.uniform(4)
        with pytest.raises(ValueError):
            ring.add_node(RingNode("clash", 0.5))
        assert len(ring) == 4
        ring.validate()

    def test_move_start_crossing_successor_rejected(self):
        ring = Ring.uniform(4)  # starts 0, .25, .5, .75
        node = ring.get("node-1")
        # moving node-1's start past node-2's start would reorder the ring
        with pytest.raises(ValueError):
            ring.move_start(node, 0.6)
        ring.validate()
        assert ring.get("node-1").start == pytest.approx(0.25)

    def test_move_start_crossing_predecessor_rejected(self):
        ring = Ring.uniform(4)
        node = ring.get("node-1")
        # moving counter-clockwise past node-0's start also reorders
        with pytest.raises(ValueError):
            ring.move_start(node, 0.95)
        ring.validate()

    def test_move_start_within_gap_allowed(self):
        ring = Ring.uniform(4)
        node = ring.get("node-1")
        ring.move_start(node, 0.30)
        assert ring.range_of(ring.get("node-0")).length == pytest.approx(0.30)
        assert ring.range_of(node).length == pytest.approx(0.20)
        ring.validate()

    def test_move_start_single_node_ring(self):
        ring = Ring([RingNode("only", 0.0)])
        ring.move_start(ring.get("only"), 0.4)
        assert ring.get("only").start == pytest.approx(0.4)
        assert ring.range_of(ring.get("only")).length == pytest.approx(1.0)

    def test_move_start_wraps_zero_boundary(self):
        ring = Ring.uniform(4)
        node = ring.get("node-0")
        ring.move_start(node, 0.95)  # node-0's start slides behind 0
        ring.validate()
        assert ring.node_in_charge(0.97) is node
