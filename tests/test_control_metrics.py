"""Tests for the control plane's observation layer (repro.control.metrics)."""

import math

import pytest

from repro.control.metrics import (
    LatencyHistogram,
    MetricsCollector,
    SlidingWindow,
)
from repro.sim.server import SimServer
from repro.sim.tracing import QueryRecord


def record(qid, arrival, delay):
    return QueryRecord(query_id=qid, arrival=arrival, finish=arrival + delay)


class TestSlidingWindow:
    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            SlidingWindow(0.0)

    def test_prunes_old_samples(self):
        w = SlidingWindow(10.0)
        for t in range(20):
            w.add(float(t), float(t))
        assert w.values(19.0) == [float(t) for t in range(9, 20)]

    def test_rejects_out_of_order(self):
        w = SlidingWindow(10.0)
        w.add(5.0, 1.0)
        with pytest.raises(ValueError):
            w.add(4.0, 1.0)

    def test_mean_and_percentile(self):
        w = SlidingWindow(100.0)
        for i in range(1, 101):
            w.add(float(i), float(i))
        assert w.mean(100.0) == pytest.approx(50.5)
        assert w.percentile(50, 100.0) == pytest.approx(50.5)

    def test_empty_stats_are_nan(self):
        w = SlidingWindow(5.0)
        assert math.isnan(w.mean())
        assert math.isnan(w.percentile(99))

    def test_rate(self):
        w = SlidingWindow(10.0)
        for t in range(10):
            w.add(float(t), 1.0)
        # 10 samples over the trailing 10-second window.
        assert w.rate(9.0) == pytest.approx(1.0)
        assert SlidingWindow(10.0).rate(5.0) == 0.0

    def test_rate_single_straggler_not_inflated(self):
        # One sample that just arrived must read as ~0.1/s, not 1000/s.
        w = SlidingWindow(10.0)
        w.add(59.999, 0.2)
        assert w.rate(60.0) == pytest.approx(0.1)


class TestLatencyHistogram:
    def test_quantiles_roughly_exact(self):
        h = LatencyHistogram(lo=1e-3, hi=10.0, buckets_per_decade=20)
        for i in range(1, 1001):
            h.record(i / 1000.0)  # uniform on (0, 1]
        assert h.quantile(50) == pytest.approx(0.5, rel=0.1)
        assert h.quantile(99) == pytest.approx(0.99, rel=0.1)

    def test_overflow_underflow(self):
        h = LatencyHistogram(lo=0.01, hi=1.0)
        h.record(0.0001)
        h.record(50.0)
        assert h.total == 2
        assert h.counts[0] == 1 and h.counts[-1] == 1
        assert h.quantile(1) == h.bounds[0]
        assert h.quantile(100) == h.bounds[-1]

    def test_empty_quantile_nan(self):
        assert math.isnan(LatencyHistogram().quantile(50))

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            LatencyHistogram(lo=1.0, hi=0.5)


class TestMetricsCollector:
    def test_observe_query_feeds_window_and_histogram(self):
        c = MetricsCollector(window=10.0)
        for i in range(5):
            c.observe_query(record(i, float(i), 0.2))
        assert c.queries_seen == 5
        snap = c.snapshot(4.0)
        assert snap.n_queries == 5
        assert snap.p50 == pytest.approx(0.2)
        assert c.histogram.total == 5

    def test_attach_subscribes_to_listeners(self):
        class Host:
            query_listeners = []

        host = Host()
        c = MetricsCollector().attach(host)
        host.query_listeners[0](record(1, 0.0, 0.1))
        assert c.queries_seen == 1

    def test_first_sample_has_no_utilisation(self):
        """The first tick only sets the baseline -- it must not report an
        idle pool (a fabricated 0% reading would trigger scale-in)."""
        c = MetricsCollector()
        server = SimServer("s0", speed=100.0)
        server.submit(0.0, 300.0)
        c.sample_servers(0.0, {"s0": server})
        snap = c.snapshot(0.0, record=False)
        assert snap.utilisation == {}
        assert math.isnan(snap.mean_utilisation)
        assert snap.load_imbalance == 1.0

    def test_utilisation_is_interval_delta(self):
        c = MetricsCollector()
        server = SimServer("s0", speed=100.0)
        servers = {"s0": server}
        c.sample_servers(0.0, servers)
        server.submit(0.0, 500.0)  # 5 seconds of work
        c.sample_servers(10.0, servers)
        snap = c.snapshot(10.0, record=False)
        assert snap.utilisation["s0"] == pytest.approx(0.5)
        # no new work in the next interval -> utilisation drops to 0
        c.sample_servers(20.0, servers)
        assert c.snapshot(20.0, record=False).utilisation["s0"] == 0.0

    def test_queue_depth_and_imbalance(self):
        c = MetricsCollector()
        fast = SimServer("fast", speed=100.0)
        slow = SimServer("slow", speed=100.0)
        slow.submit(0.0, 1000.0)  # 10s backlog
        c.sample_servers(0.0, {"fast": fast, "slow": slow})
        slow.submit(1.0, 100.0)
        c.sample_servers(2.0, {"fast": fast, "slow": slow})
        snap = c.snapshot(2.0, record=False)
        assert snap.max_queue_depth > 5.0
        assert snap.load_imbalance == pytest.approx(2.0)  # all load on slow

    def test_snapshot_records_history(self):
        c = MetricsCollector()
        c.observe_query(record(1, 0.0, 0.1))
        c.snapshot(1.0)
        c.snapshot(2.0)
        assert [s.time for s in c.snapshots] == [1.0, 2.0]

    def test_empty_snapshot_is_nan_percentiles(self):
        snap = MetricsCollector().snapshot(0.0, record=False)
        assert snap.n_queries == 0
        assert math.isnan(snap.p99)
        assert snap.qps == 0.0
        assert snap.load_imbalance == 1.0
