"""Additional property-based tests: reconfiguration, balancing, membership
edits, result merging, and the planner's monotonicity."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.planner import WorkloadSpec, recommend_configuration
from repro.core import Ring, RingNode, generate_objects
from repro.core.balance import LoadBalancer
from repro.core.ids import frac
from repro.core.node import RoarNode, SubQuery, dedup_matches
from repro.core.reconfig import Reconfigurator
from repro.pps.results import local_top_k, merge_top_k


def exact_coverage(ring, stores, objects, pq, rng):
    start = rng.random()
    matched = {}
    for i in range(pq):
        dest = frac(start + i / pq)
        sub = SubQuery.normal(1, dest, pq, index=i)
        for obj in stores[ring.node_in_charge(dest).name].execute(sub):
            matched[obj.key] = matched.get(obj.key, 0) + 1
    return len(matched) == len(objects) and set(matched.values()) <= {1}


class TestReconfigProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        p1=st.integers(min_value=2, max_value=6),
        p2=st.integers(min_value=2, max_value=6),
    )
    def test_any_p_transition_preserves_coverage(self, seed, p1, p2):
        """Coverage holds before, *during* (at the safe pq) and after any
        p -> p' transition."""
        rng = random.Random(seed)
        ring = Ring.proportional([rng.uniform(0.5, 2.0) for _ in range(10)])
        objects = generate_objects(80, rng)
        stores = {n.name: RoarNode(n) for n in ring}
        recon = Reconfigurator(ring, stores, objects, p_initial=p1)
        recon.initial_load()
        assert exact_coverage(ring, stores, objects, p1, rng)

        recon.request_p(p2)
        # Mid-transition: half the nodes have acted.
        pending = list(recon._pending)
        for name in pending[: len(pending) // 2]:
            recon.node_step(name)
        safe = int(round(recon.safe_pq))
        assert exact_coverage(ring, stores, objects, safe, rng)

        recon.run_all_steps()
        assert exact_coverage(ring, stores, objects, p2, rng)


class TestBalancerProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=2, max_value=12),
        rounds=st.integers(min_value=1, max_value=30),
    )
    def test_balancing_never_breaks_partition(self, seed, n, rounds):
        rng = random.Random(seed)
        ring = Ring.uniform(n, speeds=[rng.uniform(0.2, 4.0) for _ in range(n)])
        balancer = LoadBalancer(ring)
        before = balancer.imbalance()
        for _ in range(rounds):
            balancer.step()
            ring.validate()
        # A single round may transiently *raise* the max/mean metric: a
        # pairwise move shifts range between different-speed nodes, which
        # moves the mean while a third node still holds the max (hypothesis
        # found seed=2598, n=11, rounds=1).  What the mechanism guarantees
        # is boundedness -- every move is damped below the pair's load gap,
        # so the metric can never leave [1, n] nor explode past its start
        # by more than one damped step's worth of mean shift.
        after = balancer.imbalance()
        assert 1.0 - 1e-9 <= after <= n + 1e-9
        assert after <= before * (1.0 + balancer.config.max_step) + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=2, max_value=12),
    )
    def test_balancing_converges_and_settles(self, seed, n):
        # The end-to-end guarantee (Fig 7.9/7.10): the balancer reaches a
        # fixed point where every adjacent alive pair sits inside the
        # hysteresis band -- the paper's stop condition -- and the global
        # metric ends no worse than one hysteresis width above its start
        # (a quiescent state may sit marginally above the starting metric
        # when the start was already near-balanced: seed 1504 ends 0.1%
        # up; what is excluded is any real degradation).
        rng = random.Random(seed)
        ring = Ring.uniform(n, speeds=[rng.uniform(0.2, 4.0) for _ in range(n)])
        balancer = LoadBalancer(ring)
        before = balancer.imbalance()
        balancer.run_until_stable(max_rounds=500)
        ring.validate()
        assert balancer.step() == 0  # a fixed point, not a round limit
        thresh = balancer.config.threshold
        nodes = ring.alive_nodes()
        for node in nodes:
            succ = ring.successor(node)
            if succ is node:
                continue
            la, lb = balancer.load_of(node), balancer.load_of(succ)
            assert abs(la - lb) / max(la, lb) < thresh + 1e-9
        assert balancer.imbalance() <= before * (1.0 + thresh) + 1e-9


class TestMembershipEditsProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        ops=st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=15),
    )
    def test_random_join_leave_keeps_ring_valid(self, seed, ops):
        from repro.core.membership import MembershipServer

        rng = random.Random(seed)
        ms = MembershipServer.build_balanced([1.0] * 4)
        counter = 100
        for op in ops:
            ring = ms.rings[0]
            if op == 0:
                ms.add_server(f"extra-{counter}", rng.uniform(0.5, 2.0))
                counter += 1
            elif op == 1 and len(ring) > 2:
                victim = rng.choice(ring.nodes())
                ms.remove_server(victim.name)
            else:
                ms.move_cool_to_hot()
            ring.validate()


class TestTopKProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n_servers=st.integers(min_value=1, max_value=6),
        per_server=st.integers(min_value=0, max_value=40),
        k=st.integers(min_value=1, max_value=15),
    )
    def test_two_level_topk_exact(self, seed, n_servers, per_server, k):
        rng = random.Random(seed)
        servers = [
            [(f"s{s}-d{i}", rng.random()) for i in range(per_server)]
            for s in range(n_servers)
        ]
        locals_ = [local_top_k(m, k) if m else [] for m in servers]
        merged = merge_top_k(locals_, k)
        union = [m for server in servers for m in server]
        direct = local_top_k(union, k) if union else []
        assert [m.score for m in merged] == pytest.approx(
            [m.score for m in direct]
        )


class TestPlannerProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        rate=st.floats(min_value=0.1, max_value=6.0),
        target=st.floats(min_value=0.05, max_value=2.0),
    )
    def test_chosen_always_meets_target(self, rate, target):
        spec = WorkloadSpec(
            dataset_size=1e6,
            query_rate=rate,
            update_rate=1.0,
            target_delay=target,
            speeds=[700_000.0] * 16,
            fixed_overhead=0.003,
        )
        rec = recommend_configuration(spec)
        if rec.chosen is not None:
            assert rec.chosen.predicted_delay <= target + 1e-9
            assert rec.chosen.feasible
        else:
            # If refused, genuinely nothing was feasible.
            assert all(not o.feasible for o in rec.options)
