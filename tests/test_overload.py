"""Overload golden battery: goodput/shed-rate/p99 pinned per policy.

The two ``*-overload`` builtin scenarios deliberately exceed pool
capacity; this battery pins their seeded outcomes for every admission
policy (``none``/``aimd``/``delay_gated``) to checked-in numbers, the
same discipline ``test_golden.py`` applies to the paper's figures.  All
randomness flows through seeded/named rng streams, so the pins are
independent of test order -- the order-independence test holds that
line by burning unrelated fallback streams and re-measuring.

A legitimate change to admission or simulation semantics will move
these numbers: re-run the exact configuration below, paste the new
constants, and justify the drift in the PR that causes it.
"""

import dataclasses

import pytest

from repro._rng import ensure_rng

REL = 1e-6

#: the golden configuration (mirrors TestGoldenScenarios)
N_SERVERS, DURATION, P, SEED = 12, 15.0, 4, 2

#: (scenario, policy) -> (offered, shed, goodput, shed_rate, p99 delay s)
EXPECTED = {
    ("sustained-overload", "none"):
        (436, 0, 0.7333333333333333, 0.0, 38.206861784161475),
    ("sustained-overload", "aimd"):
        (436, 335, 6.733333333333333, 0.768348623853211, 0.6217806752775548),
    ("sustained-overload", "delay_gated"):
        (436, 310, 8.4, 0.7110091743119266, 0.6230223192720867),
    ("flash-overload", "none"):
        (303, 0, 2.466666666666667, 0.0, 22.831478944103853),
    ("flash-overload", "aimd"):
        (303, 201, 6.8, 0.6633663366336634, 0.6048097970025276),
    ("flash-overload", "delay_gated"):
        (303, 183, 8.0, 0.6039603960396039, 0.6228322283758112),
}


def _run(name, policy, engine="batched"):
    from repro.scenarios import builtin_scenarios, run_scenario_spec

    scens = {
        s.name: s
        for s in builtin_scenarios(
            n_servers=N_SERVERS, duration=DURATION, p=P, seed=SEED
        )
    }
    scenario = scens[name]
    scenario = dataclasses.replace(
        scenario, admission=dataclasses.replace(scenario.admission, policy=policy)
    )
    return run_scenario_spec(scenario, engine=engine)


class TestOverloadGoldens:
    @pytest.mark.parametrize("name,policy", sorted(EXPECTED))
    def test_pinned(self, name, policy):
        offered, shed, goodput, shed_rate, p99 = EXPECTED[(name, policy)]
        res = _run(name, policy)
        assert res.offered == offered
        assert res.shed == shed
        assert res.dropped == 0
        assert res.goodput == pytest.approx(goodput, rel=REL)
        assert res.shed_rate == pytest.approx(shed_rate, rel=REL)
        assert res.p99_delay == pytest.approx(p99, rel=REL)

    @pytest.mark.parametrize("name", ["sustained-overload", "flash-overload"])
    def test_active_policies_beat_accept_all(self, name):
        """The ISSUE-10 acceptance ordering, straight off the pins."""
        none_row = EXPECTED[(name, "none")]
        for policy in ("aimd", "delay_gated"):
            row = EXPECTED[(name, policy)]
            assert row[2] > none_row[2]  # strictly higher goodput
            assert row[4] < none_row[4]  # strictly lower p99

    def test_order_independent(self):
        before = _run("sustained-overload", "aimd")
        for _ in range(17):  # burn fallback streams, shifting the counter
            ensure_rng(None).random()
        after = _run("sustained-overload", "aimd")
        assert before.shed == after.shed
        assert before.goodput == after.goodput
        assert before.p99_delay == after.p99_delay

    @pytest.mark.parametrize("policy", ["aimd", "delay_gated"])
    def test_engine_parity(self, policy):
        """Both engines land on the same pinned point."""
        fast = _run("sustained-overload", policy)
        ref = _run("sustained-overload", policy, engine="reference")
        assert fast.shed == ref.shed
        assert fast.completed == ref.completed
        assert fast.p99_delay == ref.p99_delay
        assert fast.goodput == ref.goodput
