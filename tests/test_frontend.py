"""Tests for the front-end server (repro.core.frontend)."""

import random

import pytest

from repro.core import FrontEnd, FrontEndConfig, Ring
from repro.core.node import dedup_matches


@pytest.fixture
def frontend(hetero_ring):
    return FrontEnd(hetero_ring, dataset_size=1000.0)


class TestStats:
    def test_initial_estimates_are_true_speeds(self, frontend, hetero_ring):
        for node in hetero_ring:
            assert frontend.stats_for(node).speed_estimate == node.speed

    def test_observe_completion_updates_ewma(self, frontend, hetero_ring):
        node = hetero_ring.get("node-0")  # speed 1.0
        st = frontend.stats_for(node)
        # Node actually performed at 2x the estimate.
        frontend.observe_completion(node, work_objects=200.0, service_time=100.0, now=1.0)
        assert st.speed_estimate > 1.0
        assert st.speed_estimate < 2.0  # EWMA, not a jump

    def test_ewma_converges(self, frontend, hetero_ring):
        node = hetero_ring.get("node-0")
        for _ in range(200):
            frontend.observe_completion(node, 200.0, 100.0, now=1.0)
        assert frontend.stats_for(node).speed_estimate == pytest.approx(2.0, rel=0.01)

    def test_perturb_speed_estimates_bounded(self, frontend, hetero_ring):
        frontend.perturb_speed_estimates(0.5, rng=random.Random(0))
        for node in hetero_ring:
            est = frontend.stats_for(node).speed_estimate
            assert 0.5 * node.speed - 1e-9 <= est <= 1.5 * node.speed + 1e-9

    def test_set_speed_estimate(self, frontend):
        frontend.set_speed_estimate("node-1", 42.0)
        assert frontend.stats["node-1"].speed_estimate == 42.0


class TestEstimator:
    def test_idle_estimate(self, frontend, hetero_ring):
        est = frontend.make_estimator(now=0.0)
        node = hetero_ring.get("node-1")  # speed 2
        # work fraction 0.5 of 1000 objects at speed 2 = 250s.
        assert est(node, 0.5) == pytest.approx(250.0)

    def test_backlog_included(self, frontend, hetero_ring):
        node = hetero_ring.get("node-1")
        frontend.stats_for(node).busy_until = 10.0
        est = frontend.make_estimator(now=0.0)
        assert est(node, 0.5) == pytest.approx(260.0)

    def test_backlog_in_past_ignored(self, frontend, hetero_ring):
        node = hetero_ring.get("node-1")
        frontend.stats_for(node).busy_until = 5.0
        est = frontend.make_estimator(now=100.0)
        assert est(node, 0.5) == pytest.approx(250.0)

    def test_fixed_overhead_added(self, hetero_ring):
        fe = FrontEnd(
            hetero_ring, 1000.0, FrontEndConfig(fixed_overhead=3.0)
        )
        est = fe.make_estimator(0.0)
        node = hetero_ring.get("node-1")
        assert est(node, 0.5) == pytest.approx(253.0)


class TestScheduleQuery:
    def test_returns_plan_with_pq_subqueries(self, frontend):
        qid, plan, result = frontend.schedule_query(0.0, pq=3)
        assert len(plan.subs) == 3
        assert qid == 1

    def test_query_ids_increment(self, frontend):
        ids = [frontend.schedule_query(0.0, 2)[0] for _ in range(3)]
        assert ids == [1, 2, 3]

    def test_pq_greater_than_p_store(self, frontend, rng):
        qid, plan, _ = frontend.schedule_query(0.0, pq=6, p_store=3)
        subs = plan.to_subqueries(qid)
        # Coverage with the wider pq against replicas stored at p=3.
        for oid in (rng.random() for _ in range(200)):
            assert sum(1 for s in subs if dedup_matches(oid, s)) == 1

    def test_invalid_pq(self, frontend):
        with pytest.raises(ValueError):
            frontend.schedule_query(0.0, 0)

    def test_unknown_method_raises(self, hetero_ring):
        fe = FrontEnd(hetero_ring, 100.0, FrontEndConfig(method="bogus"))
        with pytest.raises(ValueError):
            fe.schedule_query(0.0, 2)

    @pytest.mark.parametrize("method", ["heap", "naive", "random"])
    def test_all_methods_produce_valid_plans(self, hetero_ring, method):
        fe = FrontEnd(hetero_ring, 100.0, FrontEndConfig(method=method))
        _, plan, _ = fe.schedule_query(0.0, 3)
        assert abs(plan.total_width() - 1.0) < 1e-9

    def test_optimisations_dont_break_tiling(self, hetero_ring):
        fe = FrontEnd(
            hetero_ring,
            100.0,
            FrontEndConfig(adjust_ranges=True, max_splits=2),
        )
        _, plan, _ = fe.schedule_query(0.0, 3)
        assert abs(plan.total_width() - 1.0) < 1e-9

    def test_iteration_counters_accumulate(self, frontend):
        frontend.schedule_query(0.0, 3)
        frontend.schedule_query(0.0, 3)
        assert frontend.queries_scheduled == 2
        assert frontend.total_iterations >= 0
        assert frontend.mean_iterations() == frontend.total_iterations / 2


class TestReserve:
    def test_reserve_bumps_busy_until(self, frontend):
        qid, plan, _ = frontend.schedule_query(0.0, 3)
        frontend.reserve(plan, now=0.0)
        for sub in plan.subs:
            st = frontend.stats_for(sub.node)
            assert st.busy_until > 0.0
            assert st.outstanding == 1

    def test_observe_completion_decrements_outstanding(self, frontend, hetero_ring):
        qid, plan, _ = frontend.schedule_query(0.0, 3)
        frontend.reserve(plan, now=0.0)
        node = plan.subs[0].node
        frontend.observe_completion(node, 10.0, 5.0, now=1.0)
        assert frontend.stats_for(node).outstanding == 0


class TestFailureIntegration:
    def test_resolve_failures_replaces_dead_targets(self, hetero_ring, rng):
        fe = FrontEnd(hetero_ring, 100.0, rng=rng)
        qid, plan, _ = fe.schedule_query(0.0, 3)
        dead = plan.subs[0].node
        fe.mark_failed(dead)
        subs = plan.to_subqueries(qid)
        resolved = fe.resolve_failures(subs, p_store=3)
        assert all(node.alive for _, node in resolved)
        assert len(resolved) == 4  # one target split in two

    def test_mark_recovered(self, hetero_ring):
        fe = FrontEnd(hetero_ring, 100.0)
        node = hetero_ring.get("node-0")
        fe.mark_failed(node)
        assert not node.alive
        fe.mark_recovered(node, now=5.0)
        assert node.alive
