"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.algorithm == "roar"
        assert args.n == 90

    def test_compare_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--algorithm", "magic"])

    def test_plan_flags(self):
        args = build_parser().parse_args(
            ["plan", "--servers", "12", "--target-delay", "0.3"]
        )
        assert args.servers == 12
        assert args.target_delay == 0.3


class TestCommands:
    def test_compare_runs(self, capsys):
        rc = main(
            ["compare", "--n", "18", "-p", "3", "--queries", "40", "--rate", "4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean delay" in out
        assert "utilisation" in out

    def test_deploy_runs(self, capsys):
        rc = main(["deploy", "--nodes", "12", "-p", "3", "--queries", "25"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "yield 100%" in out

    def test_deploy_with_failures(self, capsys):
        rc = main(
            ["deploy", "--nodes", "12", "-p", "3", "--queries", "30", "--fail", "2"]
        )
        assert rc == 0
        assert "failed nodes" in capsys.readouterr().out

    def test_plan_feasible(self, capsys):
        rc = main(["plan", "--servers", "24", "--target-delay", "0.5"])
        assert rc == 0
        assert "recommended" in capsys.readouterr().out

    def test_plan_infeasible_exit_code(self, capsys):
        rc = main(["plan", "--servers", "2", "--target-delay", "0.0001"])
        assert rc == 1

    def test_control_parser_defaults(self):
        args = build_parser().parse_args(["control"])
        assert args.scenario == "flash-crowd"
        assert args.servers == 16
        assert args.slo == 1.0

    def test_control_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["control", "--scenario", "tsunami"])

    def test_control_runs_closed_loop(self, capsys):
        rc = main(
            [
                "control",
                "--scenario", "flash-crowd",
                "--servers", "8",
                "-p", "3",
                "--duration", "80",
                "--seed", "3",
            ]
        )
        assert rc == 0  # the controller adapted at least once
        out = capsys.readouterr().out
        assert "p99 before" in out
        assert "p99 after" in out
        assert "adapted        : True" in out

    def test_pps_demo(self, capsys):
        rc = main(["pps-demo", "--files", "60"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "matches" in out
        assert "ground truth" in out

    def test_kernels_lists_registry(self, capsys):
        rc = main(["kernels"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "exact_numpy" in out
        assert "compiled" in out
        assert "approx_topk" in out

    def test_kernels_divergence_table(self, capsys):
        rc = main(["kernels", "--divergence", "--servers", "10",
                   "--duration", "6"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "vs exact_numpy over the builtin battery" in out
        assert "decision%" in out

    def test_matrix_kernel_flag(self, capsys):
        rc = main([
            "matrix", "--servers", "8", "-p", "3", "--duration", "5",
            "--scenario", "steady", "--kernel", "approx_topk",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "approx_topk" in out
