"""Tests for the closed-loop scenario runner and its integration points."""

import math

import pytest

from repro.cluster.deployment import Deployment, DeploymentConfig
from repro.cluster.models import MODEL_CATALOGUE, hen_testbed
from repro.control import (
    DeploymentActuator,
    ScenarioConfig,
    ScenarioRunner,
    run_scenario,
)
from repro.sim.engine import Simulation
from repro.sim.workload import FlashCrowdTrace, RampTrace


def small_config(**kw):
    kw.setdefault("scenario", "flash-crowd")
    kw.setdefault("n_servers", 8)
    kw.setdefault("p0", 3)
    kw.setdefault("duration", 80.0)
    kw.setdefault("seed", 3)
    return ScenarioConfig(**kw)


class TestSimulationEvery:
    def test_fires_periodically(self):
        sim = Simulation()
        seen = []
        sim.every(2.0, seen.append)
        sim.run(until=10.0)
        assert seen == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_stops_on_false(self):
        sim = Simulation()
        seen = []

        def cb(now):
            seen.append(now)
            return len(seen) < 3

        sim.every(1.0, cb)
        sim.run(until=100.0)
        assert seen == [1.0, 2.0, 3.0]

    def test_cancel_stops_series(self):
        sim = Simulation()
        seen = []
        handle = sim.every(1.0, seen.append)
        sim.run(until=2.5)
        handle.cancel()
        sim.run(until=10.0)
        assert seen == [1.0, 2.0]
        assert handle.fired == 2

    def test_explicit_start(self):
        sim = Simulation()
        seen = []
        sim.every(5.0, seen.append, start=1.0)
        sim.run(until=12.0)
        assert seen == [1.0, 6.0, 11.0]

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            Simulation().every(0.0, lambda now: None)


class TestWorkloadTraces:
    def test_flash_crowd_phases(self):
        t = FlashCrowdTrace(
            base_rate=10.0, surge_factor=4.0, surge_start=100.0,
            surge_duration=50.0, decay=10.0,
        )
        assert t.rate(0.0) == 10.0
        assert t.rate(120.0) == 40.0
        # one decay constant after the surge: base + (peak-base)/e
        assert t.rate(160.0) == pytest.approx(10.0 + 30.0 / math.e)

    def test_flash_crowd_instant_drop(self):
        t = FlashCrowdTrace(base_rate=5.0, surge_start=10.0, surge_duration=5.0)
        assert t.rate(15.1) == 5.0

    def test_flash_crowd_validation(self):
        with pytest.raises(ValueError):
            FlashCrowdTrace(base_rate=0.0)
        with pytest.raises(ValueError):
            FlashCrowdTrace(base_rate=1.0, surge_factor=0.5)

    def test_ramp(self):
        t = RampTrace(start_rate=10.0, end_rate=30.0, t0=100.0, t1=200.0)
        assert t.rate(0.0) == 10.0
        assert t.rate(150.0) == pytest.approx(20.0)
        assert t.rate(999.0) == 30.0

    def test_ramp_validation(self):
        with pytest.raises(ValueError):
            RampTrace(start_rate=1.0, end_rate=2.0, t0=5.0, t1=5.0)


class TestDeploymentElasticity:
    def make(self, n=8, p=3):
        return Deployment(
            DeploymentConfig(
                models=hen_testbed(n),
                p=p,
                dataset_size=1e6,
                seed=2,
                store_objects=True,
                n_objects_stored=100,
            )
        )

    def test_add_server_joins_ring_and_downloads(self):
        dep = self.make()
        before_moved = dep.reconfig.bytes_moved
        name = dep.add_server(MODEL_CATALOGUE["dell-1950"], now=5.0)
        assert name in dep.servers
        assert name in dep.stores
        assert dep.n == 9
        dep.rings[0].validate()
        assert dep.reconfig.bytes_moved > before_moved
        # new server can serve queries immediately
        rec = dep.run_query(6.0, 3)
        assert rec is not None

    def test_remove_server_predecessor_absorbs(self):
        dep = self.make()
        ring = dep.rings[0]
        victim = ring.nodes()[3]
        pred = ring.predecessor(victim)
        pred_range = ring.range_of(pred).length
        dep.remove_server(victim.name, now=1.0)
        assert victim.name not in dep.servers
        assert victim.name in dep.retired
        assert dep.n == 7
        ring.validate()
        assert ring.range_of(pred).length > pred_range
        assert dep.run_query(2.0, 3) is not None

    def test_remove_last_node_refused(self):
        dep = self.make(n=8)
        names = list(dep.servers)
        for name in names[:-1]:
            if len(dep.rings[0]) > 1:
                dep.remove_server(name)
        with pytest.raises(ValueError):
            dep.remove_server(next(iter(dep.servers)))

    def test_long_term_failure_redistributes(self):
        dep = self.make()
        victim = dep.rings[0].nodes()[0].name
        dep.fail_node(victim, 1.0)
        assert dep.max_dead_range() > 0.0
        dep.handle_long_term_failure(victim, now=2.0)
        assert dep.max_dead_range() == 0.0
        assert victim not in dep.servers
        dep.rings[0].validate()

    def test_query_listeners_invoked(self):
        dep = self.make()
        seen = []
        dep.query_listeners.append(seen.append)
        dep.run_query(0.0, 3)
        assert len(seen) == 1
        assert seen[0].delay > 0


class TestScenarioRunner:
    def test_flash_crowd_adapts_and_reports(self):
        report = run_scenario(small_config())
        assert report.adapted  # the controller acted at least once mid-run
        kinds = {a.kind for a in report.actions}
        assert kinds & {"add_server", "remove_server", "request_p", "set_pq"}
        assert report.timeline, "control ticks recorded"
        assert not math.isnan(report.p99_before)
        assert not math.isnan(report.p99_after)
        assert len(report.log.records) > 100
        # summary renders without crashing and names the scenario
        assert "flash-crowd" in report.summary()

    def test_runs_are_deterministic(self):
        # Control decisions are seeded; only the *measured* scheduling
        # wall-clock folded into each delay varies run to run (microseconds
        # against delays of hundreds of milliseconds).
        a = run_scenario(small_config())
        b = run_scenario(small_config())
        assert [(x.time, x.kind) for x in a.actions] == [
            (x.time, x.kind) for x in b.actions
        ]
        assert [(t, pq, n) for t, pq, _, n in a.timeline] == [
            (t, pq, n) for t, pq, _, n in b.timeline
        ]
        assert a.p99_after == pytest.approx(b.p99_after, rel=0.05)

    def test_repartition_changes_p_mid_run(self):
        report = run_scenario(
            small_config(policies=("repartition",), duration=100.0)
        )
        p_levels = {t[1] for t in report.timeline}
        assert len(p_levels) > 1, "pq never moved"

    def test_rack_failure_scenario_survives(self):
        # Cap p so replacement windows stay wider than the dead ranges (the
        # rack holds the fastest -- widest-ranged -- nodes on 8 servers),
        # and rebuild promptly.  Adjacent rack-mates act as one combined
        # hole for the fall-back (Section 4.4, contiguous-run semantics):
        # queries overlapping a hole wider than the replication arc *drop*
        # into the yield accounting -- they used to be counted as served
        # with silently incomplete results -- so the bar here is honest
        # yield during the crisis window plus full recovery after rebuild.
        report = run_scenario(
            small_config(
                scenario="rack-failure",
                rack_size=2,
                duration=100.0,
                p_max=4,
                rebuild_delay=15.0,
            )
        )
        assert report.adapted
        # membership eventually redistributed the dead ranges
        assert report.log.yield_fraction() > 0.85
        # after the rebuild the system serves everything again
        rebuild_done = report.stimulus_time + 20.0
        tail = [r for r in report.log.records if r.arrival > rebuild_done]
        assert tail, "no queries served after the rebuild"
        assert report.log.records[-1].arrival > 0.9 * 100.0

    def test_diurnal_scenario(self):
        report = run_scenario(small_config(scenario="diurnal", duration=100.0))
        assert report.adapted
        assert report.timeline[-1][3] >= report.config.min_servers

    def test_planner_mode_runs(self):
        report = run_scenario(
            small_config(policies=("repartition",), use_planner=True)
        )
        assert report.timeline  # ran to completion with the advisor in loop

    def test_bad_scenario_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(scenario="nope")

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            ScenarioRunner(small_config(policies=("magic",)))


class TestActuator:
    def make(self):
        cfg = small_config()
        runner = ScenarioRunner(cfg)
        return runner.actuator, runner

    def test_pq_floor_follows_p_store(self):
        act, _ = self.make()
        act.set_pq(1)
        assert act.pq == act.deployment.config.p  # clamped to the floor

    def test_request_p_schedules_background_steps(self):
        act, runner = self.make()
        assert act.request_p(act.deployment.config.p + 1)
        assert not act.reconfig_stable
        runner.sim.run(until=runner.config.drop_seconds + 1.0)
        assert act.reconfig_stable
        assert act.p_store == act.deployment.config.p + 1

    def test_request_p_refused_while_unstable(self):
        act, _ = self.make()
        assert act.request_p(act.deployment.config.p + 1)
        assert not act.request_p(act.deployment.config.p + 2)

    def test_safety_cap_reflects_dead_ranges(self):
        act, _ = self.make()
        assert act.p_safety_cap is None
        victim = act.deployment.rings[0].nodes()[0].name
        act.deployment.fail_node(victim, 0.0)
        cap = act.p_safety_cap
        assert cap is not None and cap >= 1
