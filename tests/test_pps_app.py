"""Tests for the PPS application layer: metadata codec, corpus, store,
matcher, multi-predicate queries, index-based model."""

import math
import random

import pytest

from repro.core.ids import Arc
from repro.pps import (
    CorpusConfig,
    FileMetadata,
    MatchEngine,
    MetadataCodec,
    MetadataStore,
    MultiPredicateQuery,
    Predicate,
    StoredItem,
    UserStoreCache,
    Vocabulary,
    bandwidth_ratio,
    generate_corpus,
    index_bandwidth,
    optimal_delta_max,
    pps_bandwidth,
    sample_size_for_accuracy,
)
from repro.pps.corpus import corpus_vocabulary


@pytest.fixture
def codec(key):
    return MetadataCodec(key, max_content_keywords=10, max_path_depth=6)


@pytest.fixture
def sample_file():
    return FileMetadata(
        path="/home/docs/report-7.pdf",
        keywords=("budget", "q3", "revenue"),
        size=50_000,
        mtime=1.0e9 + 50 * 7 * 86400.0,
    )


class TestMetadataCodec:
    def test_keyword_predicate(self, codec, sample_file):
        enc = codec.encrypt_file(sample_file)
        assert codec.match(enc, codec.encrypt_predicate(Predicate("keyword", "=", "budget")))
        assert not codec.match(enc, codec.encrypt_predicate(Predicate("keyword", "=", "nope")))

    def test_path_predicate(self, codec, sample_file):
        enc = codec.encrypt_file(sample_file)
        assert codec.match(enc, codec.encrypt_predicate(Predicate("path", "=", "docs")))
        assert codec.match(
            enc, codec.encrypt_predicate(Predicate("path", "=", "report-7.pdf"))
        )
        assert not codec.match(enc, codec.encrypt_predicate(Predicate("path", "=", "music")))

    def test_size_predicate(self, codec, sample_file):
        enc = codec.encrypt_file(sample_file)
        assert codec.match(enc, codec.encrypt_predicate(Predicate("size", ">", 1000)))
        assert not codec.match(enc, codec.encrypt_predicate(Predicate("size", ">", 1e8)))
        assert codec.match(enc, codec.encrypt_predicate(Predicate("size", "<", 1e8)))

    def test_date_predicate(self, codec, sample_file):
        enc = codec.encrypt_file(sample_file)
        assert codec.match(
            enc, codec.encrypt_predicate(Predicate("date", ">", 1.0e9))
        )
        assert not codec.match(
            enc, codec.encrypt_predicate(Predicate("date", ">", 1.0e9 + 100 * 7 * 86400))
        )

    def test_attribute_types_isolated(self, codec):
        """A size value equal to a keyword string must not cross-match --
        the prefix bundling of Section 5.6.4."""
        meta = FileMetadata("/a/b.txt", ("100",), size=100, mtime=1.0e9)
        enc = codec.encrypt_file(meta)
        assert codec.match(enc, codec.encrypt_predicate(Predicate("keyword", "=", "100")))
        # path predicate for "100" must not match the keyword or the size
        assert not codec.match(enc, codec.encrypt_predicate(Predicate("path", "=", "100")))

    def test_invalid_predicates(self, codec):
        with pytest.raises(ValueError):
            codec.word_for_predicate(Predicate("keyword", ">", "x"))
        with pytest.raises(ValueError):
            codec.word_for_predicate(Predicate("size", "=", 5))
        with pytest.raises(ValueError):
            codec.word_for_predicate(Predicate("bogus", "=", 5))  # type: ignore

    def test_metadata_size_reported(self, codec):
        assert codec.metadata_size_bytes() > 100


class TestCorpus:
    def test_deterministic(self):
        a = generate_corpus(CorpusConfig(n_files=50, seed=9))
        b = generate_corpus(CorpusConfig(n_files=50, seed=9))
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_corpus(CorpusConfig(n_files=50, seed=1))
        b = generate_corpus(CorpusConfig(n_files=50, seed=2))
        assert a != b

    def test_corpus_shape(self):
        files = generate_corpus(CorpusConfig(n_files=100, keywords_per_file=8))
        assert len(files) == 100
        for f in files:
            assert len(f.keywords) == 8
            assert f.path.startswith("/")
            assert f.size > 0

    def test_zipf_vocabulary_popularity(self):
        vocab = Vocabulary.synthetic(500)
        rng = random.Random(1)
        draws = [vocab.sample(rng, 1)[0] for _ in range(3000)]
        top = sum(1 for w in draws if vocab.frequency_rank(w) < 10)
        bottom = sum(1 for w in draws if vocab.frequency_rank(w) >= 400)
        assert top > bottom * 3  # heavy head

    def test_corpus_vocabulary_matches_config(self):
        cfg = CorpusConfig(vocabulary_size=123)
        assert len(corpus_vocabulary(cfg).words) == 123


class TestMetadataStore:
    def make_store(self, n, rng, chunk_size=16):
        from repro.pps.schemes.base import EncryptedMetadata

        items = [
            StoredItem(rng.random(), EncryptedMetadata("fake", i, size_bytes=100))
            for i in range(n)
        ]
        return MetadataStore(items, chunk_size=chunk_size)

    def test_sorted_order(self, rng):
        store = self.make_store(100, rng)
        ids = [it.item_id for it in store]
        assert ids == sorted(ids)

    def test_load_range_returns_only_in_arc(self, rng):
        store = self.make_store(200, rng)
        arc = Arc(0.2, 0.3)
        got = store.load_range(arc)
        assert all(arc.contains(it.item_id) for it in got)
        expected = sum(1 for it in store if arc.contains(it.item_id))
        assert len(got) == expected

    def test_load_wrapping_range(self, rng):
        store = self.make_store(200, rng)
        arc = Arc(0.9, 0.2)
        got = store.load_range(arc)
        assert all(arc.contains(it.item_id) for it in got)

    def test_full_circle_loads_everything(self, rng):
        store = self.make_store(50, rng)
        assert len(store.load_range(Arc(0.0, 1.0))) == 50

    def test_io_charged_per_chunk(self, rng):
        store = self.make_store(100, rng, chunk_size=10)
        store.load_range(Arc(0.0, 0.05))
        # At least one chunk (1000 B), far less than the whole store.
        assert 0 < store.bytes_read <= 100 * 100

    def test_add_remove_replace(self, rng):
        from repro.pps.schemes.base import EncryptedMetadata

        store = self.make_store(10, rng)
        item = StoredItem(0.5, EncryptedMetadata("fake", "new", 100))
        store.add(item)
        assert len(store) == 11
        assert store.remove_id(0.5)
        assert not store.remove_id(0.5)
        store.replace(item)
        assert len(store) == 11

    def test_pointer_table_granularity(self, rng):
        store = self.make_store(100, rng, chunk_size=25)
        table = store.pointer_table()
        assert len(table) == 4
        assert [pos for _, pos in table] == [0, 25, 50, 75]


class TestUserStoreCache:
    def make_store(self, n, seed=0):
        from repro.pps.schemes.base import EncryptedMetadata

        rng = random.Random(seed)
        return MetadataStore(
            StoredItem(rng.random(), EncryptedMetadata("fake", i, 100))
            for i in range(n)
        )

    def test_hit_after_load(self):
        cache = UserStoreCache(capacity_items=100)
        cache.get("alice", lambda: self.make_store(10))
        cache.get("alice", lambda: self.make_store(10))
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = UserStoreCache(capacity_items=25)
        cache.get("a", lambda: self.make_store(10, 1))
        cache.get("b", lambda: self.make_store(10, 2))
        cache.get("c", lambda: self.make_store(10, 3))  # evicts "a"
        assert cache.evictions >= 1
        assert not cache.contains("a")
        assert cache.contains("c")

    def test_lru_order_refreshes_on_access(self):
        cache = UserStoreCache(capacity_items=25)
        cache.get("a", lambda: self.make_store(10, 1))
        cache.get("b", lambda: self.make_store(10, 2))
        cache.get("a", lambda: self.make_store(10, 1))  # refresh a
        cache.get("c", lambda: self.make_store(10, 3))  # evicts b, not a
        assert cache.contains("a")
        assert not cache.contains("b")

    def test_cold_load_charges_io(self):
        cache = UserStoreCache(capacity_items=100)
        store = cache.get("alice", lambda: self.make_store(10))
        assert store.bytes_read == 10 * 100


class TestMatchEngine:
    def make_items(self, n, key, match_every=10):
        from repro.pps.schemes import EqualityScheme

        scheme = EqualityScheme(key)
        rng = random.Random(0)
        items = []
        for i in range(n):
            value = "hit" if i % match_every == 0 else f"miss-{i}"
            items.append(StoredItem(rng.random(), scheme.encrypt_metadata(value)))
        query = scheme.encrypt_query("hit")
        return items, (lambda m: scheme.match(m, query))

    def test_serial_reference(self, key):
        items, match_fn = self.make_items(200, key)
        engine = MatchEngine(low_memory=False)
        result = engine.run_serial(items, match_fn)
        assert result.scanned == 200
        assert len(result.matches) == 20

    def test_threaded_equals_serial(self, key):
        items, match_fn = self.make_items(500, key)
        serial = MatchEngine(low_memory=False).run_serial(items, match_fn)
        for threads in (1, 2, 4):
            engine = MatchEngine(n_threads=threads, batch_size=50, low_memory=False)
            result = engine.run(items, match_fn)
            assert result.scanned == 500
            assert {id(m) for m in result.matches} == {
                id(m) for m in serial.matches
            }

    def test_trace_recorded(self, key):
        items, match_fn = self.make_items(300, key)
        engine = MatchEngine(batch_size=50, trace_every=100, low_memory=False)
        result = engine.run(items, match_fn)
        roles = {t.role for t in result.trace}
        assert "io" in roles and "match" in roles
        assert result.trace[-1].count == 300

    def test_early_termination(self, key):
        items, match_fn = self.make_items(2000, key, match_every=2)
        engine = MatchEngine(batch_size=20, low_memory=False)
        result = engine.run(items, match_fn, stop_after_matches=10)
        assert len(result.matches) >= 10
        assert result.scanned < 2000

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MatchEngine(n_threads=0)
        with pytest.raises(ValueError):
            MatchEngine(batch_size=0)


class TestMultiPredicateQuery:
    def make_preds(self, key, values):
        from repro.pps.schemes import EqualityScheme

        scheme = EqualityScheme(key)
        return scheme, [(scheme, scheme.encrypt_query(v)) for v in values]

    def encrypt_items(self, key, rows):
        from repro.pps.schemes import EqualityScheme

        scheme = EqualityScheme(key)
        return scheme, [scheme.encrypt_metadata(v) for v in rows]

    def test_sample_size_formula(self):
        assert sample_size_for_accuracy(0.1) == 225
        assert sample_size_for_accuracy(0.05) == 900

    def test_and_semantics(self, key):
        from repro.pps.schemes import BloomKeywordScheme

        scheme = BloomKeywordScheme(key, max_words=4)
        q = MultiPredicateQuery(
            [(scheme, scheme.encrypt_query("a")), (scheme, scheme.encrypt_query("b"))],
            op="and",
            dynamic_ordering=False,
        )
        both = scheme.encrypt_metadata(["a", "b"])
        only_a = scheme.encrypt_metadata(["a"])
        assert q.matches(both)
        assert not q.matches(only_a)

    def test_or_semantics(self, key):
        from repro.pps.schemes import BloomKeywordScheme

        scheme = BloomKeywordScheme(key, max_words=4)
        q = MultiPredicateQuery(
            [(scheme, scheme.encrypt_query("a")), (scheme, scheme.encrypt_query("b"))],
            op="or",
            dynamic_ordering=False,
        )
        assert q.matches(scheme.encrypt_metadata(["b"]))
        assert not q.matches(scheme.encrypt_metadata(["c"]))

    def test_dynamic_ordering_puts_selective_first(self, key):
        from repro.pps.schemes import BloomKeywordScheme

        scheme = BloomKeywordScheme(key, max_words=4)
        # "common" matches everything; "rare" matches nothing.
        q = MultiPredicateQuery(
            [
                (scheme, scheme.encrypt_query("common")),
                (scheme, scheme.encrypt_query("rare")),
            ],
            op="and",
            sample_size=50,
        )
        for _ in range(60):
            q.matches(scheme.encrypt_metadata(["common", "other"]))
        assert q.current_order() == [1, 0]  # rare (selective) first

    def test_ordering_reduces_evaluations(self, key):
        from repro.pps.schemes import BloomKeywordScheme

        scheme = BloomKeywordScheme(key, max_words=4)

        def run(dynamic):
            q = MultiPredicateQuery(
                [
                    (scheme, scheme.encrypt_query("common")),
                    (scheme, scheme.encrypt_query("rare")),
                ],
                op="and",
                dynamic_ordering=dynamic,
                sample_size=50,
            )
            metas = [scheme.encrypt_metadata(["common"]) for _ in range(300)]
            for m in metas:
                q.matches(m)
            return q.total_evaluations

        assert run(True) < run(False)

    def test_results_same_with_and_without_ordering(self, key):
        from repro.pps.schemes import BloomKeywordScheme

        scheme = BloomKeywordScheme(key, max_words=4)
        rng = random.Random(3)
        metas = []
        truths = []
        for _ in range(400):
            words = rng.sample(["a", "b", "c", "d"], k=rng.randint(1, 3))
            metas.append(scheme.encrypt_metadata(words))
            truths.append("a" in words and "b" in words)
        for dynamic in (True, False):
            q = MultiPredicateQuery(
                [(scheme, scheme.encrypt_query("a")), (scheme, scheme.encrypt_query("b"))],
                op="and",
                dynamic_ordering=dynamic,
                sample_size=100,
            )
            got = [q.matches(m) for m in metas]
            assert got == truths

    def test_empty_predicates_rejected(self):
        with pytest.raises(ValueError):
            MultiPredicateQuery([], op="and")

    def test_bad_op_rejected(self, key):
        from repro.pps.schemes import EqualityScheme

        scheme = EqualityScheme(key)
        with pytest.raises(ValueError):
            MultiPredicateQuery(
                [(scheme, scheme.encrypt_query("x"))], op="xor"  # type: ignore
            )


class TestIndexBasedModel:
    def test_pps_bandwidth_linear(self):
        assert pps_bandwidth(10, 0) == pytest.approx(5000)
        assert pps_bandwidth(0, 10) == pytest.approx(25000)

    def test_index_worse_when_updates_remote(self):
        ratio = bandwidth_ratio(fu=500, fq=100, local_fraction=0.0)
        assert ratio > 2.0

    def test_local_updates_shrink_gap(self):
        r_remote = bandwidth_ratio(fu=500, fq=100, local_fraction=0.0)
        r_local = bandwidth_ratio(fu=500, fq=100, local_fraction=0.9)
        assert r_local < r_remote

    def test_paper_headline_ratio(self):
        """Fig 5.1: up to ~8x more bandwidth with fully remote updates."""
        worst = max(
            bandwidth_ratio(fu, fq, 0.0)
            for fu in (100, 300, 1000)
            for fq in (100, 300, 1000)
        )
        assert 4.0 < worst < 12.0

    def test_optimal_delta_max_balances(self):
        d = optimal_delta_max(fu=100, fq=100, local_fraction=0.0)
        assert d >= 1
        best = index_bandwidth(100, 100, d)
        assert best <= index_bandwidth(100, 100, max(1, d // 2)) + 1e-9
        assert best <= index_bandwidth(100, 100, d * 2) + 1e-9

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            index_bandwidth(1, 1, 0)
        with pytest.raises(ValueError):
            index_bandwidth(1, 1, 5, local_fraction=1.5)
