"""Tests for range load balancing (repro.core.balance, Section 4.6)."""

import random

import pytest

from repro.core import Ring, RingNode
from repro.core.balance import BalanceConfig, LoadBalancer, load_imbalance


class TestLoadImbalance:
    def test_perfect(self):
        assert load_imbalance([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_worst_case(self):
        assert load_imbalance([12.0, 0.0, 0.0]) == pytest.approx(3.0)

    def test_empty(self):
        assert load_imbalance([]) == 1.0

    def test_zero_mean(self):
        assert load_imbalance([0.0, 0.0]) == 1.0


class TestBalancer:
    def test_equal_speeds_already_balanced(self):
        ring = Ring.uniform(6)
        lb = LoadBalancer(ring)
        assert lb.step() == 0

    def test_converges_to_proportional_ranges(self):
        # Equal ranges but unequal speeds: balancer should move boundaries
        # until range/speed ratios even out.
        speeds = [1.0, 3.0, 1.0, 3.0]
        ring = Ring.uniform(4, speeds=speeds)
        lb = LoadBalancer(ring)
        rounds = lb.run_until_stable(max_rounds=500)
        assert rounds < 500
        assert lb.imbalance() < 1.15  # within the 10% hysteresis band
        ring.validate()

    def test_imbalance_never_increases_much(self):
        rng = random.Random(3)
        speeds = [rng.uniform(0.5, 4.0) for _ in range(10)]
        ring = Ring.uniform(10, speeds=speeds)
        lb = LoadBalancer(ring)
        history = [lb.imbalance()]
        for _ in range(200):
            if lb.step() == 0:
                break
            history.append(lb.imbalance())
        assert history[-1] < history[0]

    def test_hysteresis_stops_churn(self):
        # Within the threshold: no movement at all.
        ring = Ring.proportional([1.0, 1.04, 1.0])
        lb = LoadBalancer(ring, BalanceConfig(threshold=0.10))
        assert lb.step() == 0

    def test_fixed_nodes_not_moved(self):
        ring = Ring.uniform(4, speeds=[1.0, 5.0, 1.0, 5.0])
        lb = LoadBalancer(ring)
        lb.fixed = {n.name for n in ring}
        assert lb.step() == 0

    def test_custom_load_function(self):
        ring = Ring.uniform(4)
        measured = {"node-0": 10.0, "node-1": 1.0, "node-2": 1.0, "node-3": 1.0}
        lb = LoadBalancer(
            ring, load_fn=lambda node, rng_len: measured[node.name] * rng_len
        )
        moved = lb.step()
        assert moved > 0
        # node-0 was hottest: its range should have shrunk.
        assert ring.range_of(ring.get("node-0")).length < 0.25

    def test_two_node_ring(self):
        ring = Ring.uniform(2, speeds=[1.0, 9.0])
        lb = LoadBalancer(ring)
        lb.run_until_stable(200)
        fast = ring.get("node-1")
        assert ring.range_of(fast).length > 0.6
        ring.validate()

    def test_single_node_noop(self):
        ring = Ring([RingNode("solo", 0.0)])
        assert LoadBalancer(ring).step() == 0

    def test_dead_nodes_skipped(self):
        ring = Ring.uniform(4, speeds=[1.0, 5.0, 1.0, 5.0])
        for node in ring:
            node.alive = False
        assert LoadBalancer(ring).step() == 0

    def test_ranges_stay_a_partition(self):
        rng = random.Random(8)
        ring = Ring.uniform(12, speeds=[rng.uniform(0.3, 3.0) for _ in range(12)])
        lb = LoadBalancer(ring)
        for _ in range(100):
            lb.step()
            ring.validate()
