"""Tests for standing queries / online filtering (repro.pps.pubsub)."""

import pytest

from repro.pps.pubsub import StandingQueryIndex
from repro.pps.schemes import BloomKeywordScheme, EqualityScheme


@pytest.fixture
def scheme(key):
    return BloomKeywordScheme(key, max_words=6, pad_filters=False)


@pytest.fixture
def index(scheme):
    return StandingQueryIndex(scheme)


class TestSubscriptions:
    def test_subscribe_assigns_ids(self, index, scheme):
        s1 = index.subscribe("alice", scheme.encrypt_query("urgent"))
        s2 = index.subscribe("bob", scheme.encrypt_query("invoice"))
        assert s1.sub_id != s2.sub_id
        assert len(index) == 2

    def test_unsubscribe(self, index, scheme):
        sub = index.subscribe("alice", scheme.encrypt_query("urgent"))
        assert index.unsubscribe(sub.sub_id)
        assert len(index) == 0
        assert not index.unsubscribe(sub.sub_id)

    def test_identical_queries_collapse(self, index, scheme):
        """The cover relation (equality here) dedupes evaluations."""
        q = scheme.encrypt_query("urgent")
        index.subscribe("alice", q)
        index.subscribe("bob", scheme.encrypt_query("urgent"))
        assert len(index) == 2
        assert index.distinct_queries() == 1


class TestMatching:
    def test_notifies_matching_owners(self, index, scheme):
        index.subscribe("alice", scheme.encrypt_query("urgent"))
        index.subscribe("bob", scheme.encrypt_query("boring"))
        meta = scheme.encrypt_metadata(["urgent", "meeting"])
        notes = index.match_metadata(meta)
        assert {n.owner for n in notes} == {"alice"}

    def test_no_match_no_notification(self, index, scheme):
        index.subscribe("alice", scheme.encrypt_query("urgent"))
        notes = index.match_metadata(scheme.encrypt_metadata(["calm"]))
        assert notes == []

    def test_all_equal_subscribers_notified(self, index, scheme):
        index.subscribe("alice", scheme.encrypt_query("urgent"))
        index.subscribe("bob", scheme.encrypt_query("urgent"))
        notes = index.match_metadata(scheme.encrypt_metadata(["urgent"]))
        assert {n.owner for n in notes} == {"alice", "bob"}

    def test_collapsed_queries_single_evaluation(self, index, scheme):
        for i in range(10):
            index.subscribe(f"user{i}", scheme.encrypt_query("urgent"))
        index.evaluations = 0
        index.match_metadata(scheme.encrypt_metadata(["urgent"]))
        assert index.evaluations == 1

    def test_batch(self, index, scheme):
        index.subscribe("alice", scheme.encrypt_query("urgent"))
        metas = [
            scheme.encrypt_metadata(["urgent"]),
            scheme.encrypt_metadata(["calm"]),
            scheme.encrypt_metadata(["urgent", "x"]),
        ]
        notes = index.match_batch(metas)
        assert len(notes) == 2

    def test_unsubscribed_not_notified(self, index, scheme):
        sub = index.subscribe("alice", scheme.encrypt_query("urgent"))
        index.subscribe("bob", scheme.encrypt_query("urgent"))
        index.unsubscribe(sub.sub_id)
        notes = index.match_metadata(scheme.encrypt_metadata(["urgent"]))
        assert {n.owner for n in notes} == {"bob"}

    def test_works_with_equality_scheme(self, key):
        scheme = EqualityScheme(key)
        index = StandingQueryIndex(scheme)
        index.subscribe("alice", scheme.encrypt_query("exact-value"))
        hit = index.match_metadata(scheme.encrypt_metadata("exact-value"))
        miss = index.match_metadata(scheme.encrypt_metadata("other"))
        assert len(hit) == 1
        assert miss == []

    def test_mixed_subscriptions_end_to_end(self, index, scheme):
        index.subscribe("alice", scheme.encrypt_query("urgent"))
        index.subscribe("bob", scheme.encrypt_query("invoice"))
        index.subscribe("carol", scheme.encrypt_query("urgent"))
        meta = scheme.encrypt_metadata(["urgent", "invoice"])
        owners = sorted(n.owner for n in index.match_metadata(meta))
        assert owners == ["alice", "bob", "carol"]
