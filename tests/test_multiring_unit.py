"""Direct unit tests for :mod:`repro.core.multiring` (Section 4.7).

The multi-ring math was previously exercised only through benchmarks
(a ROADMAP coverage gap); these tests pin the choice-count formulas, the
``r >= k`` constraint, and the cross-ring replication layout directly so
the CI coverage floor can sit at 90%.
"""

import math
import random

import pytest

from repro.core.ids import arcs_intersect
from repro.core.multiring import (
    choices_multiring,
    choices_ptn,
    choices_sw,
    log_choices,
    store_on_rings,
    validate_ring_count,
)
from repro.core.node import RoarNode
from repro.core.objects import generate_objects
from repro.core.ring import Ring


class TestChoiceCounts:
    def test_sw_is_r(self):
        assert choices_sw(6.0, 5) == 6.0
        assert choices_sw(2.5, 99) == 2.5

    def test_ptn_is_r_to_the_p(self):
        assert choices_ptn(3.0, 4) == 81.0
        assert choices_ptn(2.0, 10) == 1024.0
        # p=1 degenerates to r, matching SW
        assert choices_ptn(7.0, 1) == choices_sw(7.0, 1)

    def test_multiring_paper_k2_formula(self):
        # the paper's k=2 statement: r * 2^(p-1)
        assert choices_multiring(4.0, 5, k=2) == 4.0 * 2**4
        # k=1 collapses to the single-ring SW count
        assert choices_multiring(4.0, 5, k=1) == choices_sw(4.0, 5)

    def test_multiring_between_sw_and_ptn(self):
        r, p, k = 4.0, 6, 2
        assert (
            choices_sw(r, p)
            < choices_multiring(r, p, k)
            < choices_ptn(r, p)
        )

    def test_validate_ring_count(self):
        validate_ring_count(r=2.0, k=2)
        with pytest.raises(ValueError, match="at least one ring"):
            validate_ring_count(r=2.0, k=0)
        with pytest.raises(ValueError, match="cannot support"):
            validate_ring_count(r=1.5, k=2)
        with pytest.raises(ValueError, match="cannot support"):
            choices_multiring(1.0, 4, k=2)

    def test_log_choices_matches_linear_forms(self):
        r, p, k = 5.0, 7, 2
        assert log_choices("sw", r, p) == pytest.approx(math.log(r))
        assert log_choices("ptn", r, p) == pytest.approx(p * math.log(r))
        assert log_choices("multiring", r, p, k) == pytest.approx(
            math.log(choices_multiring(r, p, k))
        )
        with pytest.raises(ValueError, match="unknown kind"):
            log_choices("quantum", r, p)

    def test_log_choices_avoids_overflow(self):
        # the linear form overflows around p ~ 700 for r=8; the log form
        # is exactly why the helper exists
        val = log_choices("ptn", 8.0, 5000)
        assert math.isfinite(val)
        assert val == pytest.approx(5000 * math.log(8.0))


class TestStoreOnRings:
    def _rings(self, sizes, seed=7):
        rng = random.Random(seed)
        rings = []
        for rid, n in enumerate(sizes):
            rings.append(
                Ring.proportional(
                    [rng.uniform(0.5, 2.0) for _ in range(n)],
                    name_prefix=f"r{rid}n",
                    ring_id=rid,
                )
            )
        return rings

    def test_every_ring_holds_a_full_copy(self):
        rings = self._rings([5, 4])
        stores = {n.name: RoarNode(n) for ring in rings for n in ring}
        objects = generate_objects(60, random.Random(3))
        p = 2.0
        store_on_rings(rings, stores, objects, p)
        for ring in rings:
            for obj in objects:
                holders = [
                    n.name
                    for n in ring
                    if obj in stores[n.name].store
                ]
                assert holders, f"object {obj.oid} missing from a ring"

    def test_replication_arc_is_one_over_p(self):
        rings = self._rings([6])
        ring = rings[0]
        stores = {n.name: RoarNode(n) for n in ring}
        objects = generate_objects(40, random.Random(9))
        p = 2.0
        store_on_rings(rings, stores, objects, p)
        # a node holds exactly the objects whose replication arc
        # [oid, oid + 1/p) intersects its range (independent arithmetic,
        # not RoarNode.should_store)
        for node in ring:
            rng_arc = ring.range_of(node)
            for obj in objects:
                expected = arcs_intersect(
                    obj.oid, 1.0 / p, rng_arc.start, rng_arc.length
                )
                assert (obj in stores[node.name].store) == expected

    def test_higher_p_means_fewer_replicas(self):
        rings = self._rings([8])
        objects = generate_objects(50, random.Random(11))
        totals = {}
        for p in (2.0, 4.0):
            stores = {n.name: RoarNode(n) for n in rings[0]}
            store_on_rings(rings, stores, objects, p)
            totals[p] = sum(len(s.store) for s in stores.values())
        assert totals[4.0] < totals[2.0]
