"""Tests for the closed-form models (repro.analysis)."""

import math

import pytest

from repro.analysis import (
    bandwidth_penalty,
    best_p_for_target,
    equal_split_bound,
    fluid_bound,
    loaded_delay,
    message_costs,
    multiring_unavailability_mc,
    optimal_r,
    ptn_unavailability,
    roar_run_unavailability,
    roar_unavailability_mc,
    sw_unavailability,
    total_bandwidth,
)


class TestBandwidth:
    def test_optimal_r_formula(self):
        # r_opt = sqrt(n * Bq / Bd)
        assert optimal_r(100, b_data=1.0, b_query=4.0) == pytest.approx(20.0)

    def test_optimal_r_minimises(self):
        n, bd, bq = 64, 2.0, 3.0
        r_opt = optimal_r(n, bd, bq)
        best = total_bandwidth(n, r_opt, bd, bq)
        for r in (1, 2, 4, 8, 16, 32, 64):
            assert total_bandwidth(n, r, bd, bq) >= best - 1e-9

    def test_extreme_r_penalty_order_sqrt_n(self):
        n = 10_000
        penalty = bandwidth_penalty(n, 1.0, b_data=1.0, b_query=1.0)
        # Section 2.3.2: O(sqrt(n)) more bandwidth than optimal.
        assert penalty == pytest.approx(math.sqrt(n) / 2, rel=0.1)

    def test_results_term_constant(self):
        a = total_bandwidth(10, 2, 1.0, 1.0, b_results=5.0)
        b = total_bandwidth(10, 5, 1.0, 1.0, b_results=5.0)
        assert a - total_bandwidth(10, 2, 1.0, 1.0) == pytest.approx(5.0)
        assert b - total_bandwidth(10, 5, 1.0, 1.0) == pytest.approx(5.0)


class TestMessageCosts:
    def test_store_and_query_identical_across_deterministic(self):
        for algo in ("roar", "sw", "ptn"):
            costs = message_costs(algo, n=100, p=10, d=1000)
            assert costs.store_object == 10.0  # r = n/p
            assert costs.run_query == 10.0  # p

    def test_rand_pays_c_factor(self):
        costs = message_costs("rand", n=100, p=10, d=1000, c=2.0)
        assert costs.store_object == 20.0
        assert costs.run_query == 20.0

    def test_roar_reconfig_cheaper_than_ptn(self):
        """Table 6.2's key row: ROAR moves D objects for r+1, PTN moves
        O(D*n/p^2)."""
        roar = message_costs("roar", n=100, p=5, d=10_000)
        ptn = message_costs("ptn", n=100, p=5, d=10_000)
        assert roar.increase_r < ptn.increase_r
        assert roar.decrease_r == 0.0
        assert ptn.decrease_r > 0.0

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            message_costs("nope", 10, 2, 100)


class TestDelayBounds:
    SPEEDS = [4.0, 3.0, 2.0, 1.0]

    def test_fluid_bound(self):
        assert fluid_bound(100.0, self.SPEEDS) == pytest.approx(10.0)

    def test_equal_split_uses_pth_fastest(self):
        # p=2: D/2 / s_2 = 50/3.
        assert equal_split_bound(100.0, self.SPEEDS, 2) == pytest.approx(50.0 / 3)

    def test_equal_split_never_beats_fluid(self):
        for p in range(1, 5):
            assert (
                equal_split_bound(100.0, self.SPEEDS, p)
                >= fluid_bound(100.0, self.SPEEDS) - 1e-12
            )

    def test_equal_split_p_too_large(self):
        with pytest.raises(ValueError):
            equal_split_bound(100.0, self.SPEEDS, 5)

    def test_loaded_delay_grows(self):
        delays = [loaded_delay(1.0, rho) for rho in (0.0, 0.5, 0.9)]
        assert delays[0] < delays[1] < delays[2]
        assert math.isinf(loaded_delay(1.0, 1.0))

    def test_best_p_for_target(self):
        # target 20: p=2 gives 16.67 <= 20.
        assert best_p_for_target(100.0, self.SPEEDS, 20.0) == 2

    def test_best_p_infeasible(self):
        assert best_p_for_target(100.0, self.SPEEDS, 0.001) is None

    def test_smaller_p_preferred(self):
        p = best_p_for_target(100.0, self.SPEEDS, 30.0)
        assert p == 1  # 100/4 = 25 <= 30


class TestAvailability:
    def test_ptn_shape(self):
        # More replication -> lower unavailability.
        assert ptn_unavailability(0.1, 4, 5) < ptn_unavailability(0.1, 2, 5)
        # More clusters -> more chances to lose one.
        assert ptn_unavailability(0.1, 3, 10) > ptn_unavailability(0.1, 3, 2)

    def test_sw_much_worse_than_ptn(self):
        """Fig 6.8's headline: basic SW availability is catastrophically
        worse because it needs a fully-alive rotation."""
        f, r, p = 0.05, 5, 10
        assert sw_unavailability(f, r, p) > 100 * ptn_unavailability(f, r, p)

    def test_roar_fallback_close_to_ptn(self):
        """ROAR with fall-back ~ runs of r failures ~ PTN's cluster loss."""
        f, r, p = 0.05, 5, 10
        n = r * p
        roar = roar_unavailability_mc(f, r, n, trials=30_000, seed=1)
        ptn = ptn_unavailability(f, r, p)
        assert roar < sw_unavailability(f, r, p)
        # Same order of magnitude as PTN (within ~10x, both tiny).
        assert roar <= max(ptn * 10, 2e-3)

    def test_run_approximation_tracks_mc(self):
        f, r, n = 0.1, 3, 30
        approx = roar_run_unavailability(f, r, n)
        mc = roar_unavailability_mc(f, r, n, trials=40_000, seed=2)
        assert approx == pytest.approx(mc, rel=0.5)

    def test_multiring_improves_strictness(self):
        """Section 4.7: multiple rings increase availability for strict ops."""
        f, r, n = 0.15, 4, 32
        single = roar_unavailability_mc(f, r, n, trials=20_000, seed=3)
        double = multiring_unavailability_mc(f, r, n, k_rings=2, trials=20_000, seed=3)
        assert double <= single

    def test_zero_failure_probability(self):
        assert ptn_unavailability(0.0, 3, 4) == 0.0
        assert sw_unavailability(0.0, 3, 4) == 0.0
        assert roar_unavailability_mc(0.0, 3, 12, trials=100) == 0.0

    def test_certain_failure(self):
        assert ptn_unavailability(1.0, 3, 4) == 1.0
        assert roar_unavailability_mc(1.0, 3, 12, trials=100) == 1.0

    def test_invalid_f(self):
        with pytest.raises(ValueError):
            ptn_unavailability(1.5, 2, 2)

    def test_multiring_requires_divisibility(self):
        with pytest.raises(ValueError):
            multiring_unavailability_mc(0.1, 3, 32, k_rings=2, trials=10)


class TestRunBasedCoverage:
    """Run-length coverage loss: the MC model aligned with core.failures.

    The fall-back treats a contiguous dead run as one hole and drops
    queries honestly when the hole's *range length* reaches the
    replacement width ``1/p_store - delta``; these tests pin the analysis
    layer to that same geometric condition.
    """

    def test_max_dead_run_length_basic(self):
        from repro.analysis import max_dead_run_length

        lengths = [0.25, 0.25, 0.25, 0.25]
        assert max_dead_run_length(lengths, [True] * 4) == 0.0
        assert max_dead_run_length(lengths, [False, True, True, True]) == 0.25
        # wrapping run: nodes 3, 0 are one contiguous hole
        assert max_dead_run_length(
            lengths, [False, True, True, False]
        ) == pytest.approx(0.5)
        assert max_dead_run_length(lengths, [False] * 4) == 1.0

    def test_max_dead_run_length_validates(self):
        from repro.analysis import max_dead_run_length

        with pytest.raises(ValueError):
            max_dead_run_length([0.5], [True, False])

    def test_uniform_ring_agrees_with_node_count_model(self):
        """On uniform ranges, a run of k nodes spans k/n: the run-length
        condition coincides with the legacy node-count model trial for
        trial (same rng draws, same outcomes)."""
        from repro.analysis import coverage_unavailability_mc

        n, p = 20, 4
        r = n // p
        for f, seed in ((0.15, 1), (0.3, 2), (0.5, 3)):
            node_count = roar_unavailability_mc(f, r, n, trials=3000, seed=seed)
            run_length = coverage_unavailability_mc(
                [1.0 / n] * n, p, f, trials=3000, seed=seed
            )
            assert node_count == run_length

    def test_wide_node_loses_coverage_alone(self):
        """A speed-balanced ring gives fast nodes wide ranges: one dead
        wide node can exceed the replacement width even though the
        node-count model (needs r=n/p consecutive deaths) says safe."""
        from repro.analysis import max_dead_run_length

        lengths = [0.3] + [0.7 / 19] * 19  # one node owns 30% > 1/p = 25%
        alive = [False] + [True] * 19
        assert max_dead_run_length(lengths, alive) >= 1.0 / 4

    def test_ring_unavailability_reads_live_layout(self):
        from repro.analysis import (
            coverage_unavailability_mc,
            ring_unavailability_mc,
        )
        from repro.core import Ring

        speeds = [4.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        ring = Ring.proportional(speeds)
        direct = ring_unavailability_mc(ring, 3, 0.2, trials=2000, seed=5)
        lengths = [ring.range_of(n).length for n in ring.nodes()]
        assert direct == coverage_unavailability_mc(
            lengths, 3, 0.2, trials=2000, seed=5
        )
        # the wide node (4/11 of the ring > 1/3) makes losses strictly
        # more likely than on the uniform layout the node-count model sees
        uniform = coverage_unavailability_mc(
            [1.0 / 8] * 8, 3, 0.2, trials=2000, seed=5
        )
        assert direct > uniform

    def test_coverage_matches_deployment_drops(self):
        """Differential against the implementation: when the dead run's
        range reaches the replacement width, the deployment drops queries
        (FailureCoverageError path); when it stays below, yield holds."""
        from repro.analysis import max_dead_run_length
        from repro.cluster import Deployment, DeploymentConfig, hen_testbed

        def run(n_fail):
            dep = Deployment(
                DeploymentConfig(
                    models=hen_testbed(8),
                    p=4,
                    dataset_size=1e6,
                    seed=5,
                    charge_scheduling=False,
                )
            )
            ring = dep.rings[0]
            nodes = ring.nodes()
            for node in nodes[:n_fail]:
                dep.fail_node(node.name, 0.0)
            lengths = [ring.range_of(nd).length for nd in nodes]
            alive = [not dep.servers[nd.name].failed for nd in nodes]
            run_len = max_dead_run_length(lengths, alive)
            for i in range(60):
                dep.run_query(0.1 + 0.05 * i, 4)
            return run_len, dep.log.dropped

        # the adjacent dead pair below the width: everything still served
        run_len, dropped = run(1)
        assert run_len < 0.25 and dropped == 0
        # a contiguous run at/over the width: honest drops, as modelled
        run_len, dropped = run(3)
        if run_len >= 0.25 - 1e-12:
            assert dropped > 0
        else:  # pragma: no cover - layout-dependent guard
            assert dropped == 0

    def test_coverage_validates_inputs(self):
        from repro.analysis import coverage_unavailability_mc

        with pytest.raises(ValueError):
            coverage_unavailability_mc([0.5, 0.5], 0, 0.1, trials=10)
        with pytest.raises(ValueError):
            coverage_unavailability_mc([0.5, 0.5], 4, 1.5, trials=10)
