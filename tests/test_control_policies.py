"""Tests for the control policies (repro.control.controllers)."""

import math

import pytest

from repro.cluster.multifrontend import MultiFrontEndDeployment
from repro.control.controllers import (
    FrontendElasticityController,
    RepartitionController,
    SLOElasticityController,
)
from repro.control.metrics import MetricsSnapshot


def snap(
    t=0.0,
    p99=0.1,
    util=0.10,
    qdepth=0.0,
    n_queries=50,
    qps=5.0,
    utilisation=None,
):
    u = utilisation if utilisation is not None else {f"s{i}": util for i in range(4)}
    return MetricsSnapshot(
        time=t,
        window=20.0,
        n_queries=n_queries,
        qps=qps,
        mean_latency=p99 * 0.5,
        p50=p99 * 0.4,
        p95=p99 * 0.8,
        p99=p99,
        n_servers=len(u),
        utilisation=u,
        queue_depths={k: qdepth for k in u},
    )


class StubTarget:
    """Minimal ControlTarget capturing actuations."""

    def __init__(self, n=8, p=4):
        self._n = n
        self.pq = p
        self._p_store = float(p)
        self._p_target = float(p)
        self._stable = True
        self.cap = None
        self.calls = []

    @property
    def n_servers(self):
        return self._n

    @property
    def p_store(self):
        return self._p_store

    @property
    def reconfig_stable(self):
        return self._stable

    @property
    def p_safety_cap(self):
        return self.cap

    def set_pq(self, pq):
        self.pq = int(pq)
        self.calls.append(("set_pq", pq))

    def request_p(self, p_new):
        if not self._stable:
            return False
        self._p_target = float(p_new)
        self._stable = False
        self.calls.append(("request_p", p_new))
        return True

    def complete_reconfig(self):
        self._p_store = self._p_target
        self._stable = True

    def add_server(self):
        self._n += 1
        name = f"new-{self._n}"
        self.calls.append(("add_server", name))
        return name

    def remove_server(self):
        self._n -= 1
        name = f"old-{self._n}"
        self.calls.append(("remove_server", name))
        return name


class TestSLOElasticity:
    def make(self, target, **kw):
        kw.setdefault("slo_p99", 1.0)
        kw.setdefault("min_servers", 4)
        kw.setdefault("max_servers", 16)
        kw.setdefault("cooldown", 10.0)
        return SLOElasticityController(target, **kw)

    def test_grows_on_slo_breach(self):
        target = StubTarget(n=8)
        ctl = self.make(target)
        actions = ctl.step(0.0, snap(p99=1.5))
        assert [a.kind for a in actions] == ["add_server"]
        assert target.n_servers == 9

    def test_growth_scales_with_severity(self):
        target = StubTarget(n=8)
        ctl = self.make(target, max_grow_step=4)
        actions = ctl.step(0.0, snap(p99=5.0))  # 5x the SLO
        assert len(actions) == 4
        assert target.n_servers == 12

    def test_grows_on_high_utilisation(self):
        target = StubTarget(n=8)
        ctl = self.make(target)
        actions = ctl.step(0.0, snap(p99=0.2, util=0.9))
        assert [a.kind for a in actions] == ["add_server"]

    def test_grows_on_deep_queues(self):
        target = StubTarget(n=8)
        ctl = self.make(target)
        actions = ctl.step(0.0, snap(p99=0.2, util=0.1, qdepth=5.0))
        assert [a.kind for a in actions] == ["add_server"]

    def test_respects_max_servers(self):
        target = StubTarget(n=16)
        ctl = self.make(target)
        assert ctl.step(0.0, snap(p99=9.9)) == []

    def test_cooldown_gates_consecutive_actions(self):
        target = StubTarget(n=8)
        ctl = self.make(target)
        assert ctl.step(0.0, snap(p99=2.0))
        assert ctl.step(5.0, snap(p99=2.0)) == []
        assert ctl.step(10.0, snap(p99=2.0))

    def test_no_signal_no_action(self):
        target = StubTarget(n=8)
        ctl = self.make(target)
        assert ctl.step(0.0, snap(p99=math.nan, n_queries=0)) == []

    def test_shrinks_only_when_cool_and_after_shrink_cooldown(self):
        target = StubTarget(n=8)
        ctl = self.make(target, shrink_cooldown=100.0)
        cool = dict(p99=0.1, util=0.05)
        acts = ctl.step(0.0, snap(**cool))
        assert [a.kind for a in acts] == ["remove_server"]
        # within the shrink cooldown: no more removals even when cool
        assert ctl.step(50.0, snap(**cool)) == []
        acts = ctl.step(150.0, snap(**cool))
        assert [a.kind for a in acts] == ["remove_server"]

    def test_no_shrink_with_queued_work(self):
        target = StubTarget(n=8)
        ctl = self.make(target)
        assert ctl.step(0.0, snap(p99=0.1, util=0.05, qdepth=5.0)) != []  # grows
        assert target.calls[-1][0] == "add_server"

    def test_respects_min_servers(self):
        target = StubTarget(n=4)
        ctl = self.make(target)
        assert ctl.step(0.0, snap(p99=0.1, util=0.05)) == []


class TestRepartition:
    def make(self, target, **kw):
        kw.setdefault("slo_p99", 1.0)
        kw.setdefault("p_min", 2)
        kw.setdefault("p_max", 12)
        kw.setdefault("cooldown", 10.0)
        return RepartitionController(target, **kw)

    def test_raises_p_on_tail_latency(self):
        target = StubTarget(p=4)
        ctl = self.make(target)
        actions = ctl.step(0.0, snap(p99=2.0, util=0.3))
        assert [a.kind for a in actions] == ["request_p"]
        assert target.pq == 5  # immediately safe: pq raised in the same tick
        assert target._p_target == 5.0

    def test_holds_when_saturated(self):
        """More partitioning is the wrong medicine for a capacity problem."""
        target = StubTarget(p=4)
        ctl = self.make(target)
        assert ctl.step(0.0, snap(p99=2.0, util=0.9)) == []

    def test_raises_p_on_imbalance(self):
        target = StubTarget(p=4)
        ctl = self.make(target, imbalance_threshold=1.5)
        skewed = {"s0": 0.9, "s1": 0.1, "s2": 0.1, "s3": 0.1}
        # imbalance counts only when the tail is near the SLO (gate 0.7)
        actions = ctl.step(0.0, snap(p99=0.8, utilisation=skewed))
        assert [a.kind for a in actions] == ["request_p"]

    def test_imbalance_ignored_when_latency_comfortable(self):
        """Chronic heterogeneity skew must not ratchet p upward."""
        target = StubTarget(p=4)
        ctl = self.make(target, imbalance_threshold=1.5)
        skewed = {"s0": 0.9, "s1": 0.1, "s2": 0.1, "s3": 0.1}
        assert ctl.step(0.0, snap(p99=0.5, utilisation=skewed)) == []

    def test_lowers_pq_directly_when_above_floor(self):
        target = StubTarget(p=4)
        target.pq = 6  # floor (p_store) is 4
        ctl = self.make(target)
        actions = ctl.step(0.0, snap(p99=0.1))
        assert [a.kind for a in actions] == ["set_pq"]
        assert target.pq == 5

    def test_lowering_below_floor_needs_reconfiguration(self):
        target = StubTarget(p=4)
        ctl = self.make(target)
        actions = ctl.step(0.0, snap(p99=0.1))
        assert [a.kind for a in actions] == ["request_p"]
        assert target._p_target == 3.0
        assert target.pq == 4  # pq must wait for downloads
        # while in flight: no further decisions
        assert ctl.step(20.0, snap(p99=0.1)) == []
        target.complete_reconfig()
        actions = ctl.step(40.0, snap(p99=0.1))
        # downloads done: now pq can drop to the new level
        assert ("set_pq", 3) in [(a.kind, int(a.value)) for a in actions]
        assert target.pq == 3

    def test_safety_cap_limits_p(self):
        target = StubTarget(p=4)
        target.cap = 4  # a dead node's range tolerates at most p=4
        ctl = self.make(target)
        assert ctl.step(0.0, snap(p99=2.0, util=0.3)) == []

    def test_safety_cap_forces_p_down(self):
        target = StubTarget(p=8)
        target.pq = 8
        target._p_store = 8.0
        target._p_target = 8.0
        target.cap = 6
        ctl = self.make(target)
        actions = ctl.step(0.0, snap(p99=0.5))
        assert [a.kind for a in actions] == ["request_p"]
        assert target._p_target == 7.0  # walks down one step at a time

    def test_planner_steers_toward_recommendation(self):
        target = StubTarget(p=4)
        ctl = self.make(target, planner=lambda s: 7)
        actions = ctl.step(0.0, snap(p99=0.5))
        assert [a.kind for a in actions] == ["request_p"]
        assert target._p_target == 5.0
        assert target.pq == 5

    def test_respects_bounds(self):
        target = StubTarget(p=12)
        target.pq = 12
        target._p_store = 12.0
        target._p_target = 12.0
        ctl = self.make(target)
        assert ctl.step(0.0, snap(p99=5.0, util=0.2)) == []  # at p_max


class StubPool:
    def __init__(self, k=2):
        self.k = k

    @property
    def n_frontends(self):
        return self.k

    def add_frontend(self):
        self.k += 1

    def remove_frontend(self):
        self.k -= 1


class TestFrontendElasticity:
    def test_adds_when_per_frontend_qps_high(self):
        pool = StubPool(k=2)
        ctl = FrontendElasticityController(pool, qps_per_frontend=10.0)
        actions = ctl.step(0.0, snap(qps=30.0))
        assert [a.kind for a in actions] == ["add_frontend"]
        assert pool.k == 3

    def test_removes_when_idle(self):
        pool = StubPool(k=4)
        ctl = FrontendElasticityController(pool, qps_per_frontend=10.0)
        actions = ctl.step(0.0, snap(qps=4.0))
        assert [a.kind for a in actions] == ["remove_frontend"]
        assert pool.k == 3

    def test_min_frontends(self):
        pool = StubPool(k=1)
        ctl = FrontendElasticityController(pool, qps_per_frontend=10.0)
        assert ctl.step(0.0, snap(qps=0.5)) == []

    def test_drives_real_multifrontend_deployment(self):
        dep = MultiFrontEndDeployment([1.0] * 8, p=4, n_frontends=1, seed=3)
        ctl = FrontendElasticityController(
            dep, qps_per_frontend=5.0, max_frontends=4
        )
        actions = ctl.step(0.0, snap(qps=50.0))
        assert actions and len(dep.frontends) == 2
        # the new front-end schedules real queries
        for i in range(20):
            dep.run_query(i * 0.01)
        assert len(dep.log.records) == 20


class TestMultiFrontendPoolSurface:
    def test_add_remove_frontend(self):
        dep = MultiFrontEndDeployment([1.0] * 4, p=2, n_frontends=2, seed=1)
        assert dep.n_frontends == 2
        dep.add_frontend()
        assert len(dep.frontends) == 3
        dep.remove_frontend()
        dep.remove_frontend()
        assert len(dep.frontends) == 1
        with pytest.raises(ValueError):
            dep.remove_frontend()

    def test_query_listeners_fire(self):
        dep = MultiFrontEndDeployment([1.0] * 4, p=2, n_frontends=2, seed=1)
        seen = []
        dep.query_listeners.append(seen.append)
        dep.run_query(0.0)
        assert len(seen) == 1
