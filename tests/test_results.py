"""Tests for result assembly and ranking (repro.pps.results)."""

import random

import pytest

from repro.pps.results import ScoredMatch, bucket_scorer, local_top_k, merge_top_k


class TestLocalTopK:
    def test_keeps_best_k(self):
        matches = [(f"doc{i}", float(i)) for i in range(10)]
        top = local_top_k(matches, 3)
        assert [m.payload for m in top] == ["doc9", "doc8", "doc7"]

    def test_fewer_matches_than_k(self):
        top = local_top_k([("a", 1.0)], 5)
        assert len(top) == 1

    def test_sorted_best_first(self):
        rng = random.Random(1)
        matches = [(i, rng.random()) for i in range(100)]
        top = local_top_k(matches, 10)
        scores = [m.score for m in top]
        assert scores == sorted(scores, reverse=True)

    def test_ties_stable_by_arrival(self):
        matches = [("first", 1.0), ("second", 1.0)]
        top = local_top_k(matches, 2)
        assert top[0].payload == "first"

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            local_top_k([], 0)


class TestMergeTopK:
    def test_global_exactness(self):
        """Two-level top-k equals direct top-k over the union."""
        rng = random.Random(2)
        servers = [
            [(f"s{s}-d{i}", rng.random()) for i in range(50)] for s in range(4)
        ]
        k = 10
        locals_ = [local_top_k(matches, k) for matches in servers]
        merged = merge_top_k(locals_, k)
        everything = [m for server in servers for m in server]
        direct = local_top_k(everything, k)
        assert [m.score for m in merged] == pytest.approx(
            [m.score for m in direct]
        )

    def test_empty_inputs(self):
        assert merge_top_k([[], []], 5) == []

    def test_k_larger_than_total(self):
        lists = [local_top_k([("a", 1.0)], 3), local_top_k([("b", 2.0)], 3)]
        merged = merge_top_k(lists, 10)
        assert [m.payload for m in merged] == ["b", "a"]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            merge_top_k([], 0)


class TestBucketScorer:
    def test_tightest_bucket_wins(self):
        # doc ranks: doc "hot" is within top-1; "warm" within top-10 only.
        membership = {
            ("hot", 1): True,
            ("warm", 1): False,
            ("warm", 5): False,
            ("warm", 10): True,
            ("cold", 1): False,
            ("cold", 5): False,
            ("cold", 10): False,
        }
        scorer = bucket_scorer(
            [1, 5, 10], lambda doc, t: membership.get((doc, t), False)
        )
        assert scorer("hot") == 1.0
        assert scorer("warm") == pytest.approx(0.1)
        assert scorer("cold") == 0.0
        assert scorer("hot") > scorer("warm") > scorer("cold")

    def test_with_real_ranked_scheme(self, key):
        """End-to-end: ranked PPS scheme membership drives the scorer."""
        from repro.pps.schemes import RankedScheme

        scheme = RankedScheme(key, thresholds=(1, 5, 10), max_keywords=15)
        docs = {
            "top": scheme.encrypt_metadata(["target"] + [f"x{i}" for i in range(9)]),
            "mid": scheme.encrypt_metadata([f"x{i}" for i in range(4)] + ["target"]),
            "low": scheme.encrypt_metadata([f"x{i}" for i in range(9)] + ["target"]),
        }
        queries = {
            t: scheme.encrypt_query(("target", t)) for t in (1, 5, 10)
        }
        scorer = bucket_scorer(
            [1, 5, 10], lambda doc, t: scheme.match(docs[doc], queries[t])
        )
        assert scorer("top") > scorer("mid") > scorer("low") > 0.0

    def test_empty_thresholds(self):
        with pytest.raises(ValueError):
            bucket_scorer([], lambda d, t: True)
