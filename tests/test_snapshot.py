"""Snapshot/restore: byte-identical continuation of interrupted runs.

The golden contract: run queries ``[0, k)``, snapshot at a
materialisation point, restore (possibly in a fresh process), run
``[k, n)`` -- and end up with exactly the state an uninterrupted run of
``[0, n)`` produces.  Same log columns, same server counters, same
front-end EWMA state, same rng draws, bit for bit (wall-clock-derived
``scheduling`` columns excepted, the standard differential exclusion).

Also under test: the :mod:`repro._rng` named-stream state helpers the
snapshot rides on, schema gating, and the ``store_objects`` refusal.
"""

import os
import subprocess
import sys

import pytest

np = pytest.importorskip("numpy")

from repro import _rng
from repro.cluster import Deployment, DeploymentConfig, hen_testbed
from repro.kernels import kernel_available
from repro.sim import PoissonArrivals
from repro.sim.fastpath import Action
from repro.telemetry.snapshot import (
    SNAPSHOT_SCHEMA,
    Snapshot,
    SnapshotError,
    capture_deployment,
    restore_deployment,
)


def _build(n=16, p=4, seed=3, **kw):
    cfg = DeploymentConfig(
        models=hen_testbed(n),
        p=p,
        dataset_size=2e6,
        seed=seed,
        charge_scheduling=False,
        **kw,
    )
    dep = Deployment(cfg)
    for server in dep.servers.values():
        server.keep_trace = True
    return dep


#: simulated-time log/breakdown columns; the ``scheduling`` pair is
#: wall-clock-derived and excluded, exactly as the differential tests do.
_GATED_LOG = ("query_id", "arrival", "finish", "pq", "subqueries")
_GATED_BD = ("network", "queueing", "service", "total")


def assert_same_final_state(a, b):
    for name in _GATED_LOG:
        assert np.array_equal(a.log.column(name), b.log.column(name)), name
    for name in _GATED_BD:
        assert np.array_equal(
            a.breakdowns.column(name), b.breakdowns.column(name)
        ), name
    assert a.log.dropped == b.log.dropped
    assert a.ledger == b.ledger
    assert set(a.servers) == set(b.servers)
    for name in a.servers:
        sa, sb = a.servers[name], b.servers[name]
        assert sa._lane_busy_until == sb._lane_busy_until
        assert sa.busy_time == sb.busy_time
        assert sa.tasks_run == sb.tasks_run
        assert sa.objects_matched == sb.objects_matched
        assert sa.trace == sb.trace
    assert a.frontend.total_iterations == b.frontend.total_iterations
    assert a.frontend.total_estimates == b.frontend.total_estimates
    assert a.frontend.queries_scheduled == b.frontend.queries_scheduled
    assert a.frontend._query_counter == b.frontend._query_counter
    for name, st_a in a.frontend.stats.items():
        st_b = b.frontend.stats[name]
        assert st_a.speed_estimate == st_b.speed_estimate
        assert st_a.busy_until == st_b.busy_until
        assert st_a.outstanding == st_b.outstanding
        assert st_a.completed == st_b.completed
        assert st_a.last_seen == st_b.last_seen
    # the next draw of every rng agrees (continuation keeps reproducing)
    assert a.rng.random() == b.rng.random()
    assert a.frontend.rng.random() == b.frontend.rng.random()
    assert a.network.rng.random() == b.network.rng.random()


class TestRngStreams:
    def test_stream_state_round_trip_reproduces_draws(self):
        rng = _rng.named_stream("snapshot-test-stream")
        for _ in range(17):  # advance off the seed point
            rng.random()
        state = _rng.stream_state(rng)
        expected = [rng.random() for _ in range(32)] + [rng.gauss(0, 1)]
        restored = _rng.stream_from_state(state)
        got = [restored.random() for _ in range(32)] + [restored.gauss(0, 1)]
        assert got == expected

    def test_capture_restore_streams_global(self):
        a = _rng.named_stream("snapshot-global-a")
        a.random()
        saved = _rng.capture_streams()
        expected = [a.random() for _ in range(8)]
        a.random()  # drift past the capture point
        _rng.restore_streams(saved)
        b = _rng.named_stream("snapshot-global-a")  # same underlying stream
        assert [b.random() for _ in range(8)] == expected

    def test_state_is_json_clean(self):
        import json

        rng = _rng.named_stream("snapshot-json-stream")
        rng.random()
        state = _rng.stream_state(rng)
        rebuilt = _rng.stream_from_state(json.loads(json.dumps(state)))
        assert rebuilt.random() == _rng.stream_from_state(state).random()


def _kernels():
    out = ["exact_numpy"]
    if kernel_available("compiled"):
        out.append("compiled")
    return out


class TestGoldenRoundTrip:
    @pytest.mark.parametrize("kernel", _kernels())
    def test_snapshot_restore_continue_is_byte_identical(self, kernel):
        arrivals = PoissonArrivals(40.0, seed=11).times(400)
        k = 173  # mid-run, mid-nothing-special

        # the uninterrupted run, with a snapshot taken in-flight via an
        # action (the engine materialises exact state before it fires)
        box = {}
        full = _build()
        full_result = full.run_queries_fast(
            arrivals,
            4,
            actions=[
                Action(k, arrivals[k - 1],
                       lambda now: box.update(snap=capture_deployment(full)),
                       "none"),
            ],
            kernel=kernel,
        )

        resumed = restore_deployment(box["snap"])
        assert resumed.log.n_records == k
        for server in resumed.servers.values():
            server.keep_trace = True
        tail = resumed.run_queries_fast(arrivals[k:], 4, kernel=kernel)
        # the continuation's BatchResult arrays equal the uninterrupted
        # run's tail, bit for bit
        for field in ("arrivals", "latencies", "finishes"):
            assert np.array_equal(
                getattr(full_result, field)[k:], getattr(tail, field),
                equal_nan=True,
            ), field
        for field in ("query_ids", "pqs"):
            assert np.array_equal(
                getattr(full_result, field)[k:], getattr(tail, field)
            ), field
        assert full_result.dropped == tail.dropped + box["snap"].meta[
            "log_dropped"]
        assert_same_final_state(full, resumed)

    def test_restore_preserves_rng_aliasing(self):
        dep = _build()
        dep.run_queries_fast(PoissonArrivals(30.0, seed=2).times(50), 4)
        resumed = restore_deployment(capture_deployment(dep))
        # the constructor shares one Random across deployment, membership
        # and front-end; the restore must rebuild that exact aliasing
        assert dep.rng is dep.membership.rng is dep.frontend.rng
        assert resumed.rng is resumed.membership.rng is resumed.frontend.rng
        assert resumed.network.rng is not resumed.rng

    def test_snapshot_after_failures(self):
        arrivals = PoissonArrivals(30.0, seed=7).times(300)
        k = 140
        mid = arrivals[60]

        def run(dep):
            pre = [t for t in arrivals[:k] if t < mid]
            rest = [t for t in arrivals[:k] if t >= mid]
            dep.run_queries_fast(pre, 4)
            dep.fail_node("node-3", mid)
            dep.run_queries_fast(rest, 4)

        full, cut = _build(), _build()
        run(full)
        full.run_queries_fast(arrivals[k:], 4)
        run(cut)
        resumed = restore_deployment(capture_deployment(cut))
        for server in resumed.servers.values():
            server.keep_trace = True
        assert resumed._known_dead == cut._known_dead
        resumed.run_queries_fast(arrivals[k:], 4)
        assert_same_final_state(full, resumed)


class TestSnapshotFile:
    def test_save_load_round_trip(self, tmp_path):
        dep = _build()
        dep.run_queries_fast(PoissonArrivals(30.0, seed=4).times(80), 4)
        snap = capture_deployment(dep)
        path = tmp_path / "state.npz"
        snap.save(path)
        loaded = Snapshot.load(path)
        assert loaded.meta == snap.meta  # JSON floats round-trip exactly
        assert set(loaded.columns) == set(snap.columns)
        for name in snap.columns:
            assert np.array_equal(loaded.columns[name], snap.columns[name])
        resumed = restore_deployment(loaded)
        assert resumed.log.delays() == dep.log.delays()

    def test_schema_mismatch_refused(self, tmp_path):
        dep = _build()
        snap = capture_deployment(dep)
        snap.meta["schema"] = SNAPSHOT_SCHEMA + 1
        with pytest.raises(SnapshotError, match="schema"):
            restore_deployment(snap)
        path = tmp_path / "future.npz"
        snap.save(path)
        with pytest.raises(SnapshotError, match="schema"):
            Snapshot.load(path)

    def test_store_objects_refused(self):
        dep = Deployment(
            DeploymentConfig(
                models=hen_testbed(4), p=2, seed=1, store_objects=True,
                n_objects_stored=50,
            )
        )
        with pytest.raises(SnapshotError, match="store_objects"):
            capture_deployment(dep)


_SUBPROCESS_SCRIPT = """
import sys
import numpy as np
from repro.cluster import Deployment, DeploymentConfig, hen_testbed
from repro.sim import PoissonArrivals
from repro.sim.fastpath import Action
from repro.telemetry.snapshot import capture_deployment, restore_deployment

def build():
    dep = Deployment(DeploymentConfig(models=hen_testbed(12), p=4,
                                      dataset_size=2e6, seed=3,
                                      charge_scheduling=False))
    return dep

arrivals = PoissonArrivals(40.0, seed=11).times(200)
k = 87
box = {}
full = build()
full.run_queries_fast(arrivals, 4, actions=[
    Action(k, arrivals[k - 1],
           lambda now: box.update(snap=capture_deployment(full)), "none"),
])
resumed = restore_deployment(box["snap"])
resumed.run_queries_fast(arrivals[k:], 4)
for col in ("query_id", "arrival", "finish", "pq", "subqueries"):
    assert np.array_equal(full.log.column(col), resumed.log.column(col)), col
assert full.ledger == resumed.ledger
print("ROUND-TRIP-OK")
"""


class TestNoCompiledKernelEnv:
    def test_round_trip_with_compiled_kernel_disabled(self):
        """REPRO_NO_COMPILED_KERNEL=1 runs the same golden round trip."""
        env = dict(os.environ)
        env["REPRO_NO_COMPILED_KERNEL"] = "1"
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
        proc = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SCRIPT],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "ROUND-TRIP-OK" in proc.stdout
