"""Tests for the benchmark-trajectory tooling (`repro bench`)."""

import json

import pytest

pytest.importorskip("numpy")

from repro.bench import (
    MIN_SPEEDUP,
    PROFILES,
    SweepSpec,
    check_against_baseline,
    collect,
    render_report,
    run_sweep,
)

TINY = SweepSpec("tiny", servers=10, queries=200, rate=30.0, pq=4, ref_queries=60)


def _snapshot(speedups, identical=True):
    return {
        "schema": 1,
        "revision": "deadbee",
        "profile": "full",
        "python": "3.x",
        "machine": "test",
        "sweeps": {
            name: {
                "servers": 200,
                "queries": 1000,
                "fast_us_per_query": 10.0,
                "ref_us_per_query": 10.0 * s,
                "speedup_vs_reference": s,
                "identical_sample": identical,
                "chunks": 1,
                "chunk_size_histogram": {"<=1024": 1},
            }
            for name, s in speedups.items()
        },
    }


class TestRunSweep:
    def test_sweep_schema_and_sanity(self):
        s = run_sweep(TINY)
        assert s["completed"] == TINY.queries
        assert s["identical_sample"] is True
        assert s["fast_us_per_query"] > 0
        assert s["ref_us_per_query"] > 0
        assert s["speedup_vs_reference"] == pytest.approx(
            s["ref_us_per_query"] / s["fast_us_per_query"], rel=1e-2
        )
        assert sum(s["chunk_size_histogram"].values()) == s["chunks"] >= 1

    def test_profiles_cover_the_standard_sweeps(self):
        for profile in ("full", "quick", "smoke"):
            names = [spec.name for spec in PROFILES[profile]]
            assert names == ["200-server", "1k-server"]
        full = {s.name: s for s in PROFILES["full"]}
        assert full["200-server"].queries == 100_000
        assert full["1k-server"].servers == 1000

    def test_collect_smoke_profile(self):
        seen = []
        snap = collect("smoke", progress=lambda n, s: seen.append(n))
        assert seen == ["200-server", "1k-server"]
        assert set(snap["sweeps"]) == {"200-server", "1k-server"}
        assert snap["schema"] == 1
        report = render_report(snap)
        assert "200-server" in report and "speedup" in report
        with pytest.raises(ValueError, match="unknown profile"):
            collect("warp")


class TestGateLogic:
    def test_passes_within_tolerance(self):
        base = _snapshot({"a": 10.0})
        cur = _snapshot({"a": 8.0})  # 20% down, tolerance 30%
        assert check_against_baseline(cur, base) == []

    def test_fails_on_regression(self):
        base = _snapshot({"a": 20.0})
        cur = _snapshot({"a": 12.0})  # 40% down
        problems = check_against_baseline(cur, base)
        assert len(problems) == 1 and "regressed" in problems[0]

    def test_fails_below_hard_floor(self):
        base = _snapshot({"a": 5.5})
        cur = _snapshot({"a": 4.5})  # within 30% of baseline but under 5x
        problems = check_against_baseline(cur, base)
        assert any(f"{MIN_SPEEDUP:g}x floor" in p for p in problems)

    def test_fails_on_missing_sweep_or_divergence(self):
        base = _snapshot({"a": 10.0, "b": 10.0})
        cur = _snapshot({"a": 10.0})
        assert any("missing" in p for p in check_against_baseline(cur, base))
        cur_bad = _snapshot({"a": 10.0, "b": 10.0}, identical=False)
        assert any(
            "diverged" in p for p in check_against_baseline(cur_bad, base)
        )

    def test_us_per_query_never_gates(self):
        # absolute wall-clock is machine-dependent: a 100x slower machine
        # with the same ratio must pass
        base = _snapshot({"a": 10.0})
        cur = _snapshot({"a": 10.0})
        for s in cur["sweeps"].values():
            s["fast_us_per_query"] *= 100.0
            s["ref_us_per_query"] *= 100.0
        assert check_against_baseline(cur, base) == []


class TestBenchCLI:
    def test_bench_writes_snapshot(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "bench.json"
        assert main(["bench", "--profile", "smoke", "--out", str(out)]) == 0
        snap = json.loads(out.read_text())
        assert set(snap["sweeps"]) == {"200-server", "1k-server"}
        for s in snap["sweeps"].values():
            assert s["identical_sample"] is True

    def test_bench_check_exit_code_matches_gate(self, tmp_path, capsys):
        from repro.bench import check_against_baseline
        from repro.cli import main

        out = tmp_path / "bench.json"
        assert main(["bench", "--profile", "smoke", "--out", str(out)]) == 0
        snap = json.loads(out.read_text())

        # an impossible baseline must always fail the gate...
        bad = _snapshot({"200-server": 10_000.0, "1k-server": 10_000.0})
        bad_path = tmp_path / "bad.json"
        bad_path.write_text(json.dumps(bad))
        out2 = tmp_path / "bench2.json"
        code = main(
            ["bench", "--profile", "smoke", "--out", str(out2),
             "--check", str(bad_path)]
        )
        assert code == 1
        assert "BENCH GATE FAILED" in capsys.readouterr().err

        # ...and the CLI's verdict equals the library's on the same data
        expected = check_against_baseline(json.loads(out2.read_text()), bad)
        assert expected  # the regression the CLI reported

    def test_committed_baseline_is_wellformed(self):
        import pathlib

        path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "baseline.json"
        )
        base = json.loads(path.read_text())
        assert set(base["sweeps"]) == {"200-server", "1k-server"}
        for s in base["sweeps"].values():
            assert s["identical_sample"] is True
            assert s["speedup_vs_reference"] >= MIN_SPEEDUP
