"""The trace vocabulary: normalised stimulus streams and the ``TraceSpec``.

A :class:`Trace` is what every dataloader produces: query arrival times
plus an optional object-update stream, normalised into the scenario
engine's existing ``Workload``/``Update`` vocabulary (arrivals drive the
query stream exactly like a :class:`~repro.scenarios.spec.WorkloadSpec`;
updates land as exact-time actions exactly like an
:class:`~repro.scenarios.spec.UpdateSpec` stream).  A :class:`TraceSpec`
is the declarative handle -- a file path plus a loader name -- accepted
anywhere a ``WorkloadSpec`` is (``Scenario.workload``, the matrix, the
bench sweeps), so every external request log becomes a workload with no
new code.

Examples::

    >>> t = Trace(arrivals=(0.0, 0.5, 2.0), updates=((1.0, 0.25),))
    >>> t.n_queries, t.n_updates, t.horizon
    (3, 1, 2.0)
    >>> Trace(arrivals=(2.0, 1.0))
    Traceback (most recent call last):
        ...
    ValueError: trace arrivals must be sorted ascending
    >>> spec = TraceSpec(source="requests.csv", loader="csv:time_col=ts")
    >>> spec.kind
    'trace'
    >>> TraceSpec(source="")
    Traceback (most recent call last):
        ...
    ValueError: TraceSpec needs a source path
"""

from __future__ import annotations

from dataclasses import dataclass, field

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

__all__ = ["Trace", "TraceFormatError", "TraceSpec"]


class TraceFormatError(ValueError):
    """A trace file could not be parsed into the stream vocabulary.

    The message always names the offending file (and line, where one
    exists) plus the loader knob that would fix the problem -- malformed
    external data must fail loudly and actionably, never half-load.
    """


@dataclass(frozen=True)
class Trace:
    """One normalised stimulus stream.

    ``arrivals`` are the query arrival times (seconds, sorted ascending);
    ``updates`` are ``(time, ring position)`` pairs exactly as
    :meth:`~repro.cluster.deployment.Deployment.apply_update` consumes
    them.  ``meta`` carries loader provenance (source path, loader name,
    anything the file's own metadata offered).
    """

    arrivals: "np.ndarray"
    updates: tuple = ()
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        arr = np.asarray(self.arrivals, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError("trace arrivals must be one-dimensional")
        if arr.size and float(arr[0]) < 0.0:
            raise ValueError("trace arrivals must be non-negative")
        if arr.size > 1 and bool((np.diff(arr) < 0.0).any()):
            raise ValueError("trace arrivals must be sorted ascending")
        ups = tuple((float(t), float(p)) for t, p in self.updates)
        for t, p in ups:
            if t < 0.0:
                raise ValueError("trace update times must be non-negative")
            if not 0.0 <= p < 1.0:
                raise ValueError(
                    f"trace update position {p!r} outside [0, 1); loaders "
                    "should wrap positions modulo 1.0"
                )
        if any(b[0] < a[0] for a, b in zip(ups, ups[1:])):
            raise ValueError("trace updates must be sorted by time")
        object.__setattr__(self, "arrivals", arr)
        object.__setattr__(self, "updates", ups)

    @property
    def n_queries(self) -> int:
        return int(self.arrivals.size)

    @property
    def n_updates(self) -> int:
        return len(self.updates)

    @property
    def horizon(self) -> float:
        """Last stimulus timestamp (0.0 for an empty trace)."""
        last_q = float(self.arrivals[-1]) if self.arrivals.size else 0.0
        last_u = self.updates[-1][0] if self.updates else 0.0
        return max(last_q, last_u)

    def normalised(
        self,
        time_scale: float = 1.0,
        rebase: bool = True,
        limit: int | None = None,
    ) -> "Trace":
        """A copy with uniform time normalisation applied.

        *rebase* shifts the earliest stimulus to t=0 (real logs start at
        epoch timestamps); *time_scale* then multiplies every time (e.g.
        ``0.001`` replays a millisecond-stamped log in seconds, ``0.1``
        replays a day of traffic in a tenth of the time); *limit* keeps
        only the first *limit* queries (updates past the new horizon are
        dropped with them).
        """
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        arr = self.arrivals
        ups = self.updates
        if rebase and (arr.size or ups):
            t0 = min(
                float(arr[0]) if arr.size else float("inf"),
                ups[0][0] if ups else float("inf"),
            )
            if t0 > 0.0:
                arr = arr - t0
                ups = tuple((t - t0, p) for t, p in ups)
        if time_scale != 1.0:
            arr = arr * time_scale
            ups = tuple((t * time_scale, p) for t, p in ups)
        if limit is not None and arr.size > limit:
            arr = arr[:limit]
            horizon = float(arr[-1]) if arr.size else 0.0
            ups = tuple((t, p) for t, p in ups if t <= horizon)
        return Trace(arrivals=arr, updates=ups, meta=dict(self.meta))


@dataclass(frozen=True)
class TraceSpec:
    """A declarative real-trace workload: a source file plus a loader.

    Accepted anywhere a :class:`~repro.scenarios.spec.WorkloadSpec` is:
    as ``Scenario.workload``, through ``repro matrix --trace`` and
    ``repro bench --trace``.  *loader* is a registry spec
    (``name[:key=value,...]``, see :mod:`repro.traces.registry`); ``None``
    infers the loader from the file itself.  The normalisation knobs
    (*time_scale*, *rebase*, *limit*) are loader-independent and applied
    after loading -- loader-specific parsing options ride in the loader
    spec's parameter suffix instead.
    """

    source: str
    loader: str | None = None
    time_scale: float = 1.0
    rebase: bool = True
    limit: int | None = None

    def __post_init__(self) -> None:
        if not self.source:
            raise ValueError("TraceSpec needs a source path")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if self.limit is not None and self.limit < 1:
            raise ValueError("limit must be >= 1")
        if self.loader is not None:
            from .registry import is_known_loader

            if not is_known_loader(self.loader):
                raise ValueError(
                    f"unknown trace loader {self.loader!r}; see "
                    "repro.traces.loader_names()"
                )

    @property
    def kind(self) -> str:
        """Workload-kind tag (display parity with ``WorkloadSpec.kind``)."""
        return "trace"

    @property
    def horizon(self) -> float:
        """Last stimulus timestamp.  Loads the source file; callers that
        also need the arrivals should call :meth:`load` once instead."""
        return self.load().horizon

    def load(self) -> Trace:
        """Load and normalise the trace through the dataloader registry."""
        from .registry import load_trace

        return load_trace(
            self.source,
            loader=self.loader,
            time_scale=self.time_scale,
            rebase=self.rebase,
            limit=self.limit,
        )
