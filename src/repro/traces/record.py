"""Record-then-replay: capture a run's drawn stimulus, re-drive it bit-exactly.

A *recording* freezes everything a scenario execution drew from its seeds
-- the full arrival trace, the exact-time update stream -- plus the
scenario itself and the baseline telemetry columns the recorded run
produced.  :func:`replay_recording` rebuilds the scenario, injects the
frozen stimulus (no re-drawing), runs it on any engine/kernel combination,
and verifies the replay against the baseline with the same differential
oracle the CI bit-identity gate uses (:func:`repro.telemetry.archive.
archive_diff`): every simulated-time column must match byte for byte.
Wall-clock-derived columns (``log_scheduling``/``bd_scheduling``) are
measurements of *this machine right now*, not of the simulated system, so
recordings do not store them and replays do not compare them.

``repro record`` / ``repro replay`` are the CLI veneer; recordings are
``.npz`` files readable by :func:`numpy.load` and replayable as plain
traces through the ``recording`` dataloader.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

__all__ = [
    "RECORDING_SCHEMA",
    "Recording",
    "ReplayReport",
    "Stimulus",
    "is_recording",
    "read_recording",
    "recording_to_archive",
    "replay_recording",
    "write_recording",
]

#: Version of the recording layout; readers refuse what they cannot parse.
RECORDING_SCHEMA = 1

#: The simulated-time telemetry columns a recording stores as its baseline
#: (the archive columns minus the wall-clock pair).
_BASELINE_COLUMNS = (
    "log_query_id",
    "log_arrival",
    "log_finish",
    "log_pq",
    "log_subqueries",
    "bd_network",
    "bd_queueing",
    "bd_service",
    "bd_total",
)


@dataclass(frozen=True)
class Stimulus:
    """The drawn stimulus of one execution: what replay re-injects.

    ``arrivals`` is every offered query arrival (dropped queries
    included); ``updates`` is the full exact-time ``(time, position)``
    update stream; ``horizon`` is the scenario horizon the run drained to.
    Events, churn and control ticks are *not* stored: they are
    deterministic functions of the scenario (timed schedules plus
    seed-derived RNG), so rebuilding the scenario reproduces them exactly.
    """

    arrivals: "np.ndarray"
    updates: tuple = ()
    horizon: float = 0.0

    def __post_init__(self) -> None:
        arr = np.asarray(self.arrivals, dtype=np.float64)
        object.__setattr__(self, "arrivals", arr)
        object.__setattr__(
            self,
            "updates",
            tuple((float(t), float(p)) for t, p in self.updates),
        )


@dataclass
class Recording:
    """One recorded run: meta + stimulus + baseline telemetry columns."""

    meta: dict
    stimulus: Stimulus
    baseline: dict = field(default_factory=dict)
    path: str | None = None

    @property
    def scenario_dict(self) -> dict:
        return self.meta["scenario"]

    @property
    def engine(self) -> str:
        return self.meta.get("engine", "batched")

    @property
    def kernel(self) -> str:
        return self.meta.get("kernel", "")


def write_recording(
    path,
    scenario,
    stimulus: Stimulus,
    deployment,
    engine: str,
    kernel: str,
    manifest: dict | None = None,
) -> None:
    """Freeze one executed run at *path* (``.npz``).

    *scenario* is the executed :class:`~repro.scenarios.spec.Scenario`,
    *stimulus* the drawn arrival/update streams, *deployment* the
    post-run deployment whose telemetry becomes the baseline.  *manifest*
    is the provenance dict (:func:`repro.obs.manifest.build_manifest`);
    when omitted one is built in place, so every recording carries its
    provenance.
    """
    from ..obs.manifest import build_manifest
    from ..scenarios.spec import scenario_to_dict

    scenario_dict = scenario_to_dict(scenario)
    if manifest is None:
        manifest = build_manifest(
            kernel=kernel, config=scenario_dict, extra={"engine": engine}
        )
    from ..telemetry.archive import collect_columns

    meta = {
        "schema": RECORDING_SCHEMA,
        "kind": "recording",
        "scenario": scenario_dict,
        "engine": engine,
        "kernel": kernel,
        "dropped": deployment.log.dropped,
        "horizon": stimulus.horizon,
        "manifest": manifest,
    }
    payload = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    baseline = collect_columns(deployment, wall_columns=False)
    arrays = {
        "stim_arrivals": np.asarray(stimulus.arrivals, dtype=np.float64),
        "stim_update_times": np.asarray(
            [t for t, _ in stimulus.updates], dtype=np.float64
        ),
        "stim_update_pos": np.asarray(
            [p for _, p in stimulus.updates], dtype=np.float64
        ),
    }
    arrays.update({f"base_{k}": v for k, v in baseline.items()})
    np.savez_compressed(path, meta_json=payload, **arrays)


def is_recording(path) -> bool:
    """True when *path* is a readable recording ``.npz`` (cheap peek)."""
    try:
        with np.load(path) as data:
            if "meta_json" not in data.files:
                return False
            meta = json.loads(bytes(data["meta_json"]).decode("utf-8"))
    except (OSError, ValueError, KeyError):
        return False
    return meta.get("kind") == "recording"


def read_recording(path) -> Recording:
    """Read a recording written by :func:`write_recording`."""
    with np.load(path) as data:
        if "meta_json" not in data.files:
            raise ValueError(f"{path}: not a recording (no meta_json)")
        meta = json.loads(bytes(data["meta_json"]).decode("utf-8"))
        if meta.get("kind") != "recording":
            raise ValueError(
                f"{path}: not a recording (kind={meta.get('kind')!r}); "
                "run archives replay through the 'archive' trace loader"
            )
        schema = meta.get("schema")
        if schema != RECORDING_SCHEMA:
            raise ValueError(
                f"recording schema {schema!r} not supported "
                f"(this build reads schema {RECORDING_SCHEMA})"
            )
        arrivals = np.asarray(data["stim_arrivals"], dtype=np.float64)
        times = data["stim_update_times"]
        pos = data["stim_update_pos"]
        baseline = {
            k[len("base_") :]: data[k]
            for k in data.files
            if k.startswith("base_")
        }
    updates = tuple(
        (float(t), float(p)) for t, p in zip(times.tolist(), pos.tolist())
    )
    stimulus = Stimulus(
        arrivals=arrivals,
        updates=updates,
        horizon=float(meta.get("horizon", arrivals[-1] if arrivals.size else 0.0)),
    )
    return Recording(
        meta=meta, stimulus=stimulus, baseline=baseline, path=str(path)
    )


def recording_to_archive(recording: Recording, path) -> None:
    """Extract a recording's baseline columns as a plain run archive.

    The result reads/diffs like any :func:`~repro.telemetry.archive.
    write_archive` output (wall-clock columns absent on both sides of any
    record/replay diff, so ``--strict`` comparisons stay meaningful).
    """
    from ..telemetry.archive import write_archive_columns

    meta = {
        "scenario": recording.scenario_dict.get("name"),
        "engine": recording.engine,
        "kernel": recording.kernel,
        "wall_columns": False,
        "recorded": True,
    }
    write_archive_columns(
        path,
        dict(recording.baseline),
        meta=meta,
        dropped=recording.meta.get("dropped", 0),
    )


@dataclass
class ReplayReport:
    """Outcome of one replay: the execution plus the oracle's verdict."""

    recording: Recording
    execution: object  # ScenarioExecution
    engine: str
    kernel: str
    verified: bool  # whether the oracle ran
    identical: bool  # byte-identical simulated-time telemetry
    diff: dict = field(default_factory=dict)

    @property
    def mismatching_columns(self) -> list[str]:
        return sorted(
            name
            for name, entry in self.diff.get("columns", {}).items()
            if not entry.get("equal", False)
        )


def replay_recording(
    recording,
    engine: str | None = None,
    kernel: str | None = None,
    archive_path: str | None = None,
    verify: bool = True,
) -> ReplayReport:
    """Re-drive a recording's stimulus and verify bit-identity.

    *recording* is a :class:`Recording` or a path.  *engine* / *kernel*
    default to what was recorded, which is the bit-identity contract; any
    other exact engine/kernel combination must match too (that is the
    point of replay -- the differential oracle across configurations).
    Approximate kernels will report mismatches honestly.  *archive_path*
    writes the replayed run's wall-free archive for external diffing.
    """
    if not isinstance(recording, Recording):
        recording = read_recording(recording)
    from ..scenarios.runner import execute_scenario
    from ..scenarios.spec import scenario_from_dict
    from ..telemetry.archive import ARCHIVE_SCHEMA, RunArchive, archive_diff

    scenario = scenario_from_dict(recording.scenario_dict)
    engine = engine if engine is not None else recording.engine
    if kernel is None and engine == "batched":
        recorded = recording.kernel
        if recorded and recorded != "reference":
            kernel = recorded
    execution = execute_scenario(
        scenario,
        engine=engine,
        kernel=kernel,
        stimulus=recording.stimulus,
        archive_path=archive_path,
    )
    verified = False
    identical = False
    diff: dict = {}
    if verify:
        from ..telemetry.archive import collect_columns

        base = RunArchive(
            meta={"schema": ARCHIVE_SCHEMA},
            columns=dict(recording.baseline),
        )
        replayed = RunArchive(
            meta={"schema": ARCHIVE_SCHEMA},
            columns=collect_columns(execution.deployment, wall_columns=False),
        )
        diff = archive_diff(base, replayed)
        verified = True
        identical = bool(diff["identical"])
    return ReplayReport(
        recording=recording,
        execution=execution,
        engine=engine,
        kernel=execution.kernel,
        verified=verified,
        identical=identical,
        diff=diff,
    )
