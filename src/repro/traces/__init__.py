"""Real-trace replay: dataloaders, the ``TraceSpec`` workload, recordings.

Three pieces turn external request logs and past runs into first-class
workloads (see ``docs/traces.md``):

* :mod:`~repro.traces.registry` -- the dataloader registry
  (``name[:key=value,...]`` specs, third-party :func:`register_loader`),
  with builtin loaders for CSV, JSON-lines, telemetry run archives, and
  recordings (:mod:`~repro.traces.loaders`);
* :class:`TraceSpec` -- a declarative trace workload accepted anywhere a
  :class:`~repro.scenarios.spec.WorkloadSpec` is; arrivals and updates
  drive the engines through the exact-time action queue;
* :mod:`~repro.traces.record` -- record-then-replay:
  ``execute_scenario(record_path=...)`` freezes the drawn stimulus,
  :func:`replay_recording` re-drives it bit-identically on either engine
  and any exact kernel, verified by the archive differential oracle.
"""

from .loaders import (
    ArchiveTraceLoader,
    CsvTraceLoader,
    JsonlTraceLoader,
    RecordingTraceLoader,
    TraceLoader,
)
from .record import (
    RECORDING_SCHEMA,
    Recording,
    ReplayReport,
    Stimulus,
    is_recording,
    read_recording,
    recording_to_archive,
    replay_recording,
    write_recording,
)
from .registry import (
    canonical_spec,
    get_loader,
    infer_loader,
    is_known_loader,
    load_trace,
    loader_names,
    loader_specs,
    register_loader,
)
from .spec import Trace, TraceFormatError, TraceSpec

__all__ = [
    "Trace",
    "TraceFormatError",
    "TraceSpec",
    "TraceLoader",
    "ArchiveTraceLoader",
    "CsvTraceLoader",
    "JsonlTraceLoader",
    "RecordingTraceLoader",
    "canonical_spec",
    "get_loader",
    "infer_loader",
    "is_known_loader",
    "load_trace",
    "loader_names",
    "loader_specs",
    "register_loader",
    "RECORDING_SCHEMA",
    "Recording",
    "ReplayReport",
    "Stimulus",
    "is_recording",
    "read_recording",
    "recording_to_archive",
    "replay_recording",
    "write_recording",
]
