"""The trace-dataloader registry.

Loaders are looked up by name wherever a trace knob exists (the
``TraceSpec.loader`` field, ``repro traces --info``, ``repro matrix
--trace``, the bench sweeps).  Names accept an optional parameter suffix
``name:key=value[,key=value...]`` forwarded to the loader constructor,
e.g. ``csv:time_col=ts,delimiter=;``.  Third-party loaders register
through :func:`register_loader`; when no loader is named,
:func:`infer_loader` picks one from the file itself.

Example -- register a loader for a one-number-per-line format and load a
trace through it::

    >>> from repro.traces import TraceLoader, Trace, register_loader, load_trace
    >>> class LinesLoader(TraceLoader):
    ...     name = "lines"
    ...     description = "one arrival time per line"
    ...     def load(self, source):
    ...         with open(source) as fp:
    ...             times = [float(line) for line in fp if line.strip()]
    ...         return self._finish(source, times, [], {"format": "lines"})
    >>> register_loader("lines", LinesLoader, replace=True)
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "t.txt")
    >>> _ = open(path, "w").write("0.5\\n0.1\\n0.9\\n")
    >>> trace = load_trace(path, loader="lines")
    >>> trace.n_queries, [round(float(t), 1) for t in trace.arrivals]
    (3, [0.0, 0.4, 0.8])
"""

from __future__ import annotations

from typing import Callable, Union

from .loaders import (
    ArchiveTraceLoader,
    CsvTraceLoader,
    JsonlTraceLoader,
    RecordingTraceLoader,
    TraceLoader,
)
from .spec import Trace, TraceFormatError

__all__ = [
    "canonical_spec",
    "get_loader",
    "infer_loader",
    "is_known_loader",
    "load_trace",
    "loader_names",
    "loader_specs",
    "register_loader",
]

_FACTORIES: dict[str, Callable[..., TraceLoader]] = {}
_ALIASES: dict[str, str] = {}


def register_loader(
    name: str,
    factory: Callable[..., TraceLoader],
    aliases: tuple[str, ...] = (),
    replace: bool = False,
) -> None:
    """Register a loader factory under *name* (plus optional aliases)."""
    if not replace and (name in _FACTORIES or name in _ALIASES):
        raise ValueError(f"trace loader {name!r} is already registered")
    _FACTORIES[name] = factory
    for alias in aliases:
        if not replace and (alias in _FACTORIES or alias in _ALIASES):
            raise ValueError(
                f"trace loader alias {alias!r} is already registered"
            )
        _ALIASES[alias] = name


def loader_names() -> tuple[str, ...]:
    """Canonical registered loader names, registration order."""
    return tuple(_FACTORIES)


def _parse_spec(spec: str) -> tuple[str, dict[str, object]]:
    name, _, params = spec.partition(":")
    name = name.strip()
    kwargs: dict[str, object] = {}
    if params:
        for item in params.split(","):
            key, sep, raw = item.partition("=")
            if not sep:
                raise ValueError(
                    f"bad loader parameter {item!r} in {spec!r}; "
                    "expected key=value"
                )
            raw = raw.strip()
            try:
                value: object = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
            kwargs[key.strip()] = value
    return name, kwargs


def get_loader(spec: Union[str, TraceLoader]) -> TraceLoader:
    """Resolve *spec* to a loader instance.

    An instance passes through; a string is looked up in the registry,
    with an optional ``:key=value,...`` parameter suffix forwarded to the
    loader constructor.  Raises :class:`ValueError` for unknown names.
    """
    if isinstance(spec, TraceLoader):
        return spec
    name, kwargs = _parse_spec(spec)
    name = _ALIASES.get(name, name)
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown trace loader {name!r}; registered: "
            f"{', '.join(loader_names())}"
        )
    return factory(**kwargs)


def is_known_loader(spec: str) -> bool:
    """Cheap name-only validation (no instantiation, no file access)."""
    try:
        name, _ = _parse_spec(spec)
    except ValueError:
        return False
    return name in _FACTORIES or name in _ALIASES


def canonical_spec(spec: str) -> str:
    """Normalise *spec*: resolve aliases, keep any parameter suffix."""
    name, _ = _parse_spec(spec)  # validates the k=v syntax
    resolved = _ALIASES.get(name, name)
    if resolved not in _FACTORIES:
        raise ValueError(
            f"unknown trace loader {name!r}; registered: "
            f"{', '.join(loader_names())}"
        )
    _, _, params = spec.partition(":")
    return f"{resolved}:{params}" if params else resolved


def loader_specs() -> list[dict[str, object]]:
    """Inspection rows for ``repro traces``: name and description."""
    rows: list[dict[str, object]] = []
    for name in loader_names():
        loader = _FACTORIES[name]
        description = getattr(loader, "description", "") or ""
        aliases = tuple(a for a, n in _ALIASES.items() if n == name)
        rows.append(
            {"name": name, "aliases": aliases, "description": description}
        )
    return rows


def infer_loader(source: str) -> str:
    """Pick a loader name from *source*'s extension (and, for ``.npz``,
    its metadata: recordings vs plain run archives)."""
    src = str(source).lower()
    if src.endswith(".csv"):
        return "csv"
    if src.endswith((".jsonl", ".ndjson")):
        return "jsonl"
    if src.endswith(".npz"):
        from .record import is_recording

        return "recording" if is_recording(source) else "archive"
    raise TraceFormatError(
        f"{source}: cannot infer a trace loader from the extension; pass "
        f"loader= explicitly (registered: {', '.join(loader_names())})"
    )


def load_trace(
    source: str,
    loader: Union[str, TraceLoader, None] = None,
    time_scale: float = 1.0,
    rebase: bool = True,
    limit: int | None = None,
) -> Trace:
    """Load *source* through *loader* (inferred when ``None``) and apply
    the uniform time normalisation (see :meth:`Trace.normalised`)."""
    spec = infer_loader(source) if loader is None else loader
    trace = get_loader(spec).load(str(source))
    return trace.normalised(time_scale=time_scale, rebase=rebase, limit=limit)


def _register_builtins() -> None:
    register_loader("csv", CsvTraceLoader)
    register_loader("jsonl", JsonlTraceLoader, aliases=("ndjson",))
    register_loader("archive", ArchiveTraceLoader)
    register_loader("recording", RecordingTraceLoader, aliases=("rec",))


_register_builtins()
