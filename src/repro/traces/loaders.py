"""Builtin trace dataloaders: CSV, JSONL, run archives, recordings.

Each loader normalises one external file format into a :class:`Trace`
(sorted arrival times + ``(time, position)`` update pairs).  Loaders are
constructed by the registry with keyword parameters parsed from the spec
suffix (``csv:time_col=ts,delimiter=;``), so format quirks live in the
spec string, not in code.  Malformed input raises
:class:`~repro.traces.spec.TraceFormatError` naming the file, the line,
and the knob that would fix it.
"""

from __future__ import annotations

import csv
import json

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

from .spec import Trace, TraceFormatError

__all__ = [
    "TraceLoader",
    "CsvTraceLoader",
    "JsonlTraceLoader",
    "ArchiveTraceLoader",
    "RecordingTraceLoader",
]

_QUERY_KINDS = frozenset({"query", "q", "request", "read"})
_UPDATE_KINDS = frozenset({"update", "u", "write"})


class TraceLoader:
    """Base class for trace dataloaders.

    Subclasses set :attr:`name`/:attr:`description` and implement
    :meth:`load`; keyword parameters from the registry spec suffix arrive
    through ``__init__``.  Third-party loaders subclass this and call
    :func:`repro.traces.register_loader`.
    """

    name = "abstract"
    description = ""

    def load(self, source: str) -> Trace:
        raise NotImplementedError

    def _finish(
        self, source: str, arrivals: list, updates: list, meta: dict
    ) -> Trace:
        if not arrivals:
            raise TraceFormatError(
                f"{source}: no query rows found; a trace needs at least "
                "one query arrival"
            )
        arr = np.sort(np.asarray(arrivals, dtype=np.float64), kind="stable")
        updates.sort(key=lambda tp: tp[0])
        meta = {"source": str(source), "loader": self.name, **meta}
        return Trace(arrivals=arr, updates=tuple(updates), meta=meta)


def _parse_time(raw, source: str, line: int, col: str) -> float:
    try:
        t = float(raw)
    except (TypeError, ValueError):
        raise TraceFormatError(
            f"{source}:{line}: cannot parse {col!r} value {raw!r} as a "
            "number"
        ) from None
    if t != t:  # NaN
        raise TraceFormatError(f"{source}:{line}: {col!r} is NaN")
    if t < 0.0:
        raise TraceFormatError(
            f"{source}:{line}: negative time {t!r}; trace times must be "
            ">= 0 (epoch timestamps are fine -- rebase shifts them)"
        )
    return t


def _classify(kind, source: str, line: int) -> bool:
    """True for a query row, False for an update row."""
    k = str(kind).strip().lower()
    if k in _QUERY_KINDS or k == "":
        return True
    if k in _UPDATE_KINDS:
        return False
    raise TraceFormatError(
        f"{source}:{line}: unknown row kind {kind!r} (expected one of "
        f"{sorted(_QUERY_KINDS)} or {sorted(_UPDATE_KINDS)})"
    )


def _parse_pos(raw, source: str, line: int, col: str) -> float:
    if raw is None or str(raw).strip() == "":
        raise TraceFormatError(
            f"{source}:{line}: update row missing a {col!r} value (ring "
            "position in [0, 1))"
        )
    try:
        p = float(raw)
    except (TypeError, ValueError):
        raise TraceFormatError(
            f"{source}:{line}: cannot parse {col!r} value {raw!r} as a "
            "number"
        ) from None
    if p != p:
        raise TraceFormatError(f"{source}:{line}: {col!r} is NaN")
    # real logs key updates by object id, not ring position; wrapping
    # modulo 1.0 maps any non-negative key onto the ring deterministically
    return p % 1.0


class CsvTraceLoader(TraceLoader):
    """Request logs as CSV with a header row.

    Columns: *time_col* (required, seconds or any monotone unit),
    *kind_col* (optional; ``query``/``update``, empty means query), and
    *pos_col* (required on update rows: ring position, wrapped mod 1.0).
    """

    name = "csv"
    description = "CSV request/update log (params: time_col, kind_col, pos_col, delimiter)"

    def __init__(
        self,
        time_col: str = "time",
        kind_col: str = "kind",
        pos_col: str = "pos",
        delimiter: str = ",",
    ) -> None:
        self.time_col = str(time_col)
        self.kind_col = str(kind_col)
        self.pos_col = str(pos_col)
        self.delimiter = str(delimiter)

    def load(self, source: str) -> Trace:
        arrivals: list[float] = []
        updates: list[tuple[float, float]] = []
        try:
            fp = open(source, newline="", encoding="utf-8")
        except OSError as exc:
            raise TraceFormatError(f"{source}: cannot open: {exc}") from exc
        with fp:
            reader = csv.DictReader(fp, delimiter=self.delimiter)
            header = reader.fieldnames
            if header is None:
                raise TraceFormatError(f"{source}: empty file (no CSV header)")
            if self.time_col not in header:
                raise TraceFormatError(
                    f"{source}: no {self.time_col!r} column in header "
                    f"{header!r}; pass csv:time_col=<name> to pick the "
                    "timestamp column"
                )
            for row in reader:
                line = reader.line_num
                t = _parse_time(row.get(self.time_col), source, line, self.time_col)
                if _classify(row.get(self.kind_col, ""), source, line):
                    arrivals.append(t)
                else:
                    updates.append(
                        (t, _parse_pos(row.get(self.pos_col), source, line, self.pos_col))
                    )
        return self._finish(
            source, arrivals, updates, {"format": "csv", "columns": list(header)}
        )


class JsonlTraceLoader(TraceLoader):
    """Request logs as JSON Lines -- one object per line.

    Keys: *time_key* (required), *kind_key* (optional, query/update),
    *pos_key* (required on update rows).  Blank lines are skipped.
    """

    name = "jsonl"
    description = "JSON-lines request/update log (params: time_key, kind_key, pos_key)"

    def __init__(
        self,
        time_key: str = "time",
        kind_key: str = "kind",
        pos_key: str = "pos",
    ) -> None:
        self.time_key = str(time_key)
        self.kind_key = str(kind_key)
        self.pos_key = str(pos_key)

    def load(self, source: str) -> Trace:
        arrivals: list[float] = []
        updates: list[tuple[float, float]] = []
        try:
            fp = open(source, encoding="utf-8")
        except OSError as exc:
            raise TraceFormatError(f"{source}: cannot open: {exc}") from exc
        with fp:
            for line_num, line in enumerate(fp, start=1):
                if not line.strip():
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TraceFormatError(
                        f"{source}:{line_num}: invalid JSON: {exc.msg}"
                    ) from exc
                if not isinstance(obj, dict):
                    raise TraceFormatError(
                        f"{source}:{line_num}: expected a JSON object per "
                        f"line, got {type(obj).__name__}"
                    )
                if self.time_key not in obj:
                    raise TraceFormatError(
                        f"{source}:{line_num}: no {self.time_key!r} key; "
                        "pass jsonl:time_key=<name> to pick the timestamp "
                        "key"
                    )
                t = _parse_time(obj[self.time_key], source, line_num, self.time_key)
                if _classify(obj.get(self.kind_key, ""), source, line_num):
                    arrivals.append(t)
                else:
                    updates.append(
                        (t, _parse_pos(obj.get(self.pos_key), source, line_num, self.pos_key))
                    )
        return self._finish(source, arrivals, updates, {"format": "jsonl"})


class ArchiveTraceLoader(TraceLoader):
    """Replays the arrival stream of a PR 6 telemetry run archive.

    The archive's ``log_arrival`` column (every serviced query's arrival
    time) becomes the trace; update stimulus is not stored in archives,
    so the update stream is empty.  To re-drive a run's *exact* stimulus
    including updates, record it (``repro record``) and use the
    ``recording`` loader instead.
    """

    name = "archive"
    description = "telemetry run archive (.npz) arrival stream"

    def load(self, source: str) -> Trace:
        from repro.telemetry.archive import read_archive

        try:
            arch = read_archive(source)
        except OSError as exc:
            raise TraceFormatError(f"{source}: cannot open: {exc}") from exc
        except (ValueError, KeyError) as exc:
            raise TraceFormatError(
                f"{source}: not a readable run archive: {exc}"
            ) from exc
        if "log_arrival" not in arch.columns:
            raise TraceFormatError(
                f"{source}: archive has no log_arrival column"
            )
        arrivals = np.sort(
            np.asarray(arch.columns["log_arrival"], dtype=np.float64),
            kind="stable",
        )
        meta = {
            "source": str(source),
            "loader": self.name,
            "format": "archive",
            "archive_meta": {
                k: v for k, v in arch.meta.items() if k not in ("schema",)
            },
        }
        if arrivals.size == 0:
            raise TraceFormatError(f"{source}: archive holds zero queries")
        return Trace(arrivals=arrivals, meta=meta)


class RecordingTraceLoader(TraceLoader):
    """The stimulus stream of a ``repro record`` recording (.npz).

    Unlike the ``archive`` loader this reproduces the *offered* stimulus
    -- every drawn arrival (including queries that were later dropped)
    plus the full update stream -- so replaying it as a plain trace
    re-offers exactly what the recorded run saw.
    """

    name = "recording"
    description = "recorded-run stimulus (.npz from repro record)"

    def load(self, source: str) -> Trace:
        from .record import read_recording

        try:
            rec = read_recording(source)
        except OSError as exc:
            raise TraceFormatError(f"{source}: cannot open: {exc}") from exc
        except (ValueError, KeyError) as exc:
            raise TraceFormatError(
                f"{source}: not a readable recording: {exc}"
            ) from exc
        stim = rec.stimulus
        meta = {
            "source": str(source),
            "loader": self.name,
            "format": "recording",
            "scenario": rec.meta.get("scenario", {}).get("name"),
        }
        return Trace(
            arrivals=np.asarray(stim.arrivals, dtype=np.float64),
            updates=tuple(stim.updates),
            meta=meta,
        )
