"""Fault-tolerance analysis (Section 6.2, Fig 6.8).

*Strict* operations require a query to visit every object; the system is
unavailable for a strict query when some object has lost all its replicas
(or, for SW without fall-back, when no failure-free rotation exists).  With
independent fail-stop probability ``f`` per server:

* **PTN** -- a query needs one alive server per cluster; an object is lost
  only if its whole cluster of r servers is down:
  ``unavail = 1 - (1 - f^r)^p``.
* **SW (no fall-back)** -- the r rotations use disjoint server sets; the
  query fails unless some rotation is fully alive:
  ``unavail = (1 - (1-f)^p)^r``.  Much worse than PTN.
* **ROAR (with fall-back)** -- any object is reachable while at least one
  server intersecting its replication arc is alive; strict unavailability
  is the probability of ``r`` *consecutive* dead nodes somewhere on the
  ring (~``n * f^r * (1-f)`` for small f -- PTN-like).  Multi-ring ROAR
  needs a simultaneous dead run in *every* ring over the same object,
  computed by Monte Carlo.

The node-count models above implicitly assume **uniform ranges** (every
dead run of k nodes covers exactly ``k/n`` of the ring).  The deployed
fall-back (:mod:`repro.core.failures`) is stricter and *geometric*: it
treats a maximal contiguous run of dead nodes as one hole and raises
:class:`~repro.core.failures.FailureCoverageError` -- an honest dropped
query, never a silent partial harvest -- exactly when the hole's **range
length** reaches the replacement width ``1/p_store - delta``.  On rings
balanced by speed (Section 4.6) ranges are deliberately unequal, so a
run of *few, wide* nodes can lose coverage while ``r`` narrow ones
cannot.  :func:`coverage_unavailability_mc` / :func:`ring_unavailability_mc`
model that run-length condition directly over the actual range lengths;
for uniform rings they coincide with :func:`roar_unavailability_mc`
(``k/n >= 1/p`` iff ``k >= r``), which the tests assert trial for trial.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

__all__ = [
    "ptn_unavailability",
    "sw_unavailability",
    "roar_run_unavailability",
    "roar_unavailability_mc",
    "coverage_unavailability_mc",
    "ring_unavailability_mc",
    "max_dead_run_length",
    "multiring_unavailability_mc",
]


def ptn_unavailability(f: float, r: int, p: int) -> float:
    """1 - (1 - f^r)^p: some cluster entirely dead."""
    _check_f(f)
    return 1.0 - (1.0 - f**r) ** p


def sw_unavailability(f: float, r: int, p: int) -> float:
    """(1 - (1-f)^p)^r: no rotation fully alive (rotations are disjoint)."""
    _check_f(f)
    return (1.0 - (1.0 - f) ** p) ** r


def roar_run_unavailability(f: float, r: int, n: int) -> float:
    """First-order approximation: P(some run of >= r consecutive failures).

    For small f the expected number of such runs on a circular ring of n
    nodes is ``n * f^r * (1 - f)``, and P ~ that expectation.
    """
    _check_f(f)
    return min(1.0, n * (f**r) * (1.0 - f))


def roar_unavailability_mc(
    f: float, r: int, n: int, trials: int = 20_000, seed: int = 0
) -> float:
    """Monte Carlo strict unavailability for single-ring ROAR.

    A trial is unavailable if the ring (n nodes, uniform ranges) contains a
    circular run of >= r dead nodes -- i.e. some replication arc has lost
    every holder.
    """
    _check_f(f)
    rng = random.Random(seed)
    bad = 0
    for _ in range(trials):
        alive = [rng.random() >= f for _ in range(n)]
        if _has_dead_run(alive, r):
            bad += 1
    return bad / trials


def max_dead_run_length(
    lengths: Sequence[float], alive: Sequence[bool]
) -> float:
    """Longest circular run of dead nodes, measured in *range length*.

    ``lengths[i]`` is node i's range length (ring order, summing to ~1);
    the run metric is what the failure fall-back compares against the
    replacement width ``1/p_store - delta`` (see ``core.failures``).
    Returns 1.0 when every node is dead.
    """
    n = len(alive)
    if n != len(lengths):
        raise ValueError("lengths and alive must have equal length")
    if not any(alive):
        return 1.0
    best = 0.0
    run = 0.0
    # walk twice around to catch wrapping runs; runs reset at live nodes
    for i in range(2 * n):
        if not alive[i % n]:
            run += lengths[i % n]
            if run > best:
                best = run
        else:
            run = 0.0
        if i >= n and run == 0.0:
            break  # past the wrap with no open run: nothing new can grow
    return min(best, 1.0)


def coverage_unavailability_mc(
    lengths: Sequence[float],
    p_store: float,
    f: float,
    delta: float = 0.0,
    trials: int = 20_000,
    seed: int = 0,
) -> float:
    """Monte Carlo strict unavailability under run-length coverage loss.

    A trial fails when some contiguous dead run's total *range length*
    reaches the replacement width ``1/p_store - delta`` -- precisely the
    condition under which :func:`repro.core.failures.replacement_subqueries`
    raises :class:`~repro.core.failures.FailureCoverageError` and the
    deployment records an honest drop.  Unlike the node-count model
    (:func:`roar_unavailability_mc`), this is exact for heterogeneous
    rings whose ranges were balanced to speed: one very fast (wide) dead
    node can exceed the width on its own while many slow (narrow) ones
    cannot.

    Alive draws match :func:`roar_unavailability_mc` (one uniform draw
    per node per trial, same order), so on uniform rings the two agree
    trial for trial.
    """
    from ..core.ids import EPS

    _check_f(f)
    if p_store <= 0:
        raise ValueError(f"p_store must be positive, got {p_store}")
    width = 1.0 / float(p_store) - delta
    rng = random.Random(seed)
    n = len(lengths)
    bad = 0
    for _ in range(trials):
        alive = [rng.random() >= f for _ in range(n)]
        # span = width - run <= EPS is exactly when replacement_subqueries
        # gives up (core/failures.py) -- replicate the comparison
        if width - max_dead_run_length(lengths, alive) <= EPS:
            bad += 1
    return bad / trials


def ring_unavailability_mc(
    ring,
    p_store: float,
    f: float,
    delta: float = 0.0,
    trials: int = 20_000,
    seed: int = 0,
) -> float:
    """:func:`coverage_unavailability_mc` over a live ``core.Ring``.

    Reads the actual node range lengths in ring order, so the estimate
    reflects whatever balancing/reconfiguration has done to the layout.
    """
    nodes = ring.nodes()
    lengths = [ring.range_of(node).length for node in nodes]
    return coverage_unavailability_mc(
        lengths, p_store, f, delta=delta, trials=trials, seed=seed
    )


def multiring_unavailability_mc(
    f: float,
    r: int,
    n: int,
    k_rings: int = 2,
    trials: int = 20_000,
    seed: int = 0,
) -> float:
    """Monte Carlo strict unavailability for k-ring ROAR.

    Each ring holds n/k nodes and r/k consecutive replicas per object; an
    object is lost only if its holders are all dead in *every* ring.  We
    test a grid of object positions per trial.
    """
    _check_f(f)
    if r % k_rings != 0 or n % k_rings != 0:
        raise ValueError("k_rings must divide both n and r")
    rng = random.Random(seed)
    n_per = n // k_rings
    r_per = r // k_rings
    positions = 4 * n  # dense object-position grid
    bad = 0
    for _ in range(trials):
        rings_alive = [
            [rng.random() >= f for _ in range(n_per)] for _ in range(k_rings)
        ]
        # Per ring, precompute whether the run starting at each node is all-dead.
        dead_run = []
        for alive in rings_alive:
            dr = [
                all(not alive[(i + j) % n_per] for j in range(r_per))
                for i in range(n_per)
            ]
            dead_run.append(dr)
        unavailable = False
        for g in range(positions):
            pos = g / positions
            lost_everywhere = True
            for ring_idx in range(k_rings):
                node = int(pos * n_per) % n_per
                if not dead_run[ring_idx][node]:
                    lost_everywhere = False
                    break
            if lost_everywhere:
                unavailable = True
                break
        if unavailable:
            bad += 1
    return bad / trials


def _has_dead_run(alive: Sequence[bool], run: int) -> bool:
    """Any circular run of >= run consecutive False values?"""
    n = len(alive)
    if run > n:
        return False
    if not any(alive):
        return True
    count = 0
    # Walk twice around to catch wrapping runs; early exit on success.
    for i in range(2 * n):
        if not alive[i % n]:
            count += 1
            if count >= run:
                return True
        else:
            count = 0
    return False


def _check_f(f: float) -> None:
    if not 0.0 <= f <= 1.0:
        raise ValueError(f"failure probability must be in [0, 1], got {f}")
