"""Closed-form analytical models from Chapters 2, 5 and 6."""

from ..pps.index_based import (
    IndexModelParams,
    bandwidth_ratio,
    index_bandwidth,
    optimal_delta_max,
    pps_bandwidth,
)
from .availability import (
    coverage_unavailability_mc,
    max_dead_run_length,
    multiring_unavailability_mc,
    ptn_unavailability,
    ring_unavailability_mc,
    roar_run_unavailability,
    roar_unavailability_mc,
    sw_unavailability,
)
from .bandwidth import (
    MessageCosts,
    bandwidth_penalty,
    message_costs,
    optimal_r,
    total_bandwidth,
)
from .delay import best_p_for_target, equal_split_bound, fluid_bound, loaded_delay
from .planner import ConfigOption, Recommendation, WorkloadSpec, recommend_configuration

__all__ = [
    "IndexModelParams",
    "ConfigOption",
    "MessageCosts",
    "Recommendation",
    "WorkloadSpec",
    "recommend_configuration",
    "bandwidth_penalty",
    "bandwidth_ratio",
    "best_p_for_target",
    "equal_split_bound",
    "fluid_bound",
    "index_bandwidth",
    "loaded_delay",
    "message_costs",
    "coverage_unavailability_mc",
    "max_dead_run_length",
    "multiring_unavailability_mc",
    "optimal_delta_max",
    "optimal_r",
    "pps_bandwidth",
    "ptn_unavailability",
    "ring_unavailability_mc",
    "roar_run_unavailability",
    "roar_unavailability_mc",
    "sw_unavailability",
    "total_bandwidth",
]
