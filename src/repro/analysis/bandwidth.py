"""Bandwidth models (Sections 2.3.2, 6.3, Table 6.2).

Two families of results:

* the system-level decomposition ``B = r*B_data + p*B_query + B_results``
  and the optimal replication level ``r_opt = sqrt(n * B_query / B_data)``
  that minimises it;
* per-operation message counts for each algorithm (Table 6.2), including
  the reconfiguration costs that separate ROAR/SW from PTN.

Counts are in *messages per operation*, with D = number of objects,
n = servers, and p/r the partitioning/replication levels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "total_bandwidth",
    "optimal_r",
    "bandwidth_penalty",
    "MessageCosts",
    "message_costs",
]


def total_bandwidth(
    n: int, r: float, b_data: float, b_query: float, b_results: float = 0.0
) -> float:
    """System bandwidth at replication r: r*B_data + (n/r)*B_query + B_results."""
    if r <= 0:
        raise ValueError("r must be positive")
    p = n / r
    return r * b_data + p * b_query + b_results


def optimal_r(n: int, b_data: float, b_query: float) -> float:
    """The bandwidth-minimising replication level: sqrt(n * Bq / Bd)."""
    if b_data <= 0 or b_query <= 0:
        raise ValueError("bandwidth rates must be positive")
    return math.sqrt(n * b_query / b_data)


def bandwidth_penalty(
    n: int, r: float, b_data: float, b_query: float
) -> float:
    """How much more bandwidth level *r* uses than the optimum (ratio >= 1).

    At the extremes (r = 1 or r = n) the penalty is O(sqrt(n)), the
    Section 2.3.2 observation.
    """
    best = total_bandwidth(n, optimal_r(n, b_data, b_query), b_data, b_query)
    return total_bandwidth(n, r, b_data, b_query) / best


@dataclass(frozen=True)
class MessageCosts:
    """Messages per operation for one algorithm (a Table 6.2 row)."""

    algorithm: str
    store_object: float  # messages to store/update one object
    run_query: float  # messages to run one query (sub-queries sent)
    increase_r: float  # messages to raise the replication level by one
    decrease_r: float  # messages to lower it by one


def message_costs(
    algorithm: str, n: int, p: int, d: int, c: float = 2.0
) -> MessageCosts:
    """Closed-form Table 6.2 entries.

    * storing: r messages (one per replica); RAND pays c*r.
    * querying: p messages; RAND pays c*p.
    * ROAR/SW increase r by one: every object gains exactly one replica --
      D messages, each node copying ~D/n objects.  Decrease: replicas are
      dropped in place, 0 transfer messages (control only).
    * PTN decrease p (increase r): a destroyed cluster's D/p objects are
      copied to all ~n/p servers of a surviving cluster, and each of the
      ~n/p freed servers downloads a full D/p partition:
      D/p * n/p + n/p * D/p = 2*D*n/p^2 messages.  Increase p: a new
      cluster of ~n/p servers each downloads its D/p share: D*n/p^2.
    """
    if p <= 0 or n <= 0:
        raise ValueError("n and p must be positive")
    r = n / p
    if algorithm in ("roar", "sw"):
        return MessageCosts(algorithm, store_object=r, run_query=p,
                            increase_r=float(d), decrease_r=0.0)
    if algorithm == "ptn":
        return MessageCosts(
            algorithm,
            store_object=r,
            run_query=p,
            increase_r=2.0 * d * n / (p * p),
            decrease_r=d * n / (p * p),
        )
    if algorithm == "rand":
        return MessageCosts(
            algorithm,
            store_object=c * r,
            run_query=c * p,
            increase_r=float(d),  # one more replica per object, walk extension
            decrease_r=0.0,
        )
    raise ValueError(f"unknown algorithm {algorithm!r}")
