"""Configuration advisor: choosing p and r for a workload (Chapter 2).

The paper frames provisioning as: given ``n`` servers, a dataset, query and
update rates, and a delay target, pick the partitioning level.  The sensible
strategy (Chapter 1) is *the smallest p that meets the latency target* --
any more partitioning only pays extra fixed overheads; and within feasible
configurations, bandwidth is minimised near ``r_opt = sqrt(n*Bq/Bd)``
(Section 2.3.2).

:func:`recommend_configuration` combines the pieces implemented elsewhere in
:mod:`repro.analysis` / :mod:`repro.sim` into one answer, with the full
feasibility table so callers can see the trade-off they are buying.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..sim.queueing import md1_delay
from .delay import equal_split_bound

__all__ = [
    "WorkloadSpec",
    "ConfigOption",
    "Recommendation",
    "recommend_configuration",
    "spec_from_metrics",
    "recommend_from_metrics",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything the advisor needs to know about the deployment."""

    dataset_size: float  # objects
    query_rate: float  # queries/second offered
    update_rate: float  # object updates/second
    target_delay: float  # seconds, mean query delay target
    speeds: Sequence[float]  # per-server objects matched per second
    fixed_overhead: float = 0.0  # per-sub-query fixed cost, seconds
    query_bytes: float = 500.0
    update_bytes: float = 500.0


@dataclass(frozen=True)
class ConfigOption:
    """One feasible (or infeasible) operating point."""

    p: int
    r: float
    predicted_delay: float  # loaded mean delay (M/D/1 per sub-query server)
    utilisation: float
    bandwidth: float  # replica+query bytes/second (Section 2.3.2 model)
    feasible: bool


@dataclass(frozen=True)
class Recommendation:
    chosen: ConfigOption | None
    options: list[ConfigOption]
    reason: str


def _predict_delay(spec: WorkloadSpec, p: int) -> tuple[float, float]:
    """(mean delay, utilisation) at partitioning level p.

    Each query spawns p sub-queries of D/p objects; each server receives
    ``query_rate * p / n`` sub-queries per second plus its share of update
    work.  Delay is the idle equal-split bound inflated by M/D/1 queueing
    at the mean server.
    """
    n = len(spec.speeds)
    mean_speed = sum(spec.speeds) / n
    service = spec.fixed_overhead + (spec.dataset_size / p) / mean_speed
    per_server_rate = spec.query_rate * p / n
    rho = per_server_rate * service
    idle = equal_split_bound(
        spec.dataset_size, spec.speeds, p, spec.fixed_overhead
    )
    queueing = md1_delay(per_server_rate, service)
    if math.isinf(queueing):
        return math.inf, min(rho, 1.0)
    # Queueing wait on top of the heterogeneity-aware idle bound.
    wait = queueing - service
    return idle + wait, min(rho, 1.0)


def recommend_configuration(spec: WorkloadSpec) -> Recommendation:
    """Pick the smallest feasible p; break ties toward bandwidth optimum.

    Returns the whole option table so callers can inspect the frontier.
    """
    n = len(spec.speeds)
    if n == 0:
        raise ValueError("need at least one server")
    if spec.target_delay <= 0:
        raise ValueError("target delay must be positive")
    options: list[ConfigOption] = []
    for p in range(1, n + 1):
        delay, rho = _predict_delay(spec, p)
        r = n / p
        # Section 2.3.2's decomposition: r*B_data + p*B_query (+ constant
        # result traffic, which cannot influence the choice).
        bandwidth = (
            r * spec.update_rate * spec.update_bytes
            + p * spec.query_rate * spec.query_bytes
        )
        options.append(
            ConfigOption(
                p=p,
                r=r,
                predicted_delay=delay,
                utilisation=rho,
                bandwidth=bandwidth,
                feasible=delay <= spec.target_delay and rho < 1.0,
            )
        )

    feasible = [o for o in options if o.feasible]
    if not feasible:
        return Recommendation(
            chosen=None,
            options=options,
            reason=(
                "no partitioning level meets the target; add servers, relax "
                "the target, or shrink the dataset"
            ),
        )
    smallest = feasible[0]
    # Among feasible points within 10% of the smallest p's bandwidth-relevant
    # range, prefer lower bandwidth (they are ordered by p already; higher p
    # always costs more query bandwidth, so smallest p wins unless update
    # traffic dominates).
    best = min(feasible, key=lambda o: (o.bandwidth, o.p))
    chosen = smallest if smallest.bandwidth <= best.bandwidth * 1.10 else best
    reason = (
        f"smallest feasible p={chosen.p} (predicted delay "
        f"{chosen.predicted_delay * 1000:.0f} ms <= target "
        f"{spec.target_delay * 1000:.0f} ms at utilisation "
        f"{chosen.utilisation:.0%})"
    )
    return Recommendation(chosen=chosen, options=options, reason=reason)


def spec_from_metrics(
    snapshot,
    dataset_size: float,
    speeds: Sequence[float],
    target_delay: float,
    fixed_overhead: float = 0.0,
    update_rate: float = 0.0,
    min_query_rate: float = 0.1,
) -> WorkloadSpec:
    """Build a :class:`WorkloadSpec` from a *measured* metrics snapshot.

    The advisor was written for closed-form inputs ("we expect 5 qps"); the
    control plane instead feeds it the live arrival rate observed by a
    :class:`repro.control.MetricsCollector` snapshot (duck-typed: anything
    with a ``qps`` attribute works).  The rate is floored at
    *min_query_rate* so an idle window cannot produce a degenerate spec.
    """
    return WorkloadSpec(
        dataset_size=dataset_size,
        query_rate=max(float(snapshot.qps), min_query_rate),
        update_rate=update_rate,
        target_delay=target_delay,
        speeds=list(speeds),
        fixed_overhead=fixed_overhead,
    )


def recommend_from_metrics(
    snapshot,
    dataset_size: float,
    speeds: Sequence[float],
    target_delay: float,
    fixed_overhead: float = 0.0,
    update_rate: float = 0.0,
) -> Recommendation:
    """Run the Chapter 2 advisor on live measurements (see
    :func:`spec_from_metrics`)."""
    return recommend_configuration(
        spec_from_metrics(
            snapshot,
            dataset_size=dataset_size,
            speeds=speeds,
            target_delay=target_delay,
            fixed_overhead=fixed_overhead,
            update_rate=update_rate,
        )
    )
