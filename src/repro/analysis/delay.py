"""Optimal query-delay bounds (Section 6.1.1).

For a query over ``D`` objects on servers with speeds ``s_1 >= s_2 >= ...``:

* **fluid bound** -- if work could be split arbitrarily across *all*
  servers proportionally to speed, delay = ``D / sum(s_i)``.  No algorithm
  with any placement constraint beats this.
* **equal-split bound** -- DR algorithms send fixed-size sub-queries of
  ``D/p``; with free server choice the best is the ``p`` fastest servers,
  and delay is governed by the slowest chosen: ``(D/p) / s_p``.
* **loaded bound** -- at utilisation rho, server capacity is effectively
  scaled by ``(1 - rho)`` on average (M/D/1 waiting grows as
  ``rho/(1-rho)``); both bounds scale accordingly.

These are the "optimal" curves in Figs 6.1-6.6.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "fluid_bound",
    "equal_split_bound",
    "loaded_delay",
    "best_p_for_target",
]


def fluid_bound(dataset: float, speeds: Sequence[float]) -> float:
    """D / total capacity: the unconstrained parallel matching time."""
    total = sum(speeds)
    if total <= 0:
        raise ValueError("total speed must be positive")
    return dataset / total


def equal_split_bound(
    dataset: float, speeds: Sequence[float], p: int, fixed_overhead: float = 0.0
) -> float:
    """Best possible delay with p equal sub-queries: (D/p)/s_(p) + overhead.

    Chooses the p fastest servers; the p-th fastest is the bottleneck.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    ranked = sorted(speeds, reverse=True)
    if p > len(ranked):
        raise ValueError(f"p={p} exceeds server count {len(ranked)}")
    return fixed_overhead + (dataset / p) / ranked[p - 1]


def loaded_delay(base_delay: float, rho: float) -> float:
    """Scale an idle-system delay by M/D/1 queueing at utilisation rho.

    sojourn ~= service * (1 + rho / (2*(1 - rho))); saturates to inf.
    """
    if rho < 0:
        raise ValueError("rho must be >= 0")
    if rho >= 1.0:
        return math.inf
    return base_delay * (1.0 + rho / (2.0 * (1.0 - rho)))


def best_p_for_target(
    dataset: float,
    speeds: Sequence[float],
    target_delay: float,
    fixed_overhead: float = 0.0,
) -> int | None:
    """Smallest p whose equal-split bound meets the target (idle system).

    The "sensible strategy" of Chapter 1: the smallest cluster count that
    satisfies the latency target maximises throughput.
    """
    for p in range(1, len(speeds) + 1):
        if equal_split_bound(dataset, speeds, p, fixed_overhead) <= target_delay:
            return p
    return None
