"""The ROAR ring: a total partition of the ID space across servers.

Each server owns a contiguous half-open arc of the circle; collectively the
arcs partition ``[0, 1)`` exactly (Section 4).  The ring is the shared piece
of state the front-end servers and the membership server maintain: given any
ring point it answers *which node is in charge* (by binary search over node
start positions), and it supports the structural edits ROAR needs --
inserting a node inside an existing range, removing a node (neighbours absorb
its range), and moving range boundaries for load balancing.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, Optional

from .ids import EPS, Arc, cw_distance, frac

__all__ = ["RingNode", "Ring"]


class RingNode:
    """A server's presence on the ring.

    The node's range is implicit: it starts at ``self.start`` and ends at the
    start of its clockwise successor.  Only the membership layer mutates
    ``start``; everything else treats nodes as read-mostly.
    """

    __slots__ = ("name", "start", "speed", "alive", "ring_id", "meta")

    def __init__(
        self,
        name: str,
        start: float,
        speed: float = 1.0,
        ring_id: int = 0,
    ) -> None:
        self.name = name
        self.start = frac(start)
        #: relative processing speed (objects matched per second); used by
        #: schedulers and by the load balancer as processing-capacity proxy.
        self.speed = float(speed)
        self.alive = True
        self.ring_id = ring_id
        #: scratch dictionary for application layers (stats, stores, ...).
        self.meta: dict = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.alive else "DOWN"
        return f"<RingNode {self.name}@{self.start:.4f} x{self.speed:g} {state}>"


class Ring:
    """An ordered collection of :class:`RingNode` partitioning ``[0, 1)``.

    Invariants maintained:

    * node start positions are unique;
    * ``nodes()`` is sorted by start position;
    * every ring point is owned by exactly one node (the one whose start is
      the nearest counter-clockwise).
    """

    def __init__(self, nodes: Iterable[RingNode] = ()) -> None:
        self._nodes: list[RingNode] = []
        self._starts: list[float] = []
        #: monotonically increasing structure-version counter.  Bumped on
        #: every edit that changes range ownership (add/remove/move), so
        #: derived lookup structures (e.g. the batched scheduler's
        #: precomputed cover tables) can cache against it and invalidate on
        #: reconfiguration without subscribing to individual edits.
        self._version: int = 0
        for node in nodes:
            self.add_node(node)

    # -- introspection ----------------------------------------------------
    @property
    def version(self) -> int:
        """Structure version; changes whenever range ownership changes."""
        return self._version

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[RingNode]:
        return iter(self._nodes)

    def nodes(self) -> list[RingNode]:
        """Nodes in ring (start-position) order."""
        return list(self._nodes)

    def alive_nodes(self) -> list[RingNode]:
        return [n for n in self._nodes if n.alive]

    def get(self, name: str) -> RingNode:
        for node in self._nodes:
            if node.name == name:
                return node
        raise KeyError(name)

    def index_of(self, node: RingNode) -> int:
        idx = bisect.bisect_left(self._starts, node.start)
        if idx < len(self._nodes) and self._nodes[idx] is node:
            return idx
        raise ValueError(f"{node!r} not on ring")

    # -- structure edits --------------------------------------------------
    def add_node(self, node: RingNode) -> None:
        """Insert *node* at its ``start`` position.

        The previous owner of that point implicitly shrinks: its range now
        ends where the new node begins.
        """
        node.start = frac(node.start)
        idx = bisect.bisect_left(self._starts, node.start)
        if self._starts:
            # bisect only surfaces the next start; a start EPS *before* the
            # new position -- including across the 0/1 wrap -- is just as
            # much a collision (it would create a zero-width range).
            for other in (self._starts[idx % len(self._starts)], self._starts[idx - 1]):
                gap = abs(other - node.start)
                if min(gap, 1.0 - gap) <= EPS:
                    raise ValueError(f"position {node.start} already occupied")
        self._nodes.insert(idx, node)
        self._starts.insert(idx, node.start)
        self._version += 1

    def remove_node(self, node: RingNode) -> None:
        """Remove *node*; its predecessor's range implicitly absorbs its arc."""
        idx = self.index_of(node)
        del self._nodes[idx]
        del self._starts[idx]
        self._version += 1

    def move_start(self, node: RingNode, new_start: float) -> None:
        """Move a node's range boundary (used by load balancing).

        The new start must not cross over a neighbouring node's start, which
        would reorder the ring; the balancer enforces this.
        """
        new_start = frac(new_start)
        idx = self.index_of(node)
        n = len(self._nodes)
        if n > 1:
            pred = self._nodes[(idx - 1) % n]
            succ = self._nodes[(idx + 1) % n]
            if cw_distance(pred.start, new_start) >= cw_distance(
                pred.start, succ.start
            ) and cw_distance(pred.start, succ.start) > 0:
                raise ValueError(
                    "new start would cross a neighbour "
                    f"({pred.start:.4f} .. {succ.start:.4f})"
                )
        del self._nodes[idx]
        del self._starts[idx]
        node.start = new_start
        self.add_node(node)

    # -- lookups ----------------------------------------------------------
    def node_in_charge(self, point: float) -> RingNode:
        """The node whose range contains *point* (binary search, O(log n))."""
        if not self._nodes:
            raise LookupError("ring is empty")
        point = frac(point)
        idx = bisect.bisect_right(self._starts, point) - 1
        if idx < 0:
            idx = len(self._nodes) - 1  # wrap: owned by the last node
        return self._nodes[idx]

    def successor(self, node: RingNode) -> RingNode:
        idx = self.index_of(node)
        return self._nodes[(idx + 1) % len(self._nodes)]

    def predecessor(self, node: RingNode) -> RingNode:
        idx = self.index_of(node)
        return self._nodes[(idx - 1) % len(self._nodes)]

    def range_of(self, node: RingNode) -> Arc:
        """The arc this node is responsible for."""
        if len(self._nodes) == 1:
            return Arc(node.start, 1.0)
        succ = self.successor(node)
        return Arc(node.start, cw_distance(node.start, succ.start))

    def range_length(self, node: RingNode) -> float:
        return self.range_of(node).length

    # -- derived quantities -----------------------------------------------
    def total_speed(self) -> float:
        return sum(n.speed for n in self._nodes if n.alive)

    def nodes_covering(self, arc: Arc) -> list[RingNode]:
        """All nodes whose range intersects *arc* (i.e. replica holders)."""
        return [n for n in self._nodes if self.range_of(n).intersects(arc)]

    def mean_range(self) -> float:
        if not self._nodes:
            return 0.0
        return 1.0 / len(self._nodes)

    def validate(self) -> None:
        """Check the partition invariant; raises AssertionError on breakage."""
        assert self._starts == sorted(self._starts), "starts out of order"
        assert len(set(self._starts)) == len(self._starts), "duplicate starts"
        total = sum(self.range_of(n).length for n in self._nodes)
        assert abs(total - 1.0) < 1e-9 or not self._nodes, (
            f"ranges sum to {total}, expected 1.0"
        )

    # -- constructors -------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        n: int,
        speeds: Iterable[float] | None = None,
        name_prefix: str = "node",
        ring_id: int = 0,
    ) -> "Ring":
        """A ring of *n* nodes with equal ranges (and optional speeds)."""
        speed_list = list(speeds) if speeds is not None else [1.0] * n
        if len(speed_list) != n:
            raise ValueError("speeds must have length n")
        return cls(
            RingNode(f"{name_prefix}-{i}", i / n, speed=speed_list[i], ring_id=ring_id)
            for i in range(n)
        )

    @classmethod
    def proportional(
        cls,
        speeds: Iterable[float],
        name_prefix: str = "node",
        ring_id: int = 0,
    ) -> "Ring":
        """A ring whose node ranges are proportional to processing speed.

        This is the equilibrium the background load balancer converges to
        (Section 4.6): a node's query load is proportional to its range, so
        ranges proportional to speed equalise utilisation.
        """
        speed_list = list(speeds)
        total = sum(speed_list)
        if total <= 0:
            raise ValueError("total speed must be positive")
        ring = cls()
        pos = 0.0
        for i, speed in enumerate(speed_list):
            ring.add_node(
                RingNode(f"{name_prefix}-{i}", pos, speed=speed, ring_id=ring_id)
            )
            pos += speed / total
        return ring
