"""Load balancing with proportional ranges (Section 4.6, Fig 7.9/7.10).

A node's mean query load is proportional to the fraction of the ring it is
responsible for, so ROAR balances *utilisation* (not range size) by letting
each node slowly grow its range into that of a more-loaded neighbour.  The
goal state is ranges proportional to processing power.

The implementation mirrors the deployed behaviour:

* load proxy: the membership layer uses ``range / speed`` (range per unit of
  processing power) rather than instantaneous measurements, which are skewed
  by the front-end's preference for fast servers (Section 4.9);
* hysteresis: pairs stop balancing when their loads differ by less than a
  threshold (10% in the paper's implementation) to avoid object churn;
* per-round step limit: boundaries move a bounded fraction of the smaller
  range per round -- the "slow background process".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .ids import cw_distance, frac
from .ring import Ring, RingNode

__all__ = ["BalanceConfig", "LoadBalancer", "load_imbalance"]


def load_imbalance(loads: list[float]) -> float:
    """Definition 3: max load over mean load (1 = perfect, n = worst)."""
    if not loads:
        return 1.0
    mean = sum(loads) / len(loads)
    if mean <= 0:
        return 1.0
    return max(loads) / mean


@dataclass
class BalanceConfig:
    #: relative load difference below which a pair stops balancing.
    threshold: float = 0.10
    #: max fraction of the smaller involved range a boundary moves per round.
    max_step: float = 0.25


class LoadBalancer:
    """Background pairwise range balancing over one ring."""

    def __init__(
        self,
        ring: Ring,
        config: BalanceConfig | None = None,
        load_fn: Callable[[RingNode, float], float] | None = None,
    ) -> None:
        self.ring = ring
        self.config = config or BalanceConfig()
        #: load proxy: default range/speed (membership-server style); tests
        #: may supply measured loads instead.
        self._load_fn = load_fn or (lambda node, rng_len: rng_len / node.speed)
        #: nodes with administratively fixed ranges (membership "Fixed" flag).
        self.fixed: set[str] = set()

    def load_of(self, node: RingNode) -> float:
        return self._load_fn(node, self.ring.range_of(node).length)

    def step(self) -> int:
        """One balancing round over all adjacent pairs.

        Each pair (node, successor) compares loads; the less-loaded node
        grows its range into the more-loaded one by moving the shared
        boundary.  Returns the number of boundaries moved.
        """
        nodes = self.ring.alive_nodes()
        if len(nodes) < 2:
            return 0
        moved = 0
        for node in list(nodes):
            if not node.alive:
                continue
            succ = self.ring.successor(node)
            if succ is node or not succ.alive:
                continue
            if node.name in self.fixed or succ.name in self.fixed:
                continue
            if self._balance_pair(node, succ):
                moved += 1
        return moved

    def _balance_pair(self, node: RingNode, succ: RingNode) -> bool:
        """Move the boundary between *node* and *succ* if loads warrant it.

        The shared boundary is ``succ.start``: moving it clockwise grows
        *node*'s range (sheds load from succ... onto node); moving it
        counter-clockwise grows *succ*'s range.
        """
        load_a = self.load_of(node)
        load_b = self.load_of(succ)
        hi = max(load_a, load_b)
        if hi <= 0:
            return False
        if abs(load_a - load_b) / hi < self.config.threshold:
            return False

        range_a = self.ring.range_of(node)
        range_b = self.ring.range_of(succ)
        # Damped step proportional to the load gap: the more loaded side
        # sheds range.  Works for any load proxy (range/speed by default,
        # measured loads when supplied).
        gap = (load_b - load_a) / (load_a + load_b)
        limit = self.config.max_step * min(range_a.length, range_b.length)
        delta = gap * limit  # positive: grow node's range into succ's
        if abs(delta) < 1e-12:
            return False
        new_boundary = frac(node.start + range_a.length + delta)
        try:
            self.ring.move_start(succ, new_boundary)
        except ValueError:
            return False
        return True

    def run_until_stable(self, max_rounds: int = 1000) -> int:
        """Iterate rounds until no boundary moves; returns rounds used."""
        for round_no in range(1, max_rounds + 1):
            if self.step() == 0:
                return round_no
        return max_rounds

    def imbalance(self) -> float:
        """Current utilisation imbalance across alive nodes."""
        nodes = self.ring.alive_nodes()
        return load_imbalance([self.load_of(n) for n in nodes])
