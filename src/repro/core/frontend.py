"""The ROAR front-end server (Section 4.8).

Front-ends receive queries, split them into sub-queries, choose targets with
the scheduling algorithm, track per-node statistics, detect failures via
sub-query timers, and assemble results.  This class is deployment-agnostic:
it holds the *decision* logic and bookkeeping, while an execution layer (the
cluster simulator, or unit tests) drives it.

Per-node statistics maintained (paper list):

* the node's range (implied by the ring object);
* liveness (last time seen up);
* outstanding scheduled work and its expected finish time (``busy_until``);
* an exponentially-weighted moving average of processing speed, updated from
  each completed sub-query.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .._rng import ensure_rng
from .adjust import PlannedSub, QueryPlan, adjust_ranges, plan_from_schedule, split_slowest
from .failures import split_failed
from .ids import cw_distance, frac
from .node import SubQuery
from .ring import Ring, RingNode
from .scheduler import (
    Estimator,
    ScheduleResult,
    schedule_heap,
    schedule_naive,
    schedule_random,
)

__all__ = ["NodeStats", "FrontEndConfig", "FrontEnd"]


@dataclass
class NodeStats:
    """Front-end's view of one storage node."""

    speed_estimate: float
    busy_until: float = 0.0
    last_seen: float = 0.0
    outstanding: int = 0
    completed: int = 0

    def backlog(self, now: float) -> float:
        return max(0.0, self.busy_until - now)


@dataclass
class FrontEndConfig:
    """Tunables for scheduling behaviour."""

    #: scheduling method: "heap" (Algorithm 1), "naive", or "random".
    method: str = "heap"
    #: random starting points evaluated when method == "random".
    random_starts: int = 3
    #: apply the range-adjustment optimisation (Section 4.8.2).
    adjust_ranges: bool = False
    #: maximum sub-query splits applied per query (0 disables).
    max_splits: int = 0
    #: EWMA weight given to each new speed observation.
    ewma_alpha: float = 0.2
    #: fixed per-sub-query overhead (seconds) assumed by estimates.
    fixed_overhead: float = 0.0
    #: delta margin used by failure fall-back (Section 4.4).
    failure_delta: float = 1e-6


class FrontEnd:
    """Scheduling brain of a ROAR deployment."""

    def __init__(
        self,
        rings: Ring | Sequence[Ring],
        dataset_size: float,
        config: FrontEndConfig | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.rings: list[Ring] = [rings] if isinstance(rings, Ring) else list(rings)
        if not self.rings:
            raise ValueError("at least one ring required")
        self.dataset_size = float(dataset_size)
        self.config = config or FrontEndConfig()
        self.rng = ensure_rng(rng)
        self.stats: dict[str, NodeStats] = {}
        for ring in self.rings:
            for node in ring:
                self.stats[node.name] = NodeStats(speed_estimate=node.speed)
        self._query_counter = 0
        #: scheduling work counters for the Fig 7.12 comparison.
        self.total_iterations = 0
        self.total_estimates = 0
        self.queries_scheduled = 0

    # -- statistics ---------------------------------------------------------
    def stats_for(self, node: RingNode) -> NodeStats:
        st = self.stats.get(node.name)
        if st is None:
            st = NodeStats(speed_estimate=node.speed)
            self.stats[node.name] = st
        return st

    def set_speed_estimate(self, node_name: str, speed: float) -> None:
        """Override a speed estimate (used by estimation-error experiments)."""
        self.stats[node_name].speed_estimate = speed

    def perturb_speed_estimates(self, rel_error: float, rng=None) -> None:
        """Inject multiplicative uniform noise of +-rel_error into estimates.

        Fig 6.5 studies scheduler robustness to wrong speed estimates.
        """
        rng = rng or self.rng
        for ring in self.rings:
            for node in ring:
                factor = 1.0 + rng.uniform(-rel_error, rel_error)
                self.stats[node.name].speed_estimate = max(
                    node.speed * factor, 1e-9
                )

    def observe_completion(
        self, node: RingNode, work_objects: float, service_time: float, now: float
    ) -> None:
        """Update the EWMA speed estimate from a finished sub-query."""
        st = self.stats_for(node)
        st.outstanding = max(0, st.outstanding - 1)
        st.completed += 1
        st.last_seen = now
        effective = service_time - self.config.fixed_overhead
        if effective > 0 and work_objects > 0:
            observed = work_objects / effective
            a = self.config.ewma_alpha
            st.speed_estimate = (1 - a) * st.speed_estimate + a * observed

    def mark_failed(self, node: RingNode) -> None:
        node.alive = False

    def mark_recovered(self, node: RingNode, now: float) -> None:
        node.alive = True
        self.stats_for(node).last_seen = now

    # -- estimation -----------------------------------------------------------
    def make_estimator(self, now: float) -> Estimator:
        """Finish-delay estimator closure over the current statistics.

        Predicted delay for a sub-query covering *fraction* of the ID space:
        queued backlog + fixed overhead + (fraction * D) / estimated speed.
        """
        dataset = self.dataset_size
        fixed = self.config.fixed_overhead
        stats = self.stats

        def estimate(node: RingNode, fraction: float) -> float:
            st = stats.get(node.name)
            speed = st.speed_estimate if st else node.speed
            backlog = st.backlog(now) if st else 0.0
            return backlog + fixed + (fraction * dataset) / speed

        return estimate

    # -- scheduling -------------------------------------------------------------
    def next_query_id(self) -> int:
        self._query_counter += 1
        return self._query_counter

    def schedule_query(
        self,
        now: float,
        pq: int,
        p_store: float | None = None,
    ) -> tuple[int, QueryPlan, ScheduleResult]:
        """Choose targets for a ``pq``-way query arriving at *now*.

        Returns ``(query_id, plan, raw_schedule)``.  The plan already has
        range adjustment / splitting applied per configuration, and failed
        delivery targets are *not* yet resolved -- call
        :meth:`resolve_failures` on the generated sub-queries (the execution
        layer does this when a timer fires or a target is known-dead).
        """
        if pq < 1:
            raise ValueError("pq must be >= 1")
        p_store = float(p_store if p_store is not None else pq)
        estimator = self.make_estimator(now)
        method = self.config.method
        if method == "heap":
            result = schedule_heap(self.rings, pq, estimator)
        elif method == "naive":
            result = schedule_naive(self.rings, pq, estimator)
        elif method == "random":
            result = schedule_random(
                self.rings, pq, estimator, k=self.config.random_starts, rng=self.rng
            )
        else:
            raise ValueError(f"unknown scheduling method {method!r}")

        self.total_iterations += result.iterations
        self.total_estimates += result.estimates
        self.queries_scheduled += 1

        plan = plan_from_schedule(result, estimator)
        if self.config.adjust_ranges:
            plan = adjust_ranges(plan, self.rings, estimator, p_store)
        if self.config.max_splits > 0:
            plan = split_slowest(
                plan, self.rings, estimator, p_store, max_splits=self.config.max_splits
            )
        return self.next_query_id(), plan, result

    def reserve(self, plan: QueryPlan, now: float) -> None:
        """Record the expected load of a dispatched plan in node stats."""
        fixed = self.config.fixed_overhead
        for sub in plan.subs:
            st = self.stats_for(sub.node)
            service = fixed + (sub.width * self.dataset_size) / max(
                st.speed_estimate, 1e-9
            )
            st.busy_until = max(st.busy_until, now) + service
            st.outstanding += 1

    def resolve_failures(
        self, subqueries: list[SubQuery], p_store: float
    ) -> list[tuple[SubQuery, RingNode]]:
        """Replace sub-queries addressed to dead nodes (Section 4.4)."""
        primary = self.rings[0]
        return split_failed(
            primary,
            subqueries,
            p_store,
            delta=self.config.failure_delta,
            rng=self.rng,
        )

    # -- reporting ----------------------------------------------------------------
    def mean_iterations(self) -> float:
        if self.queries_scheduled == 0:
            return 0.0
        return self.total_iterations / self.queries_scheduled
