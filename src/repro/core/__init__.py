"""ROAR core: the paper's primary contribution.

Public surface of the ring algorithm: ID-space arithmetic, the ring and its
nodes, query scheduling, failure handling, reconfiguration, load balancing,
and membership management.
"""

from .adjust import PlannedSub, QueryPlan, adjust_ranges, plan_from_schedule, split_slowest
from .balance import BalanceConfig, LoadBalancer, load_imbalance
from .covertable import CoverTable, CoverTableCache
from .failures import FailureCoverageError, replacement_subqueries, split_failed
from .frontend import FrontEnd, FrontEndConfig, NodeStats
from .ids import Arc, ccw_distance, cw_distance, frac, in_arc
from .membership import MembershipServer
from .multiring import choices_multiring, choices_ptn, choices_sw, store_on_rings
from .node import RoarNode, SubQuery, dedup_matches
from .objects import DataObject, ObjectCollection, generate_objects, replication_range
from .reconfig import ReconfigPhase, ReconfigStatus, Reconfigurator
from .ring import Ring, RingNode
from .updates import PropagationReport, RackLayout, propagate_many, propagate_update
from .scheduler import (
    ScheduleResult,
    assignment_at,
    schedule_heap,
    schedule_naive,
    schedule_random,
)

__all__ = [
    "Arc",
    "BalanceConfig",
    "CoverTable",
    "CoverTableCache",
    "DataObject",
    "FailureCoverageError",
    "FrontEnd",
    "FrontEndConfig",
    "LoadBalancer",
    "MembershipServer",
    "NodeStats",
    "ObjectCollection",
    "PlannedSub",
    "PropagationReport",
    "QueryPlan",
    "RackLayout",
    "propagate_many",
    "propagate_update",
    "ReconfigPhase",
    "ReconfigStatus",
    "Reconfigurator",
    "Ring",
    "RingNode",
    "RoarNode",
    "ScheduleResult",
    "SubQuery",
    "adjust_ranges",
    "assignment_at",
    "ccw_distance",
    "choices_multiring",
    "choices_ptn",
    "choices_sw",
    "cw_distance",
    "dedup_matches",
    "frac",
    "generate_objects",
    "in_arc",
    "load_imbalance",
    "plan_from_schedule",
    "replacement_subqueries",
    "replication_range",
    "schedule_heap",
    "schedule_naive",
    "schedule_random",
    "split_failed",
    "split_slowest",
    "store_on_rings",
]
