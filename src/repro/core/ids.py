"""Circular identifier-space arithmetic for the ROAR ring.

ROAR (Chapter 4) places servers and objects on a *continuous* circular ID
space.  Throughout this package the space is the half-open unit interval
``[0, 1)`` with all arithmetic performed modulo 1.  This module provides the
primitive operations every other core module builds on:

* :func:`frac` -- canonicalise a point onto the circle,
* :func:`cw_distance` -- clockwise distance between two points,
* :class:`Arc` -- a half-open clockwise interval ``[start, start+length)``.

Two conventions matter and are used consistently everywhere:

1. Arcs are *half-open*: an arc of length ``L`` starting at ``s`` contains
   ``s`` but not ``s + L``.  This makes node ranges an exact partition of the
   circle and makes object/sub-query coverage proofs exact.
2. An arc of length ``1`` (or more) is the whole circle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "EPS",
    "frac",
    "cw_distance",
    "ccw_distance",
    "in_arc",
    "arcs_intersect",
    "Arc",
]

#: Tolerance used when comparing ring positions derived from floating point
#: arithmetic.  Positions are random in [0,1) so collisions at this scale are
#: astronomically unlikely for realistic ring sizes.
EPS = 1e-12


def frac(x: float) -> float:
    """Map *x* onto the canonical circle ``[0, 1)``.

    >>> frac(1.25)
    0.25
    >>> frac(-0.25)
    0.75
    """
    out = math.fmod(x, 1.0)
    if out < 0.0:
        out += 1.0
    # fmod of values like -1e-18 can produce exactly 1.0 after the
    # correction; fold it back onto 0.
    if out >= 1.0:
        out -= 1.0
    return out


def cw_distance(start: float, end: float) -> float:
    """Clockwise (increasing-ID) distance travelling from *start* to *end*.

    The result is in ``[0, 1)``; the distance from a point to itself is 0.
    Plain IEEE-754 arithmetic, so expect float dust -- ring comparisons go
    through ``EPS``, never exact equality:

    >>> cw_distance(0.9, 0.1)
    0.19999999999999996
    >>> cw_distance(0.25, 0.75)
    0.5
    """
    return frac(end - start)


def ccw_distance(start: float, end: float) -> float:
    """Counter-clockwise distance from *start* to *end* (in ``[0, 1)``)."""
    return frac(start - end)


def in_arc(point: float, start: float, length: float) -> bool:
    """Return True if *point* lies in the half-open arc ``[start, start+length)``.

    A length >= 1 covers the whole circle.

    Containment compares *positions* (``point`` against ``start + length``),
    not distances: ``cw_distance(start, point) < length`` re-derives the
    point's offset with a subtraction whose rounding can land exactly on
    ``length`` even though the point is strictly inside -- for a ring
    partition that opened a one-ulp ownership hole just below the wrap
    (found by hypothesis: ``point=0.9999999999999999`` on a two-node ring
    had no containing range while ``node_in_charge`` named one).  The
    positional form agrees with bisect-based ownership on every boundary
    case the property suite and an adversarial ulp sweep could produce.
    """
    if length <= 0.0:
        return False
    if length >= 1.0:
        return True
    point = frac(point)
    start = frac(start)
    if point >= start:
        return point < start + length
    return point + 1.0 < start + length


def arcs_intersect(start_a: float, len_a: float, start_b: float, len_b: float) -> bool:
    """Return True if two half-open arcs share at least one point."""
    if len_a <= 0.0 or len_b <= 0.0:
        return False
    if len_a >= 1.0 or len_b >= 1.0:
        return True
    # They intersect unless each one starts strictly after the other ends.
    return (
        cw_distance(start_a, start_b) < len_a
        or cw_distance(start_b, start_a) < len_b
    )


@dataclass(frozen=True)
class Arc:
    """A half-open clockwise interval ``[start, start + length)`` on the circle.

    ``start`` is always stored canonicalised into ``[0, 1)``; ``length`` is
    clamped to ``[0, 1]``.  A length of exactly 1 represents the full circle.
    """

    start: float
    length: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "start", frac(self.start))
        object.__setattr__(self, "length", min(max(self.length, 0.0), 1.0))

    # -- basic geometry ---------------------------------------------------
    @property
    def end(self) -> float:
        """The (exclusive) end point of the arc, canonicalised."""
        if self.length >= 1.0:
            return self.start
        return frac(self.start + self.length)

    @property
    def is_full_circle(self) -> bool:
        return self.length >= 1.0

    @property
    def is_empty(self) -> bool:
        return self.length <= 0.0

    def contains(self, point: float) -> bool:
        """Half-open containment test."""
        return in_arc(point, self.start, self.length)

    def intersects(self, other: "Arc") -> bool:
        return arcs_intersect(self.start, self.length, other.start, other.length)

    def contains_arc(self, other: "Arc") -> bool:
        """Return True if *other* is entirely inside this arc."""
        if other.is_empty:
            return True
        if self.is_full_circle:
            return True
        if other.is_full_circle:
            return False
        offset = cw_distance(self.start, other.start)
        return offset + other.length <= self.length + EPS

    def intersection_length(self, other: "Arc") -> float:
        """Length of the overlap between the two arcs.

        For arcs shorter than the full circle the overlap is a single arc
        (possibly empty); when one operand is the full circle the overlap is
        the other arc.
        """
        if self.is_empty or other.is_empty:
            return 0.0
        if self.is_full_circle:
            return other.length
        if other.is_full_circle:
            return self.length
        total = 0.0
        # Overlap may wrap and in degenerate cases consist of two pieces
        # (when combined lengths approach 1); handle both candidate pieces.
        for a, b in ((self, other), (other, self)):
            off = cw_distance(a.start, b.start)
            if off < a.length:
                total += min(a.length - off, b.length)
        # Cap at the shorter arc (guards double counting in the wrap case).
        return min(total, self.length, other.length)

    def expand(self, extra: float) -> "Arc":
        """Return a copy grown clockwise by *extra* (same start)."""
        return Arc(self.start, self.length + extra)

    def shrink(self, less: float) -> "Arc":
        """Return a copy shrunk clockwise by *less* (same start)."""
        return Arc(self.start, max(self.length - less, 0.0))

    def midpoint(self) -> float:
        return frac(self.start + self.length / 2.0)

    def split(self, at: float) -> tuple["Arc", "Arc"]:
        """Split this arc at ring point *at* into two consecutive arcs.

        *at* must lie inside the arc (or at its start, yielding an empty
        first piece).
        """
        offset = cw_distance(self.start, at)
        if offset > self.length + EPS:
            raise ValueError(f"split point {at!r} outside arc {self!r}")
        offset = min(offset, self.length)
        return Arc(self.start, offset), Arc(at, self.length - offset)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Arc[{self.start:.6f} +{self.length:.6f})"
