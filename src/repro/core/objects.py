"""Data objects stored in a distributed-rendezvous system.

Definition 4 of the paper: an object is a collection of bytes with an
identifier drawn uniformly at random from the object identifier space.  In
ROAR the identifier space is the ring ``[0, 1)`` and each object is replicated
over the arc ``[oid, oid + 1/p)`` (its *replication range*, Section 4.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from .._rng import ensure_rng
from .ids import Arc, frac

__all__ = ["DataObject", "replication_range", "generate_objects", "ObjectCollection"]


@dataclass(frozen=True)
class DataObject:
    """An object stored by the rendezvous layer.

    Attributes:
        oid: ring identifier in ``[0, 1)``, uniform at random.
        key: application-level identifier (e.g. a filename); opaque here.
        payload: application data matched by queries; opaque to ROAR.
        size: nominal size in bytes, used by bandwidth accounting.
    """

    oid: float
    key: str = ""
    payload: Any = None
    size: int = 500

    def __post_init__(self) -> None:
        object.__setattr__(self, "oid", frac(self.oid))


def replication_range(obj: DataObject, p: int | float) -> Arc:
    """The arc over which *obj* must be replicated at partitioning level *p*.

    Section 4.1: objects are stored on all servers whose range intersects the
    arc of length ``1/p`` starting at the object's ID.
    """
    if p <= 0:
        raise ValueError(f"partitioning level must be positive, got {p}")
    return Arc(obj.oid, 1.0 / float(p))


def generate_objects(
    count: int,
    rng: random.Random | None = None,
    key_prefix: str = "obj",
    size: int = 500,
) -> list[DataObject]:
    """Generate *count* objects with uniformly random ring IDs.

    A seeded ``random.Random`` should be passed for reproducible experiments.
    """
    rng = ensure_rng(rng)
    return [
        DataObject(oid=rng.random(), key=f"{key_prefix}-{i}", size=size)
        for i in range(count)
    ]


class ObjectCollection:
    """A collection of objects ordered by ring ID.

    Keeps objects sorted so that range scans (``objects whose replication
    range intersects an arc``) are cheap; this mirrors the on-disk layout the
    PPS implementation uses (Section 5.6.2).
    """

    def __init__(self, objects: Iterable[DataObject] = ()) -> None:
        self._objects: list[DataObject] = sorted(objects, key=lambda o: o.oid)

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[DataObject]:
        return iter(self._objects)

    def add(self, obj: DataObject) -> None:
        """Insert keeping ID order (O(n); bulk loads should use extend)."""
        import bisect

        idx = bisect.bisect_left([o.oid for o in self._objects], obj.oid)
        self._objects.insert(idx, obj)

    def extend(self, objects: Iterable[DataObject]) -> None:
        self._objects.extend(objects)
        self._objects.sort(key=lambda o: o.oid)

    def remove(self, obj: DataObject) -> None:
        self._objects.remove(obj)

    def in_arc(self, arc: Arc) -> list[DataObject]:
        """All objects whose *ID* lies inside *arc*."""
        return [o for o in self._objects if arc.contains(o.oid)]

    def intersecting(self, arc: Arc, p: int | float) -> list[DataObject]:
        """All objects whose replication range (at level *p*) intersects *arc*."""
        return [
            o for o in self._objects if replication_range(o, p).intersects(arc)
        ]

    def all(self) -> list[DataObject]:
        return list(self._objects)
