"""Precomputed ring-cover tables and the batched rotation sweep.

:func:`~repro.core.scheduler.schedule_heap` (the paper's Algorithm 1) is
called once per query.  Per call it rebuilds owner-lookup views, walks a
binary heap of boundary crossings, and invokes a Python estimator closure
for every crossing -- fine for thousands of queries, fatal for millions.

The observation that makes a batched path possible: for a *fixed* ring
configuration and partitioning level ``pq``, everything about the sweep
except the finish estimates is static.  As the starting id sweeps over
``[0, 1/pq)``:

* the offsets at which any query point crosses a node boundary,
* which node each point crosses *into*,
* how crossings group into the heap's EPS tie groups, and
* which configurations the heap actually evaluates

are all functions of the node start positions alone.  A :class:`CoverTable`
precomputes them once; scheduling a query then reduces to one vectorised
finish-estimate evaluation per server plus a gather/max/argmin over the
precomputed owner timeline -- a handful of numpy operations instead of
thousands of interpreter steps.

The table replays Algorithm 1's exact float arithmetic and tie-breaking
(same ``EPS`` chaining, same "strictly better, first wins" selection, same
final owner re-derivation by binary search), so the batched result is
*bit-identical* to :func:`schedule_heap` -- the differential tests in
``tests/test_fastpath.py`` enforce this.

Tables cache against :attr:`Ring.version` and are invalidated whenever a
reconfiguration (add/remove/move) changes range ownership.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

try:  # numpy is required for the batched path only; core stays pure-python.
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

from .ids import EPS, cw_distance, frac
from .ring import Ring, RingNode
from .scheduler import ScheduleResult

__all__ = ["CoverTable", "CoverTableCache", "KernelPack", "require_numpy"]


def require_numpy() -> None:
    if np is None:  # pragma: no cover - the image bakes numpy in
        raise RuntimeError(
            "the batched query path requires numpy; install it or use the "
            "per-query reference path"
        )


@dataclass
class KernelPack:
    """The table's arrays repacked contiguously for out-of-python kernels.

    Scheduling kernels that leave numpy (the ctypes-driven C kernel, or
    any future accelerator back-end) consume raw pointers, which requires
    one known layout: ``owner_stack`` stacks every ring's owner timeline
    into a single C-contiguous ``(n_rings, pq, n_configs)`` int64 block of
    ring-local node indices, ``evaluated_u8`` is the heap-evaluation mask
    as bytes, and ``config_start_id`` aliases the table's candidate start
    ids.

    The ``ev_*`` arrays are the *differential* encoding of the same
    timelines: the owner of a (ring, point) chain is piecewise-constant
    along the config axis (exactly one chain crosses a boundary per sweep
    event), so configuration ``c`` differs from ``c - 1`` by the owner
    changes listed in ``ev_ring/ev_point/ev_owner[ev_offsets[c] :
    ev_offsets[c + 1]]``.  An incremental kernel walks configs updating a
    register-resident point set in O(total events) instead of gathering
    the full ``(pq, n_configs)`` timeline per query -- the representation
    behind the compiled kernel's speedup.  Built lazily by
    :meth:`CoverTable.kernel_pack` and cached on the table, so pure-python
    users never pay for it.
    """

    owner_stack: "np.ndarray"
    evaluated_u8: "np.ndarray"
    config_start_id: "np.ndarray"
    ev_offsets: "np.ndarray"  # (n_configs + 1,) int64, config -> event span
    ev_ring: "np.ndarray"  # (n_events,) int64
    ev_point: "np.ndarray"  # (n_events,) int64
    ev_owner: "np.ndarray"  # (n_events,) int64, ring-local new owner


@dataclass
class _RingTable:
    """Per-ring static data: nodes in start order plus owner timelines."""

    nodes: list[RingNode]
    starts: "np.ndarray"  # sorted start positions, float64
    #: owner index per (query point, configuration): shape (pq, n_configs).
    owner_timeline: "np.ndarray"


class CoverTable:
    """The static part of Algorithm 1 for one (rings, pq) configuration."""

    def __init__(self, rings: Sequence[Ring], pq: int) -> None:
        require_numpy()
        if pq < 1:
            raise ValueError(f"pq must be >= 1, got {pq}")
        self.pq = pq
        self.work = 1.0 / pq
        self.versions = tuple(r.version for r in rings)
        #: strong references: the cache keys on (versions, ring ids), which
        #: is only sound while the rings cannot be garbage-collected and
        #: their ids reused by lookalike rings.
        self.rings = list(rings)

        # -- enumerate every chain's crossings, exactly as the heap would --
        # A chain is one (query point, ring) pair; its events are the sweep
        # offsets at which the point crosses into the ring's next node.
        events: list[tuple[float, int, int, int]] = []  # (crossing, pt, ring, new owner)
        sentinel_min: float | None = None  # first crossing >= work - EPS, any chain
        per_ring: list[tuple[list[RingNode], list[float], list[int]]] = []
        limit = self.work - EPS
        for r_i, ring in enumerate(rings):
            nodes = ring.nodes()
            if not nodes:
                raise LookupError("ring is empty")
            starts = [n.start for n in nodes]
            owner0 = []
            import bisect

            for i in range(pq):
                point = frac(i / pq)
                idx = bisect.bisect_right(starts, point) - 1
                if idx < 0:
                    idx = len(nodes) - 1
                owner0.append(idx)
                if len(nodes) <= 1:
                    continue  # the heap never pushes events for 1-node rings
                # All starts sorted by clockwise distance from the point;
                # distance 0 is the point's own owner (reached only after a
                # full circle, which the heap's push guard cuts off).
                chain = sorted(
                    (cw_distance(point, s), j)
                    for j, s in enumerate(starts)
                    if cw_distance(point, s) > 0.0
                )
                for crossing, j in chain:
                    if crossing < limit:
                        events.append((crossing, i, r_i, j))
                    else:
                        if sentinel_min is None or crossing < sentinel_min:
                            sentinel_min = crossing
                        break  # the heap breaks the sweep here
            per_ring.append((nodes, starts, owner0))

        events.sort(key=lambda e: (e[0], e[1], e[2]))
        self.iterations = len(events)
        self.n_rings = len(rings)
        # estimates: pq*R initial + one per processed event + pq*R final.
        self.estimates = 2 * pq * self.n_rings + len(events)

        # -- group events into the heap's EPS tie groups -------------------
        # Evaluation happens after the last event of a group; a group whose
        # *next* pending crossing (possibly the >= work - EPS sentinel) is
        # within EPS never gets evaluated -- replicated here bit-for-bit.
        group_of_event: list[int] = []
        group_last_crossing: list[float] = []
        g = 0
        for j, (crossing, _, _, _) in enumerate(events):
            group_of_event.append(g)
            is_last = j + 1 == len(events)
            if is_last or events[j + 1][0] > crossing + EPS:
                group_last_crossing.append(crossing)
                g += 1
        n_groups = g
        n_configs = n_groups + 1  # config 0 = initial placement

        evaluated = [True] * n_configs
        if n_groups and sentinel_min is not None:
            if sentinel_min <= group_last_crossing[-1] + EPS:
                evaluated[-1] = False
        self.evaluated = np.array(evaluated, dtype=bool)

        #: candidate start id per configuration (config 0 sweeps from 0.0).
        self.config_start_id = np.zeros(n_configs, dtype=np.float64)
        for gi, crossing in enumerate(group_last_crossing):
            self.config_start_id[gi + 1] = crossing + EPS

        # -- owner timelines ----------------------------------------------
        self.ring_tables: list[_RingTable] = []
        for r_i, (nodes, starts, owner0) in enumerate(per_ring):
            timeline = np.empty((pq, n_configs), dtype=np.intp)
            timeline[:, 0] = owner0
            current = list(owner0)
            col = 0
            for j, (crossing, pt, ring_i, new_owner) in enumerate(events):
                if ring_i == r_i:
                    current[pt] = new_owner
                if group_of_event[j] != (group_of_event[j + 1] if j + 1 < len(events) else -1):
                    col += 1
                    timeline[:, col] = current
            # (loop writes a column at every group end; fill the tail when
            # there were no events at all)
            if n_configs == 1:
                timeline[:, 0] = owner0
            self.ring_tables.append(
                _RingTable(
                    nodes=nodes,
                    starts=np.array(starts, dtype=np.float64),
                    owner_timeline=timeline,
                )
            )

    # -- kernel-facing views ----------------------------------------------
    def kernel_pack(self) -> KernelPack:
        """Contiguous array views for compiled kernels (lazy, cached)."""
        pack = getattr(self, "_kernel_pack", None)
        if pack is None:
            owner_stack = np.ascontiguousarray(
                np.stack(
                    [rt.owner_timeline for rt in self.ring_tables], axis=0
                ).astype(np.int64, copy=False)
            )
            # differential encoding: owner changes between consecutive
            # configs, grouped by the config they take effect at
            n_configs = owner_stack.shape[2]
            if n_configs > 1:
                ev_r, ev_p, ev_c = np.nonzero(
                    owner_stack[:, :, 1:] != owner_stack[:, :, :-1]
                )
                ev_c = ev_c + 1  # change takes effect at config c
                order = np.argsort(ev_c, kind="stable")
                ev_r = ev_r[order]
                ev_p = ev_p[order]
                ev_c = ev_c[order]
                ev_owner = owner_stack[ev_r, ev_p, ev_c]
                counts = np.bincount(ev_c, minlength=n_configs)
            else:
                ev_r = ev_p = ev_owner = np.zeros(0, dtype=np.int64)
                counts = np.zeros(n_configs, dtype=np.int64)
            ev_offsets = np.zeros(n_configs + 1, dtype=np.int64)
            np.cumsum(counts, out=ev_offsets[1:])
            pack = KernelPack(
                owner_stack=owner_stack,
                evaluated_u8=np.ascontiguousarray(
                    self.evaluated.astype(np.uint8)
                ),
                config_start_id=np.ascontiguousarray(self.config_start_id),
                ev_offsets=ev_offsets,
                ev_ring=np.ascontiguousarray(ev_r.astype(np.int64)),
                ev_point=np.ascontiguousarray(ev_p.astype(np.int64)),
                ev_owner=np.ascontiguousarray(ev_owner.astype(np.int64)),
            )
            self._kernel_pack = pack
        return pack

    # -- scheduling --------------------------------------------------------
    def schedule(self, estimates: Sequence["np.ndarray"]) -> ScheduleResult:
        """Run the sweep given per-ring finish-estimate arrays.

        ``estimates[r][j]`` must be the predicted finish delay of a
        ``1/pq``-wide sub-query on ring *r*'s node *j* (ring order), computed
        with the same float arithmetic as the per-query estimator.  Returns
        a :class:`ScheduleResult` bit-identical to :func:`schedule_heap`.
        """
        pq = self.pq
        # Finish of each point across all configurations: gather each ring's
        # estimates through its owner timeline, min across rings.
        finish = self.ring_tables[0].owner_timeline
        finish = estimates[0][finish]
        for r_i in range(1, self.n_rings):
            other = estimates[r_i][self.ring_tables[r_i].owner_timeline]
            finish = np.minimum(finish, other)
        makespans = finish.max(axis=0)

        # "Strictly better than the running best, first wins" == first
        # occurrence of the global minimum among evaluated configurations.
        candidates = np.where(self.evaluated, makespans, np.inf)
        best_config = int(np.argmin(candidates))
        best_id = float(self.config_start_id[best_config])

        # Final assignment re-derived by binary search at best_id, exactly
        # like schedule_heap's closing assignment_at() call.
        points = np.array([frac(best_id + i / pq) for i in range(pq)])
        owner_per_ring = []
        for table in self.ring_tables:
            idx = np.searchsorted(table.starts, points, side="right") - 1
            idx[idx < 0] = len(table.nodes) - 1
            owner_per_ring.append(idx)
        assignment: list[RingNode] = []
        finishes: list[float] = []
        for i in range(pq):
            best_node = None
            best_finish = float("inf")
            for r_i, table in enumerate(self.ring_tables):
                idx = int(owner_per_ring[r_i][i])
                fin = float(estimates[r_i][idx])
                if fin < best_finish:
                    best_finish = fin
                    best_node = table.nodes[idx]
            assignment.append(best_node)  # type: ignore[arg-type]
            finishes.append(best_finish)

        return ScheduleResult(
            start_id=frac(best_id),
            assignment=assignment,
            finishes=finishes,
            makespan=max(finishes),
            iterations=self.iterations,
            estimates=self.estimates,
        )


class CoverTableCache:
    """Small keyed cache of cover tables, invalidated by ring versions."""

    def __init__(self, max_entries: int = 8) -> None:
        self.max_entries = max_entries
        self._tables: dict[tuple, CoverTable] = {}

    def get(self, rings: Sequence[Ring], pq: int) -> CoverTable:
        key = (pq, tuple(r.version for r in rings), tuple(id(r) for r in rings))
        table = self._tables.get(key)
        if table is None:
            table = CoverTable(rings, pq)
            if len(self._tables) >= self.max_entries:
                self._tables.pop(next(iter(self._tables)))
            self._tables[key] = table
        return table
