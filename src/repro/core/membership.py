"""The centralised membership server (Section 4.9).

Tracks node range assignments, inserts new servers at hotspots, moves
servers from cool to hot regions, redistributes failed nodes' ranges,
remembers past allocations for returning servers, and manages multiple
rings -- including shutting whole rings down to track diurnal load
(Section 4.9.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .._rng import ensure_rng
from .ids import Arc, cw_distance, frac
from .ring import Ring, RingNode

__all__ = ["MembershipServer"]


@dataclass
class _NodeRecord:
    """History kept per server (for fast rejoin, Section 4.9)."""

    ring_id: int
    start: float
    speed: float


class MembershipServer:
    """Global coordinator for ring membership and capacity."""

    def __init__(
        self,
        n_rings: int = 1,
        rng: random.Random | None = None,
    ) -> None:
        if n_rings < 1:
            raise ValueError("need at least one ring")
        self.rings: list[Ring] = [Ring() for _ in range(n_rings)]
        #: rings currently serving queries (diurnal scaling may park some).
        self.active: list[bool] = [True] * n_rings
        self.rng = ensure_rng(rng)
        self._history: dict[str, _NodeRecord] = {}
        self.moves = 0
        self.inserts = 0

    # -- capacity bookkeeping ---------------------------------------------------
    def active_rings(self) -> list[Ring]:
        return [r for r, a in zip(self.rings, self.active) if a and len(r) > 0]

    def ring_capacity(self, ring_id: int) -> float:
        return self.rings[ring_id].total_speed()

    def total_capacity(self) -> float:
        return sum(r.total_speed() for r in self.active_rings())

    def least_loaded_ring(self) -> int:
        """The ring with the least processing capacity (Section 4.9 default)."""
        capacities = [
            (self.ring_capacity(i) if len(self.rings[i]) else 0.0, i)
            for i in range(len(self.rings))
        ]
        return min(capacities)[1]

    # -- hotspot detection -----------------------------------------------------
    def hottest_node(self, ring: Ring) -> Optional[RingNode]:
        """Node with the worst range-to-speed ratio (the membership server's
        load proxy; see Section 4.9)."""
        nodes = ring.alive_nodes()
        if not nodes:
            return None
        return max(nodes, key=lambda n: ring.range_of(n).length / n.speed)

    def coolest_node(self, ring: Ring) -> Optional[RingNode]:
        nodes = ring.alive_nodes()
        if not nodes:
            return None
        return min(nodes, key=lambda n: ring.range_of(n).length / n.speed)

    # -- joins / leaves ------------------------------------------------------------
    def add_server(
        self,
        name: str,
        speed: float,
        ring_id: int | None = None,
    ) -> RingNode:
        """Insert a server; default policy picks the least-capacity ring and
        the hottest spot on it.  Returning servers get their old range back
        (only deltas need downloading)."""
        self.inserts += 1
        record = self._history.get(name)
        if record is not None and ring_id is None:
            ring = self.rings[record.ring_id]
            try:
                node = RingNode(name, record.start, speed=speed, ring_id=record.ring_id)
                ring.add_node(node)
                return node
            except ValueError:
                pass  # old position occupied; fall through to fresh insert

        rid = ring_id if ring_id is not None else self.least_loaded_ring()
        ring = self.rings[rid]
        if len(ring) == 0:
            start = 0.0
        else:
            hot = self.hottest_node(ring)
            assert hot is not None
            hot_range = ring.range_of(hot)
            # Split the hottest node's range in half: the newcomer takes the
            # second half, then grows/shrinks via background balancing.
            start = hot_range.midpoint()
        node = RingNode(name, start, speed=speed, ring_id=rid)
        ring.add_node(node)
        self._history[name] = _NodeRecord(ring_id=rid, start=start, speed=speed)
        return node

    def remove_server(self, name: str) -> None:
        """Controlled removal: the predecessor absorbs the range."""
        for rid, ring in enumerate(self.rings):
            try:
                node = ring.get(name)
            except KeyError:
                continue
            self._history[name] = _NodeRecord(
                ring_id=rid, start=node.start, speed=node.speed
            )
            ring.remove_node(node)
            return
        raise KeyError(name)

    def handle_long_term_failure(self, name: str) -> None:
        """A dead node's range is redistributed (absorbed by predecessor)."""
        self.remove_server(name)

    # -- global rebalancing ----------------------------------------------------------
    def move_cool_to_hot(self, ring_id: int = 0) -> bool:
        """Move the coolest node next to the hottest spot (Section 4.9).

        Pairwise local balancing propagates slowly out of a hot region; the
        membership server's global view lets it relocate whole nodes, which
        is much faster.  Returns True if a move happened.
        """
        ring = self.rings[ring_id]
        if len(ring) < 3:
            return False
        hot = self.hottest_node(ring)
        cool = self.coolest_node(ring)
        if hot is None or cool is None or hot is cool:
            return False
        hot_ratio = ring.range_of(hot).length / hot.speed
        cool_ratio = ring.range_of(cool).length / cool.speed
        if hot_ratio <= 2.0 * cool_ratio:
            return False  # not lopsided enough to justify a full relocation
        ring.remove_node(cool)
        target = ring.range_of(hot).midpoint()
        cool.start = target
        ring.add_node(cool)
        self._history[cool.name] = _NodeRecord(
            ring_id=ring_id, start=cool.start, speed=cool.speed
        )
        self.moves += 1
        return True

    # -- diurnal ring scaling (Section 4.9.1) ----------------------------------------
    def rings_needed(self, offered_load: float, capacity_per_ring: float) -> int:
        """How many rings must be up to serve *offered_load* (query-work/s)."""
        if capacity_per_ring <= 0:
            raise ValueError("capacity_per_ring must be positive")
        import math

        return max(1, math.ceil(offered_load / capacity_per_ring))

    def set_active_rings(self, count: int) -> list[int]:
        """Activate the first *count* rings, park the rest; returns active ids."""
        count = max(1, min(count, len(self.rings)))
        for i in range(len(self.rings)):
            self.active[i] = i < count
        return [i for i, a in enumerate(self.active) if a]

    # -- construction helpers -----------------------------------------------------------
    @classmethod
    def build_balanced(
        cls,
        speeds: Sequence[float],
        n_rings: int = 1,
        rng: random.Random | None = None,
        name_prefix: str = "node",
    ) -> "MembershipServer":
        """Distribute servers across rings so per-ring capacity is even.

        Greedy longest-processing-time assignment: sort by speed descending,
        put each server on the ring with the least capacity so far, then lay
        each ring out with ranges proportional to speed.
        """
        ms = cls(n_rings=n_rings, rng=rng)
        order = sorted(range(len(speeds)), key=lambda i: -speeds[i])
        per_ring: list[list[tuple[int, float]]] = [[] for _ in range(n_rings)]
        cap = [0.0] * n_rings
        for idx in order:
            rid = min(range(n_rings), key=lambda r: cap[r])
            per_ring[rid].append((idx, speeds[idx]))
            cap[rid] += speeds[idx]
        for rid, members in enumerate(per_ring):
            total = sum(s for _, s in members)
            pos = 0.0
            for idx, speed in members:
                node = RingNode(
                    f"{name_prefix}-{idx}", pos, speed=speed, ring_id=rid
                )
                ms.rings[rid].add_node(node)
                ms._history[node.name] = _NodeRecord(rid, node.start, speed)
                pos = frac(pos + speed / total)
        return ms
