"""Online reconfiguration: changing the p/r trade-off (Section 4.5).

ROAR's headline feature: the partitioning level can be changed while the
system keeps serving queries, with the minimum possible data movement.

* **Increasing p (decreasing r)** -- replication arcs shrink from ``1/p`` to
  ``1/p'``.  Front-ends may switch to the new ``pq = p'`` *immediately* (it
  is always safe to run queries with larger pq), and nodes drop surplus
  replicas lazily in the background.
* **Decreasing p (increasing r)** -- arcs grow; every node must download the
  objects whose extended arc now reaches it.  For correctness, front-ends
  keep partitioning queries ``p`` ways until *every* node confirms its
  download is complete; only then do they switch to ``p'``.

:class:`Reconfigurator` drives this state machine over a ring of
:class:`~repro.core.node.RoarNode` stores and reports the bytes moved, which
feeds the Table 6.2 / Fig 7.5 comparisons (SW/ROAR move the minimum:
``D * (1/p' - 1/p)`` object-fractions; PTN moves far more).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional

from .ids import Arc
from .node import RoarNode
from .objects import DataObject, replication_range
from .ring import Ring

__all__ = ["ReconfigPhase", "ReconfigStatus", "Reconfigurator"]


class ReconfigPhase(Enum):
    STABLE = "stable"
    GROWING_REPLICAS = "growing"  # p decreasing, waiting on downloads
    SHRINKING_REPLICAS = "shrinking"  # p increasing, background drops


@dataclass
class ReconfigStatus:
    phase: ReconfigPhase
    p_store: float  # level replicas are guaranteed complete at
    p_target: float
    safe_pq: float  # minimum pq front-ends may use right now
    pending_nodes: int
    bytes_moved: int


class Reconfigurator:
    """Coordinates replication-level changes across a ring of stores."""

    def __init__(
        self,
        ring: Ring,
        stores: dict[str, RoarNode],
        objects: Iterable[DataObject],
        p_initial: float,
    ) -> None:
        self.ring = ring
        self.stores = stores
        self.objects = list(objects)
        if p_initial <= 0:
            raise ValueError("p must be positive")
        #: level every node is guaranteed to have complete replicas for.
        self.p_store = float(p_initial)
        self.p_target = float(p_initial)
        self.phase = ReconfigPhase.STABLE
        self._pending: set[str] = set()
        self.bytes_moved = 0
        self.reconfigurations = 0

    # -- queries ------------------------------------------------------------
    @property
    def safe_pq(self) -> float:
        """Minimum partitioning level front-ends may use right now.

        While growing replicas (p decreasing) queries must still use the old
        (larger) p; once stable or while shrinking, the target level is safe.
        """
        if self.phase == ReconfigPhase.GROWING_REPLICAS:
            return self.p_store
        return self.p_target

    def status(self) -> ReconfigStatus:
        return ReconfigStatus(
            phase=self.phase,
            p_store=self.p_store,
            p_target=self.p_target,
            safe_pq=self.safe_pq,
            pending_nodes=len(self._pending),
            bytes_moved=self.bytes_moved,
        )

    # -- initial load ---------------------------------------------------------
    def initial_load(self) -> None:
        """Load every store with its replicas at the current level."""
        for node in self.ring:
            store = self.stores[node.name]
            node_range = self.ring.range_of(node)
            self.bytes_moved += sum(
                o.size
                for o in self.objects
                if store.should_store(o, self.p_store, node_range)
            )
            store.load_objects(self.objects, self.p_store, node_range)

    # -- level changes ------------------------------------------------------------
    def request_p(self, p_new: float) -> ReconfigStatus:
        """Begin moving the system to partitioning level *p_new*."""
        if p_new <= 0:
            raise ValueError("p must be positive")
        if self.phase != ReconfigPhase.STABLE:
            raise RuntimeError(
                f"reconfiguration already in progress ({self.phase.value})"
            )
        if p_new == self.p_target:
            return self.status()
        self.reconfigurations += 1
        self.p_target = float(p_new)
        if p_new > self.p_store:
            # Arcs shrink: immediately safe, drops happen in background.
            self.phase = ReconfigPhase.SHRINKING_REPLICAS
            self._pending = {n.name for n in self.ring}
        else:
            # Arcs grow: all nodes must download before pq can drop.
            self.phase = ReconfigPhase.GROWING_REPLICAS
            self._pending = {n.name for n in self.ring}
        return self.status()

    def node_step(self, node_name: str) -> int:
        """Perform one node's share of the in-flight reconfiguration.

        Returns bytes transferred (downloads) or freed (drops) by this node.
        In a real deployment this runs as a background task per node; the
        simulation calls it per node with appropriate timing.
        """
        if node_name not in self._pending:
            return 0
        node = self.ring.get(node_name)
        store = self.stores[node_name]
        node_range = self.ring.range_of(node)
        moved = 0
        if self.phase == ReconfigPhase.GROWING_REPLICAS:
            before = store.bytes_downloaded
            store.load_objects(self.objects, self.p_target, node_range)
            moved = store.bytes_downloaded - before
            self.bytes_moved += moved
        elif self.phase == ReconfigPhase.SHRINKING_REPLICAS:
            before = store.bytes_dropped
            store.drop_outside(self.p_target, node_range)
            moved = store.bytes_dropped - before
        self._pending.discard(node_name)
        if not self._pending:
            self._complete()
        return moved

    def run_all_steps(self) -> int:
        """Drive the reconfiguration to completion synchronously."""
        total = 0
        for name in list(self._pending):
            total += self.node_step(name)
        return total

    def _complete(self) -> None:
        self.p_store = self.p_target
        self.phase = ReconfigPhase.STABLE

    # -- membership-driven reloads ----------------------------------------------
    def load_node_range(self, node_name: str, new_range: Arc) -> int:
        """Download the objects a (new or grown) node needs for *new_range*.

        Loads at the *safer* (smaller) of the stored and target levels so a
        node joining mid-reconfiguration holds complete replicas for both --
        its arcs at the smaller p are a superset of the larger p's.
        """
        store = self.stores[node_name]
        before = store.bytes_downloaded
        level = min(self.p_store, self.p_target)
        store.load_objects(self.objects, level, new_range)
        moved = store.bytes_downloaded - before
        self.bytes_moved += moved
        return moved

    def node_departed(self, node_name: str) -> None:
        """Stop waiting on a node that left the ring mid-reconfiguration.

        Controlled removals hand the node's range (and its download/drop
        obligation) to the predecessor, so an in-flight level change must
        not block on the departed node forever.
        """
        self._pending.discard(node_name)
        if self.phase != ReconfigPhase.STABLE and not self._pending:
            self._complete()

    def expected_transfer(self, p_new: float) -> int:
        """Bytes ROAR must move for a stable p -> p_new change (lower bound).

        Growing arcs by ``1/p_new - 1/p`` replicates each object over that
        much more of the ring; shrinking moves nothing.
        """
        if p_new >= self.p_store:
            return 0
        extra = 1.0 / p_new - 1.0 / self.p_store
        # Each object gains, on average, extra * n replicas.
        n = len(self.ring)
        return int(sum(o.size for o in self.objects) * extra * n)
