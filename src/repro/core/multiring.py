"""Multiple sliding windows (Section 4.7).

Instead of one logical ring, ROAR can run a small number ``k`` of rings with
each server belonging to exactly one.  Objects are stored on every ring (an
arc of ``1/p`` per ring), so with the same ``p`` each object still averages
``r`` replicas -- ``r/k`` per ring -- and no storage overhead is added, but
each query point may now be served by the fastest of ``k`` candidate nodes.
This multiplies the scheduler's choices from ``r`` (single ring) to
``r * 2^(p-1)``-ish, closing most of the delay gap to PTN's ``r^p``, and it
makes diurnal scaling trivial (park whole rings).

The constraint is ``r >= k`` (each object needs at least one replica per
ring); the paper recommends k = 2.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from .node import RoarNode
from .objects import DataObject
from .ring import Ring

__all__ = [
    "store_on_rings",
    "choices_sw",
    "choices_multiring",
    "choices_ptn",
    "validate_ring_count",
]


def validate_ring_count(r: float, k: int) -> None:
    """Check the r >= k constraint for k rings."""
    if k < 1:
        raise ValueError("need at least one ring")
    if r < k:
        raise ValueError(
            f"replication level {r} cannot support {k} rings "
            "(each object needs one replica per ring)"
        )


def store_on_rings(
    rings: Sequence[Ring],
    stores: dict[str, RoarNode],
    objects: Iterable[DataObject],
    p: float,
) -> None:
    """Replicate *objects* over every ring at partitioning level *p*.

    Each ring holds a full copy of the dataset spread over its own nodes;
    the per-ring replication arc length is the same ``1/p``.
    """
    objs = list(objects)
    for ring in rings:
        for node in ring:
            store = stores[node.name]
            store.load_objects(objs, p, ring.range_of(node))


def choices_sw(r: float, p: int) -> float:
    """Server combinations a single-ring SW/ROAR query can choose from: r."""
    return float(r)


def choices_multiring(r: float, p: int, k: int = 2) -> float:
    """Approximate combinations with *k* rings: r * k^(p-1) / k ... per the
    paper's k=2 statement ``r * 2^(p-1)``: each of the p points picks one of
    k rings independently, anchored by r rotations, normalised by the k-fold
    rotation overlap."""
    validate_ring_count(r, k)
    return float(r) * float(k) ** (p - 1)


def choices_ptn(r: float, p: int) -> float:
    """PTN's combinations: one of r servers in each of p clusters."""
    return float(r) ** p


def log_choices(kind: str, r: float, p: int, k: int = 2) -> float:
    """Natural log of the choice count (avoids overflow for large p)."""
    if kind == "sw":
        return math.log(max(r, 1.0))
    if kind == "multiring":
        return math.log(max(r, 1.0)) + (p - 1) * math.log(k)
    if kind == "ptn":
        return p * math.log(max(r, 1.0))
    raise ValueError(f"unknown kind {kind!r}")
