"""Scheduling optimisations: range adjustment and sub-query splitting.

Section 4.8.2 describes two ways the front-end can shave the makespan after
the basic rotation sweep has chosen a starting point:

* **Range adjustment** -- because ROAR over-replicates slightly (object
  replication arcs overhang node boundaries), the matching window boundary
  between two consecutive sub-queries can be slid a little in either
  direction without losing coverage.  The front-end takes work away from the
  sub-query predicted to finish last and gives it to its neighbours, aiming
  to equalise finish times.  Constraints (Fig 4.6):

  - moving a boundary *left* (growing sub-query i at the expense of i-1)
    requires the new boundary ``B`` to satisfy ``B + 1/p_store`` inside node
    i's range, so the extra objects are actually stored there;
  - moving it *right* (growing sub-query i-1) requires ``B`` to stay within
    node i-1's range end, for the same reason.

* **Sub-query splitting** -- the slowest sub-query's window is cut in two
  and the pieces re-placed on the fastest servers able to serve them (any
  server whose range intersects ``[window_end, window_start + 1/p_store)``
  stores the whole piece).  Splitting adds per-sub-query fixed overheads, so
  the paper recommends at most one or two splits; the ablation benches
  measure exactly that.

Both optimisations operate on a :class:`QueryPlan`, an explicit list of
matching windows that tile the circle.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from .ids import EPS, Arc, cw_distance, frac
from .node import SubQuery
from .ring import Ring, RingNode
from .scheduler import Estimator, ScheduleResult

__all__ = ["PlannedSub", "QueryPlan", "plan_from_schedule", "adjust_ranges", "split_slowest"]


@dataclass
class PlannedSub:
    """One sub-query of a plan: a matching window plus its assigned node.

    The window is the half-open-from-the-left interval
    ``(window_start, window_end]``; ``dest`` is the ring point the sub-query
    is addressed to (the assigned node must own it).
    """

    node: RingNode
    dest: float
    window_start: float
    window_end: float
    finish: float = 0.0

    @property
    def width(self) -> float:
        return cw_distance(self.window_start, self.window_end)

    def to_subquery(self, query_id: int, index: int) -> SubQuery:
        return SubQuery(
            query_id=query_id,
            dest=self.dest,
            dedup_origin=self.window_end,
            dedup_width=self.width,
            local_width=max(self.width, cw_distance(self.window_start, self.dest)),
            index=index,
        )


@dataclass
class QueryPlan:
    """A complete query: sub-query windows tiling the circle."""

    subs: list[PlannedSub]
    start_id: float = 0.0

    @property
    def makespan(self) -> float:
        return max(s.finish for s in self.subs) if self.subs else 0.0

    def total_width(self) -> float:
        return sum(s.width for s in self.subs)

    def to_subqueries(self, query_id: int) -> list[SubQuery]:
        return [s.to_subquery(query_id, i) for i, s in enumerate(self.subs)]


def plan_from_schedule(result: ScheduleResult, estimator: Estimator) -> QueryPlan:
    """Convert a scheduler result into an explicit window plan.

    Sub-query ``i`` at point ``q_i = start + i/p`` matches
    ``(q_{i-1}, q_i]``.
    """
    p = result.p
    subs = []
    for i in range(p):
        q_i = frac(result.start_id + i / p)
        q_prev = frac(result.start_id + (i - 1) / p)
        subs.append(
            PlannedSub(
                node=result.assignment[i],
                dest=q_i,
                window_start=q_prev,
                window_end=q_i,
                finish=result.finishes[i],
            )
        )
    return QueryPlan(subs=subs, start_id=result.start_id)


def _ring_of(rings: "Ring | Sequence[Ring]", node: RingNode) -> Ring:
    """The ring a node belongs to (multi-ring plans mix nodes)."""
    if isinstance(rings, Ring):
        return rings
    ring_list = list(rings)
    if 0 <= node.ring_id < len(ring_list):
        return ring_list[node.ring_id]
    return ring_list[0]


def _range_end(rings: "Ring | Sequence[Ring]", node: RingNode) -> float:
    return _ring_of(rings, node).range_of(node).end


def adjust_ranges(
    plan: QueryPlan,
    ring: "Ring | Sequence[Ring]",
    estimator: Estimator,
    p_store: float,
    rounds: int = 2,
) -> QueryPlan:
    """Slide window boundaries to take work away from the slowest sub-query.

    Runs a few cheap passes: each pass finds the sub-query with the largest
    predicted finish and moves each of its two boundaries toward the point
    that equalises its finish with the adjacent sub-query, clipped to the
    coverage constraints.  Near-constant time per pass (the paper's claim),
    most effective at low replication levels where node ranges are
    comparable to sub-query sizes.
    """
    if len(plan.subs) < 2:
        return plan
    repl_width = 1.0 / float(p_store)

    for _ in range(rounds):
        slow_i = max(range(len(plan.subs)), key=lambda i: plan.subs[i].finish)
        slow = plan.subs[slow_i]
        prev_i = (slow_i - 1) % len(plan.subs)
        next_i = (slow_i + 1) % len(plan.subs)
        moved = False

        # --- shed the *early* part of the window to the previous sub-query:
        # move slow's window_start (their shared boundary) clockwise.
        prev = plan.subs[prev_i]
        if prev is not slow and prev.finish < slow.finish:
            # Equalise: prev gains dx of window, slow loses dx.
            dx = _equalising_shift(prev, slow, estimator)
            # Constraint: boundary must stay within prev node's range end so
            # the shifted objects are stored on prev's node.
            limit_node = cw_distance(slow.window_start, _range_end(ring, prev.node))
            limit_win = slow.width - EPS
            dx = max(0.0, min(dx, limit_node, limit_win))
            if dx > EPS:
                boundary = frac(slow.window_start + dx)
                plan.subs[prev_i] = _with_window(prev, prev.window_start, boundary, estimator)
                plan.subs[slow_i] = _with_window(slow, boundary, slow.window_end, estimator)
                slow = plan.subs[slow_i]
                moved = True

        # --- shed the *late* part to the next sub-query: move slow's
        # window_end counter-clockwise (next's window_start moves back).
        nxt = plan.subs[next_i]
        if nxt is not slow and nxt.finish < slow.finish and next_i != prev_i:
            dx = _equalising_shift(nxt, slow, estimator)
            # Constraint: new boundary B must satisfy B + 1/p_store beyond
            # next node's range start, i.e. B within 1/p_store behind it.
            next_start = plan.subs[next_i].node.start
            reach_back = repl_width - cw_distance(
                frac(slow.window_end), next_start
            )
            limit_node = max(0.0, reach_back)
            limit_win = slow.width - EPS
            dx = max(0.0, min(dx, limit_node, limit_win))
            if dx > EPS:
                boundary = frac(slow.window_end - dx)
                plan.subs[slow_i] = _with_window(slow, slow.window_start, boundary, estimator)
                plan.subs[next_i] = _with_window(nxt, boundary, nxt.window_end, estimator)
                moved = True

        if not moved:
            break
    return plan


def _with_window(
    sub: PlannedSub, start: float, end: float, estimator: Estimator
) -> PlannedSub:
    new = replace(sub, window_start=frac(start), window_end=frac(end))
    new.finish = estimator(new.node, new.width)
    return new


def _equalising_shift(
    fast: PlannedSub, slow: PlannedSub, estimator: Estimator
) -> float:
    """Window width to move from *slow* to *fast* to equalise finishes.

    Uses two probe evaluations to linearise each node's finish-vs-width
    curve, then solves for the balancing shift.
    """
    probe = max(slow.width * 0.125, 1e-6)
    slope_slow = (
        estimator(slow.node, slow.width) - estimator(slow.node, max(slow.width - probe, 0.0))
    ) / probe
    slope_fast = (
        estimator(fast.node, fast.width + probe) - estimator(fast.node, fast.width)
    ) / probe
    gap = slow.finish - fast.finish
    denom = slope_slow + slope_fast
    if denom <= 0:
        return 0.0
    return gap / denom


def split_slowest(
    plan: QueryPlan,
    ring: "Ring | Sequence[Ring]",
    estimator: Estimator,
    p_store: float,
    max_splits: int = 1,
    min_gain: float = 0.0,
) -> QueryPlan:
    """Split the slowest sub-query's window and re-place the upper half.

    Repeats up to *max_splits* times, always targeting the currently slowest
    sub-query.  A split is kept only if it improves the predicted makespan
    by more than *min_gain* (fixed per-sub-query overheads are already baked
    into the estimator, so the trade-off is visible to this test).
    """
    repl_width = 1.0 / float(p_store)
    ring_list = [ring] if isinstance(ring, Ring) else list(ring)
    for _ in range(max_splits):
        slow_i = max(range(len(plan.subs)), key=lambda i: plan.subs[i].finish)
        slow = plan.subs[slow_i]
        if slow.width <= EPS:
            break
        mid = frac(slow.window_start + slow.width / 2.0)
        # Candidate delivery points for the upper half (mid, window_end]:
        # any node owning a point of [window_end, mid + 1/p_store) stores it.
        candidate_arc = Arc(
            slow.window_end,
            max(0.0, repl_width - cw_distance(mid, slow.window_end)),
        )
        best_node = None
        best_finish = float("inf")
        half_width = slow.width / 2.0
        for candidate_ring in ring_list:
            for node in candidate_ring.nodes_covering(candidate_arc):
                if not node.alive:
                    continue
                fin = estimator(node, half_width)
                if fin < best_finish:
                    best_finish = fin
                    best_node = node
        if best_node is None:
            break
        lower = _with_window(slow, slow.window_start, mid, estimator)
        dest = slow.window_end if best_node is slow.node else _dest_in(
            _ring_of(ring_list, best_node), best_node, candidate_arc
        )
        upper = PlannedSub(
            node=best_node,
            dest=dest,
            window_start=mid,
            window_end=slow.window_end,
            finish=best_finish,
        )
        old_makespan = plan.makespan
        trial = QueryPlan(
            subs=plan.subs[:slow_i] + [lower, upper] + plan.subs[slow_i + 1 :],
            start_id=plan.start_id,
        )
        if trial.makespan < old_makespan - min_gain:
            plan = trial
        else:
            break
    return plan


def _dest_in(ring: Ring, node: RingNode, arc: Arc) -> float:
    """A ring point inside *arc* owned by *node* (its range ∩ arc)."""
    node_range = ring.range_of(node)
    if arc.contains(node_range.start):
        return node_range.start
    return arc.start
