"""Front-end query scheduling for ROAR (Section 4.8.1, Algorithm 1).

For a ``p``-way query, ROAR must pick the *starting point* ``id`` on the ring
that minimises the query's completion time; the other ``p - 1`` sub-query
points are implied (equally spaced at ``1/p``).  Sweeping ``id`` over
``[0, 1/p)`` visits every distinct server combination.

Three schedulers are provided:

* :func:`schedule_heap` -- the paper's Algorithm 1.  A sweep over rotation
  events driven by a binary heap of "next boundary crossing" distances; each
  of the ``n`` node boundaries is crossed exactly once, giving
  ``O(n log p)`` total work.  Supports multiple rings (Section 4.8.1,
  "Scheduling for Multiple Rings") by overlaying their boundaries and using
  the fastest per-point candidate.
* :func:`schedule_naive` -- the straw-man deterministic sweep that
  recomputes all ``p`` finish estimates at every rotation event: ``O(n p)``.
  Used to validate the heap sweep and for the Fig 7.12 cost comparison.
* :func:`schedule_random` -- evaluate ``k`` random starting points and keep
  the best; the "simplest algorithm" mentioned in the text.

An *estimator* maps ``(node, work_fraction) -> predicted finish delay`` for a
sub-query of the given size; schedulers treat it as a black box, so the same
code drives both the analytic simulator and unit tests.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .._rng import ensure_rng
from .ids import EPS, cw_distance, frac
from .ring import Ring, RingNode

__all__ = [
    "Estimator",
    "ScheduleResult",
    "schedule_heap",
    "schedule_naive",
    "schedule_random",
    "assignment_at",
]

Estimator = Callable[[RingNode, float], float]


@dataclass
class ScheduleResult:
    """Outcome of a scheduling decision.

    Attributes:
        start_id: chosen query starting point in ``[0, 1/p)``.
        assignment: the node chosen for each of the ``p`` query points.
        finishes: predicted finish delay for each sub-query.
        makespan: predicted query delay (max of finishes).
        iterations: rotation events examined (for complexity experiments).
        estimates: number of estimator invocations.
    """

    start_id: float
    assignment: list[RingNode]
    finishes: list[float]
    makespan: float
    iterations: int = 0
    estimates: int = 0

    @property
    def p(self) -> int:
        return len(self.assignment)


class _RingOwners:
    """Owner-of-point lookups over one ring's nodes, in start order.

    Includes dead nodes deliberately: Section 4.4 has the front-end ignore
    failures when choosing the starting point and instead split sub-queries
    addressed to failed nodes.  Collapsing a dead node's range into its
    predecessor here would silently break object coverage.
    """

    def __init__(self, ring: Ring) -> None:
        self.nodes = ring.nodes()
        if not self.nodes:
            raise LookupError("ring is empty")
        self.starts = [n.start for n in self.nodes]

    def owner_index(self, point: float) -> int:
        import bisect

        point = frac(point)
        idx = bisect.bisect_right(self.starts, point) - 1
        if idx < 0:
            idx = len(self.nodes) - 1
        return idx

    def owner(self, point: float) -> RingNode:
        return self.nodes[self.owner_index(point)]

    def successor_index(self, idx: int) -> int:
        return (idx + 1) % len(self.nodes)


def assignment_at(
    rings: Sequence[Ring],
    p: int,
    start_id: float,
    estimator: Estimator,
) -> tuple[list[RingNode], list[float]]:
    """The per-point best (fastest-finishing) nodes for a given start id."""
    owners = [_RingOwners(r) for r in rings]
    assignment: list[RingNode] = []
    finishes: list[float] = []
    work = 1.0 / p
    for i in range(p):
        point = frac(start_id + i / p)
        best_node = None
        best_finish = float("inf")
        for view in owners:
            node = view.owner(point)
            fin = estimator(node, work)
            if fin < best_finish:
                best_finish = fin
                best_node = node
        assignment.append(best_node)  # type: ignore[arg-type]
        finishes.append(best_finish)
    return assignment, finishes


def schedule_heap(
    rings: Ring | Sequence[Ring],
    p: int,
    estimator: Estimator,
) -> ScheduleResult:
    """Algorithm 1: O(n log p) rotation sweep using a binary heap.

    The heap holds, for every (query point, ring) pair, the sweep offset at
    which that query point crosses into the ring's next node.  Popping events
    in increasing offset order enumerates every distinct server combination;
    after each crossing only the affected point's finish estimate changes,
    and the current makespan is maintained incrementally (recomputing the max
    only when the previous maximum was replaced by a faster estimate).
    """
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    ring_list = [rings] if isinstance(rings, Ring) else list(rings)
    views = [_RingOwners(r) for r in ring_list]
    work = 1.0 / p
    estimates = 0

    # Per query point: the owner index in each ring, that owner's finish
    # estimate, and the current winning (minimum) finish across rings.
    owner_idx: list[list[int]] = []
    ring_finish: list[list[float]] = []
    finish: list[float] = []
    heap: list[tuple[float, int, int]] = []  # (crossing offset, point, ring)

    for i in range(p):
        point = i / p
        idxs = []
        fins = []
        for r_i, view in enumerate(views):
            idx = view.owner_index(point)
            idxs.append(idx)
            fin = estimator(view.nodes[idx], work)
            estimates += 1
            fins.append(fin)
            succ = view.successor_index(idx)
            crossing = cw_distance(point, view.nodes[succ].start)
            if len(view.nodes) > 1:
                heapq.heappush(heap, (crossing, i, r_i))
        owner_idx.append(idxs)
        ring_finish.append(fins)
        finish.append(min(fins))

    makespan = max(finish)
    best_makespan = makespan
    best_id = 0.0
    iterations = 0

    while heap:
        crossing, point_i, ring_i = heapq.heappop(heap)
        if crossing >= work - EPS:
            # Sweeping past 1/p revisits the initial configuration.
            break
        iterations += 1
        view = views[ring_i]
        new_idx = view.successor_index(owner_idx[point_i][ring_i])
        owner_idx[point_i][ring_i] = new_idx
        new_fin = estimator(view.nodes[new_idx], work)
        estimates += 1
        ring_finish[point_i][ring_i] = new_fin

        was_max = finish[point_i] >= makespan - EPS
        finish[point_i] = min(ring_finish[point_i])
        if was_max and finish[point_i] < makespan:
            makespan = max(finish)  # O(p); amortised over the n iterations
        elif finish[point_i] > makespan:
            makespan = finish[point_i]

        succ = view.successor_index(new_idx)
        next_crossing = cw_distance(point_i / p, view.nodes[succ].start)
        if next_crossing > crossing + EPS:
            heapq.heappush(heap, (next_crossing, point_i, ring_i))

        # Several points can cross boundaries at the same sweep offset
        # (e.g. uniformly spaced nodes).  Only evaluate the configuration
        # once the whole tie group has been applied, otherwise a stale
        # owner can masquerade as a fast one.
        if heap and heap[0][0] <= crossing + EPS:
            continue

        if makespan < best_makespan:
            best_makespan = makespan
            best_id = crossing + EPS  # just past the boundary

    assignment, finishes = assignment_at(ring_list, p, best_id, estimator)
    estimates += p * len(ring_list)
    return ScheduleResult(
        start_id=frac(best_id),
        assignment=assignment,
        finishes=finishes,
        makespan=max(finishes),
        iterations=iterations,
        estimates=estimates,
    )


def _rotation_offsets(views: Sequence[_RingOwners], p: int) -> list[float]:
    """All sweep offsets in [0, 1/p) at which some point changes owner."""
    work = 1.0 / p
    offsets = {0.0}
    for view in views:
        for node in view.nodes:
            for i in range(p):
                off = cw_distance(i / p, node.start)
                if off < work - EPS:
                    offsets.add(off + EPS)
    return sorted(offsets)


def schedule_naive(
    rings: Ring | Sequence[Ring],
    p: int,
    estimator: Estimator,
) -> ScheduleResult:
    """The O(n p) straw man: recompute all p estimates at each rotation."""
    ring_list = [rings] if isinstance(rings, Ring) else list(rings)
    views = [_RingOwners(r) for r in ring_list]
    best: Optional[ScheduleResult] = None
    estimates = 0
    offsets = _rotation_offsets(views, p)
    for off in offsets:
        assignment, finishes = assignment_at(ring_list, p, off, estimator)
        estimates += p * len(ring_list)
        makespan = max(finishes)
        if best is None or makespan < best.makespan:
            best = ScheduleResult(
                start_id=frac(off),
                assignment=assignment,
                finishes=finishes,
                makespan=makespan,
            )
    assert best is not None
    best.iterations = len(offsets)
    best.estimates = estimates
    return best


def schedule_random(
    rings: Ring | Sequence[Ring],
    p: int,
    estimator: Estimator,
    k: int = 3,
    rng: random.Random | None = None,
) -> ScheduleResult:
    """Evaluate *k* random starting points and keep the best."""
    if k < 1:
        raise ValueError("k must be >= 1")
    ring_list = [rings] if isinstance(rings, Ring) else list(rings)
    rng = ensure_rng(rng)
    best: Optional[ScheduleResult] = None
    estimates = 0
    for _ in range(k):
        off = rng.random() / p
        assignment, finishes = assignment_at(ring_list, p, off, estimator)
        estimates += p * len(ring_list)
        makespan = max(finishes)
        if best is None or makespan < best.makespan:
            best = ScheduleResult(
                start_id=frac(off),
                assignment=assignment,
                finishes=finishes,
                makespan=makespan,
            )
    assert best is not None
    best.iterations = k
    best.estimates = estimates
    return best
