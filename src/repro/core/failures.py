"""Failure fall-back: re-covering a failed node's sub-query (Section 4.4).

When a sub-query's target node has failed, ROAR does *not* shift the query's
starting point (that would concentrate load); instead it splits the failed
sub-query in two and sends the halves to nodes before and after the failed
range:

1. ``fail_lo`` / ``fail_hi`` bound the failed node's range.
2. Pick ``idq1`` uniformly in ``(fail_hi - (1/p - delta), fail_lo)``.
3. Set ``idq2 = idq1 + (1/p - delta)``.
4. The original matching window ``(w_start, w_end]`` is split at ``idq1``:
   the piece ``(w_start, idq1]`` is delivered at ``idq1`` and the piece
   ``(idq1, w_end]`` at ``idq2``.  The pieces are explicit disjoint windows,
   so they produce no duplicates -- with each other, or with the query's
   other sub-queries -- and each stays within ``1/p`` behind its delivery
   point, so the receiving nodes are guaranteed to store it.

Adjacent failures are handled by treating the maximal contiguous run of
dead nodes as the failed range (splitting around each dead node separately
would push the delivery point beyond the window's replication reach).
Because each piece again satisfies the *window within 1/p of delivery point*
invariant, the construction recurses cleanly when a replacement itself lands
on a dead node (possible under mass failures); ``split_failed`` performs
that recursion with a depth limit, and every piece is checked against the
storage-reach guarantee so mass failures surface as
:class:`FailureCoverageError` (a dropped query in the deployment's yield
accounting), never as a silent partial harvest.

``delta`` captures uncertainty in ``1/p`` during reconfigurations: it is
chosen so ``1/p - delta < 1/p_old`` for all recently used storage levels.
"""

from __future__ import annotations

import random

from .._rng import ensure_rng
from .ids import EPS, cw_distance, frac
from .node import SubQuery
from .ring import Ring, RingNode

__all__ = ["FailureCoverageError", "replacement_subqueries", "split_failed"]

#: maximum recursive splits per sub-query before giving up (mass failure).
MAX_DEPTH = 12


class FailureCoverageError(RuntimeError):
    """Raised when no valid replacement placement exists.

    This happens when the failed node's range is wider than ``1/p - delta``
    (effectively a single replica per object in that region) or when
    recursive splitting exhausts its depth limit under mass failures -- the
    data is genuinely unavailable until re-replication.
    """


def replacement_subqueries(
    ring: Ring,
    failed: RingNode,
    original: SubQuery,
    p_store: float,
    delta: float = 0.0,
    rng: random.Random | None = None,
    max_attempts: int = 32,
) -> list[SubQuery]:
    """Build the replacement sub-queries for *original* sent to *failed*.

    *p_store* is the partitioning level objects are currently replicated at
    (replication arcs of length ``1/p_store``).  Returns one or two windowed
    sub-queries that exactly partition the original matching window; when
    the split point falls before the window there is nothing for the first
    piece to do and a single replacement is returned.

    Placements whose owners are alive are preferred (retrying, as the paper
    specifies); if none are found within *max_attempts* the last candidate
    is returned anyway and the caller recurses on the dead pieces.
    """
    rng = ensure_rng(rng)
    width = 1.0 / float(p_store) - delta

    # The effective failed range is the maximal *contiguous run* of dead
    # nodes around the target.  Anchoring to the single dead node is wrong
    # when its neighbour is dead too: the recursion would then shift the
    # delivery point a further `width` clockwise past the second dead range,
    # beyond the window's replication reach, and the receiving node would
    # silently match nothing.  With the combined range, either a valid
    # placement exists (run shorter than the replication arc) or the data is
    # genuinely unavailable and we raise -- no silent partial harvests.
    lo_node = failed
    while True:
        pred = ring.predecessor(lo_node)
        if pred.alive or pred is failed:
            break
        lo_node = pred
    hi_node = failed
    while True:
        succ = ring.successor(hi_node)
        if succ.alive or succ is failed:
            break
        hi_node = succ
    if not ring.predecessor(lo_node).alive and lo_node is not failed:
        raise FailureCoverageError("every node on the ring has failed")
    fail_lo = lo_node.start
    fail_hi = ring.range_of(hi_node).end  # exclusive upper bound of the run
    run_length = (
        cw_distance(fail_lo, fail_hi)
        if hi_node is not ring.predecessor(lo_node)
        else 1.0
    )

    # Valid placements for idq1: (fail_hi - width, fail_lo).
    span = width - run_length
    if span <= EPS:
        raise FailureCoverageError(
            f"failed range {run_length:.4f} exceeds replacement "
            f"width {width:.4f}; objects unavailable until re-replication"
        )

    lower = frac(fail_hi - width)
    idq1 = idq2 = None
    for _ in range(max_attempts):
        idq1 = frac(lower + EPS + rng.random() * (span - 2 * EPS))
        idq2 = frac(idq1 + width)
        if ring.node_in_charge(idq1).alive and ring.node_in_charge(idq2).alive:
            break
    assert idq1 is not None and idq2 is not None

    w_end = original.dedup_origin
    w_width = original.dedup_width
    w_start = frac(w_end - w_width)

    # Split the window at idq1.  If idq1 precedes the window entirely the
    # first piece is empty and one replacement carries the whole window.
    first_width = cw_distance(w_start, idq1)
    pieces: list[SubQuery] = []
    if EPS < first_width < w_width - EPS:
        pieces.append(
            SubQuery(
                query_id=original.query_id,
                dest=idq1,
                dedup_origin=idq1,
                dedup_width=first_width,
                local_width=width,
                index=original.index,
            )
        )
        second_width = cw_distance(idq1, w_end)
    else:
        second_width = w_width
    pieces.append(
        SubQuery(
            query_id=original.query_id,
            dest=idq2,
            dedup_origin=w_end,
            dedup_width=second_width,
            local_width=width,
            index=original.index,
        )
    )
    # Storage-reach guarantee: every object in a piece's window must have a
    # replication arc covering the delivery point, i.e. the window may reach
    # at most 1/p_store behind it.  The construction satisfies this by
    # design; the check closes the one residual hole (recursive splitting
    # under mass failures when no alive placement was found) by converting a
    # would-be silent partial harvest into an honest coverage failure.
    reach = 1.0 / float(p_store) + EPS
    for piece in pieces:
        window_start = frac(piece.dedup_origin - piece.dedup_width)
        if cw_distance(window_start, piece.dest) > reach:
            raise FailureCoverageError(
                f"replacement window at {piece.dest:.4f} reaches beyond the "
                "replication arc; objects unavailable until re-replication"
            )
    return pieces


def split_failed(
    ring: Ring,
    subqueries: list[SubQuery],
    p_store: float,
    delta: float = 0.0,
    rng: random.Random | None = None,
) -> list[tuple[SubQuery, RingNode]]:
    """Resolve a sub-query list against the ring, replacing failed targets.

    Returns ``(sub_query, target_node)`` pairs where every target is alive.
    Sub-queries whose owner is alive pass through unchanged; ones addressed
    to failed nodes are split via :func:`replacement_subqueries`, recursing
    (depth-limited) when replacements also land on dead nodes.
    """
    rng = ensure_rng(rng)
    out: list[tuple[SubQuery, RingNode]] = []

    def resolve(sub: SubQuery, depth: int) -> None:
        owner = ring.node_in_charge(sub.dest)
        if owner.alive:
            out.append((sub, owner))
            return
        if depth >= MAX_DEPTH:
            raise FailureCoverageError(
                f"could not re-cover sub-query at {sub.dest:.4f} within "
                f"{MAX_DEPTH} recursive splits; too many failures"
            )
        for piece in replacement_subqueries(
            ring, owner, sub, p_store, delta=delta, rng=rng
        ):
            resolve(piece, depth + 1)

    for sub in subqueries:
        resolve(sub, 0)
    return out
