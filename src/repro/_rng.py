"""Deterministic randomness plumbing.

Every stochastic component in this package accepts an optional
``random.Random``.  Historically a missing generator fell back to
``random.Random()`` -- seeded from the OS -- which made "run the same
command twice" produce different rings, placements and failure splits.
:func:`ensure_rng` replaces that fallback with a generator seeded from a
fixed default, so unseeded runs are still *reproducible* runs.  Callers
that genuinely want OS entropy can always pass ``random.Random()``
explicitly.
"""

from __future__ import annotations

import itertools
import random

__all__ = ["DEFAULT_SEED", "ensure_rng", "reset_default_streams"]

#: Base seed used whenever a component is not handed an explicit generator
#: (the paper's publication year, for want of a more principled constant).
DEFAULT_SEED = 2009

#: Each unseeded fallback gets its own stream: handing every component the
#: *identical* stream would silently synchronise decisions that must stay
#: decorrelated (e.g. decoupled front-ends sampling random rotations in
#: lockstep -- see multifrontend.py).  The counter keeps construction-order
#: determinism: the same program run twice draws the same sequences.
_counter = itertools.count()

#: Large odd stride so consecutive fallback seeds land far apart.
_STRIDE = 0x9E3779B1


def ensure_rng(
    rng: random.Random | None, seed: int | None = None
) -> random.Random:
    """Return *rng* unchanged, or a freshly seeded generator.

    *seed* pins the stream exactly; with neither argument the generator is
    seeded from :data:`DEFAULT_SEED` plus a per-call counter -- reproducible
    across runs, decorrelated across components.
    """
    if rng is not None:
        return rng
    if seed is not None:
        return random.Random(seed)
    return random.Random(DEFAULT_SEED + _STRIDE * next(_counter))


def reset_default_streams() -> None:
    """Rewind the unseeded-fallback seed sequence to its initial state.

    The per-call counter makes unseeded components reproducible *within* a
    process, but it is process-global: which streams a component receives
    then depends on how many fallbacks ran before it.  In a test session
    that means earlier tests change later tests' streams -- classic seed
    leakage, and the reason suites pass in file order but fail under
    reordering.  The test harnesses call this in an autouse fixture so every
    test starts from stream zero regardless of what ran before it.
    """
    global _counter
    _counter = itertools.count()
