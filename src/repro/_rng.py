"""Deterministic randomness plumbing.

Every stochastic component in this package accepts an optional
``random.Random``.  Historically a missing generator fell back to
``random.Random()`` -- seeded from the OS -- which made "run the same
command twice" produce different rings, placements and failure splits.
:func:`ensure_rng` replaces that fallback with a generator seeded from a
fixed default, so unseeded runs are still *reproducible* runs.  Callers
that genuinely want OS entropy can always pass ``random.Random()``
explicitly.

Two extensions support the telemetry subsystem's snapshot/restore
(:mod:`repro.telemetry.snapshot`):

* **Named streams** (:func:`named_stream`): a registry of generators keyed
  by a stable string, each seeded from :data:`DEFAULT_SEED` plus a stable
  hash of the name.  Unlike the counter-based fallback, a named stream's
  identity does not depend on construction order, so its state can be
  captured and restored across processes.
* **State capture** (:func:`stream_state` / :func:`stream_from_state`,
  :func:`capture_streams` / :func:`restore_streams`): loss-free,
  JSON-able serialisation of ``random.Random`` state -- a restored stream
  reproduces the exact draw sequence of the original.
"""

from __future__ import annotations

import random
import zlib

__all__ = [
    "DEFAULT_SEED",
    "ensure_rng",
    "reset_default_streams",
    "named_stream",
    "stream_state",
    "stream_from_state",
    "capture_streams",
    "restore_streams",
]

#: Base seed used whenever a component is not handed an explicit generator
#: (the paper's publication year, for want of a more principled constant).
DEFAULT_SEED = 2009

#: Large odd stride so consecutive fallback seeds land far apart.
_STRIDE = 0x9E3779B1

#: Each unseeded fallback gets its own stream: handing every component the
#: *identical* stream would silently synchronise decisions that must stay
#: decorrelated (e.g. decoupled front-ends sampling random rotations in
#: lockstep -- see multifrontend.py).  The counter keeps construction-order
#: determinism: the same program run twice draws the same sequences.  (A
#: plain int rather than ``itertools.count`` so snapshots can capture it.)
_counter = 0

#: Named-stream registry (see :func:`named_stream`).
_named: dict[str, random.Random] = {}


def ensure_rng(
    rng: random.Random | None, seed: int | None = None
) -> random.Random:
    """Return *rng* unchanged, or a freshly seeded generator.

    *seed* pins the stream exactly; with neither argument the generator is
    seeded from :data:`DEFAULT_SEED` plus a per-call counter -- reproducible
    across runs, decorrelated across components.
    """
    global _counter
    if rng is not None:
        return rng
    if seed is not None:
        return random.Random(seed)
    idx = _counter
    _counter += 1
    return random.Random(DEFAULT_SEED + _STRIDE * idx)


def named_stream(name: str) -> random.Random:
    """The process-wide generator registered under *name* (created lazily).

    The seed derives from :data:`DEFAULT_SEED` and a CRC of the name, so a
    given name maps to the same stream in every process, independent of how
    many other streams were created first -- which is what makes named
    streams capturable by :func:`capture_streams`.
    """
    rng = _named.get(name)
    if rng is None:
        rng = random.Random(DEFAULT_SEED + _STRIDE * zlib.crc32(name.encode()))
        _named[name] = rng
    return rng


def reset_default_streams() -> None:
    """Rewind the unseeded-fallback seed sequence to its initial state.

    The per-call counter makes unseeded components reproducible *within* a
    process, but it is process-global: which streams a component receives
    then depends on how many fallbacks ran before it.  In a test session
    that means earlier tests change later tests' streams -- classic seed
    leakage, and the reason suites pass in file order but fail under
    reordering.  The test harnesses call this in an autouse fixture so every
    test starts from stream zero regardless of what ran before it.  Named
    streams are dropped for the same reason: the next :func:`named_stream`
    call recreates them at their initial state.
    """
    global _counter
    _counter = 0
    _named.clear()


# -- state capture (snapshot/restore support) -------------------------------
def stream_state(rng: random.Random) -> list:
    """JSON-able, loss-free state of *rng* (see :func:`stream_from_state`).

    ``random.Random.getstate()`` is a nest of tuples and ints; converting
    tuples to lists makes it JSON-serialisable, and the round trip is exact
    because every element is an int (or None for the gauss cache).
    """

    def conv(x):
        return [conv(e) for e in x] if isinstance(x, tuple) else x

    return conv(rng.getstate())


def stream_from_state(state) -> random.Random:
    """A fresh generator continuing exactly where *state* was captured."""
    rng = random.Random()
    rng.setstate(_to_state_tuple(state))
    return rng


def _to_state_tuple(state):
    return tuple(
        _to_state_tuple(e) if isinstance(e, (list, tuple)) else e for e in state
    )


def capture_streams() -> dict:
    """Snapshot of this module's global stream state (JSON-able)."""
    return {
        "counter": _counter,
        "named": {name: stream_state(rng) for name, rng in _named.items()},
    }


def restore_streams(data: dict) -> None:
    """Restore the global stream state captured by :func:`capture_streams`."""
    global _counter
    _counter = int(data.get("counter", 0))
    _named.clear()
    for name, state in data.get("named", {}).items():
        _named[name] = stream_from_state(state)
