"""Queueing-theory helpers used by the analytical evaluation.

Section 2.3.3 approximates a search server as an M/D/1 queue: waiting time
grows with utilisation rho as ``rho / (1 - rho)`` (times half the service
time, by Pollaczek-Khinchine for deterministic service).  These closed forms
are used to sanity-check the simulator and to compute the ``minP`` function
(the minimum partitioning level that achieves a target delay at given load).
"""

from __future__ import annotations

import math

__all__ = [
    "md1_wait",
    "md1_delay",
    "mm1_wait",
    "utilisation",
    "min_p_for_delay",
]


def utilisation(arrival_rate: float, service_time: float, servers: int = 1) -> float:
    """Offered load rho for *servers* parallel single-server queues."""
    if servers <= 0:
        raise ValueError("servers must be positive")
    return arrival_rate * service_time / servers


def md1_wait(arrival_rate: float, service_time: float) -> float:
    """Mean waiting time in queue for M/D/1 (Pollaczek-Khinchine).

    W = rho * s / (2 * (1 - rho)).  Returns ``inf`` at or above saturation.
    """
    rho = arrival_rate * service_time
    if rho >= 1.0:
        return math.inf
    return rho * service_time / (2.0 * (1.0 - rho))


def md1_delay(arrival_rate: float, service_time: float) -> float:
    """Mean sojourn time (wait + service) for M/D/1."""
    wait = md1_wait(arrival_rate, service_time)
    return wait + service_time if math.isfinite(wait) else math.inf


def mm1_wait(arrival_rate: float, service_time: float) -> float:
    """Mean waiting time for M/M/1: rho*s/(1-rho).  For comparison."""
    rho = arrival_rate * service_time
    if rho >= 1.0:
        return math.inf
    return rho * service_time / (1.0 - rho)


def min_p_for_delay(
    target_delay: float,
    dataset_size: float,
    total_speed: float,
    n_servers: int,
    query_rate: float,
    fixed_overhead: float = 0.0,
    p_max: int | None = None,
) -> int | None:
    """The ``minP`` function of Section 2.3.3.

    Finds the smallest partitioning level ``p`` such that the expected query
    delay -- modelled as M/D/1 sojourn time at each of the ``p`` sub-query
    servers -- meets *target_delay*.

    Each sub-query matches ``dataset_size / p`` objects; each of the ``n``
    servers (average speed ``total_speed / n``) sees ``query_rate * p / n``
    sub-queries per second.  Returns None if no feasible p exists.
    """
    if p_max is None:
        p_max = n_servers
    avg_speed = total_speed / n_servers
    for p in range(1, p_max + 1):
        service = fixed_overhead + (dataset_size / p) / avg_speed
        per_server_rate = query_rate * p / n_servers
        delay = md1_delay(per_server_rate, service)
        if delay <= target_delay:
            return p
    return None
