"""Energy model for the power-savings experiments (Table 7.2).

The paper measures that running at the minimum viable partitioning level
(p=5) instead of the maximum (p=47) saves significant energy because fixed
per-sub-query overheads are paid p times per query.  We model each server
with a two-level power draw (idle/busy watts, typical of the 2009-era servers
in Table 7.1) and integrate busy time reported by the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .server import SimServer

__all__ = ["PowerProfile", "EnergyReport", "measure_energy"]


@dataclass(frozen=True)
class PowerProfile:
    """Idle/busy wattage for a server model."""

    idle_watts: float
    busy_watts: float

    def power(self, utilisation: float) -> float:
        """Linear interpolation between idle and busy draw."""
        u = min(max(utilisation, 0.0), 1.0)
        return self.idle_watts + (self.busy_watts - self.idle_watts) * u


#: Representative profiles for the Table 7.1 server generations.  Absolute
#: numbers are typical published figures for those models; only the busy-idle
#: gap matters for the savings comparison.
DEFAULT_PROFILES = {
    "dell-1950": PowerProfile(idle_watts=210.0, busy_watts=305.0),
    "dell-2950": PowerProfile(idle_watts=220.0, busy_watts=320.0),
    "dell-1850": PowerProfile(idle_watts=190.0, busy_watts=260.0),
    "sun-x4100": PowerProfile(idle_watts=180.0, busy_watts=245.0),
}


@dataclass
class EnergyReport:
    """Aggregate energy over an experiment."""

    elapsed: float
    total_joules: float
    busy_joules: float
    idle_joules: float

    @property
    def mean_watts(self) -> float:
        return self.total_joules / self.elapsed if self.elapsed > 0 else 0.0

    def savings_vs(self, other: "EnergyReport") -> float:
        """Fractional energy saved relative to *other* (positive = cheaper)."""
        if other.total_joules <= 0:
            return 0.0
        return 1.0 - self.total_joules / other.total_joules


def measure_energy(
    servers: Iterable[SimServer],
    elapsed: float,
    profiles: dict[str, PowerProfile] | None = None,
    model_of: dict[str, str] | None = None,
    default_profile: PowerProfile | None = None,
) -> EnergyReport:
    """Compute an :class:`EnergyReport` from simulated server busy times.

    *model_of* maps server name -> model key in *profiles*; unmapped servers
    use *default_profile* (default: the Dell 1950 profile).
    """
    profiles = profiles or DEFAULT_PROFILES
    model_of = model_of or {}
    default = default_profile or DEFAULT_PROFILES["dell-1950"]
    busy_j = 0.0
    idle_j = 0.0
    for server in servers:
        if server.power_busy > 0.0 or server.power_idle > 0.0:
            # The server carries its own power figures.
            profile = PowerProfile(server.power_idle, server.power_busy)
        else:
            profile = profiles.get(model_of.get(server.name, ""), default)
        busy = min(server.busy_time / server.cores, elapsed)
        idle = max(0.0, elapsed - busy)
        busy_j += busy * profile.busy_watts
        idle_j += idle * profile.idle_watts
    return EnergyReport(
        elapsed=elapsed,
        total_joules=busy_j + idle_j,
        busy_joules=busy_j,
        idle_joules=idle_j,
    )
