"""Discrete-event simulation substrate (the Chapter 6 evaluation model)."""

from .energy import DEFAULT_PROFILES, EnergyReport, PowerProfile, measure_energy
from .engine import Event, PeriodicEvent, Simulation
from .fastpath import Action, BatchResult, run_queries_fast, run_queries_reference
from .network import NetworkModel, TrafficLedger
from .queueing import md1_delay, md1_wait, min_p_for_delay, mm1_wait, utilisation
from .server import SimServer, TaskRecord
from .tracing import DelayLog, QueryRecord, linear_fit, percentile
from .transport import IncastModel, IncastResult, TransportConfig
from .workload import (
    DiurnalTrace,
    FlashCrowdTrace,
    PoissonArrivals,
    RampTrace,
    StepTrace,
    UniformArrivals,
    arrivals_from_rate_fn,
    batched_arrivals_from_rate_fn,
    batched_poisson_times,
    batched_uniform_times,
    zipf_update_times,
)

__all__ = [
    "Action",
    "BatchResult",
    "DEFAULT_PROFILES",
    "DelayLog",
    "DiurnalTrace",
    "EnergyReport",
    "Event",
    "FlashCrowdTrace",
    "IncastModel",
    "IncastResult",
    "TransportConfig",
    "NetworkModel",
    "PeriodicEvent",
    "PoissonArrivals",
    "PowerProfile",
    "QueryRecord",
    "RampTrace",
    "SimServer",
    "Simulation",
    "StepTrace",
    "TaskRecord",
    "TrafficLedger",
    "UniformArrivals",
    "arrivals_from_rate_fn",
    "batched_arrivals_from_rate_fn",
    "batched_poisson_times",
    "batched_uniform_times",
    "linear_fit",
    "run_queries_fast",
    "run_queries_reference",
    "zipf_update_times",
    "md1_delay",
    "md1_wait",
    "measure_energy",
    "min_p_for_delay",
    "mm1_wait",
    "percentile",
    "utilisation",
]
