"""Workload generators: query arrival processes and load traces.

Chapter 6 drives the simulator with Poisson arrivals at a configurable mean;
Chapter 7's dynamic-p experiment (Fig 7.5) uses a diurnal load trace with a
2x-4x peak-to-trough ratio (Section 4.9.1 cites this range for real online
services).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

__all__ = [
    "PoissonArrivals",
    "UniformArrivals",
    "DiurnalTrace",
    "StepTrace",
    "FlashCrowdTrace",
    "RampTrace",
    "arrivals_from_rate_fn",
    "batched_poisson_times",
    "batched_uniform_times",
    "batched_arrivals_from_rate_fn",
    "zipf_update_times",
]


@dataclass
class PoissonArrivals:
    """Open-loop Poisson query arrivals with constant *rate* (queries/sec)."""

    rate: float
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        self._rng = random.Random(self.seed)

    def times(self, count: int, start: float = 0.0) -> list[float]:
        """The first *count* arrival times after *start*."""
        out = []
        t = start
        for _ in range(count):
            t += self._rng.expovariate(self.rate)
            out.append(t)
        return out

    def __iter__(self) -> Iterator[float]:
        t = 0.0
        while True:
            t += self._rng.expovariate(self.rate)
            yield t


@dataclass
class UniformArrivals:
    """Deterministic evenly spaced arrivals (closed-form sanity baseline)."""

    rate: float

    def times(self, count: int, start: float = 0.0) -> list[float]:
        gap = 1.0 / self.rate
        return [start + (i + 1) * gap for i in range(count)]


@dataclass
class DiurnalTrace:
    """A sinusoidal day/night load pattern.

    ``rate(t) = base * (1 + amplitude * sin(2*pi*t/period))`` with amplitude
    chosen so the peak:trough ratio matches the requested value (default 3x,
    inside the paper's 2x-4x range).
    """

    base_rate: float
    period: float = 86400.0
    peak_to_trough: float = 3.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.peak_to_trough < 1.0:
            raise ValueError("peak_to_trough must be >= 1")
        # base*(1+a) / base*(1-a) = ratio  =>  a = (ratio-1)/(ratio+1)
        self.amplitude = (self.peak_to_trough - 1.0) / (self.peak_to_trough + 1.0)

    def rate(self, t: float) -> float:
        return self.base_rate * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period + self.phase)
        )


@dataclass
class StepTrace:
    """Piecewise-constant load: list of (start_time, rate) steps."""

    steps: Sequence[tuple[float, float]]

    def rate(self, t: float) -> float:
        current = 0.0
        for start, rate in self.steps:
            if t >= start:
                current = rate
            else:
                break
        return current


@dataclass
class FlashCrowdTrace:
    """Baseline load with a sudden multiplicative surge (a "flash crowd").

    The rate jumps to ``base_rate * surge_factor`` at ``surge_start``, holds
    for ``surge_duration`` seconds, then decays back exponentially with time
    constant ``decay`` (0 = instant drop).  This is the canonical stimulus
    for elasticity controllers: the surge violates the latency SLO, the
    controller adapts, and the report asks whether p99 recovered.
    """

    base_rate: float
    surge_factor: float = 4.0
    surge_start: float = 0.0
    surge_duration: float = 60.0
    decay: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if self.surge_factor < 1.0:
            raise ValueError("surge_factor must be >= 1")

    @property
    def peak_rate(self) -> float:
        return self.base_rate * self.surge_factor

    def rate(self, t: float) -> float:
        if t < self.surge_start:
            return self.base_rate
        if t <= self.surge_start + self.surge_duration:
            return self.peak_rate
        if self.decay <= 0:
            return self.base_rate
        elapsed = t - (self.surge_start + self.surge_duration)
        extra = (self.peak_rate - self.base_rate) * math.exp(-elapsed / self.decay)
        return self.base_rate + extra


@dataclass
class RampTrace:
    """Linear ramp from ``start_rate`` to ``end_rate`` over ``[t0, t1]``.

    Constant at ``start_rate`` before ``t0`` and at ``end_rate`` after
    ``t1`` -- a compressed diurnal rising edge for controller experiments.
    """

    start_rate: float
    end_rate: float
    t0: float = 0.0
    t1: float = 1.0

    def __post_init__(self) -> None:
        if self.t1 <= self.t0:
            raise ValueError("t1 must be after t0")
        if min(self.start_rate, self.end_rate) <= 0:
            raise ValueError("rates must be positive")

    def rate(self, t: float) -> float:
        if t <= self.t0:
            return self.start_rate
        if t >= self.t1:
            return self.end_rate
        frac = (t - self.t0) / (self.t1 - self.t0)
        return self.start_rate + frac * (self.end_rate - self.start_rate)


def arrivals_from_rate_fn(
    rate_fn: Callable[[float], float],
    horizon: float,
    max_rate: float,
    seed: int | None = None,
) -> list[float]:
    """Sample a non-homogeneous Poisson process by thinning.

    *max_rate* must upper-bound ``rate_fn`` over ``[0, horizon]``.
    """
    if max_rate <= 0:
        raise ValueError("max_rate must be positive")
    rng = random.Random(seed)
    out: list[float] = []
    t = 0.0
    while True:
        t += rng.expovariate(max_rate)
        if t > horizon:
            break
        if rng.random() <= rate_fn(t) / max_rate:
            out.append(t)
    return out


# -- batched (vectorised) generation -----------------------------------------
#
# The scenario matrix runs millions of arrivals; drawing them one
# ``expovariate`` at a time is itself a hot loop.  These generators produce
# whole traces with a few numpy operations.  They use numpy's Generator
# streams, so their sequences differ from the random.Random-based classes
# above for the same seed -- callers pick one generator per experiment and
# feed the *same* trace to whichever execution path they compare.


def batched_poisson_times(
    rate: float, count: int, seed: int | None = None, start: float = 0.0
):
    """The first *count* arrivals of a constant-rate Poisson process."""
    import numpy as np

    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=count)
    return start + np.cumsum(gaps)


def batched_uniform_times(rate: float, duration: float):
    """Deterministic evenly spaced arrivals over ``(0, duration]``.

    The vectorised sibling of :class:`UniformArrivals` (same times:
    ``gap, 2*gap, ...``), used by the scenario runner's ``uniform`` kind.
    """
    import numpy as np

    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    n = max(1, int(round(rate * duration)))
    gap = 1.0 / rate
    return gap * np.arange(1, n + 1)


def zipf_update_times(
    rate: float,
    horizon: float,
    hotspots: int = 16,
    zipf_s: float = 1.1,
    jitter: float = 0.01,
    seed: int | None = None,
) -> list[tuple[float, float]]:
    """A Zipf-skewed object-update stream: ``(time, ring position)`` pairs.

    Poisson arrivals at *rate*; each update lands near one of *hotspots*
    ring positions chosen with Zipf(*zipf_s*) rank probabilities and
    uniform ``+-jitter`` spread, modelling hot-object write skew
    (the scenario vocabulary's :class:`~repro.scenarios.spec.UpdateSpec`).
    """
    import numpy as np

    if rate <= 0:
        raise ValueError("update rate must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(
        1.0 / rate, size=max(1, int(horizon * rate * 1.2) + 8)
    )
    times = np.cumsum(gaps)
    times = times[times <= horizon]
    ranks = np.arange(1, hotspots + 1, dtype=float)
    weights = ranks ** (-zipf_s)
    weights /= weights.sum()
    centers = rng.random(hotspots)
    idx = rng.choice(hotspots, size=times.size, p=weights)
    pos = (centers[idx] + rng.uniform(-jitter, jitter, times.size)) % 1.0
    return list(zip(times.tolist(), pos.tolist()))


def batched_arrivals_from_rate_fn(
    rate_fn: Callable[[float], float],
    horizon: float,
    max_rate: float,
    seed: int | None = None,
):
    """Vectorised thinning sampler for a non-homogeneous Poisson process.

    *max_rate* must upper-bound ``rate_fn`` over ``[0, horizon]``; the
    candidate stream is generated in bulk and thinned with one vectorised
    ``rate_fn`` evaluation (rate functions built from numpy ufuncs are
    applied array-at-a-time; plain Python rate functions still work).
    """
    import numpy as np

    if max_rate <= 0:
        raise ValueError("max_rate must be positive")
    if horizon <= 0:
        return np.empty(0, dtype=np.float64)
    rng = np.random.default_rng(seed)
    times = []
    t = 0.0
    # ~horizon*max_rate candidates expected; draw in chunks until past the
    # horizon so the tail is never truncated.
    chunk = max(1024, int(horizon * max_rate * 1.1))
    while t <= horizon:
        gaps = rng.exponential(1.0 / max_rate, size=chunk)
        cand = t + np.cumsum(gaps)
        times.append(cand)
        t = float(cand[-1])
    cand = np.concatenate(times)
    cand = cand[cand <= horizon]
    accept = rng.random(cand.size)
    try:
        rates = np.asarray(rate_fn(cand), dtype=np.float64)
        if rates.shape != cand.shape:
            raise ValueError
    except Exception:
        rates = np.fromiter(
            (rate_fn(float(x)) for x in cand), dtype=np.float64, count=cand.size
        )
    return cand[accept <= rates / max_rate]
