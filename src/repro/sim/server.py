"""Simulated query servers with the paper's computation model.

Definition 8 (Computation Model): each server has a fixed processing speed
``cpu`` expressed as data objects matched per second; running a query over
``d`` objects takes ``rtt + d/cpu`` seconds; execution is serial (tasks queue
behind each other).  On top of this the experimental chapters add *fixed
per-sub-query overheads* (thread start, message parse, reply send) which do
not depend on the amount of data searched -- these are what make high
partitioning levels expensive (Sections 2, 7.3.2).

:class:`SimServer` models one server: a serial task queue characterised
entirely by ``busy_until``, plus counters for utilisation/energy accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["TaskRecord", "SimServer"]


@dataclass(slots=True)
class TaskRecord:
    """One executed sub-query, for tracing."""

    query_id: int
    arrival: float
    start: float
    finish: float
    work: float  # objects matched

    @property
    def wait(self) -> float:
        return self.start - self.arrival

    @property
    def service(self) -> float:
        return self.finish - self.start


class SimServer:
    """A serially executing server.

    Attributes:
        name: identifier.
        speed: objects matched per second.
        fixed_overhead: seconds of constant work added to every sub-query
            regardless of its size (the per-query overhead of Section 7.3.2).
        cores: number of independent execution lanes.  The paper's scheduler
            model is serial (one lane); PPS experiments use one matching
            thread per core, modelled as parallel lanes each running at
            ``speed / 1`` with tasks going to the earliest-free lane.
    """

    def __init__(
        self,
        name: str,
        speed: float,
        fixed_overhead: float = 0.0,
        cores: int = 1,
        power_idle: float = 0.0,
        power_busy: float = 0.0,
    ) -> None:
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        self.name = name
        self.speed = float(speed)
        self.fixed_overhead = float(fixed_overhead)
        self.cores = max(1, int(cores))
        self.power_idle = power_idle
        self.power_busy = power_busy
        self._lane_busy_until: list[float] = [0.0] * self.cores
        self.busy_time: float = 0.0
        self.tasks_run: int = 0
        self.objects_matched: float = 0.0
        self.failed: bool = False
        self.trace: list[TaskRecord] = []
        self.keep_trace: bool = False

    # -- queue state --------------------------------------------------------
    @property
    def busy_until(self) -> float:
        """Earliest time a new task could start (earliest-free lane)."""
        return min(self._lane_busy_until)

    def queue_backlog(self, now: float) -> float:
        """Seconds of queued work ahead of a newly arriving task."""
        return max(0.0, self.busy_until - now)

    def service_time(self, work: float) -> float:
        """Seconds to match *work* objects once started."""
        return self.fixed_overhead + work / self.speed

    def estimate_finish(self, now: float, work: float) -> float:
        """Predicted completion time for a task of *work* objects arriving now."""
        start = max(now, self.busy_until)
        return start + self.service_time(work)

    # -- execution ----------------------------------------------------------
    def submit(self, now: float, work: float, query_id: int = -1) -> float:
        """Enqueue a task; returns its completion time.

        The task goes to the earliest-free lane and runs serially there.
        """
        if self.failed:
            raise RuntimeError(f"server {self.name} has failed")
        lane = min(range(self.cores), key=lambda i: self._lane_busy_until[i])
        start = max(now, self._lane_busy_until[lane])
        service = self.service_time(work)
        finish = start + service
        self._lane_busy_until[lane] = finish
        self.busy_time += service
        self.tasks_run += 1
        self.objects_matched += work
        if self.keep_trace:
            self.trace.append(TaskRecord(query_id, now, start, finish, work))
        return finish

    def fail(self) -> None:
        self.failed = True

    def recover(self, now: float) -> None:
        self.failed = False
        self._lane_busy_until = [max(now, t) for t in self._lane_busy_until]

    def reset(self) -> None:
        self._lane_busy_until = [0.0] * self.cores
        self.busy_time = 0.0
        self.tasks_run = 0
        self.objects_matched = 0.0
        self.failed = False
        self.trace.clear()

    # -- accounting -----------------------------------------------------------
    def utilisation(self, elapsed: float) -> float:
        """Fraction of capacity used over *elapsed* seconds."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / (elapsed * self.cores))

    def energy(self, elapsed: float) -> float:
        """Joules consumed over *elapsed* seconds with the two-level model."""
        busy = min(self.busy_time / self.cores, elapsed)
        idle = max(0.0, elapsed - busy)
        return busy * self.power_busy + idle * self.power_idle

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimServer {self.name} x{self.speed:g} tasks={self.tasks_run}>"
