"""The batched query execution path over a :class:`~repro.cluster.Deployment`.

``Deployment.run_query`` costs milliseconds of interpreter time per query:
it re-syncs every node's statistics, rebuilds owner views, and walks the
rotation sweep heap with a Python estimator closure.  That caps simulations
at thousands of queries.  This module replays the *same* semantics with the
per-query work reduced to a few vectorised numpy operations:

* scheduling goes through a precomputed
  :class:`~repro.core.covertable.CoverTable` (invalidated on ring
  reconfiguration) instead of the per-query heap sweep;
* node statistics live in float64 arrays, updated incrementally for the few
  servers each query touches instead of re-synced across the fleet;
* latencies and outcomes accumulate into preallocated arrays
  (:class:`BatchResult`), with the familiar ``DelayLog`` records still
  produced for downstream consumers.

The batched path is only landable because it is *provably the same system*:
for equal seeds it produces bit-identical per-query server sets, latencies,
traces, statistics, and scheduler work counters as the per-query reference
path -- ``tests/test_fastpath.py`` holds that line.  Queries whose schedule
touches a failed server are delegated, one at a time, to the reference path
so the (rare, rng-consuming) failure fall-back machinery stays the single
source of truth.

Requires the deployment's front-end to run the default configuration
(``method="heap"``, no range adjustment, no splitting); other configurations
raise and should use :meth:`Deployment.run_queries`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

from ..core.covertable import CoverTableCache, require_numpy
from ..core.ids import cw_distance, frac
from ..sim.tracing import QueryRecord

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.deployment import Deployment

__all__ = ["BatchResult", "run_queries_fast"]


@dataclass
class BatchResult:
    """Array-backed account of one batched run.

    ``latencies`` holds NaN for dropped queries (failure fall-back could not
    re-cover a dead range); ``query_ids`` holds -1 there.
    """

    arrivals: "np.ndarray"
    latencies: "np.ndarray"
    finishes: "np.ndarray"
    query_ids: "np.ndarray"
    pqs: "np.ndarray"
    completed: int
    dropped: int
    #: per-query server name tuples, populated when record_assignments=True.
    assignments: Optional[list[tuple[str, ...]]]
    #: queries scheduled through the cover table vs. delegated to the
    #: per-query reference path (failure handling).
    fast_scheduled: int
    delegated: int
    wall_seconds: float

    def completed_latencies(self) -> "np.ndarray":
        return self.latencies[~np.isnan(self.latencies)]

    def mean_latency(self) -> float:
        done = self.completed_latencies()
        return float(done.mean()) if done.size else float("nan")

    def percentile_latency(self, q: float) -> float:
        done = self.completed_latencies()
        return float(np.percentile(done, q)) if done.size else float("nan")


class _RingState:
    """Mutable per-ring mirrors aligned with the ring's node order."""

    __slots__ = (
        "nodes",
        "names",
        "busy",
        "speed",
        "stats",
        "servers",
        "est_buf",
        "div_buf",
    )

    def __init__(self, deployment: "Deployment", nodes) -> None:
        fe = deployment.frontend
        self.nodes = nodes
        self.names = [n.name for n in nodes]
        self.stats = [fe.stats_for(n) for n in nodes]
        self.servers = [deployment.servers[n.name] for n in nodes]
        self.busy = np.array([s.busy_until for s in self.servers], dtype=np.float64)
        self.speed = np.array(
            [st.speed_estimate for st in self.stats], dtype=np.float64
        )
        self.est_buf = np.empty_like(self.busy)
        self.div_buf = np.empty_like(self.busy)


def run_queries_fast(
    deployment: "Deployment",
    arrival_times: Sequence[float],
    pq_fn: Callable[[float], int] | int | None = None,
    record_assignments: bool = False,
) -> BatchResult:
    """Run a whole arrival trace through the batched path.

    Mirrors :meth:`Deployment.run_queries` (including per-query ``pq_fn``
    support) and leaves the deployment in the same state the reference path
    would have.
    """
    require_numpy()
    wall_start = time.perf_counter()
    fe = deployment.frontend
    cfg = deployment.config
    fecfg = fe.config
    if fecfg.method != "heap" or fecfg.adjust_ranges or fecfg.max_splits > 0:
        raise ValueError(
            "the batched path supports the default front-end configuration "
            "(method='heap', adjust_ranges=False, max_splits=0); use "
            "Deployment.run_queries for other configurations"
        )
    if deployment.cover_tables is None:
        deployment.cover_tables = CoverTableCache()
    cache: CoverTableCache = deployment.cover_tables

    rings = deployment.rings
    dataset = fe.dataset_size
    fixed = fecfg.fixed_overhead
    network = deployment.network
    ledger = deployment.ledger
    log = deployment.log
    servers = deployment.servers
    charge = cfg.charge_scheduling

    n_q = len(arrival_times)
    arrivals = np.asarray(arrival_times, dtype=np.float64)
    latencies = np.full(n_q, np.nan, dtype=np.float64)
    finishes = np.full(n_q, np.nan, dtype=np.float64)
    query_ids = np.full(n_q, -1, dtype=np.int64)
    pqs = np.zeros(n_q, dtype=np.int64)
    assignments: Optional[list[tuple[str, ...]]] = [] if record_assignments else None

    # Per-(table) ring mirrors; rebuilt when the cover table changes (ring
    # reconfiguration or a different pq) and re-synced after delegated
    # queries, whose failure splitting may touch arbitrary servers.  Ring
    # structure cannot change mid-batch (membership edits happen between
    # batches), so per-pq tables and mirrors are resolved once.
    table = None
    #: one mirror per ring, shared by every pq's table (ring node order is
    #: version-stable, so all tables built this batch agree on it).
    states = [_RingState(deployment, ring.nodes()) for ring in rings]
    positions = {
        name: (st, j) for st in states for j, name in enumerate(st.names)
    }
    tables_by_pq: dict[int, object] = {}
    any_failed = any(s.failed for s in servers.values())
    completed = dropped = fast_scheduled = delegated = 0
    #: nodes the *last* fast query reserved; their NodeStats.busy_until must
    #: keep the reservation value at batch end (reference-path parity).
    last_reserved: Optional[set[str]] = None

    from ..cluster.deployment import QueryBreakdown

    for q_i in range(n_q):
        now = float(arrivals[q_i])
        if callable(pq_fn):
            pq = pq_fn(now)
        else:
            pq = pq_fn
        pq = pq or cfg.p
        pqs[q_i] = pq
        p_store = deployment.p_store
        if pq < p_store - 1e-9:
            raise ValueError(
                f"pq={pq} below stored partitioning level {p_store}; "
                "reconfigure first (Section 4.5)"
            )

        table = tables_by_pq.get(pq)
        if table is None:
            table = cache.get(rings, pq)
            for st, rt in zip(states, table.ring_tables):
                if st.names != [n.name for n in rt.nodes]:  # pragma: no cover
                    raise RuntimeError(
                        "ring structure changed mid-batch; run events between "
                        "run_queries_fast calls, not during them"
                    )
            tables_by_pq[pq] = table

        sched_start = time.perf_counter()
        wd = table.work * dataset
        # Same float-op order as FrontEnd.make_estimator:
        # (backlog + fixed) + ((work * dataset) / speed).
        estimates = []
        for st in states:
            buf = np.subtract(st.busy, now, out=st.est_buf)
            np.maximum(buf, 0.0, out=buf)
            np.add(buf, fixed, out=buf)
            np.divide(wd, st.speed, out=st.div_buf)
            np.add(buf, st.div_buf, out=buf)
            estimates.append(buf)
        result = table.schedule(estimates)
        sched_wall = time.perf_counter() - sched_start

        if any_failed and any(servers[n.name].failed for n in result.assignment):
            # Failure fall-back (splitting, rng draws, drop accounting) stays
            # on the reference path; it re-schedules identically and leaves
            # exact reference-path state behind.
            if assignments is not None:
                pre_lens = {
                    name: len(s.trace)
                    for name, s in servers.items()
                    if s.keep_trace
                }
            record = deployment.run_query(now, pq)
            delegated += 1
            last_reserved = None
            for st in states:
                for j, server in enumerate(st.servers):
                    st.busy[j] = server.busy_until
                    st.speed[j] = st.stats[j].speed_estimate
            if record is None:
                dropped += 1
            else:
                completed += 1
                query_ids[q_i] = record.query_id
                finishes[q_i] = record.finish
                latencies[q_i] = record.delay
            if assignments is not None:
                # Delegated schedules (plus failure replacements) are only
                # observable through server traces; only this query ran, so
                # the executors are exactly the servers whose traces grew.
                if record is not None:
                    executed = tuple(
                        name
                        for name, before in pre_lens.items()
                        if len(servers[name].trace) > before
                    )
                else:
                    executed = ()
                assignments.append(executed)
            continue

        # -- commit the batched schedule (identical to run_query) ----------
        fe.total_iterations += result.iterations
        fe.total_estimates += result.estimates
        fe.queries_scheduled += 1
        qid = fe.next_query_id()
        deployment.scheduling_wallclock += sched_wall
        fast_scheduled += 1

        start_id = result.start_id
        assignment = result.assignment
        dests = [frac(start_id + i / pq) for i in range(pq)]
        widths = [
            cw_distance(frac(start_id + (i - 1) / pq), dests[i]) for i in range(pq)
        ]

        # reserve(): same order, same floats as FrontEnd.reserve, with the
        # per-node busy_until sync the reference path does before scheduling.
        synced: set[str] = set()
        for i in range(pq):
            node = assignment[i]
            st = fe.stats[node.name]
            if node.name not in synced:
                st.busy_until = servers[node.name].busy_until
                synced.add(node.name)
            service = fixed + (widths[i] * dataset) / max(st.speed_estimate, 1e-9)
            st.busy_until = max(st.busy_until, now) + service
            st.outstanding += 1
        last_reserved = synced

        ledger.record_query(pq)
        finish = now
        max_wait = 0.0
        max_service = 0.0
        rtt = network.sample_rtt()
        for i in range(pq - 1, -1, -1):  # the reference path pops LIFO
            node = assignment[i]
            server = servers[node.name]
            work = widths[i] * cfg.dataset_size
            wait = server.queue_backlog(now)
            f = server.submit(now + rtt / 2.0, work, query_id=qid)
            service = server.service_time(work)
            fe.observe_completion(node, work, service, f)
            max_wait = max(max_wait, wait)
            max_service = max(max_service, service)
            finish = max(finish, f + rtt / 2.0)
            ledger.record_result(1)

        # incremental mirror refresh: only touched servers changed.
        for name in synced:
            st, j = positions[name]
            st.busy[j] = st.servers[j].busy_until
            st.speed[j] = st.stats[j].speed_estimate

        total = finish - now + (sched_wall if charge else 0.0)
        record = QueryRecord(
            query_id=qid,
            arrival=now,
            finish=now + total,
            pq=pq,
            subqueries=pq,
            scheduling_delay=sched_wall,
        )
        log.add(record)
        for listener in deployment.query_listeners:
            listener(record)
        deployment.breakdowns.append(
            QueryBreakdown(
                scheduling=sched_wall,
                network=rtt,
                queueing=max_wait,
                service=max_service,
                total=total,
            )
        )
        completed += 1
        query_ids[q_i] = qid
        finishes[q_i] = record.finish
        latencies[q_i] = record.delay
        if assignments is not None:
            assignments.append(tuple(n.name for n in assignment))

    # Reference-path parity for NodeStats.busy_until at batch end: every
    # node reads the live server value except the last query's reservations.
    if last_reserved is not None:
        for st in states:
            for j, name in enumerate(st.names):
                if name not in last_reserved:
                    st.stats[j].busy_until = st.servers[j].busy_until

    return BatchResult(
        arrivals=arrivals,
        latencies=latencies,
        finishes=finishes,
        query_ids=query_ids,
        pqs=pqs,
        completed=completed,
        dropped=dropped,
        assignments=assignments,
        fast_scheduled=fast_scheduled,
        delegated=delegated,
        wall_seconds=time.perf_counter() - wall_start,
    )
