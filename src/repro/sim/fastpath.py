"""The batched query execution path over a :class:`~repro.cluster.Deployment`.

``Deployment.run_query`` costs milliseconds of interpreter time per query:
it re-syncs every node's statistics, rebuilds owner views, and walks the
rotation sweep heap with a Python estimator closure.  PR 2 replaced the
sweep with a precomputed :class:`~repro.core.covertable.CoverTable`, which
made *scheduling* nearly free but left ~70 us/query of per-query Python in
the accounting loop (reserve/submit/EWMA).  This module removes that loop:

* **Always-fresh mirrors.**  Every quantity scheduling depends on lives in
  flat arrays ordered by ring position: ``busy`` (live server queues) and
  ``speed`` (EWMA speed estimates), shadowed by plain Python lists so the
  per-query closed-form updates cost scalar float arithmetic, not numpy
  scalar boxing.  The next query's estimates are therefore always exact --
  freshness is what makes the batched schedule provably bit-identical.

* **Chunked accounting.**  The expensive half of the old loop -- writing
  ``SimServer``/``NodeStats`` objects, building ``QueryRecord``s, feeding
  listeners and the traffic ledger -- commutes into per-server reductions.
  Queries accumulate into flat chunk buffers; a chunk is flushed with a
  handful of numpy ops (``np.add.at`` preserves per-server float addition
  order, so even busy-time sums are bit-exact) whenever an action fires, a
  failure-window query must be delegated, the buffer cap is reached, or the
  batch ends.  The topological cut points of the arrival order are exactly
  the points where some consumer could observe intermediate state.

* **Pluggable scheduling kernels.**  The per-query decision itself --
  estimate evaluation, the precomputed rotation sweep, the final
  assignment -- is delegated to a :class:`~repro.kernels.base.SweepKernel`
  selected by the ``kernel=`` parameter.  The default ``exact_numpy`` is
  this engine's original inline code and stays the bit-identical oracle;
  ``compiled`` runs the same arithmetic as one fused C call, and
  ``approx_topk`` trades a documented deviation bound for a smaller sweep
  (see :mod:`repro.kernels`).  Accounting, mirrors, actions, and the
  failure fall-back are shared across kernels.

* **The bulk commit seam.**  Between two cut points (exact-time actions,
  failure windows, the chunk cap) the engine hands the kernel a whole
  span of queries at once through
  :meth:`~repro.kernels.base.SweepKernel.commit_batch`: the kernel runs
  sweep *and* commit -- widths, reserve, queue submit, EWMA observation,
  write-through -- for every query of the chunk, advancing the live
  mirrors in place and returning the per-sub-query rows in bulk, which
  :meth:`_Engine._flush_bulk` turns into the same numpy reductions the
  buffered path uses.  The default ``commit_batch`` is the reference
  python loop (so every kernel takes the seam); the compiled kernel
  fuses the whole span into one C call, which removes the last
  per-query python from the hot path.  Failure windows and per-query
  ``pq_fn`` callables stay on the inline per-query loop, where the
  delegation machinery and rng draw order live.

* **Exact-time action queue.**  :class:`Action` schedules a callback to run
  *between two specific queries* (before ``arrival_times[index]``).  The
  engine flushes and materialises full object state before each callback --
  so a mid-batch update, failure, membership change, or control tick sees
  precisely the state the per-query reference path would have produced, and
  is visible to the very next query.  This removes the scenario runner's
  old "updates land at batch boundaries, up to 1 s late" caveat.

The batched path is only landable because it is *provably the same system*:
for equal seeds it produces bit-identical per-query server sets, latencies,
traces, statistics, and scheduler work counters as the per-query reference
path -- ``tests/test_fastpath.py`` holds that line.  Queries whose schedule
touches a failed server are delegated, one at a time, to the reference path
so the (rare, rng-consuming) failure fall-back machinery stays the single
source of truth.

Requires the deployment's front-end to run the default configuration
(``method="heap"``, no range adjustment, no splitting); other configurations
raise and should use :meth:`Deployment.run_queries`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

from ..core.covertable import CoverTableCache, require_numpy
from ..kernels.base import (
    CommitBuffers,
    CommitPlan,
    PqEntry,
    SweepKernel,
    SweepState,
)
from ..kernels.registry import get_kernel
from ..obs.profiler import resolve_profile
from ..telemetry.listeners import ChunkArrays, drive_legacy_listeners
from .server import TaskRecord

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.deployment import Deployment

__all__ = [
    "Action",
    "ACTION_SCOPES",
    "BatchResult",
    "run_queries_fast",
    "run_queries_reference",
]

#: Backwards-compatible name: the per-(rings, pq) table moved to the
#: kernels package when the sweep became pluggable.
_PqTable = PqEntry

#: Queries buffered before a chunk is force-flushed (bounds buffer memory;
#: the flush itself is O(chunk) numpy work, so larger is mildly better).
#: Also the span size of one bulk ``commit_batch`` call, so chunk cuts are
#: identical between the buffered and bulk paths.
CHUNK_CAP = 8192

#: Minimum span length for which a python-commit kernel is routed through
#: the bulk seam; shorter spans use the inline per-query loop (results are
#: bit-identical either way -- the bulk machinery just carries fixed
#: per-span costs that want amortising).  Kernels with
#: ``fused_commit = True`` (one C call per span) always take the seam.
BULK_MIN_SPAN = 32

#: How much of the deployment an action callback may have touched, from the
#: engine's point of view -- picks the cheapest sufficient mirror refresh.
ACTION_SCOPES = ("none", "busy", "values", "membership")


@dataclass
class Action:
    """A callback scheduled between two specific queries of a batch.

    Fires immediately before ``arrival_times[index]`` (an index of
    ``len(arrival_times)`` or beyond fires after the last query).  The
    engine flushes pending accounting and materialises exact object state
    first, so ``fn`` observes precisely what the reference path would show
    at that point in the arrival order.  ``fn`` receives ``time`` and may
    return an ``int`` to change the partitioning level ``pq`` for
    subsequent queries (honoured when ``pq_fn`` is not a callable).

    ``scope`` declares what ``fn`` may have mutated so the engine can
    refresh its mirrors minimally:

    * ``"none"``       -- nothing the engine mirrors (e.g. pure logging);
    * ``"busy"``       -- server queues/work counters and the stored
      partitioning level (e.g. object updates, set-pq with a possible
      in-flight repartition completing under the sim pump);
    * ``"values"``     -- per-server values: queues, failure flags, speed
      estimates, counters (e.g. fail/recover, estimate perturbation);
    * ``"membership"`` -- anything, including ring membership (default).
    """

    index: int
    time: float
    fn: Callable[[float], Optional[int]]
    scope: str = "membership"

    def __post_init__(self) -> None:
        if self.scope not in ACTION_SCOPES:
            raise ValueError(
                f"unknown action scope {self.scope!r}; pick one of {ACTION_SCOPES}"
            )
        if self.index < 0:
            raise ValueError("action index must be >= 0")


@dataclass
class BatchResult:
    """Array-backed account of one batched run.

    ``latencies`` holds NaN for dropped queries (failure fall-back could not
    re-cover a dead range); ``query_ids`` holds -1 there.
    """

    arrivals: "np.ndarray"
    latencies: "np.ndarray"
    finishes: "np.ndarray"
    query_ids: "np.ndarray"
    pqs: "np.ndarray"
    completed: int
    dropped: int
    #: per-query server name tuples, populated when record_assignments=True.
    assignments: Optional[list[tuple[str, ...]]]
    #: queries scheduled through the cover table vs. delegated to the
    #: per-query reference path (failure handling).
    fast_scheduled: int
    delegated: int
    wall_seconds: float
    #: sizes of the accounting chunks that were flushed (cut at actions,
    #: delegations, the buffer cap, and batch end).
    chunk_sizes: list[int] = field(default_factory=list)
    #: actions fired from the exact-time queue during this run.
    actions_applied: int = 0
    #: the run's :class:`~repro.obs.profiler.PhaseProfiler` when profiling
    #: was enabled (``profile=`` / ``REPRO_PROFILE``); None otherwise.
    profile: Optional[object] = None
    #: queries refused by the admission controller (``latencies`` holds
    #: NaN and ``query_ids`` -1 there, like drops -- but sheds never
    #: reached the scheduler, and the per-shed reasons live in the
    #: controller's :class:`~repro.admission.records.ShedLog`).
    shed: int = 0

    def completed_latencies(self) -> "np.ndarray":
        return self.latencies[~np.isnan(self.latencies)]

    def mean_latency(self) -> float:
        done = self.completed_latencies()
        return float(done.mean()) if done.size else float("nan")

    def percentile_latency(self, q: float) -> float:
        done = self.completed_latencies()
        return float(np.percentile(done, q)) if done.size else float("nan")


def _sorted_actions(actions) -> list[Action]:
    acts = list(actions or ())
    for a in acts:
        if not isinstance(a, Action):
            raise TypeError(f"actions must be Action instances, got {a!r}")
    # stable: equal indices keep caller order
    acts.sort(key=lambda a: a.index)
    return acts


class _Engine:
    """One batched run: mirrors, chunk buffers, the action queue, and a
    pluggable :class:`~repro.kernels.base.SweepKernel` doing the per-query
    scheduling decision."""

    def __init__(
        self,
        deployment: "Deployment",
        arrivals: "np.ndarray",
        pq_fn,
        record_assignments: bool,
        actions: Sequence[Action],
        kernel: SweepKernel,
        profiler=None,
        admission=None,
    ) -> None:
        self.dep = deployment
        #: admission controller, or None (the default).  Like the
        #: profiler, every site below guards on ``is not None``, and the
        #: bulk-seam gate requires None -- so an admission-free run takes
        #: exactly the pre-admission code path, bit for bit.
        self.admission = admission
        #: phase profiler, or None (the default).  Every instrumentation
        #: site below guards on ``is not None`` so an unprofiled run makes
        #: no profiler calls at all, and profiling only ever reads the
        #: monotonic clock -- results stay bit-identical either way.
        self.prof = profiler
        self.fe = deployment.frontend
        self.cfg = deployment.config
        self.network = deployment.network
        self.ledger = deployment.ledger
        self.log = deployment.log
        self.servers = deployment.servers
        self.charge = self.cfg.charge_scheduling
        self.dataset = self.fe.dataset_size
        self.fe_fixed = self.fe.config.fixed_overhead
        self.alpha = self.fe.config.ewma_alpha
        self.one_minus_alpha = 1.0 - self.alpha
        self.pq_fn = pq_fn
        self.pq_override: Optional[int] = None
        self.record_assignments = record_assignments
        self.actions = actions
        self.kernel = kernel

        if deployment.cover_tables is None:
            deployment.cover_tables = CoverTableCache()
        self.cache: CoverTableCache = deployment.cover_tables

        n_q = len(arrivals)
        self.arrivals = arrivals
        self.arr_l = arrivals.tolist()
        self.latencies = np.full(n_q, np.nan, dtype=np.float64)
        self.finishes = np.full(n_q, np.nan, dtype=np.float64)
        self.query_ids = np.full(n_q, -1, dtype=np.int64)
        self.pqs = np.zeros(n_q, dtype=np.int64)
        self.assignments: Optional[list[tuple[str, ...]]] = (
            [] if record_assignments else None
        )

        self.completed = 0
        self.dropped = 0
        self.shed_n = 0
        self.fast_scheduled = 0
        self.delegated = 0
        self.actions_applied = 0
        self.chunk_sizes: list[int] = []

        #: NodeStats.busy_until reservation of the *last* fast query -- the
        #: one piece of front-end state the reference path leaves holding a
        #: prediction rather than a synced server value.
        self.last_res: Optional[list[tuple[int, float]]] = None
        self.st_sync_pending = False

        #: per-pq bulk-commit out buffers (stable objects, so compiled
        #: kernels can cache raw pointers against them for the whole run).
        self.commit_bufs: dict[int, CommitBuffers] = {}
        self.bulk_cap = min(CHUNK_CAP, max(1, n_q))

        self._build()
        self._reset_buffers()

    # -- mirrors -----------------------------------------------------------
    def _build(self) -> None:
        """(Re)build every mirror from live objects (membership scope)."""
        dep, fe = self.dep, self.fe
        self.rings = dep.rings
        nodes_flat = []
        self.ring_lo: list[int] = []
        self.ring_hi: list[int] = []
        self.ring_starts: list[list[float]] = []
        for ring in self.rings:
            nodes = ring.nodes()
            self.ring_lo.append(len(nodes_flat))
            nodes_flat.extend(nodes)
            self.ring_hi.append(len(nodes_flat))
            self.ring_starts.append([nd.start for nd in nodes])
        self.nodes_flat = nodes_flat
        self.names_flat = [nd.name for nd in nodes_flat]
        self.stats_flat = [fe.stats_for(nd) for nd in nodes_flat]
        self.servers_flat = [dep.servers[nd.name] for nd in nodes_flat]
        self.single_ring = len(self.rings) == 1
        self.trace_any = any(s.keep_trace for s in dep.servers.values())
        self.multi_lane = any(s.cores != 1 for s in self.servers_flat)

        n = len(nodes_flat)
        self.busy_l = [s.busy_until for s in self.servers_flat]
        self.spd_l = [st.speed_estimate for st in self.stats_flat]
        self.srv_speed_l = [s.speed for s in self.servers_flat]
        self.srv_fixed_l = [s.fixed_overhead for s in self.servers_flat]
        self.failed_l = [s.failed for s in self.servers_flat]
        self.busy = np.array(self.busy_l, dtype=np.float64)
        self.spd = np.array(self.spd_l, dtype=np.float64)
        self.est = np.empty(n, dtype=np.float64)
        # absolute per-server accumulator mirrors (flushed chunks land here,
        # materialise copies them back onto the objects)
        self.bt = np.array([s.busy_time for s in self.servers_flat])
        self.om = np.array([s.objects_matched for s in self.servers_flat])
        self.tasks = np.array(
            [s.tasks_run for s in self.servers_flat], dtype=np.int64
        )
        self.cc = np.array(
            [st.completed for st in self.stats_flat], dtype=np.int64
        )
        self.ls = np.array([st.last_seen for st in self.stats_flat])
        self.touched = np.zeros(n, dtype=bool)

        #: the kernel-facing view of the mirrors; a fresh instance per
        #: membership epoch so kernels can cache derived data against it.
        self.state = SweepState(
            self.busy,
            self.est,
            self.fe_fixed,
            self.ring_lo,
            self.ring_hi,
            self.ring_starts,
        )
        self.kernel.bind(self.state)

        #: the kernel-facing commit constants + mirrors (paired with
        #: ``state``: a fresh instance per membership epoch).
        self.plan = CommitPlan(
            self.arrivals,
            self.arr_l,
            self.spd,
            self.srv_fixed_l,
            self.srv_speed_l,
            self.alpha,
            self.one_minus_alpha,
            self.dataset,
        )

        self.tables: dict[int, PqEntry] = {}
        self.any_failed = any(s.failed for s in dep.servers.values())
        self.p_store_cur = dep.p_store
        self.qid_last = fe._query_counter
        self.it_acc = 0
        self.est_acc = 0
        self.qs_acc = 0
        self.wall_acc = 0.0
        self.led_qmsg = 0
        self.led_rmsg = 0

    def _refresh_busy(self) -> None:
        """Re-read server queues *and* execution counters (a "busy"-scoped
        action submits work, which moves busy_time/tasks_run/objects too).
        Also re-reads p_store: any action may pump the discrete-event
        simulation, which can complete an in-flight repartition."""
        self.busy_l = [s.busy_until for s in self.servers_flat]
        self.busy[:] = self.busy_l
        self.bt[:] = [s.busy_time for s in self.servers_flat]
        self.om[:] = [s.objects_matched for s in self.servers_flat]
        self.tasks[:] = [s.tasks_run for s in self.servers_flat]
        self.p_store_cur = self.dep.p_store

    def _refresh_values(self) -> None:
        self._refresh_busy()
        self.spd_l = [st.speed_estimate for st in self.stats_flat]
        self.spd[:] = self.spd_l
        self.failed_l = [s.failed for s in self.servers_flat]
        self.cc[:] = [st.completed for st in self.stats_flat]
        self.ls[:] = [st.last_seen for st in self.stats_flat]
        for entry in self.tables.values():
            np.divide(entry.wd, self.spd, out=entry.Q)
        self.any_failed = any(s.failed for s in self.dep.servers.values())
        self.p_store_cur = self.dep.p_store

    # -- chunk buffers -----------------------------------------------------
    def _reset_buffers(self) -> None:
        #: per sub-query rows ``(g, service, work, finish, start)``,
        #: flattened across the chunk's queries in submit order.
        self.subs: list[tuple] = []
        #: per query rows ``(q_i, now, pq, qid, rtt, sched, total, mw, ms)``.
        self.qrows: list[tuple] = []

    def _flush(self) -> None:
        """Account the buffered chunk with array reductions + one record pass."""
        nq = len(self.qrows)
        if nq == 0:
            return
        prof = self.prof
        if prof is not None:
            prof.begin("flush")
        sg_t, ssv_t, swk_t, sf_t, sst_t = zip(*self.subs)
        sg = np.array(sg_t, dtype=np.intp)
        ssv = np.array(ssv_t)
        swk = np.array(swk_t)
        sf = np.array(sf_t)
        # np.add.at applies unbuffered, element-by-element in index order,
        # so repeated-server float sums keep the reference addition order.
        np.add.at(self.bt, sg, ssv)
        np.add.at(self.om, sg, swk)
        counts = np.bincount(sg, minlength=len(self.tasks))
        self.tasks += counts
        self.cc += counts
        # per-server finishes are monotone, so last-in-order == max
        np.maximum.at(self.ls, sg, sf)
        self.touched[sg] = True

        qidx_t, qnow_t, qpq_t, qqid_t, qrtt_t, qsched_t, qtotal_t, qmw_t, qms_t = zip(
            *self.qrows
        )
        qidx = np.array(qidx_t, dtype=np.intp)
        qnow = np.array(qnow_t)
        qtotal = np.array(qtotal_t)
        fr = qnow + qtotal
        delay = fr - qnow
        self.latencies[qidx] = delay
        self.finishes[qidx] = fr
        qqid = np.array(qqid_t, dtype=np.int64)
        qpq = np.array(qpq_t, dtype=np.int64)
        self.query_ids[qidx] = qqid
        self.pqs[qidx] = qpq

        self._emit_records(
            qqid,
            qnow,
            fr,
            qpq,
            np.array(qrtt_t),
            np.array(qsched_t),
            qtotal,
            np.array(qmw_t),
            np.array(qms_t),
            sg_t,
            sst_t,
            sf_t,
            swk_t,
        )

        dep = self.dep
        fe = self.fe
        fe.total_iterations += self.it_acc
        fe.total_estimates += self.est_acc
        fe.queries_scheduled += self.qs_acc
        fe._query_counter = self.qid_last
        self.it_acc = self.est_acc = self.qs_acc = 0
        dep.scheduling_wallclock += self.wall_acc
        self.wall_acc = 0.0
        # accumulate through the ledger's own methods so the per-message
        # byte constants live in exactly one place (network.py)
        self.ledger.record_query(self.led_qmsg)
        self.ledger.record_result(self.led_rmsg)
        self.led_qmsg = self.led_rmsg = 0

        self.chunk_sizes.append(nq)
        self._reset_buffers()
        if prof is not None:
            prof.end()

    def _emit_records(
        self,
        qqid,
        qnow,
        fr,
        qpq,
        qrtt,
        qsched,
        qtotal,
        qmw,
        qms,
        sg_l,
        sst_l,
        sf_l,
        swk_l,
    ) -> None:
        """Land one chunk's per-query telemetry as columns.

        All ``q*`` arguments are equal-length per-query float64/int64
        arrays; they append to the deployment's columnar logs in a
        handful of array copies -- zero per-query python on listener-free
        runs.  Chunk listeners receive the arrays directly (one
        ``observe_chunk`` call per flushed chunk); legacy per-query
        ``query_listeners``, when any are registered, are driven off the
        same columns by materialising each row as the exact
        :class:`QueryRecord` the per-query path would have built.
        Shared by the buffered flush (tuple rows) and the bulk flush
        (kernel out buffers), so the two paths cannot drift in what they
        record.  ``s*`` are flat per-sub-query sequences in submit order,
        consumed ``qpq[k]`` at a time (only read when tracing is on).
        """
        dep = self.dep
        nq = len(qnow)
        log_start = self.log.n_records
        self.log.append_columns(qqid, qnow, fr, qpq, qpq, qsched)
        dep.breakdowns.append_columns(qsched, qrtt, qmw, qms, qtotal)
        if self.admission is not None:
            self.admission.log.record_chunk(log_start, nq, self.admission.shed)

        prof = self.prof
        has_listeners = bool(dep.chunk_listeners or dep.query_listeners)
        if prof is not None and has_listeners:
            prof.begin("listeners")

        if dep.chunk_listeners:
            chunk = ChunkArrays(
                query_ids=qqid,
                arrivals=qnow,
                finishes=fr,
                pqs=qpq,
                subqueries=qpq,
                scheduling=qsched,
                network=qrtt,
                queueing=qmw,
                service=qms,
                total=qtotal,
            )
            for chunk_listener in dep.chunk_listeners:
                chunk_listener.observe_chunk(chunk, log_start, nq)

        if dep.query_listeners:
            # tolist() only on the legacy path: callbacks see python
            # scalars, exactly as the per-query reference path built them
            drive_legacy_listeners(
                dep.query_listeners,
                qqid.tolist(),
                qnow.tolist(),
                fr.tolist(),
                qpq.tolist(),
                qpq.tolist(),
                qsched.tolist(),
            )

        if prof is not None and has_listeners:
            prof.end()

        if self.trace_any:
            servers_flat = self.servers_flat
            qpq_l = qpq.tolist()
            qnow_l = qnow.tolist()
            qrtt_l = qrtt.tolist()
            qqid_l = qqid.tolist()
            off = 0
            for k in range(nq):
                pq = qpq_l[k]
                arr_t = qnow_l[k] + qrtt_l[k] / 2.0
                qid = qqid_l[k]
                for j in range(off, off + pq):
                    server = servers_flat[sg_l[j]]
                    if server.keep_trace:
                        server.trace.append(
                            TaskRecord(qid, arr_t, sst_l[j], sf_l[j], swk_l[j])
                        )
                off += pq

    def _materialise(self) -> None:
        """Flush, then write exact object state (servers + node stats)."""
        prof = self.prof
        if prof is not None:
            prof.begin("materialise")
        self._flush()
        self.fe._query_counter = self.qid_last
        idx = np.nonzero(self.touched)[0]
        if idx.size:
            for g in idx.tolist():
                server = self.servers_flat[g]
                server._lane_busy_until[0] = self.busy_l[g]
                server.busy_time = float(self.bt[g])
                server.tasks_run = int(self.tasks[g])
                server.objects_matched = float(self.om[g])
                st = self.stats_flat[g]
                st.speed_estimate = self.spd_l[g]
                st.completed = int(self.cc[g])
                st.last_seen = float(self.ls[g])
            self.touched[:] = False
        # NodeStats.busy_until parity: after the last fast query, every node
        # reads the live server value except that query's reservations,
        # which keep the reserve prediction (reference-path behaviour).
        if self.st_sync_pending and self.last_res is not None:
            for g, st in enumerate(self.stats_flat):
                st.busy_until = self.busy_l[g]
            for g, val in self.last_res:
                self.stats_flat[g].busy_until = val
            self.st_sync_pending = False
        if prof is not None:
            prof.end()

    # -- actions -----------------------------------------------------------
    def _fire(self, action: Action) -> None:
        prof = self.prof
        if prof is not None:
            prof.begin("actions")
        self._materialise()
        new_pq = action.fn(action.time)
        if new_pq is not None:
            self.pq_override = int(new_pq)
        if action.scope == "membership":
            self._build()
        elif action.scope == "values":
            self._refresh_values()
        elif action.scope == "busy":
            self._refresh_busy()
        self.actions_applied += 1
        if prof is not None:
            prof.end()

    # -- tables ------------------------------------------------------------
    def _table_for(self, pq: int) -> PqEntry:
        entry = self.tables.get(pq)
        if entry is None:
            table = self.cache.get(self.rings, pq)
            for lo, hi, rt in zip(self.ring_lo, self.ring_hi, table.ring_tables):
                if self.names_flat[lo:hi] != [
                    n.name for n in rt.nodes
                ]:  # pragma: no cover
                    raise RuntimeError(
                        "ring structure changed mid-batch; schedule membership "
                        "edits through the action queue, not around it"
                    )
            entry = PqEntry(table, pq, self.dataset, self.spd)
            self.tables[pq] = entry
        return entry

    # -- the hot loop ------------------------------------------------------
    def run(self) -> BatchResult:
        """Drive the batch as spans between cut points.

        A span is a maximal run of queries with no exact-time action
        inside it.  Spans outside failure windows (and without a
        per-query ``pq_fn`` callable) go through the kernel's bulk
        sweep+commit seam (:meth:`_run_span_bulk`); everything else takes
        the inline per-query path (:meth:`_run_span`), which owns the
        failure-delegation machinery.  Both produce bit-identical state.
        """
        wall_start = time.perf_counter()
        n_q = len(self.arr_l)
        acts = self.actions
        n_act = len(acts)
        ai = 0
        pq_callable = callable(self.pq_fn)
        pos = 0
        while pos < n_q:
            while ai < n_act and acts[ai].index <= pos:
                self._fire(acts[ai])
                ai += 1
            end = n_q if ai >= n_act else min(n_q, acts[ai].index)
            if (
                not pq_callable
                and not self.any_failed
                and self.admission is None
                and (self.kernel.fused_commit or end - pos >= BULK_MIN_SPAN)
            ):
                pos = self._run_span_bulk(pos, end)
            else:
                pos = self._run_span(pos, end)
        while ai < n_act:
            self._fire(acts[ai])
            ai += 1
        self._materialise()

        wall = time.perf_counter() - wall_start
        if self.prof is not None:
            self.prof.add_wall(wall)
        return BatchResult(
            arrivals=self.arrivals,
            latencies=self.latencies,
            finishes=self.finishes,
            query_ids=self.query_ids,
            pqs=self.pqs,
            completed=self.completed,
            dropped=self.dropped,
            assignments=self.assignments,
            fast_scheduled=self.fast_scheduled,
            delegated=self.delegated,
            wall_seconds=wall,
            chunk_sizes=self.chunk_sizes,
            actions_applied=self.actions_applied,
            profile=self.prof,
            shed=self.shed_n,
        )

    # -- the bulk seam -----------------------------------------------------
    def _bufs_for(self, pq: int) -> CommitBuffers:
        bufs = self.commit_bufs.get(pq)
        if bufs is None:
            bufs = CommitBuffers(self.bulk_cap, pq)
            self.commit_bufs[pq] = bufs
        return bufs

    def _run_span_bulk(self, span_start: int, span_end: int) -> int:
        """Process ``[span_start, span_end)`` through the fused seam.

        Chunks of up to :data:`CHUNK_CAP` queries go to the kernel's
        ``commit_batch`` (the span is failure-free and pq-constant by the
        caller's checks), which advances the live mirror arrays in place;
        each chunk is flushed straight from the bulk out buffers.  After
        the span the scalar list shadows and any sibling pq tables are
        re-derived from the arrays.
        """
        pq = self.pq_override if self.pq_override is not None else self.pq_fn
        pq = pq or self.cfg.p
        if pq < self.p_store_cur - 1e-9:
            self._materialise()
            raise ValueError(
                f"pq={pq} below stored partitioning level "
                f"{self.p_store_cur}; reconfigure first (Section 4.5)"
            )
        entry = self._table_for(pq)
        plan = self.plan
        bufs = self._bufs_for(pq)
        commit = self.kernel.commit_batch
        sample_rtt = self.network.sample_rtt
        perf = time.perf_counter
        perf_ns = time.perf_counter_ns
        prof = self.prof
        cap = bufs.cap
        pos = span_start
        while pos < span_end:
            nq = min(span_end - pos, cap)
            if prof is None:
                # pre-draw the span's RTTs in arrival order: the rng stream
                # must advance exactly as the per-query path would
                rtt_l = [sample_rtt() for _ in range(nq)]
                bufs.rtts[:nq] = rtt_l
                t0 = perf()
                commit(self.state, entry, plan, bufs, pos, nq)
                chunk_wall = perf() - t0
                self._flush_bulk(pos, nq, pq, rtt_l, chunk_wall, entry, bufs)
            else:
                # same statements bracketed by clock reads only -- the rng
                # stream and the float sequence are untouched
                c0 = perf_ns()
                rtt_l = [sample_rtt() for _ in range(nq)]
                draw_ns = perf_ns() - c0
                prof.add_ns("arrival_draw", draw_ns)
                bufs.rtts[:nq] = rtt_l
                t0 = perf()
                commit(self.state, entry, plan, bufs, pos, nq)
                chunk_wall = perf() - t0
                prof.add_s("sweep_commit", chunk_wall)
                prof.begin("flush")
                self._flush_bulk(pos, nq, pq, rtt_l, chunk_wall, entry, bufs)
                flush_ns = prof.end()
                prof.record_chunk(
                    pos, nq, c0, draw_ns, int(chunk_wall * 1e9), flush_ns
                )
            pos += nq
        # re-derive the scalar shadows and sibling pq tables from the
        # arrays the kernel advanced in place (elementwise division is
        # pure, so a full recompute matches the scatter updates bit-wise)
        self.busy_l = self.busy.tolist()
        self.spd_l = self.spd.tolist()
        for tb in self.tables.values():
            if tb is not entry:
                np.divide(tb.wd, self.spd, out=tb.Q)
        rn = int(bufs.res_n[0])
        self.last_res = list(
            zip(bufs.res_g[:rn].tolist(), bufs.res_v[:rn].tolist())
        )
        self.st_sync_pending = True
        return span_end

    def _flush_bulk(
        self,
        pos: int,
        nq: int,
        pq: int,
        rtt_l: list,
        chunk_wall: float,
        entry: PqEntry,
        bufs: CommitBuffers,
    ) -> None:
        """Account one bulk chunk straight from the kernel's out buffers.

        The same reductions as :meth:`_flush`, minus the tuple-buffer
        transposition: the kernel already delivered flat arrays in submit
        order.  Per-query ``scheduling_delay`` is the chunk's kernel wall
        time amortised over its queries (the fused call does not observe
        per-query boundaries; with ``charge_scheduling`` the amortised
        value is what lands in the latency).
        """
        m = nq * pq
        sg = bufs.sub_g[:m]
        np.add.at(self.bt, sg, bufs.sub_service[:m])
        np.add.at(self.om, sg, bufs.sub_work[:m])
        counts = np.bincount(sg, minlength=len(self.tasks))
        self.tasks += counts
        self.cc += counts
        np.maximum.at(self.ls, sg, bufs.sub_finish[:m])
        self.touched[sg] = True

        qnow = self.arrivals[pos : pos + nq]
        qtotal = bufs.q_total[:nq]
        sched_each = chunk_wall / nq
        if self.charge:
            qtotal = qtotal + sched_each
        fr = qnow + qtotal
        delay = fr - qnow
        self.latencies[pos : pos + nq] = delay
        self.finishes[pos : pos + nq] = fr
        qid0 = self.qid_last
        qqid = np.arange(qid0 + 1, qid0 + nq + 1, dtype=np.int64)
        self.query_ids[pos : pos + nq] = qqid
        self.qid_last = qid0 + nq
        self.pqs[pos : pos + nq] = pq

        if self.trace_any:
            sg_l = sg.tolist()
            sst_l = bufs.sub_start[:m].tolist()
            sf_l = bufs.sub_finish[:m].tolist()
            swk_l = bufs.sub_work[:m].tolist()
        else:
            sg_l = sst_l = sf_l = swk_l = ()
        self._emit_records(
            qqid,
            qnow,
            fr,
            np.full(nq, pq, dtype=np.int64),
            bufs.rtts[:nq],
            np.full(nq, sched_each),
            qtotal,
            bufs.q_mw[:nq],
            bufs.q_ms[:nq],
            sg_l,
            sst_l,
            sf_l,
            swk_l,
        )

        dep = self.dep
        if self.assignments is not None:
            names = self.names_flat
            # sub rows are in submit (LIFO) order; assignments record the
            # selection (point) order, so reverse each query's row
            for row in bufs.sub_g[:m].reshape(nq, pq)[:, ::-1].tolist():
                self.assignments.append(tuple(names[g] for g in row))

        fe = self.fe
        fe.total_iterations += nq * entry.iterations
        fe.total_estimates += nq * entry.estimates
        fe.queries_scheduled += nq
        fe._query_counter = self.qid_last
        dep.scheduling_wallclock += chunk_wall
        self.ledger.record_query(nq * pq)
        self.ledger.record_result(nq * pq)
        self.completed += nq
        self.fast_scheduled += nq
        self.chunk_sizes.append(nq)

    # -- the per-query path ------------------------------------------------
    def _run_span(self, span_start: int, span_end: int) -> int:
        """Process ``[span_start, span_end)`` one query at a time.

        This is the path that owns failure delegation (select first, check
        the schedule against the failed set, hand the query to the
        reference path when it hits) and per-query ``pq_fn`` evaluation;
        it is also what short spans use when the kernel's bulk commit is a
        python loop anyway.  Commit arithmetic here, the kernel's default
        ``commit_batch``, and ``roar_commit_batch`` in ``csrc/sweep.c``
        are three copies of the same float-op sequence, pinned together by
        the differential tests.
        """
        cfg = self.cfg
        dataset = self.dataset
        fe_fixed = self.fe_fixed
        alpha = self.alpha
        om_alpha = self.one_minus_alpha
        fmod = math.fmod
        perf = time.perf_counter
        pq_fn = self.pq_fn
        pq_callable = callable(pq_fn)
        charge = self.charge
        sample_rtt = self.network.sample_rtt
        record_assignments = self.assignments is not None
        select = self.kernel.select
        arr = self.arr_l
        admission = self.admission

        # aliases refreshed whenever mirrors rebuild (delegation)
        def local_state():
            return (
                self.busy_l,
                self.spd_l,
                self.busy,
                self.spd,
                self.state,
                self.srv_fixed_l,
                self.srv_speed_l,
                self.any_failed,
                self.failed_l,
            )

        (
            busy_l,
            spd_l,
            busy_np,
            spd_np,
            state,
            srv_fixed_l,
            srv_speed_l,
            any_failed,
            failed_l,
        ) = local_state()
        last_pq = -1
        entry = None
        prof = self.prof
        span_sched = 0.0
        if prof is not None:
            prof.begin("commit")

        for q_i in range(span_start, span_end):
            now = arr[q_i]
            if pq_callable:
                pq = pq_fn(now)
            else:
                pq = self.pq_override if self.pq_override is not None else pq_fn
            pq = pq or cfg.p

            # -- admission: decide before any scheduling work or rng draw,
            # off the busiest-server backlog the queue mirror exposes -----
            if admission is not None:
                backlog = max(busy_l) - now
                if backlog < 0.0:
                    backlog = 0.0
                if admission.admit(q_i, now, backlog) is not None:
                    self.pqs[q_i] = pq
                    self.shed_n += 1
                    if record_assignments:
                        self.assignments.append(())
                    continue

            if pq != last_pq:
                if pq < self.p_store_cur - 1e-9:
                    self._materialise()
                    raise ValueError(
                        f"pq={pq} below stored partitioning level "
                        f"{self.p_store_cur}; reconfigure first (Section 4.5)"
                    )
                entry = self._table_for(pq)
                last_pq = pq

            # -- the scheduling decision: estimates + sweep + assignment,
            # delegated to the pluggable kernel (exact_numpy by default;
            # see repro.kernels for the ABI and the alternatives) ----------
            t0 = perf()
            g_list, pts, start_id = select(state, entry, now)
            sched_wall = perf() - t0

            # -- failure window: the reference path owns the fall-back -----
            if any_failed and any(failed_l[g] for g in g_list):
                self._delegate(q_i, now, pq)
                (
                    busy_l,
                    spd_l,
                    busy_np,
                    spd_np,
                    state,
                    srv_fixed_l,
                    srv_speed_l,
                    any_failed,
                    failed_l,
                ) = local_state()
                continue

            # -- commit (identical arithmetic to run_query) ----------------
            self.qid_last += 1
            qid = self.qid_last
            self.wall_acc += sched_wall
            if prof is not None:
                span_sched += sched_wall
            rtt = sample_rtt()

            # widths + reserve (FIFO over sub-queries, first occurrence
            # syncs the live queue, repeats accumulate)
            v = fmod(start_id + entry.off0, 1.0)
            if v < 0.0:
                v += 1.0
            if v >= 1.0:
                v -= 1.0
            prev = v
            w_list = []
            res: dict[int, float] = {}
            res_get = res.get
            for i in range(pq):
                d = pts[i]
                w = fmod(d - prev, 1.0)
                if w < 0.0:
                    w += 1.0
                if w >= 1.0:
                    w -= 1.0
                w_list.append(w)
                prev = d
                g = g_list[i]
                spd_g = spd_l[g]
                service = fe_fixed + (w * dataset) / (
                    spd_g if spd_g > 1e-9 else 1e-9
                )
                base = res_get(g)
                if base is None:
                    base = busy_l[g]
                res[g] = (base if base > now else now) + service
            self.last_res = list(res.items())
            self.st_sync_pending = True

            finish = now
            mw = 0.0
            ms = 0.0
            half = rtt / 2.0
            arr_t = now + half
            subs = self.subs
            subs_append = subs.append
            # submit + EWMA observe (LIFO: the reference path pops)
            for i in range(pq - 1, -1, -1):
                g = g_list[i]
                work = w_list[i] * dataset
                b = busy_l[g]
                wait = b - now
                if wait < 0.0:
                    wait = 0.0
                start = arr_t if arr_t > b else b
                service = srv_fixed_l[g] + work / srv_speed_l[g]
                f = start + service
                busy_l[g] = f
                subs_append((g, service, work, f, start))
                eff = service - fe_fixed
                if eff > 0.0 and work > 0.0:
                    spd_l[g] = om_alpha * spd_l[g] + alpha * (work / eff)
                fh = f + half
                if fh > finish:
                    finish = fh
                if wait > mw:
                    mw = wait
                if service > ms:
                    ms = service

            # write-through the final per-server values (only the last
            # value per server matters to the next query's estimates)
            tables = self.tables
            one_table = entry if len(tables) == 1 else None
            for g in res:
                busy_np[g] = busy_l[g]
                s_g = spd_l[g]
                if spd_np[g] != s_g:
                    spd_np[g] = s_g
                    if one_table is not None:
                        one_table.Q[g] = one_table.wd / s_g
                    else:
                        for tb in tables.values():
                            tb.Q[g] = tb.wd / s_g

            total = finish - now + (sched_wall if charge else 0.0)
            self.qrows.append(
                (q_i, now, pq, qid, rtt, sched_wall, total, mw, ms)
            )
            if admission is not None:
                # same delay the reference path's QueryRecord carries
                # (wall-free unless charge_scheduling is on)
                admission.observe(now, total)
            self.completed += 1
            self.fast_scheduled += 1
            self.led_qmsg += pq
            self.led_rmsg += pq
            self.it_acc += entry.iterations
            self.est_acc += entry.estimates
            self.qs_acc += 1
            if record_assignments:
                names = self.names_flat
                self.assignments.append(tuple(names[g] for g in g_list))
            if len(self.qrows) >= CHUNK_CAP:
                self._flush()

        if prof is not None:
            # the kernel's select time goes to sweep_commit; the rest of
            # the inline loop (reserve/submit/EWMA python) is "commit"
            prof.add_s("sweep_commit", span_sched)
            prof.end()
        return span_end

    def _delegate(self, q_i: int, now: float, pq: int) -> None:
        """Route one failure-window query through the reference path."""
        prof = self.prof
        if prof is not None:
            prof.begin("delegate")
        self._materialise()
        pre_lens = None
        if self.assignments is not None:
            pre_lens = {
                name: len(s.trace)
                for name, s in self.servers.items()
                if s.keep_trace
            }
        record = self.dep.run_query(now, pq)
        self.delegated += 1
        self.last_res = None
        self.st_sync_pending = False
        self._refresh_values()
        self.qid_last = self.fe._query_counter
        self.pqs[q_i] = pq
        if record is None:
            self.dropped += 1
        else:
            self.completed += 1
            self.query_ids[q_i] = record.query_id
            self.finishes[q_i] = record.finish
            self.latencies[q_i] = record.delay
            if self.admission is not None:
                self.admission.observe(now, record.delay)
        if pre_lens is not None:
            # Delegated schedules (plus failure replacements) are only
            # observable through server traces; only this query ran, so
            # the executors are exactly the servers whose traces grew.
            if record is not None:
                executed = tuple(
                    name
                    for name, before in pre_lens.items()
                    if len(self.servers[name].trace) > before
                )
            else:
                executed = ()
            self.assignments.append(executed)
        if prof is not None:
            prof.end()


def _check_frontend(deployment: "Deployment") -> None:
    fecfg = deployment.frontend.config
    if fecfg.method != "heap" or fecfg.adjust_ranges or fecfg.max_splits > 0:
        raise ValueError(
            "the batched path supports the default front-end configuration "
            "(method='heap', adjust_ranges=False, max_splits=0); use "
            "Deployment.run_queries for other configurations"
        )


def run_queries_fast(
    deployment: "Deployment",
    arrival_times: Sequence[float],
    pq_fn: Callable[[float], int] | int | None = None,
    record_assignments: bool = False,
    actions: Sequence[Action] | None = None,
    kernel: SweepKernel | str | None = None,
    profile=None,
    admission=None,
) -> BatchResult:
    """Run a whole arrival trace through the batched path.

    Mirrors :meth:`Deployment.run_queries` (including per-query ``pq_fn``
    support) and leaves the deployment in the same state the reference path
    would have.  *actions* schedules callbacks at exact query indices; see
    :class:`Action`.  *kernel* picks the scheduling kernel by registry name
    (or instance); the default ``exact_numpy`` is bit-identical to the
    reference path, others trade exactness or portability for speed (see
    :mod:`repro.kernels`).  Failure-window queries always delegate to the
    per-query reference path regardless of kernel, so fall-back semantics
    stay exact everywhere.

    *profile* enables the engine-phase profiler: pass ``True`` (or a
    :class:`~repro.obs.profiler.PhaseProfiler` to accumulate across runs);
    the default ``None`` defers to the ``REPRO_PROFILE`` environment
    variable.  When on, the result's ``profile`` attribute carries
    per-phase totals and per-chunk samples; results are bit-identical to
    an unprofiled run either way (see :mod:`repro.obs.profiler`).

    *admission* installs an admission controller at the arrival seam: a
    policy name/spec, an :class:`~repro.admission.base.AdmissionPolicy`
    instance, or ``None``/``"none"`` for accept-all.  Passthrough specs
    resolve to ``None`` before the engine sees them, so the default run
    is bit-identical to the pre-admission engine; an active policy
    forces the per-query path (the bulk seam cannot shed mid-chunk).
    """
    require_numpy()
    _check_frontend(deployment)
    from ..admission.registry import resolve_admission

    arrivals = np.asarray(arrival_times, dtype=np.float64)
    acts = _sorted_actions(actions)
    prof = resolve_profile(profile)
    adm = resolve_admission(admission)
    engine = _Engine(
        deployment,
        arrivals,
        pq_fn,
        record_assignments,
        acts,
        get_kernel(kernel),
        profiler=prof,
        admission=adm,
    )
    if engine.multi_lane:
        # Multi-lane SimServers fall outside the closed-form queue mirror;
        # run the reference path with the same exact-time action semantics
        # (the kernel knob is moot there -- the reference path schedules
        # through the original heap).
        return run_queries_reference(
            deployment,
            arrival_times,
            pq_fn,
            record_assignments=record_assignments,
            actions=acts,
            profile=prof,
            admission=adm,
        )
    return engine.run()


def run_queries_reference(
    deployment: "Deployment",
    arrival_times: Sequence[float],
    pq_fn: Callable[[float], int] | int | None = None,
    record_assignments: bool = False,
    actions: Sequence[Action] | None = None,
    profile=None,
    admission=None,
) -> BatchResult:
    """The per-query reference path with the same exact-time action queue.

    Semantically interchangeable with :func:`run_queries_fast` -- the
    scenario runner uses it as the ``engine="reference"`` backend so both
    engines share one definition of *when* an action lands.  *profile* is
    the same knob as on the batched path; here the per-query work lands
    in a single ``reference`` phase (plus ``actions``).  *admission* is
    the same knob too, with the same backlog/delay signals (the busiest
    server's queued seconds, completed delays by arrival), so shed
    decisions are engine-independent.
    """
    require_numpy()
    from ..admission.registry import resolve_admission

    prof = resolve_profile(profile)
    admission = resolve_admission(admission)
    perf_ns = time.perf_counter_ns
    wall_start = time.perf_counter()
    arrivals = np.asarray(arrival_times, dtype=np.float64)
    acts = _sorted_actions(actions)
    n_q = len(arrivals)
    latencies = np.full(n_q, np.nan, dtype=np.float64)
    finishes = np.full(n_q, np.nan, dtype=np.float64)
    query_ids = np.full(n_q, -1, dtype=np.int64)
    pqs = np.zeros(n_q, dtype=np.int64)
    assignments: Optional[list[tuple[str, ...]]] = (
        [] if record_assignments else None
    )
    cfg = deployment.config
    servers = deployment.servers
    completed = dropped = shed = 0
    pq_override: Optional[int] = None
    actions_applied = 0
    ai = 0
    arr_l = arrivals.tolist()
    for q_i in range(n_q):
        while ai < len(acts) and acts[ai].index <= q_i:
            if prof is None:
                new_pq = acts[ai].fn(acts[ai].time)
            else:
                a0 = perf_ns()
                new_pq = acts[ai].fn(acts[ai].time)
                prof.add_ns("actions", perf_ns() - a0)
            if new_pq is not None:
                pq_override = int(new_pq)
            actions_applied += 1
            ai += 1
        now = arr_l[q_i]
        if callable(pq_fn):
            pq = pq_fn(now)
        else:
            pq = pq_override if pq_override is not None else pq_fn
        pq = pq or cfg.p
        pqs[q_i] = pq
        if admission is not None:
            backlog = max(s.busy_until for s in servers.values()) - now
            if backlog < 0.0:
                backlog = 0.0
            if admission.admit(q_i, now, backlog) is not None:
                shed += 1
                if assignments is not None:
                    assignments.append(())
                continue
        pre_lens = None
        if assignments is not None:
            pre_lens = {
                name: len(s.trace) for name, s in servers.items() if s.keep_trace
            }
        if prof is None:
            record = deployment.run_query(now, pq)
        else:
            r0 = perf_ns()
            record = deployment.run_query(now, pq)
            prof.add_ns("reference", perf_ns() - r0)
        if record is None:
            dropped += 1
        else:
            completed += 1
            query_ids[q_i] = record.query_id
            finishes[q_i] = record.finish
            latencies[q_i] = record.delay
            if admission is not None:
                admission.observe(now, record.delay)
        if pre_lens is not None:
            if record is not None:
                executed = tuple(
                    name
                    for name, before in pre_lens.items()
                    if len(servers[name].trace) > before
                )
            else:
                executed = ()
            assignments.append(executed)
    while ai < len(acts):
        if prof is None:
            new_pq = acts[ai].fn(acts[ai].time)
        else:
            a0 = perf_ns()
            new_pq = acts[ai].fn(acts[ai].time)
            prof.add_ns("actions", perf_ns() - a0)
        if new_pq is not None:
            pq_override = int(new_pq)
        actions_applied += 1
        ai += 1
    wall = time.perf_counter() - wall_start
    if prof is not None:
        prof.add_wall(wall)
    if admission is not None:
        # no chunks on this path: one whole-run summary row keeps the
        # shedchunk_* column totals comparable across engines
        admission.log.record_chunk(0, completed, admission.shed)
    return BatchResult(
        arrivals=arrivals,
        latencies=latencies,
        finishes=finishes,
        query_ids=query_ids,
        pqs=pqs,
        completed=completed,
        dropped=dropped,
        assignments=assignments,
        fast_scheduled=0,
        delegated=n_q,
        wall_seconds=wall,
        chunk_sizes=[],
        actions_applied=actions_applied,
        profile=prof,
        shed=shed,
    )
