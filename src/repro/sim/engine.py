"""A small discrete-event simulation engine.

The analytical evaluation in the paper (Chapter 6) is driven by a simple
numerical simulation: queries arrive at discrete times following a Poisson
process, a front-end scheduler assigns sub-queries to servers, and servers
execute tasks serially.  This engine provides the clock and event queue that
simulation is built on.

Events are ``(time, seq, callback)`` triples ordered by time with a sequence
number as tiebreaker so simultaneous events run in scheduling order (which
keeps runs deterministic).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

__all__ = ["Event", "PeriodicEvent", "Simulation"]


class Event:
    """A scheduled callback.  Supports cancellation."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class PeriodicEvent:
    """Handle on a recurring callback series created by :meth:`Simulation.every`."""

    __slots__ = ("pending", "cancelled", "fired")

    def __init__(self) -> None:
        self.pending: Optional[Event] = None
        self.cancelled = False
        self.fired = 0

    def cancel(self) -> None:
        self.cancelled = True
        if self.pending is not None:
            self.pending.cancel()


class Simulation:
    """Event loop with a virtual clock starting at 0.0 seconds."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self.events_run: int = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run *callback* ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        event = Event(self.now + delay, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run *callback* at absolute simulation time *time*."""
        return self.schedule(max(0.0, time - self.now), callback)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is exhausted."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self.events_run += 1
            event.callback()
            return True
        return False

    def every(
        self,
        interval: float,
        callback: Callable[[float], object],
        start: Optional[float] = None,
    ) -> "PeriodicEvent":
        """Run ``callback(now)`` every *interval* seconds.

        The first firing is at absolute time *start* (default: one interval
        from now).  The series stops when the callback returns ``False`` or
        the returned handle is cancelled.  Control planes use this for
        periodic sampling/decision ticks.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        handle = PeriodicEvent()

        def fire() -> None:
            if handle.cancelled:
                return
            handle.fired += 1
            if callback(self.now) is False:
                handle.cancel()
                return
            if not handle.cancelled:
                handle.pending = self.schedule(interval, fire)

        first_delay = interval if start is None else max(0.0, start - self.now)
        handle.pending = self.schedule(first_delay, fire)
        return handle

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the event queue, optionally stopping at time *until*.

        When *until* is given the clock is advanced to exactly *until* even
        if the last event fires earlier.
        """
        count = 0
        while self._queue:
            if max_events is not None and count >= max_events:
                return
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            self.step()
            count += 1
        if until is not None and self.now < until:
            self.now = until
