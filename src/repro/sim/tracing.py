"""Delay logging (compatibility shim).

The Chapter 6 delay log and its summary statistics moved to the columnar
telemetry subsystem (:mod:`repro.telemetry.records`), which stores
per-query rows as flat numpy columns and materialises record objects
lazily.  This module re-exports the public names so historical imports
(``from repro.sim.tracing import DelayLog``) keep working; the classes are
the same objects, and every summary statistic is bit-identical to the old
list-backed implementation.
"""

from __future__ import annotations

from ..telemetry.records import (
    EXPLODING_SLOPE,
    DelayLog,
    QueryRecord,
    linear_fit,
    percentile,
)

__all__ = ["QueryRecord", "DelayLog", "linear_fit", "percentile"]
