"""Delay logging and the paper's exploding-queue detection.

The Chapter 6 simulator logs every query's arrival and completion time; to
decide whether an open-loop run has saturated the system it fits a straight
line to ``delay(arrival_time)`` and declares the queue *exploding* (delay =
infinity) when the slope exceeds 0.1 (Section 6.1, "Simulator").  This module
reproduces that procedure plus the summary statistics experiments report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["QueryRecord", "DelayLog", "linear_fit", "percentile"]

#: Slope of the fitted delay(time) line above which the run is deemed
#: saturated (queries/sec backlog growing without bound).
EXPLODING_SLOPE = 0.1


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit ``y = a*x + b``; returns (slope, intercept)."""
    n = len(xs)
    if n != len(ys):
        raise ValueError("xs and ys must have equal length")
    if n == 0:
        return 0.0, 0.0
    if n == 1:
        return 0.0, ys[0]
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        return 0.0, mean_y
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    return slope, mean_y - slope * mean_x


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0..100) with linear interpolation."""
    if not values:
        raise ValueError("empty sequence")
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    pos = (q / 100.0) * (len(data) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return data[lo]
    return data[lo] + (data[hi] - data[lo]) * (pos - lo)


@dataclass(slots=True)
class QueryRecord:
    """Timing of one completed query."""

    query_id: int
    arrival: float
    finish: float
    pq: int = 0
    subqueries: int = 0
    scheduling_delay: float = 0.0

    @property
    def delay(self) -> float:
        return self.finish - self.arrival


@dataclass
class DelayLog:
    """Accumulates completed queries and summarises them."""

    records: list[QueryRecord] = field(default_factory=list)
    dropped: int = 0  # queries not serviced (yield accounting)

    def add(self, record: QueryRecord) -> None:
        self.records.append(record)

    def delays(self) -> list[float]:
        return [r.delay for r in self.records]

    def is_exploding(self) -> bool:
        """Apply the paper's slope test to delay(arrival_time)."""
        if len(self.records) < 2:
            return False
        xs = [r.arrival for r in self.records]
        ys = [r.delay for r in self.records]
        slope, _ = linear_fit(xs, ys)
        return slope > EXPLODING_SLOPE

    def mean_delay(self) -> float:
        """Mean delay, or ``inf`` when the queue is exploding (paper rule)."""
        if not self.records:
            return math.nan
        if self.is_exploding():
            return math.inf
        delays = self.delays()
        return sum(delays) / len(delays)

    def raw_mean_delay(self) -> float:
        delays = self.delays()
        return sum(delays) / len(delays) if delays else math.nan

    def max_delay(self) -> float:
        delays = self.delays()
        return max(delays) if delays else math.nan

    def percentile_delay(self, q: float) -> float:
        return percentile(self.delays(), q)

    def yield_fraction(self) -> float:
        """Brewer's *yield*: serviced queries / offered queries."""
        total = len(self.records) + self.dropped
        return len(self.records) / total if total else 1.0

    def throughput(self, elapsed: float) -> float:
        return len(self.records) / elapsed if elapsed > 0 else 0.0
