"""Network model: round-trip times and message accounting.

The paper treats data-centre RTTs as sub-millisecond and second-order for
query delay (Section 4.8.1) but tracks *message counts* carefully because
per-query overheads and cross-sectional bandwidth grow with the partitioning
level (Sections 2.3.2, 4.9.2, Table 6.2).  This module provides a simple
latency model plus a byte/message ledger that experiments read.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["NetworkModel", "TrafficLedger"]


@dataclass
class NetworkModel:
    """Latency model for one-hop messages inside a deployment.

    ``rtt`` is the base round-trip time; ``jitter`` adds uniform noise.  A
    data-centre profile is the default; a wide-area profile can be produced
    with :meth:`wide_area`.
    """

    rtt: float = 0.0005  # 0.5 ms, "well under 1ms" per Section 4.8.1
    jitter: float = 0.0001
    rng: random.Random = field(default_factory=random.Random, repr=False)

    def sample_rtt(self) -> float:
        if self.jitter <= 0:
            return self.rtt
        return max(0.0, self.rtt + self.rng.uniform(-self.jitter, self.jitter))

    def one_way(self) -> float:
        return self.sample_rtt() / 2.0

    @classmethod
    def data_center(cls, seed: int | None = None) -> "NetworkModel":
        return cls(rtt=0.0005, jitter=0.0001, rng=random.Random(seed))

    @classmethod
    def wide_area(cls, seed: int | None = None) -> "NetworkModel":
        return cls(rtt=0.08, jitter=0.02, rng=random.Random(seed))

    @classmethod
    def zero(cls) -> "NetworkModel":
        """The Chapter 6 simulator assumption: negligible network delays."""
        return cls(rtt=0.0, jitter=0.0)


@dataclass
class TrafficLedger:
    """Counts messages and bytes by category.

    Categories follow the bandwidth decomposition of Section 2.3.2:
    ``B = r*B_data + p*B_query + B_results`` plus control traffic.
    """

    query_messages: int = 0
    query_bytes: int = 0
    result_messages: int = 0
    result_bytes: int = 0
    update_messages: int = 0
    update_bytes: int = 0
    control_messages: int = 0
    control_bytes: int = 0
    cross_rack_bytes: int = 0

    def record_query(self, n_messages: int, bytes_each: int = 500) -> None:
        self.query_messages += n_messages
        self.query_bytes += n_messages * bytes_each

    def record_result(self, n_messages: int, bytes_each: int = 200) -> None:
        self.result_messages += n_messages
        self.result_bytes += n_messages * bytes_each

    def record_update(self, n_messages: int, bytes_each: int = 500) -> None:
        self.update_messages += n_messages
        self.update_bytes += n_messages * bytes_each

    def record_control(self, n_messages: int, bytes_each: int = 100) -> None:
        self.control_messages += n_messages
        self.control_bytes += n_messages * bytes_each

    @property
    def total_messages(self) -> int:
        return (
            self.query_messages
            + self.result_messages
            + self.update_messages
            + self.control_messages
        )

    @property
    def total_bytes(self) -> int:
        return (
            self.query_bytes + self.result_bytes + self.update_bytes + self.control_bytes
        )

    def merged(self, other: "TrafficLedger") -> "TrafficLedger":
        return TrafficLedger(
            query_messages=self.query_messages + other.query_messages,
            query_bytes=self.query_bytes + other.query_bytes,
            result_messages=self.result_messages + other.result_messages,
            result_bytes=self.result_bytes + other.result_bytes,
            update_messages=self.update_messages + other.update_messages,
            update_bytes=self.update_bytes + other.update_bytes,
            control_messages=self.control_messages + other.control_messages,
            control_bytes=self.control_bytes + other.control_bytes,
            cross_rack_bytes=self.cross_rack_bytes + other.cross_rack_bytes,
        )
