"""Transport model: reliable query delivery and the TCP incast problem.

Section 4.8.4: ROAR sends sub-queries over TCP.  With large ``p`` all ``p``
servers reply to the front-end at roughly the same instant; the burst
overflows the switch buffer on the front-end's link, losses are only
recovered after TCP's *minimum retransmission timeout* (200 ms on Linux,
1 s per the RFC), and retransmissions can re-synchronise.  The fix the paper
adopts (from the incast literature) is to drastically reduce the min RTO so
recovery takes a few milliseconds.

:class:`IncastModel` reproduces that behaviour at the fluid level: a reply
burst of ``p`` flows of ``reply_packets`` each arrives into a drain-rate
bottleneck with ``buffer_packets`` of queueing; overflow losses are retried
after ``min_rto`` (with optional re-synchronisation), and the model reports
the resulting *reply collection time* -- the transport component of query
delay.
"""

from __future__ import annotations

import random

from .._rng import ensure_rng
from dataclasses import dataclass

__all__ = ["TransportConfig", "IncastResult", "IncastModel"]


@dataclass(frozen=True)
class TransportConfig:
    """Switch/link parameters for the front-end's downlink."""

    #: packets the bottleneck queue can hold (shallow ToR buffers: ~64-256).
    buffer_packets: int = 128
    #: bottleneck drain rate in packets/second (1 Gb/s, 1.5 kB packets).
    drain_rate: float = 83_000.0
    #: TCP minimum retransmission timeout (Linux default 200 ms).
    min_rto: float = 0.200
    #: packets in one sub-query reply.
    reply_packets: int = 4
    #: fraction of retried flows that re-synchronise into the same burst.
    resync_fraction: float = 0.5
    #: maximum retry rounds before declaring the model diverged.
    max_rounds: int = 50


@dataclass
class IncastResult:
    """Outcome of collecting one query's replies."""

    collection_time: float  # seconds until every reply fully received
    rounds: int  # 1 = no losses; each extra round cost ~min_rto
    packets_lost: int
    flows_lost: int  # sub-query replies that hit at least one timeout


class IncastModel:
    """Fluid model of synchronized reply bursts into a shallow buffer."""

    def __init__(self, config: TransportConfig | None = None) -> None:
        self.config = config or TransportConfig()

    def burst_losses(self, flows: int) -> int:
        """Packets dropped when *flows* replies arrive simultaneously.

        The burst lands faster than the drain: packets beyond the buffer
        plus the one-burst drain allowance are lost.  One packet per lost
        flow is enough to strand that flow on a timeout (tail loss -- no
        fast retransmit with these tiny windows).
        """
        cfg = self.config
        arriving = flows * cfg.reply_packets
        # Whatever drains during the burst itself (~burst serialization).
        drained = int(cfg.drain_rate * (arriving / cfg.drain_rate) * 0.5)
        capacity = cfg.buffer_packets + drained
        return max(0, arriving - capacity)

    def collect(self, p: int, rng: random.Random | None = None) -> IncastResult:
        """Simulate reply collection for a ``p``-way query."""
        cfg = self.config
        rng = ensure_rng(rng)
        remaining = p
        time = 0.0
        rounds = 0
        lost_packets = 0
        flows_ever_lost = 0

        while remaining > 0:
            if rounds >= cfg.max_rounds:
                break
            rounds += 1
            burst_packets = remaining * cfg.reply_packets
            time += burst_packets / cfg.drain_rate  # serialization/drain
            lost = self.burst_losses(remaining)
            if lost <= 0:
                remaining = 0
                break
            # Tail losses strand ceil(lost / reply_packets) flows.
            stranded = min(remaining, (lost + cfg.reply_packets - 1) // cfg.reply_packets)
            lost_packets += lost
            flows_ever_lost += stranded
            completed = remaining - stranded
            remaining = stranded
            # Stranded flows time out; some re-synchronise into one burst,
            # the rest trickle in staggered (arriving loss-free).
            time += cfg.min_rto
            resync = int(round(stranded * cfg.resync_fraction))
            staggered = stranded - resync
            time += staggered * cfg.reply_packets / cfg.drain_rate
            remaining = resync
            if remaining == 0:
                break
        return IncastResult(
            collection_time=time,
            rounds=rounds,
            packets_lost=lost_packets,
            flows_lost=flows_ever_lost,
        )

    def mean_collection_time(
        self, p: int, samples: int = 20, seed: int = 0
    ) -> float:
        rng = random.Random(seed)
        total = 0.0
        for _ in range(samples):
            total += self.collect(p, rng).collection_time
        return total / samples

    def incast_threshold(self) -> int:
        """Largest p whose synchronized burst fits without loss."""
        p = 1
        while self.burst_losses(p + 1) == 0:
            p += 1
            if p > 1_000_000:  # pragma: no cover - defensive
                break
        return p
