"""Partitioned Distributed Rendezvous -- the Google-style baseline (Sec 3.1).

The ``n`` servers are divided into ``p`` clusters of roughly ``n/p``; each
object is stored on *every* server of one randomly chosen cluster; a query
is sent to one server per cluster.  The scheduler therefore has ``r^p``
combinations and can simply pick, per cluster, the server predicted to
finish first -- ``O(n)`` total.

Changing p is disruptive (Section 3.1): decreasing p destroys a cluster
(its objects are re-stored on every server of surviving clusters, then the
freed servers re-load a full partition each); increasing p steals servers
from each cluster to form a new one, which then pulls objects over for
balance.  ``change_p`` implements both directions and accounts the bytes
moved, which is the quantity Fig 7.5 / Table 6.2 compare against ROAR.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Sequence

from .._rng import ensure_rng
from ..core.objects import DataObject
from .base import Assignment, DelayEstimator, RendezvousAlgorithm, ServerInfo

__all__ = ["PTN"]


class PTN(RendezvousAlgorithm):
    name = "ptn"

    def __init__(
        self,
        servers: Sequence[ServerInfo],
        p: int,
        rng: random.Random | None = None,
        balanced_clusters: bool = True,
    ) -> None:
        super().__init__(servers)
        if not 1 <= p <= len(servers):
            raise ValueError(f"p must be in [1, n], got {p}")
        self.p = p
        self.rng = ensure_rng(rng)
        self.balanced_clusters = balanced_clusters
        self.clusters: list[list[ServerInfo]] = []
        self._cluster_of_obj: list[int] = []
        self._build_clusters()

    # -- cluster construction ---------------------------------------------------
    def _build_clusters(self) -> None:
        """Split servers into p clusters.

        With ``balanced_clusters`` the paper's throughput requirement is
        honoured: clusters are built greedily so the *sum of speeds* is
        roughly equal across clusters (no cluster becomes the bottleneck).
        """
        self.clusters = [[] for _ in range(self.p)]
        if self.balanced_clusters:
            order = sorted(self.servers, key=lambda s: -s.speed)
            caps = [0.0] * self.p
            sizes = [0] * self.p
            max_size = math.ceil(len(self.servers) / self.p)
            for server in order:
                candidates = [i for i in range(self.p) if sizes[i] < max_size]
                target = min(candidates, key=lambda i: caps[i])
                self.clusters[target].append(server)
                caps[target] += server.speed
                sizes[target] += 1
        else:
            for i, server in enumerate(self.servers):
                self.clusters[i % self.p].append(server)

    @property
    def r(self) -> float:
        return len(self.servers) / self.p

    # -- storage ------------------------------------------------------------------
    def place(self, objects: Iterable[DataObject]) -> None:
        self.objects = list(objects)
        self._cluster_of_obj = [
            self.rng.randrange(self.p) for _ in self.objects
        ]
        self.bytes_moved += sum(
            obj.size * len(self.clusters[c])
            for obj, c in zip(self.objects, self._cluster_of_obj)
        )

    def replica_holders(self, obj: DataObject) -> list[str]:
        idx = self.objects.index(obj)
        cluster = self._cluster_of_obj[idx]
        return [s.name for s in self.clusters[cluster]]

    def cluster_fraction(self, cluster_idx: int) -> float:
        """Fraction of the dataset stored in a cluster."""
        if not self.objects:
            return 1.0 / self.p
        count = sum(1 for c in self._cluster_of_obj if c == cluster_idx)
        return count / len(self.objects)

    # -- scheduling --------------------------------------------------------------------
    def schedule(
        self,
        estimator: DelayEstimator,
        rng: random.Random | None = None,
    ) -> list[Assignment]:
        """Per cluster, pick the alive server that finishes first (O(n))."""
        plan: list[Assignment] = []
        for idx, cluster in enumerate(self.clusters):
            fraction = self.cluster_fraction(idx)
            best_name = None
            best_finish = float("inf")
            for server in cluster:
                if not server.alive:
                    continue
                fin = estimator(server.name, fraction)
                if fin < best_finish:
                    best_finish = fin
                    best_name = server.name
            if best_name is None:
                raise LookupError(f"cluster {idx} has no alive servers")
            plan.append(Assignment(best_name, fraction, best_finish))
        return plan

    def covered_objects(self, plan: Sequence[Assignment]) -> set[int]:
        visited_clusters = set()
        name_to_cluster = {
            s.name: ci for ci, cl in enumerate(self.clusters) for s in cl
        }
        for assignment in plan:
            visited_clusters.add(name_to_cluster[assignment.server])
        return {
            i
            for i, c in enumerate(self._cluster_of_obj)
            if c in visited_clusters
        }

    def choice_count(self) -> float:
        count = 1.0
        for cluster in self.clusters:
            count *= max(1, sum(1 for s in cluster if s.alive))
        return count

    # -- reconfiguration ------------------------------------------------------------------
    def change_p(self, p_new: int) -> int:
        """Repartition to *p_new* clusters, returning bytes transferred.

        Decreasing p: destroy ``p - p_new`` clusters; every object of a
        destroyed cluster is copied onto all servers of a surviving cluster;
        freed servers then join surviving clusters and each downloads that
        cluster's full partition.

        Increasing p: pull servers out of existing clusters to form new
        ones; each new cluster downloads the objects rebalanced onto it.
        """
        if not 1 <= p_new <= len(self.servers):
            raise ValueError(f"p_new must be in [1, n], got {p_new}")
        if p_new == self.p:
            return 0
        moved = 0
        obj_count = len(self.objects)
        mean_obj_size = (
            sum(o.size for o in self.objects) / obj_count if obj_count else 0
        )

        if p_new < self.p:
            doomed = list(range(p_new, self.p))
            survivors = list(range(p_new))
            freed: list[ServerInfo] = []
            for ci in doomed:
                freed.extend(self.clusters[ci])
            # 1. Objects from doomed clusters re-homed onto survivors
            #    (copied to every server of the receiving cluster).
            for i, c in enumerate(self._cluster_of_obj):
                if c in doomed:
                    new_c = self.rng.choice(survivors)
                    self._cluster_of_obj[i] = new_c
                    moved += int(self.objects[i].size * len(self.clusters[new_c]))
            self.clusters = self.clusters[:p_new]
            # 2. Freed servers join surviving clusters and download that
            #    cluster's entire partition.
            for server in freed:
                target = min(
                    range(p_new), key=lambda i: sum(s.speed for s in self.clusters[i])
                )
                self.clusters[target].append(server)
                partition_objs = sum(
                    1 for c in self._cluster_of_obj if c == target
                )
                moved += int(partition_objs * mean_obj_size)
        else:
            extra = p_new - self.p
            new_clusters: list[list[ServerInfo]] = [[] for _ in range(extra)]
            # Steal servers round-robin from the largest clusters.
            target_size = max(1, len(self.servers) // p_new)
            for new_c in new_clusters:
                while len(new_c) < target_size:
                    donor = max(self.clusters, key=len)
                    if len(donor) <= 1:
                        break
                    new_c.append(donor.pop())
            self.clusters.extend(new_clusters)
            # Rebalance objects: move a fair share onto each new cluster.
            if obj_count:
                share = obj_count // p_new
                movable = [
                    i for i, c in enumerate(self._cluster_of_obj) if c < self.p
                ]
                self.rng.shuffle(movable)
                cursor = 0
                for new_idx in range(self.p, p_new):
                    for i in movable[cursor : cursor + share]:
                        self._cluster_of_obj[i] = new_idx
                        moved += int(
                            self.objects[i].size * len(self.clusters[new_idx])
                        )
                    cursor += share
        self.p = p_new
        self.bytes_moved += moved
        return moved
