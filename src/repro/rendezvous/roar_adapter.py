"""ROAR exposed through the generic DR interface.

Wraps the core ring + heap scheduler so the Chapter 6 comparison harness can
drive PTN, SW, RAND and ROAR uniformly.  ``speeds -> proportional ranges``
is the load-balanced steady state the background balancer converges to, so
the adapter builds the ring that way by default.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from .._rng import ensure_rng
from ..core.ids import Arc, cw_distance
from ..core.objects import DataObject, replication_range
from ..core.ring import Ring, RingNode
from ..core.scheduler import schedule_heap
from .base import Assignment, DelayEstimator, RendezvousAlgorithm, ServerInfo

__all__ = ["RoarAlgorithm"]


class RoarAlgorithm(RendezvousAlgorithm):
    name = "roar"

    def __init__(
        self,
        servers: Sequence[ServerInfo],
        p: int,
        rng: random.Random | None = None,
        n_rings: int = 1,
        proportional: bool = True,
    ) -> None:
        super().__init__(servers)
        if p < 1:
            raise ValueError("p must be >= 1")
        self.p = p
        self.rng = ensure_rng(rng)
        self.rings = self._build_rings(n_rings, proportional)
        self._node_ranges: dict[str, Arc] = {}
        self._refresh_ranges()
        self._oid_of_obj: list[float] = []

    def _build_rings(self, n_rings: int, proportional: bool) -> list[Ring]:
        groups: list[list[ServerInfo]] = [[] for _ in range(n_rings)]
        caps = [0.0] * n_rings
        for server in sorted(self.servers, key=lambda s: -s.speed):
            target = min(range(n_rings), key=lambda i: caps[i])
            groups[target].append(server)
            caps[target] += server.speed
        rings = []
        for rid, members in enumerate(groups):
            ring = Ring()
            total = sum(s.speed for s in members) or 1.0
            pos = 0.0
            for server in members:
                length = (
                    server.speed / total if proportional else 1.0 / len(members)
                )
                ring.add_node(
                    RingNode(server.name, pos, speed=server.speed, ring_id=rid)
                )
                pos += length
            rings.append(ring)
        return rings

    def _refresh_ranges(self) -> None:
        self._node_ranges = {}
        for ring in self.rings:
            for node in ring:
                self._node_ranges[node.name] = ring.range_of(node)

    @property
    def r(self) -> float:
        return len(self.servers) / self.p

    # -- storage ----------------------------------------------------------------
    def place(self, objects: Iterable[DataObject]) -> None:
        self.objects = list(objects)
        self._oid_of_obj = [o.oid for o in self.objects]
        for obj in self.objects:
            self.bytes_moved += obj.size * len(self.replica_holders(obj))

    def replica_holders(self, obj: DataObject) -> list[str]:
        arc = replication_range(obj, self.p)
        holders = []
        for ring in self.rings:
            for node in ring:
                if self._node_ranges[node.name].intersects(arc):
                    holders.append(node.name)
        return holders

    # -- queries -----------------------------------------------------------------
    def schedule(
        self,
        estimator: DelayEstimator,
        rng: random.Random | None = None,
        pq: int | None = None,
    ) -> list[Assignment]:
        pq = pq or self.p

        def node_estimator(node: RingNode, fraction: float) -> float:
            return estimator(node.name, fraction)

        # keep liveness in sync with the ServerInfo flags
        for ring in self.rings:
            for node in ring:
                node.alive = self.by_name[node.name].alive

        result = schedule_heap(self.rings, pq, node_estimator)
        return [
            Assignment(node.name, 1.0 / pq, fin)
            for node, fin in zip(result.assignment, result.finishes)
        ]

    def covered_objects(self, plan: Sequence[Assignment]) -> set[int]:
        """Objects whose replica set intersects the plan's targets, assuming
        the dedup window assignment implied by equally spaced points."""
        targeted = {a.server for a in plan}
        covered = set()
        for i, oid in enumerate(self._oid_of_obj):
            holders = set(self.replica_holders(self.objects[i]))
            if holders & targeted:
                covered.add(i)
        return covered

    def choice_count(self) -> float:
        from ..core.multiring import choices_multiring, choices_sw

        if len(self.rings) == 1:
            return choices_sw(self.r, self.p)
        return choices_multiring(self.r, self.p, len(self.rings))

    # -- reconfiguration --------------------------------------------------------------
    def change_p(self, p_new: int) -> int:
        """Grow/shrink replication arcs; returns bytes transferred.

        Shrinking arcs (p up) moves nothing; growing them (p down)
        replicates each object over the extra arc length -- the minimal
        possible transfer.
        """
        if p_new < 1:
            raise ValueError("p_new must be >= 1")
        moved = 0
        if p_new < self.p:
            extra = 1.0 / p_new - 1.0 / self.p
            for obj in self.objects:
                old_arc = replication_range(obj, self.p)
                new_tail = Arc(old_arc.end, extra)
                for ring in self.rings:
                    for node in ring:
                        node_range = self._node_ranges[node.name]
                        if node_range.intersects(new_tail) and not node_range.intersects(
                            old_arc
                        ):
                            moved += obj.size
        self.p = p_new
        self.bytes_moved += moved
        return moved
