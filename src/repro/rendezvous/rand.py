"""Randomized Distributed Rendezvous (Section 3.2; BubbleStorm-style).

Objects are replicated on ``c * r`` servers chosen by a random walk; queries
are routed to ``c * n / r`` random servers.  Coverage is probabilistic: the
chance a particular object is missed by a query is roughly the chance that
two random subsets of sizes ``c*r`` and ``c*n/r`` of an ``n``-set are
disjoint.  With the typical ``c = 2`` harvest is about 98%.

The paper sets RAND aside for data-centre use (it costs ~``c^2``x more than
deterministic algorithms for <100% harvest) -- we implement it to reproduce
that comparison and the harvest measurements.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Sequence

from .._rng import ensure_rng
from ..core.objects import DataObject
from .base import Assignment, DelayEstimator, RendezvousAlgorithm, ServerInfo

__all__ = ["Randomized", "expected_harvest"]


def expected_harvest(n: int, r: int, c: float = 2.0) -> float:
    """Probability a random query visits a random object's replica set.

    Replicas on ``c*r`` servers; query on ``c*n/r`` servers; miss
    probability is ``C(n - cr, cn/r) / C(n, cn/r)`` which is approximately
    ``(1 - c*r/n)^(c*n/r) ~= exp(-c^2)``.
    """
    replicas = min(n, int(round(c * r)))
    queried = min(n, int(round(c * n / r)))
    if replicas + queried >= n:
        return 1.0
    # exact hypergeometric complement, computed in log space
    log_miss = 0.0
    for i in range(queried):
        log_miss += math.log((n - replicas - i) / (n - i))
    return 1.0 - math.exp(log_miss)


class Randomized(RendezvousAlgorithm):
    name = "rand"

    def __init__(
        self,
        servers: Sequence[ServerInfo],
        r: int,
        c: float = 2.0,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__(servers)
        n = len(servers)
        if not 1 <= r <= n:
            raise ValueError(f"r must be in [1, n], got {r}")
        if c <= 0:
            raise ValueError("c must be positive")
        self.r = r
        self.c = c
        self.rng = ensure_rng(rng)
        self._holders_of_obj: list[list[int]] = []

    @property
    def replicas_per_object(self) -> int:
        return min(len(self.servers), int(round(self.c * self.r)))

    @property
    def servers_per_query(self) -> int:
        return min(
            len(self.servers), max(1, int(round(self.c * len(self.servers) / self.r)))
        )

    # -- storage ---------------------------------------------------------------
    def place(self, objects: Iterable[DataObject]) -> None:
        self.objects = list(objects)
        n = len(self.servers)
        k = self.replicas_per_object
        self._holders_of_obj = [
            self.rng.sample(range(n), k) for _ in self.objects
        ]
        self.bytes_moved += sum(o.size for o in self.objects) * k

    def replica_holders(self, obj: DataObject) -> list[str]:
        idx = self.objects.index(obj)
        return [self.servers[i].name for i in self._holders_of_obj[idx]]

    # -- queries -------------------------------------------------------------------
    def schedule(
        self,
        estimator: DelayEstimator,
        rng: random.Random | None = None,
    ) -> list[Assignment]:
        """Send the query to ``c*n/r`` random alive servers.

        Every targeted server scans its whole local replica set, so the work
        fraction per sub-query is the server's share of stored replicas.
        """
        rng = rng or self.rng
        alive = [i for i, s in enumerate(self.servers) if s.alive]
        count = min(len(alive), self.servers_per_query)
        chosen = rng.sample(alive, count)
        per_server = self._replicas_per_server()
        total = max(1, len(self.objects))
        plan = []
        for idx in chosen:
            fraction = per_server.get(idx, 0) / total
            name = self.servers[idx].name
            plan.append(Assignment(name, fraction, estimator(name, fraction)))
        return plan

    def _replicas_per_server(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for holders in self._holders_of_obj:
            for i in holders:
                counts[i] = counts.get(i, 0) + 1
        return counts

    def covered_objects(self, plan: Sequence[Assignment]) -> set[int]:
        targeted = {a.server for a in plan}
        index_of = {s.name: i for i, s in enumerate(self.servers)}
        target_idx = {index_of[name] for name in targeted}
        return {
            i
            for i, holders in enumerate(self._holders_of_obj)
            if target_idx.intersection(holders)
        }

    def choice_count(self) -> float:
        n = len(self.alive_servers())
        k = self.servers_per_query
        return float(math.comb(n, min(n, k)))

    # -- reconfiguration ---------------------------------------------------------------
    def change_r(self, r_new: int) -> int:
        """Extend/trim each object's random walk; returns bytes transferred."""
        n = len(self.servers)
        if not 1 <= r_new <= n:
            raise ValueError(f"r_new must be in [1, n], got {r_new}")
        old_k = self.replicas_per_object
        self.r = r_new
        new_k = self.replicas_per_object
        moved = 0
        if new_k > old_k:
            for i, holders in enumerate(self._holders_of_obj):
                available = [j for j in range(n) if j not in holders]
                extra = self.rng.sample(available, min(new_k - old_k, len(available)))
                holders.extend(extra)
                moved += self.objects[i].size * len(extra)
        elif new_k < old_k:
            for holders in self._holders_of_obj:
                del holders[new_k:]
        self.bytes_moved += moved
        return moved

    def change_p(self, p_new: int) -> int:
        n = len(self.servers)
        r_new = max(1, int(round(n / p_new)))
        return self.change_r(r_new)
