"""Dual variants of PTN and SW (Sections 3.1, 3.3).

*Dual PTN*: ``r`` clusters instead of ``p``; each object is stored once per
cluster (on a random member); a query runs on every server of one randomly
chosen cluster.  Suited to multi-data-centre deployments where a query
should complete inside one site; otherwise performs like PTN.

*Dual SW* (Glacier-style): each object is stored at ``r`` equidistant ring
points; a query covers one contiguous ``1/r`` arc.  Changing r relocates a
``1/n`` fraction of objects per step and requires per-object replica
pointers -- the administrative complexity that disqualified it.

Both are implemented for the comparison experiments that justify dropping
them from the candidate list.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from .._rng import ensure_rng
from ..core.objects import DataObject
from .base import Assignment, DelayEstimator, RendezvousAlgorithm, ServerInfo

__all__ = ["DualPTN", "DualSW"]


class DualPTN(RendezvousAlgorithm):
    name = "dual-ptn"

    def __init__(
        self,
        servers: Sequence[ServerInfo],
        r: int,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__(servers)
        if not 1 <= r <= len(servers):
            raise ValueError(f"r must be in [1, n], got {r}")
        self.r = r
        self.rng = ensure_rng(rng)
        # r clusters, round-robin by speed for balanced capacity.
        self.clusters: list[list[ServerInfo]] = [[] for _ in range(r)]
        for i, server in enumerate(sorted(servers, key=lambda s: -s.speed)):
            self.clusters[i % r].append(server)
        self._holder_of_obj: list[list[str]] = []  # one holder per cluster

    @property
    def p(self) -> float:
        return len(self.servers) / self.r

    def place(self, objects: Iterable[DataObject]) -> None:
        self.objects = list(objects)
        self._holder_of_obj = []
        for obj in self.objects:
            holders = [self.rng.choice(cluster).name for cluster in self.clusters]
            self._holder_of_obj.append(holders)
            self.bytes_moved += obj.size * self.r

    def replica_holders(self, obj: DataObject) -> list[str]:
        idx = self.objects.index(obj)
        return list(self._holder_of_obj[idx])

    def schedule(
        self,
        estimator: DelayEstimator,
        rng: random.Random | None = None,
    ) -> list[Assignment]:
        """Pick the cluster whose slowest member finishes first; the query
        runs on *all* servers of that cluster."""
        per_server = self._replica_counts()
        total = max(1, len(self.objects))
        best_plan: list[Assignment] | None = None
        best_makespan = float("inf")
        for cluster in self.clusters:
            if any(not s.alive for s in cluster):
                continue
            plan = []
            makespan = 0.0
            for server in cluster:
                fraction = per_server.get(server.name, 0) / total
                fin = estimator(server.name, fraction)
                plan.append(Assignment(server.name, fraction, fin))
                makespan = max(makespan, fin)
            if makespan < best_makespan:
                best_makespan = makespan
                best_plan = plan
        if best_plan is None:
            raise LookupError("no fully-alive cluster available")
        return best_plan

    def _replica_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for holders in self._holder_of_obj:
            for name in holders:
                counts[name] = counts.get(name, 0) + 1
        return counts

    def covered_objects(self, plan: Sequence[Assignment]) -> set[int]:
        targeted = {a.server for a in plan}
        return {
            i
            for i, holders in enumerate(self._holder_of_obj)
            if targeted.intersection(holders)
        }

    def choice_count(self) -> float:
        return float(sum(1 for c in self.clusters if all(s.alive for s in c)))

    def change_p(self, p_new: int) -> int:
        raise NotImplementedError(
            "dual PTN reconfigures by changing r (cluster count); "
            "rebuild the instance instead"
        )


class DualSW(RendezvousAlgorithm):
    name = "dual-sw"

    def __init__(
        self,
        servers: Sequence[ServerInfo],
        r: int,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__(servers)
        n = len(servers)
        if not 1 <= r <= n:
            raise ValueError(f"r must be in [1, n], got {r}")
        self.r = r
        self.rng = ensure_rng(rng)
        self._pos_of_obj: list[float] = []

    @property
    def p(self) -> float:
        return self.r  # a query covers a 1/r arc on each of... see below

    def _holder_indices(self, pos: float) -> list[int]:
        """Servers at the r equidistant replica points for ring position pos."""
        n = len(self.servers)
        out = []
        for j in range(self.r):
            point = (pos + j / self.r) % 1.0
            out.append(int(point * n) % n)
        return out

    def place(self, objects: Iterable[DataObject]) -> None:
        self.objects = list(objects)
        self._pos_of_obj = [self.rng.random() for _ in self.objects]
        self.bytes_moved += sum(o.size for o in self.objects) * self.r

    def replica_holders(self, obj: DataObject) -> list[str]:
        idx = self.objects.index(obj)
        return [
            self.servers[i].name for i in self._holder_indices(self._pos_of_obj[idx])
        ]

    def schedule(
        self,
        estimator: DelayEstimator,
        rng: random.Random | None = None,
    ) -> list[Assignment]:
        """Query all servers in the best-performing 1/r arc of the ring."""
        rng = rng or self.rng
        n = len(self.servers)
        arc_servers = max(1, n // self.r)
        best_plan: list[Assignment] | None = None
        best_makespan = float("inf")
        for start in range(self.r):
            first = start * arc_servers
            members = [self.servers[(first + j) % n] for j in range(arc_servers)]
            if any(not s.alive for s in members):
                continue
            plan = []
            makespan = 0.0
            fraction = 1.0 / n  # each server holds ~1/n of each replica set
            for server in members:
                fin = estimator(server.name, fraction * self.r)
                plan.append(Assignment(server.name, fraction * self.r, fin))
                makespan = max(makespan, fin)
            if makespan < best_makespan:
                best_makespan = makespan
                best_plan = plan
        if best_plan is None:
            raise LookupError("no fully-alive arc available")
        return best_plan

    def covered_objects(self, plan: Sequence[Assignment]) -> set[int]:
        targeted = {a.server for a in plan}
        covered = set()
        for i, pos in enumerate(self._pos_of_obj):
            holders = {
                self.servers[j].name for j in self._holder_indices(pos)
            }
            if holders & targeted:
                covered.add(i)
        return covered

    def choice_count(self) -> float:
        return float(self.r)

    def change_r(self, r_new: int) -> int:
        """Equidistant replicas relocate when r changes: ~D/n per step plus
        the new replicas themselves (the cost that disqualified dual SW)."""
        n = len(self.servers)
        if not 1 <= r_new <= n:
            raise ValueError(f"r_new must be in [1, n], got {r_new}")
        steps = abs(r_new - self.r)
        relocated = int(len(self.objects) / max(n, 1)) * steps
        new_replicas = max(0, r_new - self.r) * len(self.objects)
        mean_size = (
            sum(o.size for o in self.objects) / len(self.objects)
            if self.objects
            else 0
        )
        moved = int((relocated + new_replicas) * mean_size)
        self.r = r_new
        self.bytes_moved += moved
        return moved

    def change_p(self, p_new: int) -> int:
        return self.change_r(max(1, int(round(len(self.servers) / p_new))))
