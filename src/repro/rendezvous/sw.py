"""Sliding-Window Distributed Rendezvous -- the discrete baseline (Sec 3.3).

The ``n`` nodes form a circular *list* (discrete positions).  An object
assigned to start node ``k`` is stored on nodes ``k, k+1, ..., k+r-1``
(mod n); a query starting at node ``s`` visits ``s, s+r, s+2r, ...`` --
every ``r``-th node -- so it meets every object.  Only the starting node is
free: the scheduler has exactly ``r`` choices (evaluating all of them is
cheap), which is why SW's delay lags PTN/ROAR on heterogeneous pools.

Changing r is beautifully incremental (copy/drop one successor replica per
object) but the discrete positions make node churn disruptive -- the
weakness ROAR's continuous ring removes.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from .._rng import ensure_rng
from ..core.objects import DataObject
from .base import Assignment, DelayEstimator, RendezvousAlgorithm, ServerInfo

__all__ = ["SlidingWindow"]


class SlidingWindow(RendezvousAlgorithm):
    name = "sw"

    def __init__(
        self,
        servers: Sequence[ServerInfo],
        r: int,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__(servers)
        n = len(servers)
        if not 1 <= r <= n:
            raise ValueError(f"r must be in [1, n], got {r}")
        if n % r != 0:
            raise ValueError(
                f"discrete SW requires r | n for exact coverage (n={n}, r={r})"
            )
        self.r = r
        self.rng = ensure_rng(rng)
        self._start_of_obj: list[int] = []

    @property
    def p(self) -> int:
        return len(self.servers) // self.r

    # -- storage ------------------------------------------------------------
    def place(self, objects: Iterable[DataObject]) -> None:
        self.objects = list(objects)
        n = len(self.servers)
        self._start_of_obj = [self.rng.randrange(n) for _ in self.objects]
        self.bytes_moved += sum(o.size for o in self.objects) * self.r

    def replica_holders(self, obj: DataObject) -> list[str]:
        idx = self.objects.index(obj)
        start = self._start_of_obj[idx]
        n = len(self.servers)
        return [self.servers[(start + j) % n].name for j in range(self.r)]

    # -- queries --------------------------------------------------------------
    def query_nodes(self, start: int) -> list[int]:
        """Node indices visited by a query starting at node *start*."""
        n = len(self.servers)
        return [(start + j * self.r) % n for j in range(self.p)]

    def _work_of_node(self, node_idx: int) -> float:
        """Fraction of objects node *node_idx* matches for a query hitting it.

        A visited node matches objects whose start lies in the r-node window
        ending at it: start in (node - r, node].
        """
        if not self.objects:
            return self.r / len(self.servers)
        n = len(self.servers)
        window = {(node_idx - j) % n for j in range(self.r)}
        count = sum(1 for s in self._start_of_obj if s in window)
        return count / len(self.objects)

    def schedule(
        self,
        estimator: DelayEstimator,
        rng: random.Random | None = None,
    ) -> list[Assignment]:
        """Evaluate all r rotations; keep the one with the best makespan."""
        best_plan: list[Assignment] | None = None
        best_makespan = float("inf")
        for start in range(self.r):
            nodes = self.query_nodes(start)
            if any(not self.servers[i].alive for i in nodes):
                continue  # basic SW cannot reroute around failures
            plan = []
            makespan = 0.0
            for node_idx in nodes:
                fraction = self._work_of_node(node_idx)
                fin = estimator(self.servers[node_idx].name, fraction)
                plan.append(Assignment(self.servers[node_idx].name, fraction, fin))
                makespan = max(makespan, fin)
            if makespan < best_makespan:
                best_makespan = makespan
                best_plan = plan
        if best_plan is None:
            raise LookupError("no failure-free rotation available")
        return best_plan

    def covered_objects(self, plan: Sequence[Assignment]) -> set[int]:
        n = len(self.servers)
        index_of = {s.name: i for i, s in enumerate(self.servers)}
        covered: set[int] = set()
        for assignment in plan:
            node_idx = index_of[assignment.server]
            window = {(node_idx - j) % n for j in range(self.r)}
            covered.update(
                i for i, s in enumerate(self._start_of_obj) if s in window
            )
        return covered

    def choice_count(self) -> float:
        return float(self.r)

    # -- reconfiguration -----------------------------------------------------------
    def change_r(self, r_new: int) -> int:
        """Incremental replication change; returns bytes transferred.

        Increasing r by k: every object is copied onto its k next successor
        nodes (k*D transfers).  Decreasing: replicas are dropped, nothing
        moves.
        """
        n = len(self.servers)
        if not 1 <= r_new <= n:
            raise ValueError(f"r_new must be in [1, n], got {r_new}")
        if n % r_new != 0:
            raise ValueError(f"discrete SW requires r | n (n={n}, r={r_new})")
        moved = 0
        if r_new > self.r:
            moved = sum(o.size for o in self.objects) * (r_new - self.r)
        self.r = r_new
        self.bytes_moved += moved
        return moved

    def change_p(self, p_new: int) -> int:
        n = len(self.servers)
        if n % p_new != 0:
            raise ValueError(f"p_new must divide n (n={n}, p_new={p_new})")
        return self.change_r(n // p_new)
