"""Distributed Rendezvous algorithms: the abstraction and all baselines."""

from .base import (
    Assignment,
    RendezvousAlgorithm,
    ServerInfo,
    load_imbalance,
    partitioning_level,
)
from .dual import DualPTN, DualSW
from .ptn import PTN
from .rand import Randomized, expected_harvest
from .roar_adapter import RoarAlgorithm
from .sw import SlidingWindow

__all__ = [
    "Assignment",
    "DualPTN",
    "DualSW",
    "PTN",
    "Randomized",
    "RendezvousAlgorithm",
    "RoarAlgorithm",
    "ServerInfo",
    "SlidingWindow",
    "expected_harvest",
    "load_imbalance",
    "partitioning_level",
]
