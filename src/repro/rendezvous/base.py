"""The Distributed Rendezvous abstraction (Chapter 2, Definitions 1-3).

A Distributed Rendezvous (DR) algorithm takes ``n`` servers and a
replication level ``r`` and offers two operations: *store object* (replicate
onto r servers) and *run query* (forward to enough servers that all objects
are met -- the partitioning level ``p = n/r`` under perfect balance).

This module defines the common interface the PTN / SW / RAND / ROAR
implementations expose so the comparison experiments (Chapter 6) can drive
them interchangeably, plus the harvest/yield and load-imbalance metrics.
"""

from __future__ import annotations

import abc
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from ..core.objects import DataObject

__all__ = [
    "ServerInfo",
    "Assignment",
    "RendezvousAlgorithm",
    "load_imbalance",
    "partitioning_level",
]


def load_imbalance(assigned: Sequence[int | float]) -> float:
    """Definition 3: max assigned / mean assigned (1 = perfect, n = worst)."""
    if not assigned:
        return 1.0
    mean = sum(assigned) / len(assigned)
    if mean <= 0:
        return 1.0
    return max(assigned) / mean


def partitioning_level(n: int, r: float) -> float:
    """The r*p = n relation (Eq. 2.1) under perfect load balancing."""
    if r <= 0:
        raise ValueError("replication level must be positive")
    return n / r


@dataclass
class ServerInfo:
    """A server as seen by a placement algorithm."""

    name: str
    speed: float = 1.0
    alive: bool = True


@dataclass
class Assignment:
    """One sub-query of a planned query: target server + work share."""

    server: str
    work_fraction: float  # fraction of the total dataset this sub-query scans
    finish: float = 0.0  # scheduler's predicted completion delay


#: estimator signature shared with the core scheduler: predicted finish
#: delay for a sub-query covering ``fraction`` of the dataset on ``server``.
DelayEstimator = Callable[[str, float], float]


class RendezvousAlgorithm(abc.ABC):
    """Interface every DR implementation provides."""

    name: str = "abstract"

    def __init__(self, servers: Sequence[ServerInfo]) -> None:
        if not servers:
            raise ValueError("need at least one server")
        self.servers = list(servers)
        self.by_name = {s.name: s for s in self.servers}
        self.objects: list[DataObject] = []
        self.bytes_moved = 0  # replica traffic from placement/reconfiguration

    # -- storage --------------------------------------------------------------
    @abc.abstractmethod
    def place(self, objects: Iterable[DataObject]) -> None:
        """Assign replicas for *objects* (replacing any current placement)."""

    @abc.abstractmethod
    def replica_holders(self, obj: DataObject) -> list[str]:
        """Names of the servers holding a replica of *obj*."""

    def store_counts(self) -> dict[str, int]:
        """Replica count per server (for load-imbalance measurements)."""
        counts = {s.name: 0 for s in self.servers}
        for obj in self.objects:
            for name in self.replica_holders(obj):
                counts[name] += 1
        return counts

    def data_imbalance(self) -> float:
        return load_imbalance(list(self.store_counts().values()))

    # -- queries ---------------------------------------------------------------
    @abc.abstractmethod
    def schedule(
        self,
        estimator: DelayEstimator,
        rng: random.Random | None = None,
    ) -> list[Assignment]:
        """Plan one query: choose a target server for every sub-query,
        minimising predicted makespan within the algorithm's choice space."""

    @abc.abstractmethod
    def covered_objects(self, plan: Sequence[Assignment]) -> set[int]:
        """Indices (into ``self.objects``) of objects a plan would visit.

        Used to measure *harvest* (Brewer): deterministic algorithms return
        everything; randomized ones may miss objects.
        """

    def harvest(self, plan: Sequence[Assignment]) -> float:
        if not self.objects:
            return 1.0
        return len(self.covered_objects(plan)) / len(self.objects)

    # -- reconfiguration ---------------------------------------------------------
    @abc.abstractmethod
    def change_p(self, p_new: int) -> int:
        """Move to partitioning level *p_new*; returns bytes transferred."""

    # -- introspection -------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.servers)

    def alive_servers(self) -> list[ServerInfo]:
        return [s for s in self.servers if s.alive]

    def choice_count(self) -> float:
        """Number of distinct server combinations available per query."""
        raise NotImplementedError
