"""Control policies: observe a :class:`MetricsSnapshot`, actuate the system.

Two knobs make ROAR elastic (Sections 4.5 / 4.9):

* the **server set** -- the membership server can insert servers at hot
  spots or drain cool ones (the cloud "add/remove machines" knob);
* the **partitioning level** -- ``p`` (and the query-time ``pq``) trade
  per-server work against per-sub-query fixed overheads, and can be walked
  online through :class:`~repro.core.reconfig.Reconfigurator`.

Controllers here close the loop over those knobs.  They never touch the
deployment directly: every actuation goes through a :class:`ControlTarget`
adapter, so the same policy drives a full :class:`~repro.cluster.Deployment`
in the scenario runner and a stub in unit tests.

The policy style follows threshold controllers from congestion control
(AIMD flavoured): react multiplicatively-ish to SLO violations, recover
conservatively, and impose a cooldown so the loop cannot oscillate faster
than its own measurement window.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from .metrics import MetricsSnapshot

__all__ = [
    "ControlAction",
    "ControlTarget",
    "FrontendPool",
    "Controller",
    "SLOElasticityController",
    "RepartitionController",
    "FrontendElasticityController",
]


@dataclass(frozen=True)
class ControlAction:
    """One actuation, kept for the scenario audit trail."""

    time: float
    controller: str
    kind: str  # add_server | remove_server | set_pq | request_p | ...
    detail: str
    value: float | None = None


class ControlTarget(Protocol):
    """What a deployment must expose for the controllers to drive it."""

    @property
    def n_servers(self) -> int: ...

    @property
    def pq(self) -> int: ...

    @property
    def p_store(self) -> float: ...

    @property
    def reconfig_stable(self) -> bool: ...

    @property
    def p_safety_cap(self) -> int | None:
        """Highest p the data layer tolerates right now (None = unbounded).

        With failed nodes on the ring, replacement sub-queries need
        ``1/p`` to exceed the widest dead range (Section 4.4)."""
        ...

    def set_pq(self, pq: int) -> None: ...

    def request_p(self, p_new: int) -> bool: ...

    def add_server(self) -> str: ...

    def remove_server(self) -> str | None: ...


class FrontendPool(Protocol):
    """Actuation surface for front-end scaling."""

    @property
    def n_frontends(self) -> int: ...

    def add_frontend(self) -> None: ...

    def remove_frontend(self) -> None: ...


class Controller(ABC):
    """Base class: cooldown gating plus an action audit trail."""

    name = "controller"

    def __init__(self, cooldown: float = 10.0) -> None:
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.cooldown = cooldown
        self.actions: list[ControlAction] = []
        self._last_action = -math.inf
        #: optional :class:`~repro.obs.audit.DecisionLog`; when attached,
        #: every tick leaves a structured record -- actions with their
        #: inputs, and explicit holds with the reason (no-signal /
        #: cooldown / steady).
        self.decision_log = None

    def step(
        self,
        now: float,
        snapshot: MetricsSnapshot,
        query_index: int = -1,
    ) -> list[ControlAction]:
        """Evaluate the policy once; returns the actions it took.

        *query_index* is the exact arrival-stream index the tick landed
        at (from the engine's action queue); it only feeds the attached
        decision log and never influences the policy.
        """
        log = self.decision_log
        if snapshot.n_queries == 0:
            if log is not None:
                log.record_hold(now, query_index, self.name, "no-signal", snapshot)
            return []  # no signal yet; don't steer blind
        if now - self._last_action < self.cooldown:
            if log is not None:
                log.record_hold(now, query_index, self.name, "cooldown", snapshot)
            return []
        actions = self.decide(now, snapshot)
        if actions:
            self._last_action = now
            self.actions.extend(actions)
            if log is not None:
                for action in actions:
                    log.record_action(action, query_index, snapshot)
        elif log is not None:
            log.record_hold(now, query_index, self.name, "steady", snapshot)
        return actions

    @abstractmethod
    def decide(self, now: float, snapshot: MetricsSnapshot) -> list[ControlAction]:
        """Policy body; called only when the cooldown has expired."""

    def _act(
        self, now: float, kind: str, detail: str, value: float | None = None
    ) -> ControlAction:
        return ControlAction(now, self.name, kind, detail, value)


class SLOElasticityController(Controller):
    """Grow/shrink the server set to hold a p99 latency SLO.

    Scale-out triggers on either signal: the tail SLO is violated, or mean
    utilisation exceeds the high watermark (the queueing knee is close).
    The step size scales with how badly the SLO is blown -- a flash crowd
    that pushes p99 to several times the target gets several servers per
    decision, not a one-at-a-time drip that loses the race with the queue.
    Scale-in requires *both* comfortable latency and a cool pool, retires
    one server at a time, and obeys its own (much longer) cooldown --
    growth is urgent, shrink is thrift.
    """

    name = "slo-elasticity"

    def __init__(
        self,
        target: ControlTarget,
        slo_p99: float,
        min_servers: int = 2,
        max_servers: int = 256,
        high_utilisation: float = 0.75,
        low_utilisation: float = 0.20,
        shrink_margin: float = 0.4,
        max_grow_step: int = 4,
        cooldown: float = 10.0,
        shrink_cooldown: float | None = None,
    ) -> None:
        super().__init__(cooldown)
        if slo_p99 <= 0:
            raise ValueError("slo_p99 must be positive")
        if not min_servers <= max_servers:
            raise ValueError("min_servers must be <= max_servers")
        self.target = target
        self.slo_p99 = slo_p99
        self.min_servers = min_servers
        self.max_servers = max_servers
        self.high_utilisation = high_utilisation
        self.low_utilisation = low_utilisation
        self.shrink_margin = shrink_margin
        self.max_grow_step = max(1, max_grow_step)
        self.shrink_cooldown = (
            6 * cooldown if shrink_cooldown is None else shrink_cooldown
        )
        self._last_shrink = -math.inf

    def _grow_step(self, p99: float, util: float) -> int:
        """Servers to add, proportional to the severity of the breach."""
        severity = 1.0
        if not math.isnan(p99):
            severity = max(severity, p99 / self.slo_p99)
        if not math.isnan(util) and self.high_utilisation > 0:
            severity = max(severity, util / self.high_utilisation)
        return min(self.max_grow_step, max(1, int(math.ceil(severity - 1.0))))

    def decide(self, now: float, snapshot: MetricsSnapshot) -> list[ControlAction]:
        p99 = snapshot.p99
        util = snapshot.mean_utilisation
        n = self.target.n_servers
        actions: list[ControlAction] = []
        # Deep queues mean work already committed beyond the next window --
        # a leading indicator the latency percentiles only confirm later.
        queued = snapshot.max_queue_depth > self.slo_p99
        hot = (
            (not math.isnan(p99) and p99 > self.slo_p99)
            or util > self.high_utilisation  # False while util is NaN
            or queued
        )
        # Shrinking demands positive evidence of idleness: a NaN utilisation
        # (no full sampling interval yet) must not read as "cool".
        cool = (
            not math.isnan(p99)
            and p99 < self.shrink_margin * self.slo_p99
            and not math.isnan(util)
            and util < self.low_utilisation
            and not queued
        )
        if hot and n < self.max_servers:
            step = min(self._grow_step(p99, util), self.max_servers - n)
            for _ in range(step):
                name = self.target.add_server()
                actions.append(
                    self._act(
                        now,
                        "add_server",
                        f"p99={p99 * 1e3:.0f}ms util={util:.0%} -> +{name}",
                        value=self.target.n_servers,
                    )
                )
        elif cool and n > self.min_servers:
            if now - self._last_shrink < self.shrink_cooldown:
                return actions
            name = self.target.remove_server()
            if name is not None:
                self._last_shrink = now
                actions.append(
                    self._act(
                        now,
                        "remove_server",
                        f"p99={p99 * 1e3:.0f}ms util={util:.0%} -> -{name}",
                        value=self.target.n_servers,
                    )
                )
        return actions


class RepartitionController(Controller):
    """Walk the partitioning level online to hold the SLO (Section 4.5).

    * Tail latency above the SLO, or load imbalance past the threshold:
      *increase* p.  Arcs shrink, so the new level is immediately safe --
      the controller raises ``pq`` in the same tick and replica drops
      proceed in the background.  More partitioning only helps when delay
      is service-time dominated, so the step is gated on utilisation
      headroom: a saturated pool is the elasticity controller's problem,
      and adding per-sub-query overheads there makes things worse.
    * Latency comfortably under the SLO: *decrease* p to shed fixed
      overheads and query bandwidth.  Arcs grow, so queries must keep the
      old ``pq`` until every node's download completes; the deferred
      ``pq`` drop happens in a later tick once the reconfigurator
      re-stabilises.

    With *planner* set, the policy instead steps toward the partitioning
    level :func:`repro.analysis.planner.recommend_configuration` picks from
    the *measured* arrival rate -- the Chapter 2 advisor consuming live
    metrics rather than closed-form inputs.
    """

    name = "repartition"

    def __init__(
        self,
        target: ControlTarget,
        slo_p99: float,
        p_min: int = 1,
        p_max: int = 64,
        imbalance_threshold: float = 2.0,
        imbalance_latency_gate: float = 0.7,
        shrink_margin: float = 0.4,
        util_ceiling: float = 0.60,
        cooldown: float = 15.0,
        planner: Callable[[MetricsSnapshot], int | None] | None = None,
    ) -> None:
        super().__init__(cooldown)
        if slo_p99 <= 0:
            raise ValueError("slo_p99 must be positive")
        if not 1 <= p_min <= p_max:
            raise ValueError("need 1 <= p_min <= p_max")
        self.target = target
        self.slo_p99 = slo_p99
        self.p_min = p_min
        self.p_max = p_max
        self.imbalance_threshold = imbalance_threshold
        self.imbalance_latency_gate = imbalance_latency_gate
        self.shrink_margin = shrink_margin
        self.util_ceiling = util_ceiling
        self.planner = planner

    def _clamp(self, p: int) -> int:
        p = max(self.p_min, min(self.p_max, p))
        cap = self.target.p_safety_cap
        if cap is not None:
            # Availability beats the configured floor: above the cap a dead
            # node's range cannot be re-covered.
            p = min(p, max(1, cap))
        return p

    def _desired_p(self, snapshot: MetricsSnapshot) -> int:
        """Where the policy wants p, before rate limiting to one step."""
        current = self.target.pq
        if self.planner is not None:
            rec = self.planner(snapshot)
            if rec is not None:
                return self._clamp(rec)
            return self._clamp(current)
        p99 = snapshot.p99
        util = snapshot.mean_utilisation
        latency_hot = not math.isnan(p99) and p99 > self.slo_p99
        # Heterogeneous pools show chronic max/mean skew even when healthy;
        # imbalance only justifies more partitioning when the tail is
        # actually approaching the SLO, otherwise p ratchets up for nothing.
        imbalanced = (
            snapshot.load_imbalance > self.imbalance_threshold
            and not math.isnan(util)
            and util > 0.05
            and not math.isnan(p99)
            and p99 > self.imbalance_latency_gate * self.slo_p99
        )
        if (latency_hot or imbalanced) and (
            not math.isnan(util) and util < self.util_ceiling
        ):
            return self._clamp(current + 1)
        if not math.isnan(p99) and p99 < self.shrink_margin * self.slo_p99:
            return self._clamp(current - 1)
        return self._clamp(current)

    def decide(self, now: float, snapshot: MetricsSnapshot) -> list[ControlAction]:
        actions: list[ControlAction] = []
        if not self.target.reconfig_stable:
            return actions  # one level change in flight at a time
        floor = int(math.ceil(self.target.p_store - 1e-9))
        desired = self._desired_p(snapshot)
        current = self.target.pq
        if desired == current:
            return actions
        step = current + 1 if desired > current else current - 1
        if step > current:
            # p up: shrinking arcs, instantly safe to raise pq.
            if self.target.request_p(step):
                self.target.set_pq(step)
                actions.append(
                    self._act(
                        now,
                        "request_p",
                        f"p {current} -> {step} (shrink arcs; pq raised now)",
                        value=step,
                    )
                )
        else:
            if step < floor:
                # Must first re-replicate down to `step`; queries keep the
                # old pq until the downloads complete.
                if self.target.request_p(step):
                    actions.append(
                        self._act(
                            now,
                            "request_p",
                            f"p {floor} -> {step} (grow arcs; pq drops when "
                            "downloads finish)",
                            value=step,
                        )
                    )
            else:
                # Replicas already cover the lower level; drop pq directly.
                self.target.set_pq(step)
                actions.append(
                    self._act(
                        now, "set_pq", f"pq {current} -> {step}", value=step
                    )
                )
        return actions


class FrontendElasticityController(Controller):
    """Scale the number of decoupled front-ends over a shared pool.

    Front-end pressure shows up as *scheduling* latency, not server load:
    the signal is queries-per-second per front-end against a nominal
    capacity, with the p99 SLO as an emergency trigger.
    """

    name = "frontend-elasticity"

    def __init__(
        self,
        pool: FrontendPool,
        qps_per_frontend: float,
        slo_p99: float | None = None,
        min_frontends: int = 1,
        max_frontends: int = 16,
        cooldown: float = 10.0,
    ) -> None:
        super().__init__(cooldown)
        if qps_per_frontend <= 0:
            raise ValueError("qps_per_frontend must be positive")
        self.pool = pool
        self.qps_per_frontend = qps_per_frontend
        self.slo_p99 = slo_p99
        self.min_frontends = min_frontends
        self.max_frontends = max_frontends

    def decide(self, now: float, snapshot: MetricsSnapshot) -> list[ControlAction]:
        k = self.pool.n_frontends
        per_fe = snapshot.qps / max(k, 1)
        slo_breach = (
            self.slo_p99 is not None
            and not math.isnan(snapshot.p99)
            and snapshot.p99 > self.slo_p99
        )
        actions: list[ControlAction] = []
        if (per_fe > self.qps_per_frontend or slo_breach) and k < self.max_frontends:
            self.pool.add_frontend()
            actions.append(
                self._act(
                    now,
                    "add_frontend",
                    f"{per_fe:.1f} qps/frontend over {self.qps_per_frontend:.1f}",
                    value=self.pool.n_frontends,
                )
            )
        elif per_fe < 0.4 * self.qps_per_frontend and k > self.min_frontends:
            self.pool.remove_frontend()
            actions.append(
                self._act(
                    now,
                    "remove_frontend",
                    f"{per_fe:.1f} qps/frontend under capacity",
                    value=self.pool.n_frontends,
                )
            )
        return actions
