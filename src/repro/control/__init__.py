"""Closed-loop control plane: live metrics, SLO elasticity, online re-partitioning.

The paper's mechanisms (ring edits, :mod:`repro.core.reconfig`, the heap
scheduler) make ROAR *able* to change shape online; this subpackage adds the
thing that *decides* to.  It observes a running deployment through sliding
metric windows, and drives the two elastic knobs -- the server set and the
partitioning level -- from SLO-style policies, with scenarios (flash crowds,
diurnal cycles, correlated rack failures) to exercise the loop end-to-end.
"""

from .controllers import (
    ControlAction,
    Controller,
    FrontendElasticityController,
    RepartitionController,
    SLOElasticityController,
)
from .metrics import (
    LatencyHistogram,
    MetricsCollector,
    MetricsSnapshot,
    SlidingWindow,
)
from .runner import (
    SCENARIOS,
    DeploymentActuator,
    ScenarioConfig,
    ScenarioReport,
    ScenarioRunner,
    run_scenario,
)

__all__ = [
    "SCENARIOS",
    "ControlAction",
    "Controller",
    "DeploymentActuator",
    "FrontendElasticityController",
    "LatencyHistogram",
    "MetricsCollector",
    "MetricsSnapshot",
    "RepartitionController",
    "SLOElasticityController",
    "ScenarioConfig",
    "ScenarioReport",
    "ScenarioRunner",
    "SlidingWindow",
    "run_scenario",
]
