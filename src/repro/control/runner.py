"""Closed-loop scenario runner: workload -> metrics -> controller -> actuation.

This wires the pieces into one simulated elastic system:

* a :class:`~repro.cluster.Deployment` (real scheduler, Definition 8
  servers, reconfigurator-backed object stores) serves queries;
* a dynamic workload (flash crowd, compressed diurnal cycle, or a
  correlated rack failure under steady load) perturbs it;
* a :class:`~repro.control.metrics.MetricsCollector` watches latency and
  load over sliding windows;
* controllers react on a periodic tick through a
  :class:`DeploymentActuator`, growing/shrinking the server set and
  walking ``p`` online via :class:`~repro.core.reconfig.Reconfigurator`
  -- replica downloads/drops are spread over simulated time, exactly the
  "change p without downtime" story of Section 4.5.

Queries are served through the **batched engine**
(:func:`~repro.sim.fastpath.run_queries_fast`): the whole arrival trace
is one engine call, and every stimulus -- control tick, rack failure,
delayed rebuild -- is compiled to an exact-time
:class:`~repro.sim.fastpath.Action` bound to the precise query index
where its timestamp falls, the same scheme the scenario-matrix runner
uses.  That replaces the old per-query ``Simulation`` loop (one event +
one ``run_query`` per arrival) for the engine's ~15-50x win; discrete
background work (reconfiguration node steps, delayed grows) is pumped at
every action instant, i.e. at least once per control interval.

The run produces a :class:`ScenarioReport` with the action audit trail and
the before/crisis/after p99 comparison the benchmarks assert on.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..analysis.planner import recommend_from_metrics
from ..cluster.deployment import Deployment, DeploymentConfig
from ..cluster.models import MODEL_CATALOGUE, ServerModel, hen_testbed
from ..core.reconfig import ReconfigPhase
from ..sim.engine import Simulation
from ..sim.fastpath import Action
from ..sim.tracing import DelayLog, percentile
from ..obs.audit import DecisionLog
from ..sim.workload import DiurnalTrace, FlashCrowdTrace, arrivals_from_rate_fn
from .controllers import (
    ControlAction,
    Controller,
    RepartitionController,
    SLOElasticityController,
)
from .metrics import MetricsCollector, MetricsSnapshot

__all__ = [
    "SCENARIOS",
    "ScenarioConfig",
    "ScenarioReport",
    "DeploymentActuator",
    "ScenarioRunner",
    "run_scenario",
]

SCENARIOS = ("flash-crowd", "diurnal", "rack-failure")


@dataclass
class ScenarioConfig:
    """Everything one closed-loop run needs."""

    scenario: str = "flash-crowd"
    n_servers: int = 16
    p0: int = 4
    duration: float = 240.0
    #: queries/sec before the stimulus; None auto-calibrates to ~35% load.
    base_rate: float | None = None
    slo_p99: float = 1.0
    seed: int = 1
    control_interval: float = 5.0
    metrics_window: float = 20.0
    dataset_size: float = 2_000_000.0
    #: which policies close the loop.
    policies: tuple[str, ...] = ("elasticity", "repartition")
    #: repartition policy consults the live-metrics planner instead of
    #: thresholds (analysis layer in the loop).
    use_planner: bool = False
    min_servers: int | None = None  # default max(2, n_servers // 2)
    max_servers: int | None = None  # default 2 * n_servers
    p_min: int | None = None  # default max(1, p0 - 2)
    p_max: int | None = None  # default min(4 * p0, n_servers)
    growth_model: str = "dell-1950"
    #: flash-crowd stimulus.
    surge_factor: float = 4.0
    #: rack-failure stimulus: how many co-failing servers.
    rack_size: int = 3
    #: seconds after a rack failure before membership declares the nodes
    #: permanently dead and redistributes their ranges (Section 4.9).
    rebuild_delay: float = 45.0
    #: seconds a replica-grow (p decrease) takes across the ring.
    grow_seconds: float = 20.0
    #: seconds background replica drops (p increase) take.
    drop_seconds: float = 4.0
    n_objects_stored: int = 240

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; pick one of {SCENARIOS}"
            )
        known = {"elasticity", "repartition"}
        unknown = [p for p in self.policies if p not in known]
        if unknown or not self.policies:
            raise ValueError(
                f"unknown policies {unknown!r}; pick from {sorted(known)}"
            )
        if self.n_servers < 3:
            raise ValueError("need at least 3 servers")
        if not 1 <= self.p0 <= self.n_servers:
            raise ValueError("need 1 <= p0 <= n_servers")
        if self.min_servers is None:
            self.min_servers = max(2, self.n_servers // 2)
        if self.max_servers is None:
            self.max_servers = 2 * self.n_servers
        if self.p_min is None:
            self.p_min = max(1, self.p0 - 2)
        if self.p_max is None:
            self.p_max = max(self.p0, min(4 * self.p0, self.n_servers))


@dataclass
class ScenarioReport:
    """Outcome of one closed-loop run."""

    config: ScenarioConfig
    stimulus_time: float
    actions: list[ControlAction]
    #: (time, pq, p_store, n_servers) at every control tick.
    timeline: list[tuple[float, int, float, int]]
    snapshots: list[MetricsSnapshot]
    p99_before: float
    p99_crisis: float
    p99_after: float
    log: DelayLog
    #: the run's :class:`~repro.obs.audit.DecisionLog` -- one structured
    #: record per controller tick (actions and holds) with the window
    #: inputs and the exact query index each tick landed at.
    decisions: DecisionLog | None = None

    @property
    def adapted(self) -> bool:
        """Did the control plane change p or the server set mid-run?"""
        return bool(self.actions)

    @property
    def recovered(self) -> bool:
        """Did tail latency come back down after adaptation?"""
        if math.isnan(self.p99_after):
            return False
        if not math.isnan(self.p99_crisis) and self.p99_after < self.p99_crisis:
            return True
        return self.p99_after <= self.config.slo_p99

    def summary(self) -> str:
        cfg = self.config
        lines = [
            f"scenario       : {cfg.scenario}",
            f"servers        : {cfg.n_servers} initially, "
            f"{self.timeline[-1][3] if self.timeline else cfg.n_servers} finally",
            f"p / pq         : {cfg.p0} initially, "
            f"{self.timeline[-1][2]:g} / {self.timeline[-1][1]} finally"
            if self.timeline
            else f"p              : {cfg.p0}",
            f"queries run    : {len(self.log.records)}",
            f"SLO (p99)      : {cfg.slo_p99 * 1000:.0f} ms",
            f"p99 before     : {self.p99_before * 1000:.0f} ms",
            f"p99 crisis     : {self.p99_crisis * 1000:.0f} ms",
            f"p99 after      : {self.p99_after * 1000:.0f} ms",
            f"adapted        : {self.adapted} ({len(self.actions)} actions)",
            f"recovered      : {self.recovered}",
        ]
        if self.actions:
            lines.append("control actions:")
            for act in self.actions:
                lines.append(
                    f"  t={act.time:7.1f}s  [{act.controller}] "
                    f"{act.kind}: {act.detail}"
                )
        return "\n".join(lines)


class DeploymentActuator:
    """:class:`~repro.control.controllers.ControlTarget` over a Deployment.

    Owns the live ``pq`` setting and translates controller intents into
    deployment edits; replica movement for level changes is spread across
    simulated time via scheduled per-node reconfiguration steps.
    """

    def __init__(
        self, deployment: Deployment, sim: Simulation, config: ScenarioConfig
    ) -> None:
        self.deployment = deployment
        self.sim = sim
        self.config = config
        self.pq = max(config.p0, int(math.ceil(deployment.p_store - 1e-9)))
        #: (time, event) trail of reconfiguration lifecycle moments.
        self.reconfig_trail: list[tuple[float, str]] = []

    # -- ControlTarget surface ---------------------------------------------
    @property
    def n_servers(self) -> int:
        return len(self.deployment.servers)

    @property
    def p_store(self) -> float:
        return self.deployment.p_store

    @property
    def reconfig_stable(self) -> bool:
        rc = self.deployment.reconfig
        return rc is None or rc.phase == ReconfigPhase.STABLE

    @property
    def p_safety_cap(self) -> int | None:
        worst = self.deployment.max_dead_range()
        if worst <= 0.0:
            return None
        return max(1, int(1.0 / worst - 1e-6))

    def set_pq(self, pq: int) -> None:
        floor = int(math.ceil(self.deployment.p_store - 1e-9))
        self.pq = max(int(pq), floor, 1)

    def request_p(self, p_new: int) -> bool:
        rc = self.deployment.reconfig
        if rc is None or rc.phase != ReconfigPhase.STABLE:
            return False
        if p_new == rc.p_target:
            return False
        status = rc.request_p(p_new)
        span = (
            self.config.drop_seconds
            if status.phase == ReconfigPhase.SHRINKING_REPLICAS
            else self.config.grow_seconds
        )
        names = sorted(node.name for node in rc.ring)
        self.reconfig_trail.append((self.sim.now, f"p->{p_new} begin"))
        for i, name in enumerate(names):
            self.sim.schedule(
                span * (i + 1) / len(names), self._make_node_step(rc, name)
            )
        return True

    def _make_node_step(self, rc, name: str) -> Callable[[], None]:
        def step() -> None:
            rc.node_step(name)
            if rc.phase == ReconfigPhase.STABLE and (
                not self.reconfig_trail
                or not self.reconfig_trail[-1][1].endswith("complete")
            ):
                self.reconfig_trail.append(
                    (self.sim.now, f"p={rc.p_store:g} complete")
                )

        return step

    def add_server(self) -> str:
        model = MODEL_CATALOGUE[self.config.growth_model]
        return self.deployment.add_server(model, now=self.sim.now)

    def remove_server(self) -> str | None:
        ring = self.deployment.rings[0]
        if len(ring) <= 1:
            return None
        cool = self.deployment.membership.coolest_node(ring)
        if cool is None:
            return None
        self.deployment.remove_server(cool.name, now=self.sim.now)
        return cool.name


def _auto_base_rate(
    models: Sequence[ServerModel], cfg: ScenarioConfig, target_util: float = 0.30
) -> float:
    """Arrival rate putting the initial pool at ~*target_util* utilisation."""
    mean_speed = sum(m.speed(True) for m in models) / len(models)
    mean_fixed = sum(m.fixed_overhead for m in models) / len(models)
    service = mean_fixed + (cfg.dataset_size / cfg.p0) / mean_speed
    return target_util * cfg.n_servers / (cfg.p0 * service)


class ScenarioRunner:
    """Builds and executes one closed-loop scenario."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.sim = Simulation()
        models = hen_testbed(config.n_servers)
        self.deployment = Deployment(
            DeploymentConfig(
                models=models,
                p=config.p0,
                dataset_size=config.dataset_size,
                seed=config.seed,
                store_objects=True,
                n_objects_stored=config.n_objects_stored,
            )
        )
        self.collector = MetricsCollector(window=config.metrics_window).attach(
            self.deployment
        )
        self.actuator = DeploymentActuator(self.deployment, self.sim, config)
        self.decision_log = DecisionLog()
        self.controllers: list[Controller] = self._build_controllers(models)
        for controller in self.controllers:
            controller.decision_log = self.decision_log
        self.base_rate = (
            config.base_rate
            if config.base_rate is not None
            else _auto_base_rate(models, config)
        )
        self.rate_fn, self.max_rate, self.stimulus_time = self._build_workload()
        self.timeline: list[tuple[float, int, float, int]] = []

    # -- assembly ----------------------------------------------------------
    def _build_controllers(self, models: Sequence[ServerModel]) -> list[Controller]:
        cfg = self.config
        out: list[Controller] = []
        if "elasticity" in cfg.policies:
            out.append(
                SLOElasticityController(
                    self.actuator,
                    slo_p99=cfg.slo_p99,
                    min_servers=cfg.min_servers,
                    max_servers=cfg.max_servers,
                    cooldown=2 * cfg.control_interval,
                )
            )
        if "repartition" in cfg.policies:
            planner = self._planner_fn(models) if cfg.use_planner else None
            out.append(
                RepartitionController(
                    self.actuator,
                    slo_p99=cfg.slo_p99,
                    p_min=cfg.p_min,
                    p_max=cfg.p_max,
                    cooldown=3 * cfg.control_interval,
                    planner=planner,
                )
            )
        return out

    def _planner_fn(
        self, models: Sequence[ServerModel]
    ) -> Callable[[MetricsSnapshot], int | None]:
        cfg = self.config
        mean_fixed = sum(m.fixed_overhead for m in models) / len(models)

        def recommend(snapshot: MetricsSnapshot) -> int | None:
            speeds = [
                s.speed
                for s in self.deployment.servers.values()
                if not s.failed
            ]
            if not speeds:
                return None
            rec = recommend_from_metrics(
                snapshot,
                dataset_size=cfg.dataset_size,
                speeds=speeds,
                # the advisor targets *mean* delay; mean ~ half the tail SLO
                target_delay=cfg.slo_p99 / 2.0,
                fixed_overhead=mean_fixed,
            )
            return rec.chosen.p if rec.chosen is not None else None

        return recommend

    def _build_workload(self):
        cfg = self.config
        if cfg.scenario == "flash-crowd":
            trace = FlashCrowdTrace(
                base_rate=self.base_rate,
                surge_factor=cfg.surge_factor,
                surge_start=0.25 * cfg.duration,
                surge_duration=0.30 * cfg.duration,
                decay=0.05 * cfg.duration,
            )
            return trace.rate, trace.peak_rate, trace.surge_start
        if cfg.scenario == "diurnal":
            trace = DiurnalTrace(
                base_rate=self.base_rate,
                period=cfg.duration,
                peak_to_trough=3.0,
                phase=-math.pi / 2.0,  # start at the trough, peak mid-run
            )
            peak = self.base_rate * (1.0 + trace.amplitude)
            return trace.rate, peak, 0.5 * cfg.duration
        # rack-failure: steady load, correlated fail-stop mid-run.
        rate = self.base_rate
        return (lambda t: rate), rate, 0.40 * cfg.duration

    # -- execution ---------------------------------------------------------
    def _fail_rack(self, now: float) -> list[str]:
        """Fail one rack: a contiguous block of machine indices.

        Rack-mates are physically adjacent but scattered around the ring by
        the balanced layout, so coverage survives and the failure fall-back
        (Section 4.4) reroutes their sub-queries.  Returns the victims so
        the rebuild action knows which ranges to give up on later.
        """
        names = sorted(
            self.deployment.servers,
            key=lambda n: int(n.split("-")[-1]),
        )[: self.config.rack_size]
        for name in names:
            self.deployment.fail_node(name, now)
        return names

    def _rebuild_after(self, names: Sequence[str], now: float) -> None:
        """Membership gives up on the rack: redistribute the dead ranges."""
        for name in names:
            if name in self.deployment.servers and self.deployment.servers[name].failed:
                self.deployment.handle_long_term_failure(name, now=now)

    def _tick(self, now: float, query_index: int = -1) -> None:
        self.collector.sample_servers(now, self.deployment.servers)
        snapshot = self.collector.snapshot(now)
        for controller in self.controllers:
            controller.step(now, snapshot, query_index=query_index)
        self.timeline.append(
            (
                now,
                self.actuator.pq,
                self.deployment.p_store,
                len(self.deployment.servers),
            )
        )

    def run(self) -> ScenarioReport:
        """One batched-engine call over the whole trace, stimuli as actions.

        Every stimulus lands between the last query arriving at or before
        its timestamp and the first one after it -- the exact event-time
        semantics of the scenario-matrix runner.  Each action's callback
        pumps the discrete-event simulation up to its instant first, so
        background reconfiguration steps fire at least once per control
        interval (exactly as often as the old per-query loop observed
        them between ticks).
        """
        cfg = self.config
        arrivals = arrivals_from_rate_fn(
            self.rate_fn,
            horizon=cfg.duration,
            max_rate=self.max_rate,
            seed=cfg.seed + 101,
        )
        actions: list[Action] = []

        def at(t: float, fn, scope: str, pass_index: bool = False) -> None:
            if t > cfg.duration:
                # beyond the horizon: the old Simulation loop never ran
                # events past `until=duration` (e.g. a rebuild_delay that
                # outlives the run) -- keep that semantics exactly
                return

            index = bisect_right(arrivals, t)

            def fire(now: float) -> int:
                self.sim.run(until=now)
                if pass_index:
                    fn(now, query_index=index)
                else:
                    fn(now)
                return self.actuator.pq

            actions.append(Action(index=index, time=t, fn=fire, scope=scope))

        if cfg.scenario == "rack-failure":
            victims: list[str] = []

            def fail(now: float) -> None:
                victims.extend(self._fail_rack(now))

            at(self.stimulus_time, fail, "values")
            # the delayed give-up redistributes the dead ranges: membership
            at(
                self.stimulus_time + cfg.rebuild_delay,
                lambda now: self._rebuild_after(victims, now),
                "membership",
            )
        # control ticks can grow/shrink the fleet and pump reconfiguration:
        # conservatively membership-scoped, exactly like the matrix runner
        t = cfg.control_interval
        while t <= cfg.duration:
            at(t, self._tick, "membership", pass_index=True)
            t += cfg.control_interval

        actions.sort(key=lambda a: a.index)
        self.deployment.run_queries_fast(
            arrivals, self.actuator.pq, actions=actions
        )
        self.sim.run(until=cfg.duration)  # drain trailing background work
        return self._report()

    # -- reporting ---------------------------------------------------------
    def _p99_between(self, t0: float, t1: float) -> float:
        delays = [
            r.delay
            for r in self.deployment.log.records
            if t0 <= r.arrival < t1
        ]
        return percentile(delays, 99) if delays else math.nan

    def _report(self) -> ScenarioReport:
        cfg = self.config
        t_s = self.stimulus_time
        crisis_span = 0.25 * cfg.duration
        actions = [a for c in self.controllers for a in c.actions]
        actions.sort(key=lambda a: a.time)
        return ScenarioReport(
            config=cfg,
            stimulus_time=t_s,
            actions=actions,
            timeline=self.timeline,
            snapshots=self.collector.snapshots,
            p99_before=self._p99_between(0.0, t_s),
            p99_crisis=self._p99_between(t_s, t_s + crisis_span),
            p99_after=self._p99_between(
                cfg.duration - 0.20 * cfg.duration, cfg.duration + math.inf
            ),
            log=self.deployment.log,
            decisions=self.decision_log,
        )


def run_scenario(config: ScenarioConfig | None = None, **kwargs) -> ScenarioReport:
    """One-call convenience: build a runner from kwargs and execute it."""
    if config is None:
        config = ScenarioConfig(**kwargs)
    elif kwargs:
        raise TypeError("pass either a config or kwargs, not both")
    return ScenarioRunner(config).run()
