"""Live metrics collection for the closed-loop control plane.

The paper evaluates ROAR with *offline* statistics: run an experiment, then
summarise the delay log.  A controller needs the same signals *online* --
what is p99 latency right now, how loaded are the servers, how deep are the
queues -- computed over sliding windows so decisions react to the recent
past rather than the whole run.

:class:`MetricsCollector` is the observation half of the loop:

* it subscribes to a deployment's ``chunk_listeners`` hook (one
  :meth:`~repro.telemetry.ChunkListener.observe_chunk` call per flushed
  chunk on the batched engine) and folds whole numpy slices of completed
  queries into a sliding latency window plus a cumulative log-bucketed
  histogram -- no per-query python on the hot path;
* a periodic sampling tick (driven by :meth:`sample_servers`) records
  per-server utilisation over the sampling interval and instantaneous
  queue depths;
* :meth:`snapshot` freezes everything into a :class:`MetricsSnapshot` --
  the only thing controllers are allowed to see, which keeps policies
  decoupled from the deployment internals.

All window statistics are bit-identical to the historic deque-backed
implementation: means keep python left-to-right summation, percentiles run
the exact interpolation arithmetic via
:func:`~repro.telemetry.columns.array_percentile` (``np.partition``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

try:
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]

from ..sim.server import SimServer
from ..telemetry.columns import GrowArray, array_percentile
from ..telemetry.listeners import ChunkArrays, ChunkListener
from ..telemetry.records import QueryRecord, percentile

__all__ = [
    "SlidingWindow",
    "LatencyHistogram",
    "MetricsSnapshot",
    "MetricsCollector",
]

#: compact the window's backing arrays once this many pruned rows pile up
#: at the front (and they outnumber the live ones)
_COMPACT_MIN = 4096


class SlidingWindow:
    """Timestamped samples retained for a fixed trailing duration.

    Columnar: timestamps and values live in parallel
    :class:`~repro.telemetry.columns.GrowArray` columns with a prune
    cursor, so a whole chunk of samples lands as one array copy and
    pruning is a ``searchsorted`` instead of a popleft loop.  Semantics
    match the historic deque implementation exactly: samples must arrive
    in time order, pruning keeps ``t >= now - duration``, and the summary
    statistics reproduce the same float operations bit for bit.
    """

    def __init__(self, duration: float) -> None:
        if duration <= 0:
            raise ValueError(f"window duration must be positive, got {duration}")
        self.duration = duration
        self._t = GrowArray()
        self._v = GrowArray()
        self._lo = 0  # rows below this index are pruned

    def _last_time(self) -> float | None:
        if self._t.n > self._lo:
            return float(self._t.view()[-1])
        return None

    def add(self, t: float, value: float) -> None:
        last = self._last_time()
        if last is not None and t < last:
            raise ValueError("samples must arrive in time order")
        self._t.append(t)
        self._v.append(value)

    def extend(self, ts, values) -> None:
        """Bulk-append one chunk of (time, value) samples, in time order."""
        ts = np.asarray(ts, dtype=np.float64)
        if ts.size == 0:
            return
        last = self._last_time()
        if (last is not None and ts[0] < last) or (
            ts.size > 1 and bool(np.any(ts[1:] < ts[:-1]))
        ):
            raise ValueError("samples must arrive in time order")
        self._t.extend(ts)
        self._v.extend(values)

    def prune(self, now: float) -> None:
        cutoff = now - self.duration
        lo = int(np.searchsorted(self._t.view(), cutoff, side="left"))
        if lo > self._lo:
            self._lo = lo
        if self._lo >= _COMPACT_MIN and self._lo * 2 >= self._t.n:
            self._t.shift_down(self._lo)
            self._v.shift_down(self._lo)
            self._lo = 0

    def _live(self) -> "np.ndarray":
        return self._v.view()[self._lo :]

    def values(self, now: float | None = None) -> list[float]:
        if now is not None:
            self.prune(now)
        return self._live().tolist()

    def __len__(self) -> int:
        return self._t.n - self._lo

    def mean(self, now: float | None = None) -> float:
        vals = self.values(now)
        return sum(vals) / len(vals) if vals else math.nan

    def percentile(self, q: float, now: float | None = None) -> float:
        if now is not None:
            self.prune(now)
        live = self._live()
        return array_percentile(live, q) if live.size else math.nan

    def rate(self, now: float) -> float:
        """Samples per second over the window (arrival-rate estimator).

        Always divides by the full window duration: dividing by the span
        back to the oldest *retained* sample explodes when the window holds
        one recent straggler (1 sample / milliseconds = thousands of qps),
        and that figure feeds the planner.  The cost is a conservative
        under-read during the first window of the run.
        """
        self.prune(now)
        return len(self) / self.duration


class LatencyHistogram:
    """Cumulative log-bucketed latency histogram (whole-run aggregate).

    Buckets grow geometrically from *lo* to *hi*; quantiles are linearly
    interpolated within the winning bucket.  The histogram complements the
    sliding window: the window answers "now", the histogram answers "the
    whole run" without retaining every sample.
    """

    def __init__(
        self, lo: float = 1e-4, hi: float = 100.0, buckets_per_decade: int = 10
    ) -> None:
        if not (0 < lo < hi):
            raise ValueError("need 0 < lo < hi")
        n_decades = math.log10(hi / lo)
        n_buckets = max(1, int(math.ceil(n_decades * buckets_per_decade)))
        ratio = (hi / lo) ** (1.0 / n_buckets)
        self.bounds = [lo * ratio**i for i in range(n_buckets + 1)]
        self._bounds_arr = np.array(self.bounds)
        self.counts = [0] * (n_buckets + 2)  # + underflow/overflow
        self.total = 0

    def record(self, value: float) -> None:
        self.total += 1
        if value < self.bounds[0]:
            self.counts[0] += 1
            return
        if value >= self.bounds[-1]:
            self.counts[-1] += 1
            return
        lo, hi = 0, len(self.bounds) - 1
        while lo + 1 < hi:  # binary search for the bucket
            mid = (lo + hi) // 2
            if value >= self.bounds[mid]:
                lo = mid
            else:
                hi = mid
        self.counts[lo + 1] += 1

    def record_many(self, values) -> None:
        """Bucket one chunk of samples in a single vectorised pass.

        ``searchsorted(bounds, v, side='right')`` returns exactly the
        count index the scalar binary search increments: 0 for underflow,
        ``len(bounds)`` (== the overflow slot) for ``v >= bounds[-1]``,
        and ``lo + 1`` for an interior bucket.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        self.total += int(values.size)
        idx = np.searchsorted(self._bounds_arr, values, side="right")
        binc = np.bincount(idx, minlength=len(self.counts))
        counts = self.counts
        for i, c in enumerate(binc.tolist()):
            if c:
                counts[i] += c

    def quantile(self, q: float) -> float:
        """The *q*-th (0..100) quantile, interpolated within its bucket."""
        if self.total == 0:
            return math.nan
        target = (q / 100.0) * self.total
        seen = 0
        for i, count in enumerate(self.counts):
            if seen + count >= target and count > 0:
                frac = (target - seen) / count
                if i == 0:
                    return self.bounds[0]
                if i == len(self.counts) - 1:
                    return self.bounds[-1]
                lo, hi = self.bounds[i - 1], self.bounds[i]
                return lo + frac * (hi - lo)
            seen += count
        return self.bounds[-1]


@dataclass(frozen=True)
class MetricsSnapshot:
    """Frozen view of the system handed to controllers each tick.

    These fields are the controller's *only* inputs, which is what makes
    the decision audit trail complete: :class:`~repro.obs.audit.DecisionLog`
    copies ``p50``/``p95``/``p99``, ``max_queue_depth``,
    ``mean_utilisation``, ``qps``, ``n_queries`` and ``n_servers`` into
    every decision record, so ``repro explain`` can reconstruct exactly
    what a policy saw (and re-derive the p99 from archived delay columns
    -- the window samples by arrival time, see ``docs/observability.md``).
    """

    time: float
    window: float  # trailing seconds the query stats cover
    n_queries: int  # completed queries inside the window
    qps: float  # completion rate over the window
    mean_latency: float
    p50: float
    p95: float
    p99: float
    n_servers: int
    utilisation: Mapping[str, float]  # per-server, over the last interval
    queue_depths: Mapping[str, float]  # seconds of backlog per server

    @property
    def mean_utilisation(self) -> float:
        """Mean per-server utilisation; NaN before the first full interval."""
        if not self.utilisation:
            return math.nan
        return sum(self.utilisation.values()) / len(self.utilisation)

    @property
    def max_utilisation(self) -> float:
        return max(self.utilisation.values(), default=0.0)

    @property
    def load_imbalance(self) -> float:
        """Definition 3's max/mean load ratio over the last interval."""
        if not self.utilisation:
            return 1.0
        mean = self.mean_utilisation
        if mean <= 0:
            return 1.0
        return self.max_utilisation / mean

    @property
    def max_queue_depth(self) -> float:
        return max(self.queue_depths.values(), default=0.0)


class MetricsCollector(ChunkListener):
    """Observation plane: sliding latency windows + periodic server samples."""

    def __init__(self, window: float = 30.0) -> None:
        self.window = SlidingWindow(window)
        self.histogram = LatencyHistogram()
        self.queries_seen = 0
        self._last_sample_time: float | None = None
        self._last_busy: dict[str, float] = {}
        self._utilisation: dict[str, float] = {}
        self._queue_depths: dict[str, float] = {}
        self.snapshots: list[MetricsSnapshot] = []

    # -- hooks -------------------------------------------------------------
    def attach(self, deployment) -> "MetricsCollector":
        """Subscribe to a deployment's completion stream.

        Prefers the chunk-array hook (``chunk_listeners``): the batched
        engine then feeds whole flushed chunks through
        :meth:`observe_chunk` and the reference path feeds single records
        through :meth:`observe_record` -- identical statistics either
        way.  Hosts exposing only the legacy per-query ``query_listeners``
        list still work unchanged.
        """
        hook = getattr(deployment, "chunk_listeners", None)
        if hook is not None:
            hook.append(self)
        else:
            deployment.query_listeners.append(self.observe_query)
        return self

    def observe_query(self, record: QueryRecord) -> None:
        # Samples are indexed by *arrival* time: the analytic execution model
        # resolves a query's completion at dispatch, and arrivals -- unlike
        # finishes -- reach us in monotone order.
        self.queries_seen += 1
        self.window.add(record.arrival, record.delay)
        self.histogram.record(record.delay)

    def observe_record(self, record: QueryRecord, breakdown=None) -> None:
        self.observe_query(record)

    def observe_chunk(self, arrays: ChunkArrays, start: int, nq: int) -> None:
        delays = arrays.delays()
        self.queries_seen += nq
        self.window.extend(arrays.arrivals, delays)
        self.histogram.record_many(delays)

    def sample_servers(
        self, now: float, servers: Mapping[str, SimServer]
    ) -> None:
        """Record per-server utilisation since the previous sample.

        Utilisation is the *delta* of each server's cumulative busy time over
        the sampling interval -- an instantaneous load signal, unlike
        :meth:`SimServer.utilisation` which averages over the whole run.
        """
        prev = self._last_sample_time
        interval = None if prev is None else max(now - prev, 1e-9)
        utilisation: dict[str, float] = {}
        busy_now: dict[str, float] = {}
        for name, server in servers.items():
            busy_now[name] = server.busy_time
            if interval is not None:
                delta = server.busy_time - self._last_busy.get(name, 0.0)
                utilisation[name] = min(1.0, max(0.0, delta / (interval * server.cores)))
        # The first sample only establishes the busy-time baseline: there is
        # no interval to average over yet, so utilisation stays empty (NaN
        # aggregate) rather than fabricating an idle pool.
        self._last_busy = busy_now
        self._last_sample_time = now
        self._utilisation = utilisation
        self._queue_depths = {
            name: server.queue_backlog(now) for name, server in servers.items()
        }

    # -- reporting ---------------------------------------------------------
    def snapshot(self, now: float, record: bool = True) -> MetricsSnapshot:
        vals = self.window.values(now)
        has = bool(vals)
        snap = MetricsSnapshot(
            time=now,
            window=self.window.duration,
            n_queries=len(vals),
            qps=self.window.rate(now),
            mean_latency=sum(vals) / len(vals) if has else math.nan,
            p50=percentile(vals, 50) if has else math.nan,
            p95=percentile(vals, 95) if has else math.nan,
            p99=percentile(vals, 99) if has else math.nan,
            n_servers=len(self._utilisation),
            utilisation=dict(self._utilisation),
            queue_depths=dict(self._queue_depths),
        )
        if record:
            self.snapshots.append(snap)
        return snap
