"""Full simulated deployments: the Chapter 7 experimental rig."""

from .compare import (
    ComparisonConfig,
    ComparisonResult,
    heterogeneous_speeds,
    run_comparison,
)
from .deployment import (
    Deployment,
    DeploymentConfig,
    DynamicPController,
    QueryBreakdown,
)
from .multifrontend import MultiFrontEndDeployment
from .models import (
    MODEL_CATALOGUE,
    ServerModel,
    ec2_fleet,
    hen_testbed,
    make_sim_server,
)

__all__ = [
    "ComparisonConfig",
    "ComparisonResult",
    "Deployment",
    "DeploymentConfig",
    "DynamicPController",
    "MODEL_CATALOGUE",
    "MultiFrontEndDeployment",
    "QueryBreakdown",
    "ServerModel",
    "ec2_fleet",
    "hen_testbed",
    "heterogeneous_speeds",
    "make_sim_server",
]
