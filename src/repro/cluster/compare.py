"""The Chapter 6 comparison harness: query delay across DR algorithms.

Implements the paper's numerical simulation (Section 6.1, "Simulator"):
queries arrive Poisson; the front-end splits each into exactly ``p`` parts,
predicts per-server finish times from speed estimates and outstanding work,
and picks servers according to the algorithm under test; servers execute
serially.  Delays are logged and the exploding-queue slope test applied.

Algorithms compared: ROAR (single / multi-ring, optional optimisations),
PTN, SW, plus the analytical optimum bound.  Speed-estimation noise can be
injected for the Fig 6.5 robustness study.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .._rng import ensure_rng
from ..core.adjust import adjust_ranges, plan_from_schedule, split_slowest
from ..core.ring import Ring, RingNode
from ..core.scheduler import schedule_heap, schedule_naive, schedule_random
from ..rendezvous import PTN, RoarAlgorithm, ServerInfo, SlidingWindow
from ..sim.server import SimServer
from ..sim.tracing import DelayLog, QueryRecord
from ..sim.workload import PoissonArrivals

__all__ = ["ComparisonConfig", "ComparisonResult", "run_comparison", "heterogeneous_speeds"]


def heterogeneous_speeds(
    n: int,
    heterogeneity: float = 0.5,
    rng: random.Random | None = None,
    mean: float = 1.0,
) -> list[float]:
    """Server speeds with controllable spread (Fig 6.4's x-axis).

    ``heterogeneity`` 0 gives identical servers; h in (0, 1] draws speeds
    uniformly from ``mean * [1-h, 1+h]`` -- same total capacity in
    expectation, growing variance.
    """
    if not 0.0 <= heterogeneity <= 1.0:
        raise ValueError("heterogeneity must be in [0, 1]")
    rng = ensure_rng(rng)
    if heterogeneity == 0.0:
        return [mean] * n
    return [mean * rng.uniform(1.0 - heterogeneity, 1.0 + heterogeneity) for _ in range(n)]


@dataclass
class ComparisonConfig:
    """One comparison run."""

    algorithm: str  # "roar", "ptn", "sw", "roar2" (two rings), "opt"
    n_servers: int = 90
    p: int = 9
    pq: int | None = None  # ROAR only: query partitioning > p
    dataset_size: float = 1_000_000.0
    query_rate: float = 2.0
    n_queries: int = 2000
    fixed_overhead: float = 0.0
    speeds: Sequence[float] | None = None
    speed_error: float = 0.0  # relative estimate noise (Fig 6.5)
    seed: int = 1
    #: ROAR optimisation toggles (Fig 6.7 ablation).
    adjust: bool = False
    splits: int = 0
    scheduler: str = "heap"  # "heap" | "naive" | "random"
    random_starts: int = 3


@dataclass
class ComparisonResult:
    config: ComparisonConfig
    log: DelayLog
    mean_delay: float
    raw_mean_delay: float
    p99_delay: float
    exploding: bool
    server_utilisation: float


def _make_servers(
    speeds: Sequence[float], fixed_overhead: float
) -> dict[str, SimServer]:
    return {
        f"node-{i}": SimServer(f"node-{i}", speed, fixed_overhead=fixed_overhead)
        for i, speed in enumerate(speeds)
    }


def _noisy_estimates(
    speeds: Sequence[float], rel_error: float, rng: random.Random
) -> dict[str, float]:
    out = {}
    for i, speed in enumerate(speeds):
        factor = 1.0 + (rng.uniform(-rel_error, rel_error) if rel_error > 0 else 0.0)
        out[f"node-{i}"] = max(speed * factor, 1e-9)
    return out


def run_comparison(config: ComparisonConfig) -> ComparisonResult:
    """Run one open-loop delay experiment and summarise it."""
    rng = random.Random(config.seed)
    speeds = list(
        config.speeds
        if config.speeds is not None
        else heterogeneous_speeds(config.n_servers, 0.5, rng, mean=500_000.0)
    )
    n = len(speeds)
    servers = _make_servers(speeds, config.fixed_overhead)
    estimates = _noisy_estimates(speeds, config.speed_error, rng)
    dataset = config.dataset_size
    fixed = config.fixed_overhead

    def name_estimator(now: float):
        def estimate(name: str, fraction: float) -> float:
            server = servers[name]
            backlog = max(0.0, server.busy_until - now)
            return backlog + fixed + fraction * dataset / estimates[name]

        return estimate

    planner = _build_planner(config, speeds, rng)

    arrivals = PoissonArrivals(config.query_rate, seed=config.seed + 1)
    log = DelayLog()
    for qid, now in enumerate(arrivals.times(config.n_queries)):
        estimator = name_estimator(now)
        plan = planner(now, estimator)
        finish = 0.0
        for name, fraction in plan:
            f = servers[name].submit(now, fraction * dataset, query_id=qid)
            finish = max(finish, f)
        log.add(
            QueryRecord(
                query_id=qid,
                arrival=now,
                finish=finish,
                pq=len(plan),
                subqueries=len(plan),
            )
        )

    elapsed = max((r.finish for r in log.records), default=1.0)
    util = sum(s.busy_time for s in servers.values()) / (elapsed * n)
    return ComparisonResult(
        config=config,
        log=log,
        mean_delay=log.mean_delay(),
        raw_mean_delay=log.raw_mean_delay(),
        p99_delay=log.percentile_delay(99),
        exploding=log.is_exploding(),
        server_utilisation=min(1.0, util),
    )


Planner = Callable[[float, Callable[[str, float], float]], list[tuple[str, float]]]


def _build_planner(
    config: ComparisonConfig, speeds: Sequence[float], rng: random.Random
) -> Planner:
    """Wire the requested algorithm into a common planning interface."""
    n = len(speeds)
    p = config.p
    pq = config.pq or p
    infos = [ServerInfo(f"node-{i}", speeds[i]) for i in range(n)]

    if config.algorithm in ("roar", "roar2"):
        n_rings = 2 if config.algorithm == "roar2" else 1
        algo = RoarAlgorithm(infos, p, rng=rng, n_rings=n_rings)
        rings = algo.rings

        def plan_roar(now, estimator):
            def node_est(node: RingNode, fraction: float) -> float:
                return estimator(node.name, fraction)

            if config.scheduler == "heap":
                result = schedule_heap(rings, pq, node_est)
            elif config.scheduler == "naive":
                result = schedule_naive(rings, pq, node_est)
            else:
                result = schedule_random(
                    rings, pq, node_est, k=config.random_starts, rng=rng
                )
            qplan = plan_from_schedule(result, node_est)
            if config.adjust:
                qplan = adjust_ranges(qplan, rings, node_est, p)
            if config.splits > 0:
                qplan = split_slowest(
                    qplan, rings, node_est, p, max_splits=config.splits
                )
            return [(s.node.name, s.width) for s in qplan.subs]

        return plan_roar

    if config.algorithm == "ptn":
        algo = PTN(infos, p, rng=rng)

        def plan_ptn(now, estimator):
            # With no object placement, clusters each hold 1/p of the data.
            plan = []
            for idx, cluster in enumerate(algo.clusters):
                fraction = 1.0 / p
                best = min(
                    (s for s in cluster if s.alive),
                    key=lambda s: estimator(s.name, fraction),
                )
                plan.append((best.name, fraction))
            return plan

        return plan_ptn

    if config.algorithm == "sw":
        if n % p != 0:
            raise ValueError(f"SW requires p | n (n={n}, p={p})")
        r = n // p
        algo = SlidingWindow(infos, r, rng=rng)

        def plan_sw(now, estimator):
            best_plan = None
            best_makespan = float("inf")
            for start in range(r):
                nodes = algo.query_nodes(start)
                plan = [(f"node-{i}", 1.0 / p) for i in nodes]
                makespan = max(estimator(name, frac) for name, frac in plan)
                if makespan < best_makespan:
                    best_makespan = makespan
                    best_plan = plan
            return best_plan

        return plan_sw

    if config.algorithm == "opt":
        # Theoretical best: any p servers, work split equally (the bound of
        # Section 6.1.1 -- no placement constraint at all).
        names = [f"node-{i}" for i in range(n)]

        def plan_opt(now, estimator):
            fraction = 1.0 / pq
            ranked = sorted(names, key=lambda name: estimator(name, fraction))
            return [(name, fraction) for name in ranked[:pq]]

        return plan_opt

    raise ValueError(f"unknown algorithm {config.algorithm!r}")
