"""A full simulated PPS-on-ROAR deployment (the Chapter 7 rig).

Couples the core front-end (real scheduling code, real wall-clock cost) with
simulated storage servers (the Definition 8 computation model), the
membership server, the reconfigurator, and failure/update injection.  Every
Chapter 7 experiment drives one of these:

* p sweeps measuring delay / throughput / per-node CPU load (Figs 7.1-7.3);
* update load vs query throughput (Fig 7.4);
* dynamic p changes tracking load under a delay target (Fig 7.5);
* sudden node failures and the sub-query splitting fall-back (Fig 7.6);
* query-time load balancing with pq > p (Figs 7.7/7.8);
* range load balancing (Figs 7.9/7.10);
* per-query delay breakdown at the front-end (Fig 7.11);
* large-scale runs (Table 7.3).
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..core.failures import FailureCoverageError
from ..core.frontend import FrontEnd, FrontEndConfig
from ..core.membership import MembershipServer
from ..core.node import RoarNode, SubQuery
from ..core.objects import DataObject, generate_objects
from ..core.reconfig import ReconfigPhase, Reconfigurator
from ..core.ring import Ring, RingNode
from ..sim.energy import EnergyReport, measure_energy
from ..sim.network import NetworkModel, TrafficLedger
from ..sim.server import SimServer
from ..telemetry.listeners import ChunkListener, ListenerList
from ..telemetry.records import (
    BreakdownLog,
    DelayLog,
    QueryBreakdown,
    QueryRecord,
)
from .models import MODEL_CATALOGUE, ServerModel, hen_testbed, make_sim_server

__all__ = ["DeploymentConfig", "QueryBreakdown", "Deployment", "DynamicPController"]


@dataclass
class DeploymentConfig:
    """Parameters of a simulated deployment."""

    models: Sequence[ServerModel] = field(default_factory=hen_testbed)
    p: int = 5
    n_rings: int = 1
    dataset_size: float = 5_000_000.0  # metadata items across the system
    in_memory: bool = True
    seed: int = 1
    frontend: FrontEndConfig = field(default_factory=FrontEndConfig)
    network: NetworkModel | None = None
    #: detection latency for sudden failures (front-end timers, Section 4.8).
    failure_timeout: float = 0.25
    #: average per-sub-query fixed overhead if not taken from the model.
    fixed_overhead: float | None = None
    #: keep real object replicas on nodes (needed for harvest verification;
    #: costs memory, so large-scale runs leave it off).
    store_objects: bool = False
    n_objects_stored: int = 2000
    #: object update cost in seconds of server time per replica.
    update_cost: float = 0.002
    #: charge the scheduler's real wall-clock into query latency (the
    #: Fig 7.11 accounting).  Turn off for bit-reproducible runs: latency
    #: then contains simulated components only, which is what the golden
    #: regression tests and the batched/per-query differential tests pin.
    charge_scheduling: bool = True


class Deployment:
    """One running system: rings + servers + front-end + coordinator."""

    def __init__(self, config: DeploymentConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        models = list(config.models)
        speeds = [m.speed(config.in_memory) for m in models]
        self.membership = MembershipServer.build_balanced(
            speeds, n_rings=config.n_rings, rng=self.rng
        )
        self.rings = self.membership.rings
        self.model_of: dict[str, str] = {}
        self.servers: dict[str, SimServer] = {}
        fixed = config.fixed_overhead
        for ring in self.rings:
            for node in ring:
                idx = int(node.name.split("-")[-1])
                model = models[idx]
                server = make_sim_server(node.name, model, config.in_memory)
                if fixed is not None:
                    server.fixed_overhead = fixed
                self.servers[node.name] = server
                self.model_of[node.name] = model.name

        fe_config = config.frontend
        if fixed is not None:
            fe_config.fixed_overhead = fixed
        else:
            fe_config.fixed_overhead = sum(m.fixed_overhead for m in models) / len(models)
        self.frontend = FrontEnd(
            self.rings, config.dataset_size, fe_config, rng=self.rng
        )
        self.network = config.network or NetworkModel.data_center(config.seed)
        self.ledger = TrafficLedger()
        self.log = DelayLog()
        self.breakdowns = BreakdownLog()
        self.scheduling_wallclock = 0.0

        # Optional real object stores (harvest verification).
        self.stores: dict[str, RoarNode] = {}
        self.reconfig: Reconfigurator | None = None
        if config.store_objects:
            objects = generate_objects(
                config.n_objects_stored, random.Random(config.seed + 7)
            )
            primary = self.rings[0]
            self.stores = {n.name: RoarNode(n) for n in primary}
            self.reconfig = Reconfigurator(primary, self.stores, objects, config.p)
            self.reconfig.initial_load()

        #: known-dead bookkeeping: name -> time the front-end learned of it.
        self._known_dead: dict[str, float] = {}

        #: legacy per-query callbacks (deprecated -- appending warns once;
        #: prefer chunk_listeners, which see whole flushed chunks as arrays).
        self.query_listeners: ListenerList = ListenerList()
        #: chunk-array subscribers (:class:`~repro.telemetry.ChunkListener`):
        #: one ``observe_chunk`` call per flushed chunk on the batched path,
        #: ``observe_record`` per query on the reference path.
        self.chunk_listeners: list[ChunkListener] = []
        #: servers drained out by elastic shrinking, kept for accounting.
        self.retired: dict[str, SimServer] = {}
        self._next_node_idx = len(models)
        #: precomputed ring-cover tables for the batched query path, keyed
        #: by (pq, ring versions); lazily created by run_queries_fast.
        self.cover_tables = None

    # -- basic facts ------------------------------------------------------------
    @property
    def n(self) -> int:
        return sum(len(r) for r in self.rings)

    @property
    def p_store(self) -> float:
        if self.reconfig is not None:
            return self.reconfig.p_store
        return float(self.config.p)

    def total_speed(self) -> float:
        return sum(s.speed for s in self.servers.values() if not s.failed)

    # -- failure injection --------------------------------------------------------
    def fail_node(self, name: str, now: float) -> None:
        """Sudden fail-stop at *now*; detected after ``failure_timeout``."""
        self.servers[name].fail()
        self._known_dead[name] = now + self.config.failure_timeout
        for ring in self.rings:
            try:
                node = ring.get(name)
            except KeyError:
                continue
            node.alive = False  # routing layer flag; scheduler still sweeps it

    def _is_known_dead(self, name: str, now: float) -> bool:
        t = self._known_dead.get(name)
        return t is not None and now >= t

    def recover_node(self, name: str, now: float) -> None:
        """Bring a failed (but not removed) server back into service."""
        server = self.servers[name]
        server.recover(now)
        self._known_dead.pop(name, None)
        for ring in self.rings:
            try:
                node = ring.get(name)
            except KeyError:
                continue
            self.frontend.mark_recovered(node, now)

    # -- elasticity (driven by the control plane) ---------------------------------
    def add_server(
        self, model: ServerModel, now: float = 0.0, ring_id: int | None = None
    ) -> str:
        """Grow the pool: insert a fresh server at the hottest ring spot.

        The membership server picks the placement (Section 4.9); if object
        stores are enabled the newcomer downloads the replicas its range
        requires before serving, and the transfer is charged to the
        reconfigurator's ledger.  Returns the new server's name.
        """
        name = f"node-{self._next_node_idx}"
        self._next_node_idx += 1
        node = self.membership.add_server(
            name, model.speed(self.config.in_memory), ring_id=ring_id
        )
        server = make_sim_server(name, model, self.config.in_memory)
        if self.config.fixed_overhead is not None:
            server.fixed_overhead = self.config.fixed_overhead
        server.recover(now)  # no lane may start before the server exists
        self.servers[name] = server
        self.model_of[name] = model.name
        self.frontend.stats_for(node)
        primary = self.rings[0]
        if self.reconfig is not None and node.ring_id == 0:
            self.stores[name] = RoarNode(node)
            self.reconfig.load_node_range(name, primary.range_of(node))
        return name

    def remove_server(self, name: str, now: float = 0.0) -> None:
        """Shrink the pool: drain *name*; its predecessor absorbs the range.

        With object stores enabled the predecessor downloads the absorbed
        range's replicas (a controlled removal, not a failure).
        """
        owner_ring = None
        node = None
        for ring in self.rings:
            try:
                node = ring.get(name)
            except KeyError:
                continue
            owner_ring = ring
            break
        if node is None or owner_ring is None:
            raise KeyError(name)
        if len(owner_ring) <= 1:
            raise ValueError("cannot remove the last node of a ring")
        pred = owner_ring.predecessor(node)
        self.membership.remove_server(name)
        if self.reconfig is not None and owner_ring is self.rings[0]:
            self.stores.pop(name, None)
            self.reconfig.node_departed(name)
            self.reconfig.load_node_range(
                pred.name, owner_ring.range_of(pred)
            )
        self.retired[name] = self.servers.pop(name)
        self._known_dead.pop(name, None)
        self.frontend.stats.pop(name, None)

    def handle_long_term_failure(self, name: str, now: float = 0.0) -> None:
        """Declare a dead node permanent: redistribute its range (Section 4.9).

        The predecessor absorbs the range and re-replicates it, after which
        failure fall-back no longer needs to route around the hole.
        """
        self.remove_server(name, now=now)

    def max_dead_range(self) -> float:
        """Widest contiguous run of ring range owned by failed nodes.

        Failure fall-back needs replacement width ``1/p`` to exceed this
        (Section 4.4), so it caps how far re-partitioning may raise p.
        Adjacent dead nodes act as one combined hole -- the fall-back splits
        around the whole run -- so the cap must measure runs, not single
        nodes.
        """
        worst = 0.0
        for ring in self.rings:
            run = 0.0
            first_run = None  # run starting at index 0, may wrap via the end
            for node in ring.nodes():
                if not node.alive:
                    run += ring.range_of(node).length
                    worst = max(worst, run)
                else:
                    if first_run is None:
                        first_run = run
                    run = 0.0
            if first_run is None:  # every node dead: the whole circle
                worst = max(worst, 1.0)
            elif run > 0.0:  # wrap: tail run joins the head run
                worst = max(worst, run + first_run)
        return worst

    # -- queries -------------------------------------------------------------------
    def run_query(self, now: float, pq: int | None = None) -> Optional[QueryRecord]:
        """Execute one query end-to-end; returns its timing record.

        Returns ``None`` (and counts the query as dropped) when failure
        fall-back cannot re-cover a dead node's range -- the objects are
        unavailable until re-replication.
        """
        pq = pq or self.config.p
        p_store = self.p_store
        if pq < p_store - 1e-9:
            raise ValueError(
                f"pq={pq} below stored partitioning level {p_store}; "
                "reconfigure first (Section 4.5)"
            )
        # Sync the front-end's outstanding-work view with reality before
        # scheduling (its per-node busy_until predictions are what the
        # estimator consumes).
        for ring in self.rings:
            for node in ring:
                self.frontend.stats_for(node).busy_until = self.servers[
                    node.name
                ].busy_until

        sched_start = time.perf_counter()
        qid, plan, _ = self.frontend.schedule_query(now, pq, p_store)
        sched_wall = time.perf_counter() - sched_start
        self.scheduling_wallclock += sched_wall
        self.frontend.reserve(plan, now)

        subs = plan.to_subqueries(qid)
        self.ledger.record_query(len(subs))
        finish = now
        max_wait = 0.0
        max_service = 0.0
        rtt = self.network.sample_rtt()
        pieces: list[tuple[SubQuery, RingNode, float]] = []  # (sub, node, submit time)
        for sub, planned in zip(subs, plan.subs):
            pieces.append((sub, planned.node, now))

        while pieces:
            sub, node, submit_at = pieces.pop()
            server = self.servers[node.name]
            if server.failed:
                detect_at = max(submit_at, self._known_dead.get(node.name, submit_at))
                try:
                    replacements = self.frontend.resolve_failures([sub], p_store)
                except FailureCoverageError:
                    # The dead range exceeds the replication arc: that data
                    # is unavailable until re-replication.  The query is
                    # dropped and charged against yield (Section 4.4).
                    self.log.dropped += 1
                    return None
                self.ledger.record_query(len(replacements))
                for rep_sub, rep_node in replacements:
                    pieces.append((rep_sub, rep_node, detect_at))
                continue
            work = sub.work_fraction() * self.config.dataset_size
            wait = server.queue_backlog(submit_at)
            f = server.submit(submit_at + rtt / 2.0, work, query_id=qid)
            service = server.service_time(work)
            self.frontend.observe_completion(node, work, service, f)
            max_wait = max(max_wait, wait)
            max_service = max(max_service, service)
            finish = max(finish, f + rtt / 2.0)
            self.ledger.record_result(1)

        total = finish - now + (sched_wall if self.config.charge_scheduling else 0.0)
        record = QueryRecord(
            query_id=qid,
            arrival=now,
            finish=now + total,
            pq=pq,
            subqueries=len(subs),
            scheduling_delay=sched_wall,
        )
        self.log.add(record)
        for listener in self.query_listeners:
            listener(record)
        breakdown = QueryBreakdown(
            scheduling=sched_wall,
            network=rtt,
            queueing=max_wait,
            service=max_service,
            total=total,
        )
        self.breakdowns.append(breakdown)
        for chunk_listener in self.chunk_listeners:
            chunk_listener.observe_record(record, breakdown)
        return record

    def run_queries(
        self,
        arrival_times: Sequence[float],
        pq_fn: Callable[[float], int] | int | None = None,
    ) -> DelayLog:
        """Run a whole arrival trace; *pq_fn* may vary pq over time."""
        for t in arrival_times:
            if callable(pq_fn):
                pq = pq_fn(t)
            else:
                pq = pq_fn
            self.run_query(t, pq)
        return self.log

    def run_queries_fast(
        self,
        arrival_times: Sequence[float],
        pq_fn: Callable[[float], int] | int | None = None,
        record_assignments: bool = False,
        actions: Sequence | None = None,
        kernel=None,
        profile=None,
        admission=None,
    ):
        """Run an arrival trace through the batched query path.

        Produces state (logs, server counters, front-end statistics)
        identical to :meth:`run_queries`, orders of magnitude faster; see
        :func:`repro.sim.fastpath.run_queries_fast` and
        ``docs/architecture.md`` for how.  *actions* schedules
        :class:`~repro.sim.fastpath.Action` callbacks (events, updates,
        control ticks) to land between two specific queries with exact
        event-time semantics.  *kernel* selects the scheduling kernel by
        registry name (default ``exact_numpy``, the bit-exact oracle;
        ``compiled`` fuses sweep and commit into one C call per chunk --
        see :mod:`repro.kernels` and ``docs/kernels.md``).  *profile*
        enables the engine-phase profiler (results stay bit-identical;
        see :mod:`repro.obs.profiler` and ``docs/observability.md``).
        *admission* installs an admission controller at the arrival seam
        (policy name/spec or instance; the default ``None``/"none" is
        accept-all and bit-identical to the pre-admission engine -- see
        :mod:`repro.admission` and ``docs/admission.md``).

        Example -- three queries, then one scheduled through an explicit
        kernel, against an 8-server testbed::

            >>> from repro.cluster import (Deployment, DeploymentConfig,
            ...                            hen_testbed)
            >>> dep = Deployment(DeploymentConfig(models=hen_testbed(8),
            ...                                   p=4, seed=1))
            >>> result = dep.run_queries_fast([0.0, 0.01, 0.02], 4)
            >>> (result.completed, result.dropped, len(dep.log.records))
            (3, 0, 3)
            >>> result.latencies.shape
            (3,)
            >>> dep.run_queries_fast([0.03], 4, kernel="exact_numpy").completed
            1
        """
        from ..sim.fastpath import run_queries_fast

        return run_queries_fast(
            self,
            arrival_times,
            pq_fn,
            record_assignments=record_assignments,
            actions=actions,
            kernel=kernel,
            profile=profile,
            admission=admission,
        )

    # -- updates (Fig 7.4) ------------------------------------------------------------
    def apply_update(self, now: float, at: float | None = None) -> None:
        """One object update: every replica holder pays the update cost.

        With replication level ``r = n/p`` an update lands on ~r servers; we
        model it as r fixed-cost tasks on the nodes covering a replication
        arc starting at *at* (default: uniform random -- scenario workloads
        pass Zipf-skewed positions to model hot objects).
        """
        r = max(1, round(self.n / self.p_store))
        primary = self.rings[0]
        start = self.rng.random() if at is None else at
        nodes = primary.alive_nodes()
        if not nodes:
            return
        # the r nodes clockwise from the random point
        ordered = sorted(nodes, key=lambda nd: (nd.start - start) % 1.0)
        cost_items = self.config.update_cost  # seconds of server time
        for node in ordered[:r]:
            server = self.servers[node.name]
            if not server.failed:
                server.submit(now, cost_items * server.speed)
        self.ledger.record_update(r)

    # -- reporting ------------------------------------------------------------------
    def mean_cpu_load(self, elapsed: float) -> float:
        loads = [s.utilisation(elapsed) for s in self.servers.values()]
        return sum(loads) / len(loads)

    def per_node_load(self, elapsed: float) -> dict[str, float]:
        return {name: s.utilisation(elapsed) for name, s in self.servers.items()}

    def energy(self, elapsed: float) -> EnergyReport:
        return measure_energy(
            self.servers.values(), elapsed, model_of=self.model_of
        )

    def reset_measurements(self) -> None:
        for server in self.servers.values():
            server.reset()
        self.log = DelayLog()
        self.breakdowns = BreakdownLog()
        self.ledger = TrafficLedger()
        self.scheduling_wallclock = 0.0


class DynamicPController:
    """Tracks a delay target by adjusting pq (and p via reconfiguration).

    The Fig 7.5 behaviour: when the rolling mean delay exceeds the target,
    raise pq (more parallelism, immediately safe); when delay is comfortably
    below target, lower pq toward the stored level -- and if the floor is
    the binding constraint, ask the reconfigurator to *decrease* p (grow
    replicas) so a lower pq becomes safe once downloads finish.
    """

    def __init__(
        self,
        deployment: Deployment,
        target_delay: float,
        window: int = 25,
        headroom: float = 0.6,
        pq_min: int = 2,
        pq_max: int | None = None,
    ) -> None:
        self.deployment = deployment
        self.target = target_delay
        self.window = window
        self.headroom = headroom
        self.pq_min = pq_min
        self.pq_max = pq_max or deployment.n
        self.pq = max(int(math.ceil(deployment.p_store)), pq_min)
        self.history: list[tuple[float, int, float]] = []  # (time, pq, mean delay)

    def rolling_mean_delay(self) -> float:
        records = self.deployment.log.records[-self.window :]
        if not records:
            return 0.0
        return sum(r.delay for r in records) / len(records)

    def step(self, now: float) -> int:
        """Re-evaluate pq after recent queries; returns the pq to use."""
        mean = self.rolling_mean_delay()
        floor = int(math.ceil(self.deployment.p_store - 1e-9))
        if mean > self.target and self.pq < self.pq_max:
            self.pq = min(self.pq_max, max(self.pq + 1, int(self.pq * 1.25)))
        elif mean < self.headroom * self.target and self.pq > max(floor, self.pq_min):
            self.pq = max(floor, self.pq_min, self.pq - 1)
        self.pq = max(self.pq, floor)
        self.history.append((now, self.pq, mean))
        return self.pq
