"""Server model catalogue (Table 7.1) and the PPS cost model.

The paper's testbed mixes four server generations; their *relative*
processing speeds are what the heterogeneity experiments exploit.  Rates are
calibrated from the paper's own measurements (Section 5.7):

* Dell PowerEdge 1950 (2x dual-core Xeon 5150 2.66 GHz): ~900k metadata/s
  per matching thread in memory, ~290k/s when disk-bound (1M metadata in
  3.9 s cold, 66 MB/s at 230 B/item);
* Dell PowerEdge 2950: the faster sibling, ~15% quicker;
* Dell PowerEdge 1850: older 2-core box, CPU-bound around 350k/s;
* Sun X4100: the slowest pool member, ~250k/s (Fig 5.7).

Absolute values only set the time scale; every benchmark statement in
EXPERIMENTS.md is about shapes and ratios.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..sim.energy import PowerProfile
from ..sim.server import SimServer

__all__ = [
    "ServerModel",
    "MODEL_CATALOGUE",
    "hen_testbed",
    "ec2_fleet",
    "make_sim_server",
]


@dataclass(frozen=True)
class ServerModel:
    """One hardware generation (a Table 7.1 row)."""

    name: str
    cores: int
    match_rate: float  # metadata matched per second, per matching thread
    disk_rate: float  # metadata streamed from disk per second
    fixed_overhead: float  # per-sub-query fixed cost (seconds)
    power: PowerProfile

    def speed(self, in_memory: bool = True) -> float:
        """Effective serial processing speed for the scheduler model.

        In-memory matching parallelises across cores until the I/O thread
        saturates at ~2x a single matcher (Section 5.7: plateau at 2+
        threads without the memory cache, linear to 4 with it); we use the
        4-thread in-memory figure.  Disk-bound speed is the stream rate.
        """
        if in_memory:
            return self.match_rate * min(self.cores, 4)
        return self.disk_rate


MODEL_CATALOGUE: dict[str, ServerModel] = {
    "dell-1950": ServerModel(
        name="dell-1950",
        cores=4,
        match_rate=900_000.0,
        disk_rate=290_000.0,
        fixed_overhead=0.004,
        power=PowerProfile(idle_watts=210.0, busy_watts=305.0),
    ),
    "dell-2950": ServerModel(
        name="dell-2950",
        cores=4,
        match_rate=1_050_000.0,
        disk_rate=330_000.0,
        fixed_overhead=0.004,
        power=PowerProfile(idle_watts=220.0, busy_watts=320.0),
    ),
    "dell-1850": ServerModel(
        name="dell-1850",
        cores=2,
        match_rate=350_000.0,
        disk_rate=290_000.0,
        fixed_overhead=0.006,
        power=PowerProfile(idle_watts=190.0, busy_watts=260.0),
    ),
    "sun-x4100": ServerModel(
        name="sun-x4100",
        cores=2,
        match_rate=250_000.0,
        disk_rate=230_000.0,
        fixed_overhead=0.006,
        power=PowerProfile(idle_watts=180.0, busy_watts=245.0),
    ),
}


def hen_testbed(n: int = 47) -> list[ServerModel]:
    """A heterogeneous pool like the Hen deployment (47 ROAR nodes).

    Roughly half newer Dells, a quarter older Dells, a quarter Suns --
    equipment bought over time, per Section 3.3's motivation.
    """
    out: list[ServerModel] = []
    quota = {
        "dell-1950": round(n * 0.40),
        "dell-2950": round(n * 0.15),
        "dell-1850": round(n * 0.25),
    }
    for model_name, count in quota.items():
        out.extend([MODEL_CATALOGUE[model_name]] * count)
    while len(out) < n:
        out.append(MODEL_CATALOGUE["sun-x4100"])
    return out[:n]


def ec2_fleet(n: int = 1000, seed: int = 11) -> list[ServerModel]:
    """A large homogeneous-ish fleet (the Table 7.3 EC2 run): one instance
    type, but with the mild speed variation EC2 instances exhibit."""
    rng = random.Random(seed)
    base = MODEL_CATALOGUE["dell-1850"]
    out = []
    for i in range(n):
        factor = rng.uniform(0.85, 1.15)
        out.append(
            ServerModel(
                name=f"ec2-{i}",
                cores=base.cores,
                match_rate=base.match_rate * factor,
                disk_rate=base.disk_rate * factor,
                fixed_overhead=base.fixed_overhead,
                power=base.power,
            )
        )
    return out


def make_sim_server(
    name: str, model: ServerModel, in_memory: bool = True
) -> SimServer:
    """Instantiate a simulator server from a catalogue model."""
    return SimServer(
        name=name,
        speed=model.speed(in_memory),
        fixed_overhead=model.fixed_overhead,
        cores=1,  # the scheduler model is serial; cores are in speed()
        power_idle=model.power.idle_watts,
        power_busy=model.power.busy_watts,
    )
