"""Multiple front-end servers (Section 4.8.3).

One front-end scales to a thousand servers, but fault tolerance and further
scaling want several.  The paper's design: front-ends schedule *completely
decoupled* -- each keeps its own outstanding-work predictions and speed
estimates -- which works because CPU/memory-bound matching degrades linearly
with concurrent tasks, and oscillations are avoided by averaging server
statistics over many queries (slow EWMAs).

:class:`MultiFrontEndDeployment` runs ``k`` independent
:class:`~repro.core.frontend.FrontEnd` instances over one shared server
pool, round-robining (or hashing) client queries across them, and measures
the price of decoupling: each front-end only *sees its own* dispatches, so
its backlog estimates under-count true server queues by roughly a factor of
``k``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..core.frontend import FrontEnd, FrontEndConfig
from ..core.membership import MembershipServer
from ..sim.server import SimServer
from ..telemetry.listeners import ChunkListener, ListenerList
from ..telemetry.records import DelayLog, QueryRecord

__all__ = ["MultiFrontEndDeployment"]


class MultiFrontEndDeployment:
    """Shared server pool driven by k decoupled front-end schedulers."""

    def __init__(
        self,
        speeds: Sequence[float],
        p: int,
        n_frontends: int = 2,
        dataset_size: float = 1e6,
        fixed_overhead: float = 0.002,
        ewma_alpha: float = 0.05,
        seed: int = 1,
        shared_view: bool = False,
    ) -> None:
        if n_frontends < 1:
            raise ValueError("need at least one front-end")
        self.p = p
        self.dataset_size = float(dataset_size)
        #: when True front-ends sync busy_until from the real servers before
        #: scheduling (a perfectly shared view -- the comparison baseline).
        self.shared_view = shared_view
        self.rng = random.Random(seed)
        self.membership = MembershipServer.build_balanced(
            list(speeds), n_rings=1, rng=self.rng
        )
        self.ring = self.membership.rings[0]
        self.servers = {
            node.name: SimServer(node.name, node.speed, fixed_overhead=fixed_overhead)
            for node in self.ring
        }
        # Decoupled front-ends must not deterministically agree on "the"
        # best rotation -- synchronized choices pile every query onto the
        # same servers and the blind spots compound.  Randomised rotation
        # sampling decorrelates them at a small optimality cost; with a
        # perfectly shared view the deterministic sweep is safe.
        method = "heap" if (shared_view or n_frontends == 1) else "random"
        self.frontends = [
            FrontEnd(
                self.ring,
                dataset_size,
                FrontEndConfig(
                    fixed_overhead=fixed_overhead,
                    ewma_alpha=ewma_alpha,
                    method=method,
                    random_starts=3,
                ),
                rng=random.Random(seed + i),
            )
            for i in range(n_frontends)
        ]
        self.log = DelayLog()
        self._counter = 0
        self._fe_seed = seed + n_frontends
        #: legacy per-query callbacks (deprecated -- appending warns once;
        #: prefer chunk_listeners).
        self.query_listeners: ListenerList = ListenerList()
        #: chunk-array subscribers; fed via ``observe_record`` here (the
        #: multi-front-end path has no batched engine).
        self.chunk_listeners: list[ChunkListener] = []

    def _pick_frontend(self) -> FrontEnd:
        fe = self.frontends[self._counter % len(self.frontends)]
        self._counter += 1
        return fe

    # -- front-end elasticity (driven by the control plane) ---------------------
    @property
    def n_frontends(self) -> int:
        return len(self.frontends)

    def add_frontend(self) -> FrontEnd:
        """Add one more decoupled scheduler over the shared pool.

        New front-ends start with catalogue speed estimates and an empty
        outstanding-work view; the slow EWMAs converge them (Section 4.8.3).
        """
        self._fe_seed += 1
        fe = FrontEnd(
            self.ring,
            self.dataset_size,
            FrontEndConfig(
                fixed_overhead=self.frontends[0].config.fixed_overhead,
                ewma_alpha=self.frontends[0].config.ewma_alpha,
                method="random" if not self.shared_view else "heap",
                random_starts=3,
            ),
            rng=random.Random(self._fe_seed),
        )
        self.frontends.append(fe)
        if not self.shared_view:
            # A pool scaled up from a single front-end may still hold a
            # deterministic heap scheduler; once decoupled peers exist,
            # every member must sample randomised rotations or their
            # synchronized choices pile load (see the constructor comment).
            for existing in self.frontends:
                existing.config.method = "random"
        return fe

    def remove_frontend(self) -> None:
        """Retire one front-end (its in-flight statistics are discarded)."""
        if len(self.frontends) <= 1:
            raise ValueError("need at least one front-end")
        self.frontends.pop()

    def run_query(self, now: float) -> QueryRecord:
        frontend = self._pick_frontend()
        if self.shared_view:
            for node in self.ring:
                frontend.stats_for(node).busy_until = self.servers[
                    node.name
                ].busy_until
        qid, plan, _ = frontend.schedule_query(now, self.p)
        frontend.reserve(plan, now)
        finish = now
        for sub in plan.subs:
            server = self.servers[sub.node.name]
            work = sub.width * self.dataset_size
            f = server.submit(now, work, query_id=qid)
            frontend.observe_completion(
                sub.node, work, server.service_time(work), f
            )
            finish = max(finish, f)
        record = QueryRecord(
            query_id=self._counter,
            arrival=now,
            finish=finish,
            pq=self.p,
            subqueries=len(plan.subs),
        )
        self.log.add(record)
        for listener in self.query_listeners:
            listener(record)
        for chunk_listener in self.chunk_listeners:
            chunk_listener.observe_record(record)
        return record

    def run(self, arrival_times: Sequence[float]) -> DelayLog:
        for t in arrival_times:
            self.run_query(t)
        return self.log

    # -- health metrics ---------------------------------------------------------
    def estimate_divergence(self) -> float:
        """Mean relative disagreement between front-ends' speed estimates.

        A proxy for the oscillation risk Section 4.8.3 warns about; slow
        EWMAs keep this small.
        """
        if len(self.frontends) < 2:
            return 0.0
        total = 0.0
        count = 0
        for node in self.ring:
            estimates = [
                fe.stats[node.name].speed_estimate for fe in self.frontends
            ]
            mean = sum(estimates) / len(estimates)
            if mean > 0:
                total += (max(estimates) - min(estimates)) / mean
                count += 1
        return total / count if count else 0.0

    def utilisation(self) -> float:
        elapsed = max((r.finish for r in self.log.records), default=1.0)
        busy = sum(s.busy_time for s in self.servers.values())
        return busy / (elapsed * len(self.servers))
