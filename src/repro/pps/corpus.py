"""Synthetic file corpus generation.

The paper's evaluation uses metadata generated from the author's home
directory -- which we obviously don't have.  This module builds a
deterministic synthetic equivalent: file paths drawn from a directory tree,
content keywords drawn Zipf-style from a vocabulary, lognormal-ish sizes and
uniform modification dates.  The substitution preserves what the experiments
exercise: metadata counts, keyword selectivities (frequent words match
nearly everything, rare words almost nothing), and path depth distribution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from .metadata import FileMetadata

__all__ = ["Vocabulary", "CorpusConfig", "generate_corpus", "zipf_weights"]

#: base word stems used to synthesise a vocabulary of arbitrary size.
_STEMS = (
    "report paper draft notes thesis photo video song album budget invoice "
    "meeting project design sketch model data results analysis summary plan "
    "holiday family travel receipt contract letter resume code patch backup "
    "archive lecture slides exam homework recipe garden music movie book"
).split()

_DIRS = (
    "home docs work personal research teaching archive media photos music "
    "projects src papers drafts old new shared tmp"
).split()

_EXTENSIONS = ("txt", "pdf", "doc", "tex", "jpg", "png", "mp3", "py", "c", "md")


def zipf_weights(n: int, exponent: float = 1.0) -> list[float]:
    """Zipf-like popularity weights for a vocabulary of *n* words."""
    return [1.0 / (i + 1) ** exponent for i in range(n)]


@dataclass
class Vocabulary:
    """A ranked vocabulary with Zipf sampling."""

    words: list[str]
    exponent: float = 1.0

    def __post_init__(self) -> None:
        self.weights = zipf_weights(len(self.words), self.exponent)

    @classmethod
    def synthetic(cls, size: int = 2000, exponent: float = 1.0) -> "Vocabulary":
        words = []
        i = 0
        while len(words) < size:
            stem = _STEMS[i % len(_STEMS)]
            suffix = i // len(_STEMS)
            words.append(stem if suffix == 0 else f"{stem}{suffix}")
            i += 1
        return cls(words=words, exponent=exponent)

    def sample(self, rng: random.Random, count: int) -> list[str]:
        """*count* distinct words, popularity-weighted."""
        chosen: list[str] = []
        seen: set[str] = set()
        guard = 0
        while len(chosen) < count and guard < count * 50:
            word = rng.choices(self.words, weights=self.weights, k=1)[0]
            if word not in seen:
                seen.add(word)
                chosen.append(word)
            guard += 1
        return chosen

    def frequency_rank(self, word: str) -> int:
        return self.words.index(word)


@dataclass
class CorpusConfig:
    n_files: int = 10_000
    keywords_per_file: int = 12
    max_path_depth: int = 6
    vocabulary_size: int = 2000
    zipf_exponent: float = 1.0
    seed: int = 7
    mtime_lo: float = 1.0e9
    mtime_hi: float = 1.0e9 + 208 * 7 * 86400.0


def generate_corpus(config: CorpusConfig | None = None) -> list[FileMetadata]:
    """Generate a deterministic synthetic file collection."""
    config = config or CorpusConfig()
    rng = random.Random(config.seed)
    vocab = Vocabulary.synthetic(config.vocabulary_size, config.zipf_exponent)
    files = []
    for i in range(config.n_files):
        depth = rng.randint(2, config.max_path_depth)
        parts = [rng.choice(_DIRS) for _ in range(depth - 1)]
        stem = rng.choice(vocab.words)
        ext = rng.choice(_EXTENSIONS)
        path = "/" + "/".join(parts + [f"{stem}-{i}.{ext}"])
        keywords = tuple(vocab.sample(rng, config.keywords_per_file))
        # Lognormal-ish size: most files small, a heavy tail of big ones.
        size = int(min(2**30, 2 ** rng.uniform(8, 26)))
        mtime = rng.uniform(config.mtime_lo, config.mtime_hi)
        files.append(
            FileMetadata(path=path, keywords=keywords, size=size, mtime=mtime)
        )
    return files


def corpus_vocabulary(config: CorpusConfig | None = None) -> Vocabulary:
    """The vocabulary a corpus was generated from (for query generation)."""
    config = config or CorpusConfig()
    return Vocabulary.synthetic(config.vocabulary_size, config.zipf_exponent)
