"""Cryptographic primitives for Privacy Preserving Search.

The paper's implementation (Section 5.6) uses SHA-1/HMAC as a pseudorandom
function and AES as a pseudorandom permutation.  We use HMAC-SHA1 from the
standard library for the PRF and build a small-domain pseudorandom
permutation from a Feistel network with cycle walking (the standard
construction for format-preserving permutations), keyed by the same PRF --
no third-party crypto dependency needed.

All keys are raw byte strings produced by :func:`keygen`.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct

__all__ = [
    "keygen",
    "prf",
    "prf_int",
    "prf_bit",
    "derive_key",
    "random_nonce",
    "FeistelPermutation",
]

#: default security parameter in bytes (160-bit keys, matching SHA-1 output).
KEY_BYTES = 20


def keygen(nbytes: int = KEY_BYTES, rng: "os.urandom.__class__ | None" = None) -> bytes:
    """Generate a fresh uniformly random key."""
    return os.urandom(nbytes)


def keygen_deterministic(seed: bytes | str, nbytes: int = KEY_BYTES) -> bytes:
    """Derive a key from a seed -- for reproducible tests and benchmarks."""
    if isinstance(seed, str):
        seed = seed.encode("utf-8")
    out = b""
    counter = 0
    while len(out) < nbytes:
        out += hashlib.sha1(seed + struct.pack(">I", counter)).digest()
        counter += 1
    return out[:nbytes]


def prf(key: bytes, message: bytes | str) -> bytes:
    """The pseudorandom function F_key(message): HMAC-SHA1, 20 bytes out."""
    if isinstance(message, str):
        message = message.encode("utf-8")
    return hmac.new(key, message, hashlib.sha1).digest()


def prf_int(key: bytes, message: bytes | str, modulus: int) -> int:
    """F_key(message) reduced to an integer in ``[0, modulus)``.

    Uses 8 output bytes before reduction; the bias is negligible for the
    Bloom-filter-sized moduli used here.
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    digest = prf(key, message)
    return int.from_bytes(digest[:8], "big") % modulus


def prf_bit(key: bytes, message: bytes | str) -> int:
    """A single pseudorandom bit (used to blind dictionary bits)."""
    return prf(key, message)[0] & 1


def derive_key(master: bytes, label: str) -> bytes:
    """Derive an independent sub-key from a master key."""
    return prf(master, "derive|" + label)


def random_nonce(nbytes: int = 8) -> bytes:
    return os.urandom(nbytes)


class FeistelPermutation:
    """A keyed pseudorandom permutation on ``[0, domain)``.

    A 4-round balanced Feistel network over ``2w`` bits (``w`` = half the
    bits needed for the domain), using the PRF as round function, with cycle
    walking to stay inside the domain.  This is the standard construction
    for small-domain PRPs (cf. Black & Rogaway, "Ciphers with Arbitrary
    Finite Domains"); 4 rounds of a PRF round function give a strong PRP by
    the Luby-Rackoff theorem.
    """

    ROUNDS = 4

    def __init__(self, key: bytes, domain: int) -> None:
        if domain < 1:
            raise ValueError("domain must be >= 1")
        self.domain = domain
        bits = max(2, (domain - 1).bit_length())
        if bits % 2:
            bits += 1
        self.half_bits = bits // 2
        self.half_mask = (1 << self.half_bits) - 1
        self.total = 1 << bits
        self.round_keys = [
            derive_key(key, f"feistel-round-{i}") for i in range(self.ROUNDS)
        ]

    def _round(self, i: int, value: int) -> int:
        data = struct.pack(">Q", value)
        return prf_int(self.round_keys[i], data, self.half_mask + 1)

    def _encrypt_raw(self, x: int) -> int:
        left = (x >> self.half_bits) & self.half_mask
        right = x & self.half_mask
        for i in range(self.ROUNDS):
            left, right = right, left ^ self._round(i, right)
        return (left << self.half_bits) | right

    def _decrypt_raw(self, y: int) -> int:
        left = (y >> self.half_bits) & self.half_mask
        right = y & self.half_mask
        for i in reversed(range(self.ROUNDS)):
            left, right = right ^ self._round(i, left), left
        return (left << self.half_bits) | right

    def encrypt(self, x: int) -> int:
        """Permute *x*; cycle-walk until the image lands inside the domain."""
        if not 0 <= x < self.domain:
            raise ValueError(f"value {x} outside domain [0, {self.domain})")
        y = self._encrypt_raw(x)
        while y >= self.domain:
            y = self._encrypt_raw(y)
        return y

    def decrypt(self, y: int) -> int:
        if not 0 <= y < self.domain:
            raise ValueError(f"value {y} outside domain [0, {self.domain})")
        x = self._decrypt_raw(y)
        while x >= self.domain:
            x = self._decrypt_raw(x)
        return x
