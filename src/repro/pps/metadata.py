"""File metadata encoding: bundling all attributes into one scheme (5.6.4).

Each user file contributes three kinds of searchable information: path
components, content keywords, and numeric attributes (size, modification
date).  Encoding each attribute separately would let the server learn which
attribute type each query targets; instead all attributes share a single
keyword space with type prefixes ("kw=", "path=", "size>", ...), exactly as
the paper stacks per-attribute dictionaries into one.

:class:`MetadataCodec` owns the underlying Bloom keyword scheme and the
reference-point layouts for the numeric attributes, and converts
:class:`FileMetadata` / typed queries to and from that shared word space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

from .schemes.base import EncryptedMetadata, EncryptedQuery
from .schemes.inequality import exponential_reference_points
from .schemes.keyword_bloom import BloomKeywordScheme

__all__ = ["FileMetadata", "MetadataCodec", "Predicate"]


@dataclass(frozen=True)
class FileMetadata:
    """Plaintext searchable description of one file."""

    path: str
    keywords: tuple[str, ...]  # rank-ordered, most important first
    size: int  # bytes
    mtime: float  # seconds since epoch

    def path_components(self) -> list[str]:
        return [part.lower() for part in self.path.split("/") if part]


@dataclass(frozen=True)
class Predicate:
    """A typed single-attribute query before encryption."""

    kind: Literal["keyword", "path", "size", "date"]
    op: str = "="  # "=", ">", "<"
    value: str | float = ""


class MetadataCodec:
    """Encodes files and predicates into the bundled keyword space."""

    def __init__(
        self,
        key: bytes,
        max_content_keywords: int = 50,
        max_path_depth: int = 22,
        size_points: Sequence[float] | None = None,
        date_points: Sequence[float] | None = None,
        fp_rate: float = 1e-5,
    ) -> None:
        self.max_content_keywords = max_content_keywords
        self.max_path_depth = max_path_depth
        #: reference points for file sizes: exponential up to 1 GiB+
        self.size_points = sorted(size_points or exponential_reference_points(2**30))
        #: reference points for mtimes: default weekly over ~4 years back
        #: from a fixed epoch (deterministic for reproducibility).
        if date_points is None:
            base = 1.0e9
            week = 7 * 86400.0
            date_points = [base + i * week for i in range(208)]
        self.date_points = sorted(date_points)

        capacity = (
            max_content_keywords
            + max_path_depth
            + len(self.size_points)
            + len(self.date_points)
        )
        self.scheme = BloomKeywordScheme(key, max_words=capacity, fp_rate=fp_rate)

    # -- word-space mapping -------------------------------------------------
    def words_for_file(self, meta: FileMetadata) -> list[str]:
        words: list[str] = []
        words.extend(
            f"kw={w.lower()}" for w in meta.keywords[: self.max_content_keywords]
        )
        words.extend(
            f"path={c}" for c in meta.path_components()[: self.max_path_depth]
        )
        for p in self.size_points:
            if meta.size > p:
                words.append(f"size>{p:g}")
            elif meta.size < p:
                words.append(f"size<{p:g}")
        for p in self.date_points:
            if meta.mtime > p:
                words.append(f"date>{p:g}")
            elif meta.mtime < p:
                words.append(f"date<{p:g}")
        return words

    def word_for_predicate(self, pred: Predicate) -> str:
        if pred.kind == "keyword":
            if pred.op != "=":
                raise ValueError("keyword predicates support '=' only")
            return f"kw={str(pred.value).lower()}"
        if pred.kind == "path":
            if pred.op != "=":
                raise ValueError("path predicates support '=' only")
            return f"path={str(pred.value).lower()}"
        if pred.kind == "size":
            return self._numeric_word("size", pred.op, float(pred.value), self.size_points)
        if pred.kind == "date":
            return self._numeric_word("date", pred.op, float(pred.value), self.date_points)
        raise ValueError(f"unknown predicate kind {pred.kind!r}")

    @staticmethod
    def _numeric_word(
        prefix: str, op: str, value: float, points: Sequence[float]
    ) -> str:
        if op not in (">", "<"):
            raise ValueError(f"numeric predicates need '>' or '<', got {op!r}")
        nearest = min(points, key=lambda p: abs(value - p))
        return f"{prefix}{op}{nearest:g}"

    # -- encryption ----------------------------------------------------------
    def encrypt_file(self, meta: FileMetadata) -> EncryptedMetadata:
        return self.scheme.encrypt_metadata(self.words_for_file(meta))

    def encrypt_predicate(self, pred: Predicate) -> EncryptedQuery:
        return self.scheme.encrypt_query(self.word_for_predicate(pred))

    def match(
        self, enc_meta: EncryptedMetadata, enc_query: EncryptedQuery
    ) -> bool:
        return self.scheme.match(enc_meta, enc_query)

    # -- introspection ----------------------------------------------------------
    def metadata_size_bytes(self) -> int:
        """Wire size of one encrypted metadata under current parameters."""
        return 8 + (self.scheme.filter_bits + 7) // 8
