"""The query execution engine: producer/consumer matching (Section 5.6.3).

One I/O thread reads metadata (from disk or the in-memory cache) in batches
into a fixed-size buffer; one matching thread per core consumes batches and
runs the encrypted match.  The buffer hides I/O latency when the CPU is the
bottleneck and adds almost nothing when I/O is.  Queries from the same user
are serialised; different users run concurrently (fair sharing).

Two fixed-cost profiles mirror the paper's two builds (Section 5.7):

* ``PPS_LM`` (low memory) runs a full garbage collection after every query
  -- higher fixed cost, flatter memory;
* ``PPS_LC`` (low CPU) skips it -- lower fixed cost, more memory.

The engine records an execution trace (cumulative produced/consumed counts
over time) so Fig 5.4's bottleneck analysis can be reproduced.
"""

from __future__ import annotations

import gc
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from .schemes.base import EncryptedMetadata, EncryptedQuery
from .store import StoredItem

__all__ = ["TracePoint", "MatchResult", "MatchEngine"]

#: sentinel pushed by the producer when the stream is exhausted.
_DONE = object()


@dataclass(frozen=True)
class TracePoint:
    """Cumulative progress sample: (wall time, items, role)."""

    t: float
    count: int
    role: str  # "io" or "match"


@dataclass
class MatchResult:
    """Outcome of one query execution."""

    matches: list[StoredItem]
    scanned: int
    elapsed: float
    io_wait: float
    trace: list[TracePoint] = field(default_factory=list)


MatchFn = Callable[[EncryptedMetadata], bool]


class MatchEngine:
    """Runs encrypted queries over metadata streams."""

    def __init__(
        self,
        n_threads: int = 1,
        batch_size: int = 1000,
        buffer_batches: int = 8,
        low_memory: bool = True,
        trace_every: int = 1000,
    ) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.n_threads = n_threads
        self.batch_size = batch_size
        self.buffer_batches = buffer_batches
        #: PPS_LM forces a GC after each query; PPS_LC does not.
        self.low_memory = low_memory
        self.trace_every = trace_every

    # -- synchronous reference path ----------------------------------------------
    def run_serial(
        self, items: Sequence[StoredItem], match_fn: MatchFn
    ) -> MatchResult:
        """Single-threaded load-then-match (validation baseline)."""
        t0 = time.perf_counter()
        matches = [it for it in items if match_fn(it.metadata)]
        elapsed = time.perf_counter() - t0
        if self.low_memory:
            gc.collect()
        return MatchResult(
            matches=matches, scanned=len(items), elapsed=elapsed, io_wait=0.0
        )

    # -- threaded path ---------------------------------------------------------------
    def run(
        self,
        items: Iterable[StoredItem],
        match_fn: MatchFn,
        io_delay_per_item: float = 0.0,
        stop_after_matches: int | None = None,
    ) -> MatchResult:
        """Producer/consumer execution.

        *io_delay_per_item* simulates disk-bound streams (the producer
        sleeps proportionally per batch); 0 models the in-memory cache.
        *stop_after_matches* implements early query termination for
        match-everything queries (Section 5.7, CPU-bound discussion).
        """
        buffer: queue.Queue = queue.Queue(maxsize=self.buffer_batches)
        matches: list[StoredItem] = []
        trace: list[TracePoint] = []
        lock = threading.Lock()
        scanned = 0
        io_wait = 0.0
        stop_flag = threading.Event()
        t0 = time.perf_counter()

        def producer() -> None:
            nonlocal io_wait
            produced = 0
            batch: list[StoredItem] = []
            for item in items:
                if stop_flag.is_set():
                    break
                batch.append(item)
                if len(batch) >= self.batch_size:
                    if io_delay_per_item > 0:
                        time.sleep(io_delay_per_item * len(batch))
                    wait_start = time.perf_counter()
                    buffer.put(batch)
                    io_wait += time.perf_counter() - wait_start
                    produced += len(batch)
                    if produced % self.trace_every < self.batch_size:
                        trace.append(
                            TracePoint(time.perf_counter() - t0, produced, "io")
                        )
                    batch = []
            if batch and not stop_flag.is_set():
                if io_delay_per_item > 0:
                    time.sleep(io_delay_per_item * len(batch))
                buffer.put(batch)
                produced += len(batch)
            trace.append(TracePoint(time.perf_counter() - t0, produced, "io"))
            for _ in range(self.n_threads):
                buffer.put(_DONE)

        def consumer() -> None:
            nonlocal scanned
            local_scanned = 0
            local_matches: list[StoredItem] = []
            while True:
                batch = buffer.get()
                if batch is _DONE:
                    break
                for item in batch:
                    if match_fn(item.metadata):
                        local_matches.append(item)
                local_scanned += len(batch)
                if local_scanned % self.trace_every < self.batch_size:
                    with lock:
                        trace.append(
                            TracePoint(
                                time.perf_counter() - t0,
                                scanned + local_scanned,
                                "match",
                            )
                        )
                if (
                    stop_after_matches is not None
                    and len(local_matches) >= stop_after_matches
                ):
                    stop_flag.set()
                    break
            with lock:
                matches.extend(local_matches)
                scanned += local_scanned

        io_thread = threading.Thread(target=producer, name="pps-io")
        workers = [
            threading.Thread(target=consumer, name=f"pps-match-{i}")
            for i in range(self.n_threads)
        ]
        io_thread.start()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        stop_flag.set()
        # Drain so the producer can finish if consumers stopped early.
        while io_thread.is_alive():
            try:
                buffer.get_nowait()
            except queue.Empty:
                time.sleep(0.0005)
        io_thread.join()

        elapsed = time.perf_counter() - t0
        if self.low_memory:
            gc_start = time.perf_counter()
            gc.collect()
            elapsed += time.perf_counter() - gc_start
        trace.append(TracePoint(elapsed, scanned, "match"))
        return MatchResult(
            matches=matches,
            scanned=scanned,
            elapsed=elapsed,
            io_wait=io_wait,
            trace=trace,
        )
