"""Privacy Preserving Search (Chapter 5): encrypted matching on untrusted
servers, the application driving the ROAR evaluation."""

from .bloom import BloomFilter, optimal_parameters
from .corpus import CorpusConfig, Vocabulary, corpus_vocabulary, generate_corpus
from .crypto import FeistelPermutation, keygen, keygen_deterministic, prf
from .index_based import (
    IndexModelParams,
    bandwidth_ratio,
    index_bandwidth,
    optimal_delta_max,
    pps_bandwidth,
)
from .matcher import MatchEngine, MatchResult, TracePoint
from .metadata import FileMetadata, MetadataCodec, Predicate
from .pubsub import Notification, StandingQueryIndex, Subscription
from .query import MultiPredicateQuery, sample_size_for_accuracy
from .results import ScoredMatch, bucket_scorer, local_top_k, merge_top_k
from .schemes import (
    BloomKeywordScheme,
    DictionaryKeywordScheme,
    EncryptedMetadata,
    EncryptedQuery,
    EqualityScheme,
    InequalityScheme,
    Partition,
    PPSScheme,
    RangeScheme,
    RankedScheme,
    dyadic_partitions,
    exponential_reference_points,
)
from .store import MetadataStore, StoredItem, UserStoreCache

__all__ = [
    "BloomFilter",
    "BloomKeywordScheme",
    "CorpusConfig",
    "DictionaryKeywordScheme",
    "EncryptedMetadata",
    "EncryptedQuery",
    "EqualityScheme",
    "FeistelPermutation",
    "FileMetadata",
    "IndexModelParams",
    "InequalityScheme",
    "MatchEngine",
    "MatchResult",
    "MetadataCodec",
    "MetadataStore",
    "MultiPredicateQuery",
    "Notification",
    "StandingQueryIndex",
    "Subscription",
    "PPSScheme",
    "Partition",
    "Predicate",
    "RangeScheme",
    "RankedScheme",
    "ScoredMatch",
    "bucket_scorer",
    "local_top_k",
    "merge_top_k",
    "StoredItem",
    "TracePoint",
    "UserStoreCache",
    "Vocabulary",
    "bandwidth_ratio",
    "corpus_vocabulary",
    "dyadic_partitions",
    "exponential_reference_points",
    "generate_corpus",
    "index_bandwidth",
    "keygen",
    "keygen_deterministic",
    "optimal_delta_max",
    "optimal_parameters",
    "pps_bandwidth",
    "prf",
    "sample_size_for_accuracy",
]
