"""The metadata store: pointer-indexed, partially loadable (Section 5.6.2).

Server-side layout: a user's encrypted metadata live in one array sorted by
identifier, with a small pointer table mapping identifier ranges to chunk
positions.  This supports

* *partial loading* -- a sub-query (from ROAR, with ``pq > p``) names an ID
  range, and only the chunks intersecting it are read;
* *sequential scans* -- the match engine consumes items in ID order;
* *LRU caching of user stores* -- a server hosts many users and keeps hot
  users' metadata in memory (Section 5.6.1).

Disk is simulated: each store tracks bytes "read from disk" so experiments
can model I/O-bound behaviour (the Dell 1950's ~66-85 MB/s sequential reads
of Section 5.7) without real files.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..core.ids import Arc, frac
from .schemes.base import EncryptedMetadata

__all__ = ["StoredItem", "MetadataStore", "UserStoreCache"]


@dataclass(frozen=True)
class StoredItem:
    """One metadata entry: ring identifier + encrypted payload."""

    item_id: float  # identifier in [0, 1), provided by the user
    metadata: EncryptedMetadata

    @property
    def size_bytes(self) -> int:
        return self.metadata.size_bytes


class MetadataStore:
    """A single user's sorted metadata array with a pointer index."""

    def __init__(
        self,
        items: Iterable[StoredItem] = (),
        chunk_size: int = 1024,
    ) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = chunk_size
        self._items: list[StoredItem] = sorted(items, key=lambda it: it.item_id)
        self._ids: list[float] = [it.item_id for it in self._items]
        #: accounting: bytes notionally read from disk by range loads.
        self.bytes_read = 0
        self.loads = 0

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[StoredItem]:
        return iter(self._items)

    # -- mutation ----------------------------------------------------------
    def add(self, item: StoredItem) -> None:
        idx = bisect.bisect_left(self._ids, item.item_id)
        self._items.insert(idx, item)
        self._ids.insert(idx, item.item_id)

    def remove_id(self, item_id: float) -> bool:
        idx = bisect.bisect_left(self._ids, item_id)
        if idx < len(self._ids) and self._ids[idx] == item_id:
            del self._items[idx]
            del self._ids[idx]
            return True
        return False

    def replace(self, item: StoredItem) -> None:
        """Update-in-place semantics: same id, new metadata."""
        self.remove_id(item.item_id)
        self.add(item)

    # -- pointer table ----------------------------------------------------------
    def pointer_table(self) -> list[tuple[float, int]]:
        """(first_id, position) per chunk -- the small file read first."""
        return [
            (self._ids[pos], pos)
            for pos in range(0, len(self._items), self.chunk_size)
        ]

    # -- range access ---------------------------------------------------------------
    def load_range(self, arc: Arc) -> list[StoredItem]:
        """Items with id inside *arc*, charged at chunk granularity.

        Mirrors the implementation's partial loading: whole chunks
        intersecting the requested range are read from "disk"; items outside
        the arc within those chunks cost I/O but are not returned.
        """
        self.loads += 1
        if not self._items:
            return []
        out: list[StoredItem] = []
        touched_chunks: set[int] = set()
        if arc.is_full_circle:
            out = list(self._items)
            touched_chunks = set(range((len(self._items) + self.chunk_size - 1) // self.chunk_size))
        else:
            ranges = self._linear_ranges(arc)
            for lo, hi in ranges:
                left = bisect.bisect_left(self._ids, lo)
                right = bisect.bisect_right(self._ids, hi)
                out.extend(self._items[left:right])
                for pos in range(left, right):
                    touched_chunks.add(pos // self.chunk_size)
        for chunk in touched_chunks:
            start = chunk * self.chunk_size
            end = min(start + self.chunk_size, len(self._items))
            self.bytes_read += sum(it.size_bytes for it in self._items[start:end])
        return out

    @staticmethod
    def _linear_ranges(arc: Arc) -> list[tuple[float, float]]:
        """Split a circular arc into at most two linear [lo, hi] intervals."""
        start = arc.start
        end = start + arc.length
        if end <= 1.0:
            return [(start, end)]
        return [(start, 1.0), (0.0, end - 1.0)]

    def all_bytes(self) -> int:
        return sum(it.size_bytes for it in self._items)


class UserStoreCache:
    """LRU cache of in-memory user stores (Section 5.6.1).

    Capacity is expressed in metadata items (a proxy for memory).  A cache
    miss counts the whole store's bytes as read from disk, matching the
    implementation's behaviour of loading a user's metadata on first query.
    """

    def __init__(self, capacity_items: int) -> None:
        if capacity_items < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity_items = capacity_items
        self._lru: OrderedDict[str, MetadataStore] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _cached_items(self) -> int:
        return sum(len(s) for s in self._lru.values())

    def get(self, user: str, loader) -> MetadataStore:
        """Fetch *user*'s store, loading via *loader()* on a miss."""
        if user in self._lru:
            self.hits += 1
            self._lru.move_to_end(user)
            return self._lru[user]
        self.misses += 1
        store = loader()
        store.bytes_read += store.all_bytes()  # cold load from disk
        self._lru[user] = store
        while self._cached_items() > self.capacity_items and len(self._lru) > 1:
            self._lru.popitem(last=False)
            self.evictions += 1
        return store

    def contains(self, user: str) -> bool:
        return user in self._lru

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
