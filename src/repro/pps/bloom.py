"""Bloom filters for the Goh keyword-matching scheme (Section 5.5.2).

The paper targets a false-positive rate of 1 in 100,000, which gives 17 hash
functions and ~25 bits per stored element; :func:`optimal_parameters`
computes those numbers for any target rate.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["BloomFilter", "optimal_parameters"]


def optimal_parameters(n_items: int, fp_rate: float) -> tuple[int, int]:
    """Optimal (size_bits, n_hashes) for *n_items* at *fp_rate*.

    m = -n ln(fp) / (ln 2)^2,  k = (m/n) ln 2.  For fp = 1e-5 this yields
    k = 17 and ~24 bits/element, matching the paper's figures.
    """
    if n_items < 1:
        raise ValueError("n_items must be >= 1")
    if not 0.0 < fp_rate < 1.0:
        raise ValueError("fp_rate must be in (0, 1)")
    m = math.ceil(-n_items * math.log(fp_rate) / (math.log(2.0) ** 2))
    k = max(1, round((m / n_items) * math.log(2.0)))
    return m, k


class BloomFilter:
    """A plain bit-array Bloom filter with externally supplied positions.

    The PPS schemes compute bit positions themselves (they are outputs of a
    keyed PRF, never of an in-filter hash), so this class only manages the
    bit array; it does not hash.
    """

    __slots__ = ("size", "bits")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        self.bits = bytearray((size + 7) // 8)

    def set(self, position: int) -> None:
        position %= self.size
        self.bits[position >> 3] |= 1 << (position & 7)

    def test(self, position: int) -> bool:
        position %= self.size
        return bool(self.bits[position >> 3] & (1 << (position & 7)))

    def set_all(self, positions: Iterable[int]) -> None:
        for pos in positions:
            self.set(pos)

    def test_all(self, positions: Iterable[int]) -> bool:
        return all(self.test(pos) for pos in positions)

    def count_set(self) -> int:
        return sum(bin(b).count("1") for b in self.bits)

    def fill_to(self, target_set_bits: int, rng) -> None:
        """Pad with random bits so all filters have the same population.

        Goh's defence against counting attacks: without padding, the number
        of set bits reveals the number of stored words (Section 5.5.2).
        """
        current = self.count_set()
        guard = 0
        while current < target_set_bits and guard < self.size * 4:
            pos = rng.randrange(self.size)
            if not self.test(pos):
                self.set(pos)
                current += 1
            guard += 1

    def to_bytes(self) -> bytes:
        return bytes(self.bits)

    @classmethod
    def from_bytes(cls, data: bytes, size: int) -> "BloomFilter":
        bf = cls(size)
        bf.bits = bytearray(data[: len(bf.bits)].ljust(len(bf.bits), b"\x00"))
        return bf

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomFilter):
            return NotImplemented
        return self.size == other.size and self.bits == other.bits

    def __len__(self) -> int:
        return self.size
