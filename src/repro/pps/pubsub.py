"""Online filtering: long-standing encrypted queries (Sections 2.3, 5.4).

The dual of the query scenario: users install *standing* queries
(subscriptions) on the servers; each newly stored metadata is matched
against them and the owners of matching queries are notified.  This is the
paper's second application class (e.g. "notify me when a message containing
URGENT arrives") and the original setting of the security model, which is
why Definition 7 includes the ``Cover`` relation: a server may organise
standing queries into a *covering forest* -- if query A covers query B
(A's matches are always a superset of B's), B need only be evaluated for
metadata that already matched A.

:class:`StandingQueryIndex` implements that engine over any
:class:`~repro.pps.schemes.base.PPSScheme`.  With the keyword-style schemes
the cover relation reduces to equality, so the forest collapses identical
subscriptions into one evaluation -- exactly the saving available without
leaking more than Definition 7 allows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .schemes.base import EncryptedMetadata, EncryptedQuery, PPSScheme

__all__ = ["Subscription", "Notification", "StandingQueryIndex"]


@dataclass(frozen=True)
class Subscription:
    """One installed standing query."""

    sub_id: int
    owner: str
    query: EncryptedQuery


@dataclass(frozen=True)
class Notification:
    """Delivered to a subscription owner when new metadata matches."""

    sub_id: int
    owner: str
    metadata: EncryptedMetadata


class _CoverNode:
    """A node of the covering forest: one representative query plus the
    subscriptions it is equivalent to / covered by."""

    __slots__ = ("query", "subscriptions", "children")

    def __init__(self, query: EncryptedQuery) -> None:
        self.query = query
        self.subscriptions: list[Subscription] = []
        self.children: list["_CoverNode"] = []


class StandingQueryIndex:
    """Server-side store of standing queries with cover-based evaluation."""

    def __init__(self, scheme: PPSScheme) -> None:
        self.scheme = scheme
        self._roots: list[_CoverNode] = []
        self._subs: dict[int, Subscription] = {}
        self._next_id = 1
        #: instrumentation: query evaluations performed by match_metadata.
        self.evaluations = 0

    # -- subscription management ------------------------------------------------
    def subscribe(self, owner: str, query: EncryptedQuery) -> Subscription:
        """Install a standing query; returns the subscription handle."""
        sub = Subscription(self._next_id, owner, query)
        self._next_id += 1
        self._subs[sub.sub_id] = sub
        self._insert(sub)
        return sub

    def _insert(self, sub: Subscription) -> None:
        # Find a root covering this query; with keyword-style schemes Cover
        # is equality, so this dedupes identical subscriptions.
        for root in self._roots:
            if self.scheme.cover(root.query, sub.query) and self.scheme.cover(
                sub.query, root.query
            ):
                root.subscriptions.append(sub)
                return
            if self.scheme.cover(root.query, sub.query):
                child = _CoverNode(sub.query)
                child.subscriptions.append(sub)
                root.children.append(child)
                return
        node = _CoverNode(sub.query)
        node.subscriptions.append(sub)
        self._roots.append(node)

    def unsubscribe(self, sub_id: int) -> bool:
        """Withdraw a standing query."""
        sub = self._subs.pop(sub_id, None)
        if sub is None:
            return False

        def prune(nodes: list[_CoverNode]) -> None:
            for node in list(nodes):
                node.subscriptions = [
                    s for s in node.subscriptions if s.sub_id != sub_id
                ]
                prune(node.children)
                if not node.subscriptions and not node.children:
                    nodes.remove(node)

        prune(self._roots)
        return True

    def __len__(self) -> int:
        return len(self._subs)

    def distinct_queries(self) -> int:
        count = 0

        def walk(nodes: list[_CoverNode]) -> None:
            nonlocal count
            for node in nodes:
                count += 1
                walk(node.children)

        walk(self._roots)
        return count

    # -- matching -----------------------------------------------------------------
    def match_metadata(self, metadata: EncryptedMetadata) -> list[Notification]:
        """Match one new metadata against all standing queries.

        Uses the cover forest: children are only evaluated when their
        covering parent matched (a non-matching parent proves the child
        cannot match either, since the parent's match set is a superset).
        """
        out: list[Notification] = []

        def visit(node: _CoverNode) -> None:
            self.evaluations += 1
            if not self.scheme.match(metadata, node.query):
                return
            for sub in node.subscriptions:
                out.append(Notification(sub.sub_id, sub.owner, metadata))
            for child in node.children:
                visit(child)

        for root in self._roots:
            visit(root)
        return out

    def match_batch(
        self, metadatas: Iterator[EncryptedMetadata] | list[EncryptedMetadata]
    ) -> list[Notification]:
        out: list[Notification] = []
        for metadata in metadatas:
            out.extend(self.match_metadata(metadata))
        return out
