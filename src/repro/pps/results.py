"""Result assembly and ranking at the front-end (Chapter 1, Section 5.5.4).

Each queried server ranks its local matches and returns only its best
``k``; the front-end merges the per-server lists, ranks once more, and
returns the global top ``k`` to the user.  This module implements that
two-level top-k pipeline plus the scoring used with ranked PPS queries
(rank-bucket membership as a coarse relevance signal).

Correctness note: two-level top-k is exact as long as every server returns
its *complete* local top-k -- the global top-k is a subset of the union of
local top-ks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

__all__ = ["ScoredMatch", "local_top_k", "merge_top_k", "bucket_scorer"]


@dataclass(frozen=True, order=True)
class ScoredMatch:
    """One match with its relevance score (higher = better).

    Ordering is by (score, tiebreak) so heap operations are deterministic;
    ``payload`` is excluded from comparisons.
    """

    score: float
    tiebreak: float
    payload: object = field(compare=False)


def local_top_k(
    matches: Iterable[tuple[object, float]],
    k: int,
) -> list[ScoredMatch]:
    """A server's side of the pipeline: keep the best *k* of its matches.

    Input is ``(payload, score)`` pairs; output is sorted best-first.
    Runs in O(m log k) via a bounded min-heap.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    heap: list[ScoredMatch] = []
    for i, (payload, score) in enumerate(matches):
        item = ScoredMatch(score=score, tiebreak=-float(i), payload=payload)
        if len(heap) < k:
            heapq.heappush(heap, item)
        elif item > heap[0]:
            heapq.heapreplace(heap, item)
    return sorted(heap, reverse=True)


def merge_top_k(
    per_server: Sequence[Sequence[ScoredMatch]],
    k: int,
) -> list[ScoredMatch]:
    """The front-end's side: merge per-server top lists into a global top-k.

    Inputs need not be sorted; output is sorted best-first.  Exact provided
    each input holds that server's complete local top-k.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    heap: list[ScoredMatch] = []
    for server_list in per_server:
        for item in server_list:
            if len(heap) < k:
                heapq.heappush(heap, item)
            elif item > heap[0]:
                heapq.heapreplace(heap, item)
    return sorted(heap, reverse=True)


def bucket_scorer(
    thresholds: Sequence[int],
    membership_test: Callable[[object, int], bool],
) -> Callable[[object], float]:
    """Scoring from rank-bucket membership (Section 5.5.4).

    With the ranked PPS scheme the server can only test "is keyword within
    the top t features" for the offered thresholds; the tightest satisfied
    bucket becomes the score (smaller bucket = higher score).

    *membership_test(doc, t)* must answer the encrypted top-t test.
    """
    ordered = sorted(set(int(t) for t in thresholds))
    if not ordered:
        raise ValueError("need at least one threshold")

    def score(doc: object) -> float:
        for t in ordered:
            if membership_test(doc, t):
                # tightest bucket wins: score decreases with t.
                return 1.0 / t
        return 0.0

    return score
