"""Multi-predicate queries with dynamic predicate ordering (Section 5.6.5).

A query is a list of encrypted predicates combined with AND or OR.  The
server first matches *all* predicates against a small sample (225 items --
the count the paper derives from Chebyshev's inequality for 0.1 selectivity
accuracy at ~89% confidence), estimates each predicate's selectivity, then
orders them: most selective first for AND (cheap rejections), least
selective first for OR (cheap acceptances).  This makes query cost nearly
independent of wildcard-ish terms ("the") -- the §5.7.1 experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Literal, Sequence

from .schemes.base import EncryptedMetadata, EncryptedQuery, PPSScheme

__all__ = ["MultiPredicateQuery", "sample_size_for_accuracy"]

#: the paper's sample count (accuracy 0.1 at ~89% confidence).
DEFAULT_SAMPLE_SIZE = 225


def sample_size_for_accuracy(accuracy: float) -> int:
    """Samples needed for selectivity accuracy via Chebyshev: n = (3/(2a))^2.

    From |s' - s| <= 3/(2*sqrt(n)) at ~89% confidence; accuracy 0.1 gives
    n = 225, the value used in the implementation.
    """
    if not 0 < accuracy < 1:
        raise ValueError("accuracy must be in (0, 1)")
    return math.ceil((3.0 / (2.0 * accuracy)) ** 2)


@dataclass
class _PredicateState:
    query: EncryptedQuery
    scheme: PPSScheme
    sample_matches: int = 0
    evaluations: int = 0

    def selectivity(self, samples: int) -> float:
        if samples == 0:
            return 0.5
        return self.sample_matches / samples


class MultiPredicateQuery:
    """AND/OR combination of encrypted predicates with adaptive ordering."""

    def __init__(
        self,
        predicates: Sequence[tuple[PPSScheme, EncryptedQuery]],
        op: Literal["and", "or"] = "and",
        dynamic_ordering: bool = True,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
    ) -> None:
        if not predicates:
            raise ValueError("need at least one predicate")
        if op not in ("and", "or"):
            raise ValueError(f"op must be 'and' or 'or', got {op!r}")
        self.op = op
        self.dynamic_ordering = dynamic_ordering
        self.sample_size = sample_size
        self._preds = [_PredicateState(query=q, scheme=s) for s, q in predicates]
        self._order: list[int] = list(range(len(self._preds)))
        self._samples_seen = 0
        self._ordered = False
        #: total predicate evaluations -- the cost metric for §5.7.1.
        self.total_evaluations = 0

    # -- ordering ------------------------------------------------------------
    def _maybe_reorder(self) -> None:
        if self._ordered or not self.dynamic_ordering:
            return
        if self._samples_seen < self.sample_size:
            return
        selectivities = [
            (p.selectivity(self._samples_seen), i)
            for i, p in enumerate(self._preds)
        ]
        # AND: most selective (fewest matches) first; OR: least selective
        # (most matches) first -- both maximise early exits.
        reverse = self.op == "or"
        selectivities.sort(reverse=reverse)
        self._order = [i for _, i in selectivities]
        self._ordered = True

    def current_order(self) -> list[int]:
        return list(self._order)

    def selectivities(self) -> list[float]:
        return [p.selectivity(max(1, self._samples_seen)) for p in self._preds]

    # -- matching --------------------------------------------------------------
    def matches(self, metadata: EncryptedMetadata) -> bool:
        """Evaluate the combined query against one metadata item."""
        in_sample = self._samples_seen < self.sample_size and self.dynamic_ordering
        if in_sample:
            # Sampling phase: evaluate every predicate to learn selectivity.
            results = []
            for p in self._preds:
                hit = p.scheme.match(metadata, p.query)
                p.evaluations += 1
                self.total_evaluations += 1
                if hit:
                    p.sample_matches += 1
                results.append(hit)
            self._samples_seen += 1
            self._maybe_reorder()
            return all(results) if self.op == "and" else any(results)

        # Ordered phase: short-circuit in selectivity order.
        if self.op == "and":
            for i in self._order:
                p = self._preds[i]
                p.evaluations += 1
                self.total_evaluations += 1
                if not p.scheme.match(metadata, p.query):
                    return False
            return True
        for i in self._order:
            p = self._preds[i]
            p.evaluations += 1
            self.total_evaluations += 1
            if p.scheme.match(metadata, p.query):
                return True
        return False

    def as_match_fn(self) -> Callable[[EncryptedMetadata], bool]:
        return self.matches

    def mean_evaluations_per_item(self, items_matched: int) -> float:
        if items_matched == 0:
            return 0.0
        return self.total_evaluations / items_matched
