"""PPS matching schemes (Section 5.5)."""

from .base import EncryptedMetadata, EncryptedQuery, PPSScheme
from .equality import EqualityScheme
from .inequality import (
    InequalityScheme,
    exponential_reference_points,
    linear_reference_points,
)
from .keyword_bloom import BloomKeywordScheme
from .keyword_dict import DictionaryKeywordScheme
from .range_scheme import Partition, RangeScheme, dyadic_partitions
from .ranked import DEFAULT_THRESHOLDS, RankedScheme

__all__ = [
    "BloomKeywordScheme",
    "DEFAULT_THRESHOLDS",
    "DictionaryKeywordScheme",
    "EncryptedMetadata",
    "EncryptedQuery",
    "EqualityScheme",
    "InequalityScheme",
    "Partition",
    "PPSScheme",
    "RangeScheme",
    "RankedScheme",
    "dyadic_partitions",
    "exponential_reference_points",
    "linear_reference_points",
]
