"""Numeric inequality matching (Section 5.5.3, "Supporting Inequality
Queries") -- a novel construction of the paper.

Choose ``l`` reference points ``p1..pl`` of the numeric domain and form the
dictionary ``{"> p1", ..., "> pl", "< p1", ..., "< pl"}``.  A metadata value
``N`` is the document containing every dictionary word it satisfies; a query
``(op, value)`` is approximated by the dictionary word at the nearest
reference point.  Matching then reduces to keyword matching under either
base scheme.

The reference-point layout trades overhead for precision;
:func:`exponential_reference_points` reproduces the paper's example (1..10,
20..100, ..., 10^8..10^9: only ~100 points for 4-byte positive integers,
with precision that scales with magnitude).
"""

from __future__ import annotations

from typing import Iterable, Literal, Sequence

from .base import EncryptedMetadata, EncryptedQuery, PPSScheme
from .keyword_bloom import BloomKeywordScheme
from .keyword_dict import DictionaryKeywordScheme

__all__ = [
    "InequalityScheme",
    "exponential_reference_points",
    "linear_reference_points",
]


def exponential_reference_points(max_value: float = 1e9) -> list[float]:
    """1, 2, ..., 10, 20, ..., 100, 200, ..., up to *max_value*."""
    points: list[float] = []
    scale = 1.0
    while scale < max_value:
        for mult in range(1, 10):
            value = mult * scale
            if value > max_value:
                break
            points.append(value)
        scale *= 10.0
    points.append(max_value)
    return sorted(set(points))


def linear_reference_points(lo: float, hi: float, count: int) -> list[float]:
    """*count* evenly spaced reference points over [lo, hi]."""
    if count < 2:
        raise ValueError("count must be >= 2")
    step = (hi - lo) / (count - 1)
    return [lo + i * step for i in range(count)]


class InequalityScheme(PPSScheme):
    name = "inequality"

    def __init__(
        self,
        key: bytes,
        reference_points: Sequence[float],
        base: Literal["bloom", "dict"] = "dict",
    ) -> None:
        if not reference_points:
            raise ValueError("need at least one reference point")
        self.points = sorted(reference_points)
        self._words = [f">{p}" for p in self.points] + [f"<{p}" for p in self.points]
        if base == "dict":
            self._base: PPSScheme = DictionaryKeywordScheme(key, self._words)
        elif base == "bloom":
            self._base = BloomKeywordScheme(
                key, max_words=len(self._words), fp_rate=1e-5
            )
        else:
            raise ValueError(f"unknown base scheme {base!r}")
        self.base_name = base

    # -- encoding helpers -------------------------------------------------------
    def _nearest_point(self, value: float) -> float:
        return min(self.points, key=lambda p: abs(value - p))

    def words_for_value(self, value: float) -> list[str]:
        """The dictionary words a metadata value satisfies."""
        words = []
        for p in self.points:
            if value > p:
                words.append(f">{p}")
            elif value < p:
                words.append(f"<{p}")
            # equality satisfies neither strict inequality word
        return words

    def approximate_query(self, op: str, value: float) -> str:
        """The dictionary word approximating an inequality query."""
        if op not in (">", "<"):
            raise ValueError(f"op must be '>' or '<', got {op!r}")
        return f"{op}{self._nearest_point(value)}"

    # -- scheme interface ----------------------------------------------------------
    def encrypt_query(self, query: tuple[str, float]) -> EncryptedQuery:
        op, value = query
        word = self.approximate_query(op, value)
        inner = self._base.encrypt_query(word)
        return EncryptedQuery(self.name, inner, size_bytes=inner.size_bytes)

    def encrypt_metadata(self, metadata: float) -> EncryptedMetadata:
        words = self.words_for_value(float(metadata))
        inner = self._base.encrypt_metadata(words)
        return EncryptedMetadata(self.name, inner, size_bytes=inner.size_bytes)

    def match(self, enc_metadata: EncryptedMetadata, enc_query: EncryptedQuery) -> bool:
        self._check_scheme(enc_metadata, enc_query)
        return self._base.match(enc_metadata.payload, enc_query.payload)

    def cover(self, q1: EncryptedQuery, q2: EncryptedQuery) -> bool:
        """Equality check only; full inequality covering needs extra
        information the secure encoding hides (Section 5.5.3)."""
        return self._base.cover(q1.payload, q2.payload)
