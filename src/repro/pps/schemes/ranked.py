"""Ranked keyword queries (Section 5.5.4).

Traditional IR ranks by a query-document scalar product, which PPS cannot
compute; the paper approximates it by bucketing keyword *importance*:
partition the feature (rank) space as {first, first 5, first 10, first 25}
and, for a keyword at rank j, store the word ``top{t}|{keyword}`` for every
threshold ``t >= j``.  A ranked query asks for documents where a keyword is
within the first ``t`` features.

With the default thresholds a document gains ``1 + 5 + 10 + 25 = 41`` extra
stored words (the paper's count), growing Bloom metadata from ~130 B to
~250 B.
"""

from __future__ import annotations

from typing import Literal, Sequence

from .base import EncryptedMetadata, EncryptedQuery, PPSScheme
from .keyword_bloom import BloomKeywordScheme

__all__ = ["RankedScheme", "DEFAULT_THRESHOLDS"]

DEFAULT_THRESHOLDS = (1, 5, 10, 25)


class RankedScheme(PPSScheme):
    name = "ranked"

    def __init__(
        self,
        key: bytes,
        thresholds: Sequence[int] = DEFAULT_THRESHOLDS,
        max_keywords: int = 50,
        fp_rate: float = 1e-5,
    ) -> None:
        if not thresholds:
            raise ValueError("need at least one rank threshold")
        self.thresholds = tuple(sorted(set(int(t) for t in thresholds)))
        if self.thresholds[0] < 1:
            raise ValueError("thresholds must be >= 1")
        self.max_keywords = max_keywords
        # Stored words: the plain keywords plus sum(thresholds) rank words.
        capacity = max_keywords + sum(
            min(t, max_keywords) for t in self.thresholds
        )
        self._base = BloomKeywordScheme(key, max_words=capacity, fp_rate=fp_rate)

    def rank_words(self, ranked_keywords: Sequence[str]) -> list[str]:
        """All stored words for a rank-ordered keyword list.

        ``ranked_keywords[0]`` is the most important feature.  Output is the
        plain keywords (supporting unranked queries) plus ``top{t}|{kw}``
        for each keyword within each threshold.
        """
        if len(ranked_keywords) > self.max_keywords:
            raise ValueError(
                f"too many keywords ({len(ranked_keywords)} > {self.max_keywords})"
            )
        words = [str(k).lower() for k in ranked_keywords]
        out = list(words)
        for t in self.thresholds:
            out.extend(f"top{t}|{kw}" for kw in words[:t])
        return out

    def query_word(self, keyword: str, within_top: int | None = None) -> str:
        """The stored word a (keyword, rank-threshold) query targets."""
        keyword = str(keyword).lower()
        if within_top is None:
            return keyword
        if within_top not in self.thresholds:
            raise ValueError(
                f"threshold {within_top} not offered; choose from {self.thresholds}"
            )
        return f"top{within_top}|{keyword}"

    # -- scheme interface --------------------------------------------------------
    def encrypt_query(self, query: tuple[str, int | None] | str) -> EncryptedQuery:
        if isinstance(query, str):
            keyword, top = query, None
        else:
            keyword, top = query
        inner = self._base.encrypt_query(self.query_word(keyword, top))
        return EncryptedQuery(self.name, inner, size_bytes=inner.size_bytes)

    def encrypt_metadata(self, metadata: Sequence[str]) -> EncryptedMetadata:
        inner = self._base.encrypt_metadata(self.rank_words(metadata))
        return EncryptedMetadata(self.name, inner, size_bytes=inner.size_bytes)

    def match(self, enc_metadata: EncryptedMetadata, enc_query: EncryptedQuery) -> bool:
        self._check_scheme(enc_metadata, enc_query)
        return self._base.match(enc_metadata.payload, enc_query.payload)

    def cover(self, q1: EncryptedQuery, q2: EncryptedQuery) -> bool:
        return self._base.cover(q1.payload, q2.payload)
