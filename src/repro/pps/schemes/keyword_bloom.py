"""Bloom-filter keyword matching -- Goh's scheme (Section 5.5.2).

Key: ``r`` independent PRF sub-keys (one per Bloom hash function).

* ``EncryptQuery(K, w)`` -- the *trapdoor*: ``(F_k1(w), ..., F_kr(w))``.
* ``EncryptMetadata(K, words)`` -- fresh nonce ``rnd``; for each word the
  trapdoor values are re-keyed by the nonce, ``y_i = F_rnd(x_i)``, and the
  resulting codeword positions are set in a Bloom filter.  The nonce makes
  filters for identical word sets differ.  Filters are padded to a constant
  population so the number of set bits doesn't leak the word count.
* ``Match`` -- recompute codewords from the trapdoor + nonce and test the
  bits.  Non-matching metadata exits after ~2 hash tests on average (the
  ~2.5 SHA-1 invocations/metadata the paper profiles); full matches cost
  all ``r`` tests.

Costs with the paper's parameters (50 words, fp 1e-5): r = 17 hash
functions, filter ~130 B, trapdoor ~22 B equivalent.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from ..._rng import ensure_rng
from ..bloom import BloomFilter, optimal_parameters
from ..crypto import derive_key, prf, prf_int, random_nonce
from .base import EncryptedMetadata, EncryptedQuery, PPSScheme

__all__ = ["BloomKeywordScheme"]


class BloomKeywordScheme(PPSScheme):
    name = "keyword-bloom"

    def __init__(
        self,
        key: bytes,
        max_words: int = 50,
        fp_rate: float = 1e-5,
        pad_filters: bool = True,
        rng: random.Random | None = None,
    ) -> None:
        if not key:
            raise ValueError("key must be non-empty")
        if max_words < 1:
            raise ValueError("max_words must be >= 1")
        self.max_words = max_words
        self.fp_rate = fp_rate
        self.filter_bits, self.n_hashes = optimal_parameters(max_words, fp_rate)
        self._subkeys = [
            derive_key(key, f"bloom-hash-{i}") for i in range(self.n_hashes)
        ]
        self.pad_filters = pad_filters
        self._rng = ensure_rng(rng)
        #: instrumentation: PRF applications performed by match() so far.
        self.hash_invocations = 0

    # -- trapdoors --------------------------------------------------------------
    def _trapdoor(self, word: str) -> tuple[bytes, ...]:
        return tuple(prf(k, word.lower()) for k in self._subkeys)

    def encrypt_query(self, query: str) -> EncryptedQuery:
        trapdoor = self._trapdoor(str(query))
        # Wire size: r positions of log2(m) bits each (paper: ~22 B).
        import math

        size = max(1, (self.n_hashes * max(1, math.ceil(math.log2(self.filter_bits)))) // 8)
        return EncryptedQuery(self.name, trapdoor, size_bytes=size)

    # -- metadata -----------------------------------------------------------------
    def encrypt_metadata(self, metadata: Iterable[str]) -> EncryptedMetadata:
        words = [str(w) for w in metadata]
        if len(words) > self.max_words:
            raise ValueError(
                f"too many words ({len(words)}); scheme sized for {self.max_words}"
            )
        rnd = random_nonce()
        bf = BloomFilter(self.filter_bits)
        for word in words:
            for x in self._trapdoor(word):
                bf.set(prf_int(rnd, x, self.filter_bits))
        if self.pad_filters:
            # Constant population: pad to the *expected distinct* set bits
            # of a max_words filter, m*(1 - e^(-n*k/m)).  Filling to the raw
            # n*k count would overshoot (hash collisions) and destroy the
            # false-positive guarantee.
            import math

            nk = self.max_words * self.n_hashes
            target = round(
                self.filter_bits * (1.0 - math.exp(-nk / self.filter_bits))
            )
            bf.fill_to(min(target, self.filter_bits), self._rng)
        return EncryptedMetadata(
            self.name,
            (rnd, bf.to_bytes()),
            size_bytes=len(rnd) + len(bf.to_bytes()),
        )

    # -- matching ---------------------------------------------------------------------
    def match(self, enc_metadata: EncryptedMetadata, enc_query: EncryptedQuery) -> bool:
        self._check_scheme(enc_metadata, enc_query)
        rnd, filter_bytes = enc_metadata.payload
        bf = BloomFilter.from_bytes(filter_bytes, self.filter_bits)
        for x in enc_query.payload:
            self.hash_invocations += 1
            if not bf.test(prf_int(rnd, x, self.filter_bits)):
                return False
        return True
