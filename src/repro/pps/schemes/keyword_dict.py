"""Dictionary keyword matching -- Chang & Mitzenmacher's scheme (Sec 5.5.2).

Requires a dictionary ``D`` fixed before any metadata is created.  Key:
``(K1, K2)`` -- a PRP key (shuffling dictionary indices) and a PRF key
(blinding).

* ``EncryptQuery(K, w)``: find ``lam``, the index of ``w`` in the
  dictionary; return ``(index = E_K1(lam), F_K2(index))``.
* ``EncryptMetadata(K, words)``: build the shuffled incidence bit string
  ``I`` (``I[E_K1(lam_i)] = 1``), pick a nonce, and blind every bit:
  ``J[i] = I[i] XOR G_{F_K2(i)}(rnd)``.
* ``Match``: unblind exactly the queried position:
  ``J[index] XOR G_{rindex}(rnd) == 1``.

No false positives and no word-count limit, but metadata size equals the
dictionary size in bits (32 kB for full English -- expensive for small
documents, Section 5.5.2), and adding dictionary words invalidates all
existing metadata.  Matching costs a single PRF application, a few times
cheaper than the Bloom scheme.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..crypto import FeistelPermutation, derive_key, prf, prf_bit, random_nonce
from .base import EncryptedMetadata, EncryptedQuery, PPSScheme

__all__ = ["DictionaryKeywordScheme"]


class DictionaryKeywordScheme(PPSScheme):
    name = "keyword-dict"

    def __init__(self, key: bytes, dictionary: Sequence[str]) -> None:
        if not key:
            raise ValueError("key must be non-empty")
        if not dictionary:
            raise ValueError("dictionary must be non-empty")
        words = [w.lower() for w in dictionary]
        if len(set(words)) != len(words):
            raise ValueError("dictionary contains duplicate words")
        self.dictionary = words
        self._index_of = {w: i for i, w in enumerate(words)}
        self._prp = FeistelPermutation(derive_key(key, "dict-k1"), len(words))
        self._k2 = derive_key(key, "dict-k2")
        #: instrumentation: PRF applications performed by match() so far.
        self.hash_invocations = 0

    @property
    def dictionary_size(self) -> int:
        return len(self.dictionary)

    def _blind_key(self, position: int) -> bytes:
        """r_i = F_K2(i), the per-position blinding key."""
        return prf(self._k2, f"pos|{position}")

    # -- queries ------------------------------------------------------------
    def encrypt_query(self, query: str) -> EncryptedQuery:
        word = str(query).lower()
        lam = self._index_of.get(word)
        if lam is None:
            raise KeyError(f"word {query!r} not in dictionary")
        index = self._prp.encrypt(lam)
        rindex = self._blind_key(index)
        return EncryptedQuery(
            self.name, (index, rindex), size_bytes=4 + len(rindex)
        )

    # -- metadata ------------------------------------------------------------
    def encrypt_metadata(self, metadata: Iterable[str]) -> EncryptedMetadata:
        size = len(self.dictionary)
        incidence = bytearray((size + 7) // 8)
        for word in metadata:
            lam = self._index_of.get(str(word).lower())
            if lam is None:
                raise KeyError(f"word {word!r} not in dictionary")
            pos = self._prp.encrypt(lam)
            incidence[pos >> 3] |= 1 << (pos & 7)
        rnd = random_nonce()
        blinded = bytearray(len(incidence))
        for i in range(size):
            bit = (incidence[i >> 3] >> (i & 7)) & 1
            mask = prf_bit(self._blind_key(i), rnd)
            out = bit ^ mask
            if out:
                blinded[i >> 3] |= 1 << (i & 7)
        return EncryptedMetadata(
            self.name, (rnd, bytes(blinded)), size_bytes=len(rnd) + len(blinded)
        )

    # -- matching --------------------------------------------------------------
    def match(self, enc_metadata: EncryptedMetadata, enc_query: EncryptedQuery) -> bool:
        self._check_scheme(enc_metadata, enc_query)
        rnd, blinded = enc_metadata.payload
        index, rindex = enc_query.payload
        self.hash_invocations += 1
        bit = (blinded[index >> 3] >> (index & 7)) & 1
        mask = prf_bit(rindex, rnd)
        return (bit ^ mask) == 1
