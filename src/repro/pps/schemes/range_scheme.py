"""Numeric range matching (Section 5.5.3, "Supporting Range Queries").

Build several partitions ``P1..Pm`` of the numeric domain with different
subset sizes and starting offsets.  The dictionary contains one word per
(partition, subset) pair; a metadata value is the document listing every
subset that contains it (one per partition); a range query ``(lb, ub)`` is
approximated by the *single* best-fitting subset across all partitions
(sending multiple subsets would leak more than necessary).

:func:`dyadic_partitions` builds the practical layout: power-of-two subset
sizes, each size also offered shifted by half a subset, which keeps the
worst-case approximation error at ~25% of the query span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

from .base import EncryptedMetadata, EncryptedQuery, PPSScheme
from .keyword_bloom import BloomKeywordScheme
from .keyword_dict import DictionaryKeywordScheme

__all__ = ["Partition", "RangeScheme", "dyadic_partitions"]


@dataclass(frozen=True)
class Partition:
    """A partition of ``[lo, hi)`` into equal subsets of width ``width``,
    shifted by ``offset`` (subsets clip to the domain at the edges)."""

    lo: float
    hi: float
    width: float
    offset: float = 0.0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")
        if not self.lo < self.hi:
            raise ValueError("empty domain")

    def subset_count(self) -> int:
        import math

        span = self.hi - self.lo + self.offset
        return max(1, math.ceil(span / self.width))

    def subset_of(self, value: float) -> int:
        """Index of the subset containing *value*."""
        if not self.lo <= value <= self.hi:
            raise ValueError(f"value {value} outside domain [{self.lo}, {self.hi}]")
        import math

        idx = math.floor((value - self.lo + self.offset) / self.width)
        return max(0, min(idx, self.subset_count() - 1))

    def bounds_of(self, idx: int) -> tuple[float, float]:
        """(a, b) bounds of subset *idx*, clipped to the domain."""
        a = self.lo - self.offset + idx * self.width
        b = a + self.width
        return max(a, self.lo), min(b, self.hi)


def dyadic_partitions(
    lo: float, hi: float, levels: int = 6, with_offsets: bool = True
) -> list[Partition]:
    """Power-of-two subset widths from the whole domain down *levels* times,
    each width optionally also shifted by half a subset."""
    if levels < 1:
        raise ValueError("levels must be >= 1")
    span = hi - lo
    partitions = []
    for level in range(levels):
        width = span / (2**level)
        partitions.append(Partition(lo, hi, width))
        if with_offsets and level > 0:
            partitions.append(Partition(lo, hi, width, offset=width / 2.0))
    return partitions


class RangeScheme(PPSScheme):
    name = "range"

    def __init__(
        self,
        key: bytes,
        partitions: Sequence[Partition],
        base: Literal["bloom", "dict"] = "dict",
    ) -> None:
        if not partitions:
            raise ValueError("need at least one partition")
        self.partitions = list(partitions)
        words = []
        for x, part in enumerate(self.partitions):
            words.extend(f"{x},{y}" for y in range(part.subset_count()))
        self._words = words
        if base == "dict":
            self._base: PPSScheme = DictionaryKeywordScheme(key, words)
        elif base == "bloom":
            self._base = BloomKeywordScheme(
                key, max_words=len(self.partitions), fp_rate=1e-5
            )
        else:
            raise ValueError(f"unknown base scheme {base!r}")
        self.base_name = base

    # -- encoding helpers ---------------------------------------------------------
    def words_for_value(self, value: float) -> list[str]:
        """One word per partition: the subset containing *value*."""
        return [
            f"{x},{part.subset_of(value)}" for x, part in enumerate(self.partitions)
        ]

    def approximate_query(self, lb: float, ub: float) -> tuple[int, int]:
        """The (partition, subset) best approximating ``(lb, ub)``.

        Minimises ``|lb - a| + |ub - b|`` over all subsets (the paper's
        criterion), scanning only the two candidate subsets per partition
        that straddle the query's endpoints.
        """
        if not lb < ub:
            raise ValueError("need lb < ub")
        best: tuple[float, int, int] | None = None
        for x, part in enumerate(self.partitions):
            lo_idx = part.subset_of(max(lb, part.lo))
            hi_idx = part.subset_of(min(ub, part.hi))
            for y in {lo_idx, hi_idx}:
                a, b = part.bounds_of(y)
                err = abs(lb - a) + abs(ub - b)
                if best is None or err < best[0]:
                    best = (err, x, y)
        assert best is not None
        return best[1], best[2]

    def approximation_error(self, lb: float, ub: float) -> float:
        x, y = self.approximate_query(lb, ub)
        a, b = self.partitions[x].bounds_of(y)
        return abs(lb - a) + abs(ub - b)

    # -- scheme interface -------------------------------------------------------------
    def encrypt_query(self, query: tuple[float, float]) -> EncryptedQuery:
        lb, ub = query
        x, y = self.approximate_query(lb, ub)
        inner = self._base.encrypt_query(f"{x},{y}")
        return EncryptedQuery(self.name, inner, size_bytes=inner.size_bytes)

    def encrypt_metadata(self, metadata: float) -> EncryptedMetadata:
        words = self.words_for_value(float(metadata))
        inner = self._base.encrypt_metadata(words)
        return EncryptedMetadata(self.name, inner, size_bytes=inner.size_bytes)

    def match(self, enc_metadata: EncryptedMetadata, enc_query: EncryptedQuery) -> bool:
        self._check_scheme(enc_metadata, enc_query)
        return self._base.match(enc_metadata.payload, enc_query.payload)

    def cover(self, q1: EncryptedQuery, q2: EncryptedQuery) -> bool:
        return self._base.cover(q1.payload, q2.payload)
