"""The PPS scheme interface (Definition 7, Section 5.4.3).

Every Privacy Preserving Search solution consists of five algorithms:

* ``Keygen(t)`` -- user-side key generation;
* ``EncryptQuery(K, Q)`` -- user-side query encoding;
* ``EncryptMetadata(K, M)`` -- user-side metadata encoding;
* ``Match(Me, Qe)`` -- server-side, decides whether an encrypted query
  matches an encrypted metadata;
* ``Cover(Q1, Q2)`` -- server-side, optional: whether query 1's matches are
  always a superset of query 2's (used by continuous-query engines).

"Encrypt" here means a secure *encoding* that supports Match -- decryption
is generally impossible.  Cover implementations are conservative: false
negatives allowed, false positives not.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

__all__ = ["EncryptedQuery", "EncryptedMetadata", "PPSScheme"]


@dataclass(frozen=True)
class EncryptedQuery:
    """An encoded query: scheme-specific payload + size accounting."""

    scheme: str
    payload: Any
    size_bytes: int

    def __hash__(self) -> int:  # payloads are tuples of bytes/ints
        return hash((self.scheme, self.payload))


@dataclass(frozen=True)
class EncryptedMetadata:
    """An encoded metadata item: scheme-specific payload + size accounting."""

    scheme: str
    payload: Any
    size_bytes: int


class PPSScheme(abc.ABC):
    """Base class for all matching schemes."""

    name: str = "abstract"

    @abc.abstractmethod
    def encrypt_query(self, query: Any) -> EncryptedQuery:
        """Encode a plaintext query under the scheme's key."""

    @abc.abstractmethod
    def encrypt_metadata(self, metadata: Any) -> EncryptedMetadata:
        """Encode a plaintext metadata item under the scheme's key."""

    @abc.abstractmethod
    def match(self, enc_metadata: EncryptedMetadata, enc_query: EncryptedQuery) -> bool:
        """Server-side match decision.  Uses only encrypted inputs."""

    def cover(self, q1: EncryptedQuery, q2: EncryptedQuery) -> bool:
        """Default conservative covering: bitwise equality of payloads."""
        return q1.scheme == q2.scheme and q1.payload == q2.payload

    def _check_scheme(self, *items: EncryptedQuery | EncryptedMetadata) -> None:
        for item in items:
            if item.scheme != self.name:
                raise ValueError(
                    f"{self.name} scheme got input encoded with {item.scheme!r}"
                )
