"""Equality matching (Section 5.5.1) -- the simplest PPS scheme.

From Song et al.'s first step: the "hidden" value of an attribute is the PRF
of its plaintext under the secret key.

* ``EncryptQuery(K, Q) = F_K(Q)``
* ``EncryptMetadata(K, M) = (rnd, F_h(rnd))`` where ``h = F_K(M)`` and
  ``rnd`` is a fresh random nonce
* ``Match((rnd, two), Qe): F_Qe(rnd) == two``
* ``Cover(Q1, Q2): Q1 == Q2``

The nonce makes metadata encryptions of equal values unlinkable in the
absence of queries (semantic security for multiple messages); a matching
query reveals exactly the match bit, nothing else.
"""

from __future__ import annotations

import os
from typing import Any

from ..crypto import prf, random_nonce
from .base import EncryptedMetadata, EncryptedQuery, PPSScheme

__all__ = ["EqualityScheme"]


class EqualityScheme(PPSScheme):
    name = "equality"

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ValueError("key must be non-empty")
        self._key = key

    def encrypt_query(self, query: Any) -> EncryptedQuery:
        hidden = prf(self._key, str(query))
        return EncryptedQuery(self.name, hidden, size_bytes=len(hidden))

    def encrypt_metadata(self, metadata: Any) -> EncryptedMetadata:
        hidden = prf(self._key, str(metadata))
        rnd = random_nonce()
        two = prf(hidden, rnd)
        return EncryptedMetadata(
            self.name, (rnd, two), size_bytes=len(rnd) + len(two)
        )

    def match(self, enc_metadata: EncryptedMetadata, enc_query: EncryptedQuery) -> bool:
        self._check_scheme(enc_metadata, enc_query)
        rnd, two = enc_metadata.payload
        return prf(enc_query.payload, rnd) == two
