"""The index-based baseline and its bandwidth model (Section 5.3.1).

The straightforward alternative to PPS: keep an encrypted index online,
download it (or its deltas) before searching locally.  The paper's
analytical model, reproduced here, computes per-period bandwidth for both
approaches as a function of update frequency ``fu`` and query frequency
``fq``:

* PPS:  ``500*fu + 2500*fq``  (metadata upload + query/result traffic);
* Index: with at most ``d_max`` outstanding deltas, updates cost
  ``fu*(INDEX + 200*(d_max-1))/d_max`` and queries (for non-local updates)
  ``fq*(INDEX + 100*d_max*(d_max-1))/d_max``, with the query term capped by
  the update frequency when queries outnumber updates.

The optimal ``d_max`` is found numerically; Fig 5.1 plots the ratio for
0% / 50% / 90% local updates, showing index-based costs up to ~8x PPS.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "IndexModelParams",
    "pps_bandwidth",
    "index_bandwidth",
    "optimal_delta_max",
    "bandwidth_ratio",
]


@dataclass(frozen=True)
class IndexModelParams:
    """Constants of the Section 5.3.1 model (50,000-file collection)."""

    index_bytes: float = 500_000.0  # full compressed encrypted index
    delta_bytes: float = 200.0  # one compressed encrypted update
    metadata_bytes: float = 500.0  # one PPS metadata
    query_bytes: float = 500.0  # one encrypted PPS query
    results_bytes: float = 2_000.0  # 10 results x 200 B


def pps_bandwidth(
    fu: float, fq: float, params: IndexModelParams | None = None
) -> float:
    """PPS bandwidth per period: 500*fu + 2500*fq with default constants."""
    p = params or IndexModelParams()
    return p.metadata_bytes * fu + (p.query_bytes + p.results_bytes) * fq


def index_bandwidth(
    fu: float,
    fq: float,
    delta_max: int,
    local_fraction: float = 0.0,
    params: IndexModelParams | None = None,
) -> float:
    """Index-based bandwidth per period with *delta_max* deltas per rebuild.

    ``local_fraction`` of updates are generated on the querying machine and
    need no download before queries.  Queries can never need more delta
    downloads than there were (remote) updates, so the query term is capped
    at the remote update frequency.
    """
    if delta_max < 1:
        raise ValueError("delta_max must be >= 1")
    if not 0.0 <= local_fraction <= 1.0:
        raise ValueError("local_fraction must be in [0, 1]")
    p = params or IndexModelParams()
    # Updates: every delta_max-th update uploads the full index; the rest
    # upload one delta each.
    update_bw = fu * (
        p.index_bytes + p.delta_bytes * (delta_max - 1)
    ) / delta_max

    # Queries: before each search the device syncs -- downloading the index
    # (1/delta_max of the time) or 0..delta_max-1 deltas (uniformly likely).
    remote_fu = fu * (1.0 - local_fraction)
    effective_fq = min(fq, remote_fu) if remote_fu > 0 else 0.0
    query_bw = effective_fq * (
        p.index_bytes + (p.delta_bytes / 2.0) * delta_max * (delta_max - 1)
    ) / delta_max
    return update_bw + query_bw


def optimal_delta_max(
    fu: float,
    fq: float,
    local_fraction: float = 0.0,
    params: IndexModelParams | None = None,
    search_limit: int = 4096,
) -> int:
    """The delta cap minimising index-based bandwidth (numeric search)."""
    best_d, best_bw = 1, math.inf
    for d in range(1, search_limit + 1):
        bw = index_bandwidth(fu, fq, d, local_fraction, params)
        if bw < best_bw:
            best_d, best_bw = d, bw
    return best_d


def bandwidth_ratio(
    fu: float,
    fq: float,
    local_fraction: float = 0.0,
    params: IndexModelParams | None = None,
) -> float:
    """Index-based bandwidth (at its optimal delta cap) over PPS bandwidth.

    This is the quantity Fig 5.1 plots across the (fu, fq) plane.
    """
    d = optimal_delta_max(fu, fq, local_fraction, params)
    idx = index_bandwidth(fu, fq, d, local_fraction, params)
    pps = pps_bandwidth(fu, fq, params)
    if pps <= 0:
        return math.inf
    return idx / pps
