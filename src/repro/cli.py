"""Command-line interface: run the paper's experiments from a shell.

Sub-commands (each is a thin veneer over the library; scripts and
notebooks should import :mod:`repro` directly):

* ``compare``  -- Chapter 6 algorithm comparison (ROAR vs PTN/SW/opt);
* ``deploy``   -- Chapter 7 single deployment run;
* ``plan``     -- recommend a (p, r) configuration for a workload;
* ``control``  -- closed-loop control-plane scenario (elastic ROAR);
* ``matrix``   -- sweep the builtin scenario battery, print one table;
* ``bench``    -- the standard performance sweeps + ``BENCH_<rev>.json``
  snapshot, optionally gated against a baseline (``docs/benchmarks.md``);
* ``profile``  -- run one profiled sweep, print the engine-phase table,
  optionally export a chrome://tracing JSON (``docs/observability.md``);
* ``explain``  -- reconstruct the control-decision and admission-shed
  timelines of an archived run, cross-checked against its delay columns;
* ``kernels``  -- list scheduling kernels, optionally measure divergence
  against the exact oracle (``docs/kernels.md``);
* ``admission`` -- list admission-control policies
  (``docs/admission.md``);
* ``archive``  -- inspect/diff compressed telemetry archives written by
  ``matrix --archive-dir`` / ``bench --archive-dir`` (``docs/telemetry.md``);
* ``traces``   -- list trace dataloaders / summarise a trace file
  (``docs/traces.md``);
* ``record``   -- run a scenario and freeze its drawn stimulus + baseline
  telemetry as a recording (``.npz``);
* ``replay``   -- re-drive a recording bit-identically on either engine /
  any kernel, verified by the archive differential oracle;
* ``pps-demo`` -- encrypted-search application demo.

Usage (after installation)::

    repro compare --algorithm roar --n 90 -p 9 --rate 12
    repro deploy --nodes 24 -p 4 --queries 100
    repro plan --servers 24 --dataset 5e6 --target-delay 0.4
    repro bench --profile quick
    repro pps-demo --files 200

(Without installing: ``PYTHONPATH=src python -m repro ...``.)

The parser is plain argparse and safe to drive programmatically::

    >>> parser = build_parser()
    >>> parser.parse_args(["bench", "--profile", "smoke"]).profile
    'smoke'
    >>> parser.parse_args(["matrix", "--kernel", "compiled"]).kernel
    'compiled'
    >>> parser.parse_args(["kernels"]).divergence
    False
    >>> parser.parse_args(["archive", "info", "run.npz"]).archive_command
    'info'
    >>> parser.parse_args(["archive", "info", "run.npz",
    ...                    "--require-manifest"]).require_manifest
    True
    >>> parser.parse_args(["profile", "--servers", "64"]).servers
    64
    >>> parser.parse_args(["profile", "--chrome-trace", "t.json"]).chrome_trace
    't.json'
    >>> parser.parse_args(["explain", "run.npz"]).path
    'run.npz'
    >>> parser.parse_args(["archive", "diff", "a.npz", "b.npz"]).path_b
    'b.npz'
    >>> parser.parse_args(["record", "--scenario", "steady",
    ...                    "--out", "run.rec.npz"]).out
    'run.rec.npz'
    >>> parser.parse_args(["replay", "run.rec.npz",
    ...                    "--engine", "reference"]).engine
    'reference'
    >>> parser.parse_args(["traces", "--info", "log.csv",
    ...                    "--loader", "csv:time_col=ts"]).loader
    'csv:time_col=ts'
    >>> parser.parse_args(["matrix", "--trace", "log.csv"]).trace
    'log.csv'
    >>> parser.parse_args(["matrix", "--select", "*-overload"]).select
    '*-overload'
    >>> parser.parse_args(["matrix", "--admission",
    ...                    "none,aimd,delay_gated"]).admission
    'none,aimd,delay_gated'
    >>> parser.parse_args(["admission"]).command
    'admission'
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ROAR (SIGCOMM 2009) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    comp = sub.add_parser("compare", help="Chapter 6 algorithm comparison")
    comp.add_argument("--algorithm", default="roar",
                      choices=["roar", "roar2", "ptn", "sw", "opt"])
    comp.add_argument("--n", type=int, default=90, help="server count")
    comp.add_argument("-p", type=int, default=9, help="partitioning level")
    comp.add_argument("--pq", type=int, default=None,
                      help="query partitioning level (ROAR; default p)")
    comp.add_argument("--rate", type=float, default=12.0, help="queries/s")
    comp.add_argument("--queries", type=int, default=500)
    comp.add_argument("--dataset", type=float, default=1e6)
    comp.add_argument("--adjust", action="store_true",
                      help="enable range adjustment")
    comp.add_argument("--splits", type=int, default=0,
                      help="max sub-query splits")
    comp.add_argument("--seed", type=int, default=1)

    dep = sub.add_parser("deploy", help="Chapter 7 deployment run")
    dep.add_argument("--nodes", type=int, default=24)
    dep.add_argument("-p", type=int, default=4)
    dep.add_argument("--pq", type=int, default=None)
    dep.add_argument("--rate", type=float, default=5.0)
    dep.add_argument("--queries", type=int, default=100)
    dep.add_argument("--dataset", type=float, default=5e6)
    dep.add_argument("--fail", type=int, default=0,
                     help="nodes to fail mid-run")
    dep.add_argument("--seed", type=int, default=1)

    plan = sub.add_parser("plan", help="recommend a (p, r) configuration")
    plan.add_argument("--servers", type=int, default=24)
    plan.add_argument("--speed", type=float, default=700_000.0,
                      help="objects matched per second per server")
    plan.add_argument("--dataset", type=float, default=1e6)
    plan.add_argument("--rate", type=float, default=5.0, help="queries/s")
    plan.add_argument("--updates", type=float, default=10.0, help="updates/s")
    plan.add_argument("--target-delay", type=float, default=0.5)
    plan.add_argument("--fixed-overhead", type=float, default=0.005)

    ctrl = sub.add_parser(
        "control", help="closed-loop control-plane scenario (elastic ROAR)"
    )
    ctrl.add_argument(
        "--scenario",
        default="flash-crowd",
        choices=["flash-crowd", "diurnal", "rack-failure"],
    )
    ctrl.add_argument("--servers", type=int, default=16)
    ctrl.add_argument("-p", type=int, default=4,
                      help="initial partitioning level")
    ctrl.add_argument("--duration", type=float, default=240.0,
                      help="simulated seconds")
    ctrl.add_argument("--rate", type=float, default=None,
                      help="base queries/s (default: auto ~30%% load)")
    ctrl.add_argument("--slo", type=float, default=1.0,
                      help="p99 latency target in seconds")
    ctrl.add_argument("--policies", default="elasticity,repartition",
                      help="comma list: elasticity,repartition")
    ctrl.add_argument("--planner", action="store_true",
                      help="re-partitioning follows the live-metrics planner")
    ctrl.add_argument("--seed", type=int, default=1)

    mtx = sub.add_parser(
        "matrix", help="sweep the scenario matrix and print a comparison table"
    )
    mtx.add_argument("--list", action="store_true",
                     help="list built-in scenarios and exit")
    mtx.add_argument("--scenario", action="append", default=None,
                     metavar="NAME",
                     help="run only the named scenario (repeatable)")
    mtx.add_argument("--select", default=None, metavar="GLOB",
                     help="run only scenarios whose name matches GLOB "
                          "(fnmatch, e.g. '*-overload')")
    mtx.add_argument("--admission", default=None, metavar="LIST",
                     help="comma list of admission policies to sweep per "
                          "scenario (none, aimd[:key=value,...], "
                          "delay_gated; see `repro admission`)")
    mtx.add_argument("--servers", type=int, default=20)
    mtx.add_argument("-p", type=int, default=4,
                     help="stored partitioning level")
    mtx.add_argument("--duration", type=float, default=40.0,
                     help="simulated seconds per scenario")
    mtx.add_argument("--rate", type=float, default=None,
                     help="base queries/s (default: auto ~35%% load)")
    mtx.add_argument("--dataset", type=float, default=2e6)
    mtx.add_argument("--engine", default="batched",
                     choices=["batched", "reference"],
                     help="batched fast path or per-query reference path")
    mtx.add_argument("--kernel", default=None, metavar="NAME",
                     help="scheduling kernel for the batched engine "
                          "(exact_numpy, compiled, approx_topk[:k=v,...]; "
                          "see `repro kernels`)")
    mtx.add_argument("--seed", type=int, default=1)
    mtx.add_argument("--csv", default=None, metavar="PATH",
                     help="also write the table as CSV")
    mtx.add_argument("--archive-dir", default=None, metavar="DIR",
                     help="write one compressed telemetry archive "
                          "(<scenario>.npz) per scenario into DIR")
    mtx.add_argument("--trace", default=None, metavar="SRC",
                     help="also run SRC (csv/jsonl/npz request log) as a "
                          "real-trace scenario row (see `repro traces`)")
    mtx.add_argument("--trace-loader", default=None, metavar="NAME",
                     help="dataloader for --trace "
                          "(name[:key=value,...]; default: inferred)")

    bench = sub.add_parser(
        "bench",
        help="run the standard benchmark sweeps, emit BENCH_<rev>.json "
             "(optionally gate against a committed baseline)",
    )
    bench.add_argument("--profile", default="full",
                       choices=["full", "quick", "smoke"],
                       help="sweep sizes: full (the committed trajectory), "
                            "quick (development), smoke (tests)")
    bench.add_argument("--out", default=None, metavar="PATH",
                       help="snapshot path (default BENCH_<rev>.json)")
    bench.add_argument("--check", default=None, metavar="BASELINE",
                       help="gate speedup ratios against this baseline JSON; "
                            "exits 1 on regression")
    bench.add_argument("--max-regression", type=float, default=0.30,
                       help="tolerated relative speedup regression vs the "
                            "baseline (default 0.30)")
    bench.add_argument("--kernels", default=None, metavar="LIST",
                       help="comma list of scheduling kernels to time per "
                            "sweep (default: every available kernel)")
    bench.add_argument("--archive-dir", default=None, metavar="DIR",
                       help="write one compressed telemetry archive "
                            "(<sweep>.npz) per sweep into DIR")
    bench.add_argument("--trace", default=None, metavar="SRC",
                       help="add a real-trace sweep replaying SRC "
                            "(csv/jsonl/npz; never gated against the "
                            "baseline)")
    bench.add_argument("--trace-loader", default=None, metavar="NAME",
                       help="dataloader for --trace (default: inferred)")

    prof = sub.add_parser(
        "profile",
        help="run one profiled sweep and print the engine-phase breakdown "
             "(optionally export a chrome://tracing JSON)",
    )
    prof.add_argument("--servers", type=int, default=1000,
                      help="fleet size (default: the 1k-server bench sweep)")
    prof.add_argument("--queries", type=int, default=50_000)
    prof.add_argument("--rate", type=float, default=1500.0, help="queries/s")
    prof.add_argument("--pq", type=int, default=5,
                      help="query partitioning level")
    prof.add_argument("--dataset", type=float, default=5e6)
    prof.add_argument("--seed", type=int, default=2)
    prof.add_argument("--engine", default="batched",
                      choices=["batched", "reference"])
    prof.add_argument("--kernel", default=None, metavar="NAME",
                      help="scheduling kernel (batched engine)")
    prof.add_argument("--chrome-trace", default=None, metavar="PATH",
                      help="write per-chunk spans as chrome://tracing JSON "
                           "(load via chrome://tracing or ui.perfetto.dev)")
    prof.add_argument("--json", default=None, metavar="PATH",
                      help="write the phase summary + manifest as JSON")

    expl = sub.add_parser(
        "explain",
        help="reconstruct the control-decision timeline of an archived run, "
             "cross-checked against its delay columns",
    )
    expl.add_argument("path", help="run archive (.npz) with dec_* columns")
    expl.add_argument("--json", default=None, metavar="PATH",
                      help="also write the decision records as JSON")

    kern = sub.add_parser(
        "kernels",
        help="list scheduling kernels (availability, exactness, "
             "optionally battery divergence)",
    )
    kern.add_argument("--divergence", action="store_true",
                      help="also run the differential harness against the "
                           "exact oracle over the builtin battery")
    kern.add_argument("--servers", type=int, default=40,
                      help="battery fleet size for --divergence")
    kern.add_argument("--duration", type=float, default=15.0,
                      help="battery duration for --divergence")

    sub.add_parser(
        "admission",
        help="list admission-control policies (overload shedding; "
             "docs/admission.md)",
    )

    arch = sub.add_parser(
        "archive",
        help="inspect or diff compressed telemetry archives (.npz)",
    )
    arch_sub = arch.add_subparsers(dest="archive_command", required=True)
    arch_info = arch_sub.add_parser(
        "info", help="summarise one archive (queries, delays, bytes/query)"
    )
    arch_info.add_argument("path", help="archive file (.npz)")
    arch_info.add_argument("--gate-bytes-per-query", type=float, default=None,
                           metavar="N",
                           help="exit 1 if the archive costs more than N "
                                "bytes per query")
    arch_info.add_argument("--require-manifest", action="store_true",
                           help="exit 1 unless the archive carries a "
                                "provenance manifest (docs/observability.md)")
    arch_diff = arch_sub.add_parser(
        "diff", help="column-by-column comparison of two archives"
    )
    arch_diff.add_argument("path_a", help="first archive (.npz)")
    arch_diff.add_argument("path_b", help="second archive (.npz)")
    arch_diff.add_argument("--strict", action="store_true",
                           help="gate on wall-clock columns too (default: "
                                "only simulated-time columns gate)")

    traces = sub.add_parser(
        "traces",
        help="list trace dataloaders, or summarise a trace file",
    )
    traces.add_argument("--info", default=None, metavar="SRC",
                        help="load SRC and print a stimulus summary "
                             "instead of listing loaders")
    traces.add_argument("--loader", default=None, metavar="NAME",
                        help="dataloader for --info "
                             "(name[:key=value,...]; default: inferred)")

    rec = sub.add_parser(
        "record",
        help="run a scenario and freeze its stimulus + baseline telemetry "
             "as a recording (.npz)",
    )
    rec.add_argument("--scenario", default="steady", metavar="NAME",
                     help="builtin scenario to record (see `repro matrix "
                          "--list`; default steady)")
    rec.add_argument("--trace", default=None, metavar="SRC",
                     help="record a real-trace run of SRC instead of a "
                          "builtin scenario")
    rec.add_argument("--trace-loader", default=None, metavar="NAME",
                     help="dataloader for --trace (default: inferred)")
    rec.add_argument("--out", required=True, metavar="PATH",
                     help="recording path (.npz)")
    rec.add_argument("--archive", default=None, metavar="PATH",
                     help="also extract the recorded baseline as a plain "
                          "run archive (for `repro archive diff`)")
    rec.add_argument("--engine", default="batched",
                     choices=["batched", "reference"])
    rec.add_argument("--kernel", default=None, metavar="NAME",
                     help="scheduling kernel (batched engine)")
    rec.add_argument("--servers", type=int, default=20)
    rec.add_argument("-p", type=int, default=4)
    rec.add_argument("--duration", type=float, default=40.0)
    rec.add_argument("--rate", type=float, default=None,
                     help="base queries/s (default: auto ~35%% load)")
    rec.add_argument("--dataset", type=float, default=2e6)
    rec.add_argument("--seed", type=int, default=1)

    rep = sub.add_parser(
        "replay",
        help="re-drive a recording and verify bit-identity against its "
             "baseline telemetry",
    )
    rep.add_argument("path", help="recording file (.npz from `repro record`)")
    rep.add_argument("--engine", default=None,
                     choices=["batched", "reference"],
                     help="engine to replay on (default: as recorded)")
    rep.add_argument("--kernel", default=None, metavar="NAME",
                     help="scheduling kernel (default: as recorded)")
    rep.add_argument("--archive", default=None, metavar="PATH",
                     help="write the replayed run's archive "
                          "(wall-clock columns omitted)")
    rep.add_argument("--no-verify", action="store_true",
                     help="skip the bit-identity check (just re-run)")

    demo = sub.add_parser("pps-demo", help="encrypted search demo")
    demo.add_argument("--files", type=int, default=200)
    demo.add_argument("--keyword", default=None,
                      help="keyword to search (default: pick one)")
    demo.add_argument("--seed", type=int, default=5)
    return parser


def _cmd_compare(args: argparse.Namespace) -> int:
    from .cluster import ComparisonConfig, run_comparison

    cfg = ComparisonConfig(
        algorithm=args.algorithm,
        n_servers=args.n,
        p=args.p,
        pq=args.pq,
        dataset_size=args.dataset,
        query_rate=args.rate,
        n_queries=args.queries,
        adjust=args.adjust,
        splits=args.splits,
        seed=args.seed,
    )
    res = run_comparison(cfg)
    mean = res.mean_delay
    mean_txt = "SATURATED" if math.isinf(mean) else f"{mean * 1000:.1f} ms"
    print(f"algorithm     : {args.algorithm}")
    print(f"n / p / pq    : {args.n} / {args.p} / {args.pq or args.p}")
    print(f"mean delay    : {mean_txt}")
    print(f"p99 delay     : {res.p99_delay * 1000:.1f} ms")
    print(f"utilisation   : {res.server_utilisation:.1%}")
    print(f"exploding     : {res.exploding}")
    return 0


def _cmd_deploy(args: argparse.Namespace) -> int:
    import random

    from .cluster import Deployment, DeploymentConfig, hen_testbed
    from .sim import PoissonArrivals

    dep = Deployment(
        DeploymentConfig(
            models=hen_testbed(args.nodes),
            p=args.p,
            dataset_size=args.dataset,
            seed=args.seed,
        )
    )
    arrivals = PoissonArrivals(args.rate, seed=args.seed).times(args.queries)
    fail_at = arrivals[len(arrivals) // 2] if args.fail else None
    rng = random.Random(args.seed)
    failed = False
    for t in arrivals:
        if fail_at is not None and not failed and t >= fail_at:
            for name in rng.sample(sorted(dep.servers), args.fail):
                dep.fail_node(name, t)
            failed = True
        dep.run_query(t, args.pq or args.p)
    delays = dep.log.delays()
    elapsed = max(r.finish for r in dep.log.records)
    print(f"nodes / p / pq : {args.nodes} / {args.p} / {args.pq or args.p}")
    print(f"queries        : {len(delays)} completed (yield 100%)")
    print(f"mean delay     : {1000 * sum(delays) / len(delays):.1f} ms")
    print(f"p99 delay      : {dep.log.percentile_delay(99) * 1000:.1f} ms")
    print(f"mean CPU load  : {dep.mean_cpu_load(elapsed):.1%}")
    if args.fail:
        print(f"failed nodes   : {args.fail} (mid-run)")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .analysis.planner import WorkloadSpec, recommend_configuration

    spec = WorkloadSpec(
        dataset_size=args.dataset,
        query_rate=args.rate,
        update_rate=args.updates,
        target_delay=args.target_delay,
        speeds=[args.speed] * args.servers,
        fixed_overhead=args.fixed_overhead,
    )
    rec = recommend_configuration(spec)
    print(rec.reason)
    if rec.chosen is None:
        return 1
    print(f"recommended    : p = {rec.chosen.p}, r = {rec.chosen.r:g}")
    print(f"pred. delay    : {rec.chosen.predicted_delay * 1000:.0f} ms")
    print(f"utilisation    : {rec.chosen.utilisation:.0%}")
    print(f"bandwidth      : {rec.chosen.bandwidth / 1000:.1f} kB/s")
    feasible = sum(1 for o in rec.options if o.feasible)
    print(f"feasible p's   : {feasible} of {len(rec.options)}")
    return 0


def _cmd_control(args: argparse.Namespace) -> int:
    from .control import ScenarioConfig, run_scenario

    policies = tuple(x.strip() for x in args.policies.split(",") if x.strip())
    report = run_scenario(
        ScenarioConfig(
            scenario=args.scenario,
            n_servers=args.servers,
            p0=args.p,
            duration=args.duration,
            base_rate=args.rate,
            slo_p99=args.slo,
            seed=args.seed,
            policies=policies,
            use_planner=args.planner,
        )
    )
    print(report.summary())
    return 0 if report.adapted else 1


def _cmd_matrix(args: argparse.Namespace) -> int:
    from .scenarios import builtin_scenarios, run_matrix

    scenarios = builtin_scenarios(
        n_servers=args.servers,
        duration=args.duration,
        p=args.p,
        dataset_size=args.dataset,
        seed=args.seed,
        rate=args.rate,
    )
    if args.list:
        for s in scenarios:
            print(f"{s.name:16s} {s.description}")
        return 0
    if args.scenario:
        wanted = set(args.scenario)
        known = {s.name for s in scenarios}
        missing = wanted - known
        if missing:
            print(f"unknown scenario(s): {sorted(missing)}; "
                  f"known: {sorted(known)}", file=sys.stderr)
            return 2
        scenarios = [s for s in scenarios if s.name in wanted]
    if args.select:
        import fnmatch

        matched = [s for s in scenarios if fnmatch.fnmatch(s.name, args.select)]
        if not matched:
            print(f"--select {args.select!r} matches no scenario; "
                  f"known: {sorted(s.name for s in scenarios)}",
                  file=sys.stderr)
            return 2
        scenarios = matched
    if args.admission:
        import dataclasses

        from .scenarios import AdmissionSpec

        policies = [x.strip() for x in args.admission.split(",") if x.strip()]
        try:
            swept = []
            for s in scenarios:
                for pol in policies:
                    spec = (
                        dataclasses.replace(s.admission, policy=pol)
                        if s.admission is not None
                        else AdmissionSpec(policy=pol)
                    )
                    # suffix names so sweep rows (and --archive-dir files)
                    # stay distinguishable
                    name = (
                        f"{s.name}+{pol.partition(':')[0]}"
                        if len(policies) > 1
                        else s.name
                    )
                    swept.append(dataclasses.replace(s, name=name, admission=spec))
        except ValueError as exc:
            print(f"bad --admission: {exc}", file=sys.stderr)
            return 2
        scenarios = swept
    if args.trace:
        from .scenarios.matrix import trace_scenario
        from .traces import TraceFormatError

        try:
            scenarios.append(trace_scenario(
                args.trace, loader=args.trace_loader,
                n_servers=args.servers, p=args.p,
                dataset_size=args.dataset, seed=args.seed,
            ))
        except (TraceFormatError, ValueError) as exc:
            print(f"bad --trace: {exc}", file=sys.stderr)
            return 2

    def progress(scenario, result):
        print(f"[{scenario.name}] {result.offered} queries, "
              f"yield {result.yield_fraction:.1%}, "
              f"p99 {result.p99_delay * 1000:.0f} ms, "
              f"{result.wall_seconds:.2f}s wall", file=sys.stderr)

    try:
        res = run_matrix(
            scenarios, engine=args.engine, kernel=args.kernel,
            progress=progress, archive_dir=args.archive_dir,
        )
    except Exception as exc:
        from .traces import TraceFormatError

        if isinstance(exc, TraceFormatError):  # bad --trace file
            print(f"trace error: {exc}", file=sys.stderr)
            return 2
        raise
    print(res.table())
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(res.to_csv())
        print(f"\ncsv written to {args.csv}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import main_bench

    return main_bench(args)


def _cmd_profile(args: argparse.Namespace) -> int:
    from .cluster import Deployment, DeploymentConfig, hen_testbed
    from .obs.manifest import build_manifest
    from .sim import batched_poisson_times

    dep = Deployment(
        DeploymentConfig(
            models=hen_testbed(args.servers),
            p=args.pq,
            dataset_size=args.dataset,
            seed=args.seed,
            charge_scheduling=False,
        )
    )
    arrivals = batched_poisson_times(args.rate, args.queries, seed=4).tolist()
    if args.engine == "reference":
        from .sim.fastpath import run_queries_reference

        result = run_queries_reference(dep, arrivals, args.pq, profile=True)
    else:
        result = dep.run_queries_fast(
            arrivals, args.pq, kernel=args.kernel, profile=True
        )
    prof = result.profile
    n_queries = len(arrivals)
    print(f"engine         : {args.engine}"
          + (f" / {args.kernel}" if args.kernel else ""))
    print(f"fleet          : {args.servers} servers, pq={args.pq}, "
          f"{n_queries} queries @ {args.rate:g}/s")
    print(prof.render_table(n_queries))
    if args.chrome_trace:
        prof.write_chrome_trace(args.chrome_trace)
        print(f"chrome trace   : {args.chrome_trace} "
              "(open in chrome://tracing or ui.perfetto.dev)")
    if args.json:
        import json

        payload = {
            "summary": prof.summary(),
            "phases_us_per_query": prof.phase_us_per_query(n_queries),
            "manifest": build_manifest(
                kernel=args.kernel,
                seeds={"deployment": args.seed, "arrivals": 4},
                config={
                    "servers": args.servers,
                    "queries": n_queries,
                    "rate": args.rate,
                    "pq": args.pq,
                    "engine": args.engine,
                },
                profile=prof,
            ),
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"json summary   : {args.json}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .admission.records import (
        admission_from_archive,
        explain_admission,
        render_admission,
    )
    from .obs.audit import decisions_from_archive, explain_archive, render_decisions
    from .telemetry.archive import read_archive

    try:
        archive = read_archive(args.path)
    except (OSError, ValueError) as exc:
        print(f"cannot explain {args.path}: {exc}", file=sys.stderr)
        return 2
    try:
        records = decisions_from_archive(archive)
    except ValueError:
        records = None  # no dec_* columns: maybe an admission-only run
    try:
        admission = admission_from_archive(archive)
    except ValueError:
        admission = None
    if records is None and admission is None:
        print(f"cannot explain {args.path}: archive has neither control "
              "decisions (dec_*) nor admission columns (shed_*)",
              file=sys.stderr)
        return 2
    print(f"archive        : {args.path}")
    meta = archive.meta
    manifest = meta.get("manifest")
    if isinstance(manifest, dict):
        print(f"provenance     : rev {manifest.get('git_revision', '?')}, "
              f"host {manifest.get('host', '?')}, "
              f"kernel {manifest.get('kernel', '?')}")
    failed = 0
    checks: list = []
    adm_checks: list = []
    if records is not None:
        checks = explain_archive(archive)
        window = meta.get("decisions", {}).get("window")
        if window is not None:
            print(f"metrics window : {window:g} s (sampled by arrival time)")
        print(f"decisions      : {len(records)} "
              f"({sum(1 for r in records if not r.is_hold)} actions, "
              f"{sum(1 for r in records if r.is_hold)} holds)")
        print(render_decisions(records, checks))
        failed += sum(1 for _, ok, _, _ in checks if not ok)
    if admission is not None:
        sheds, ticks, adm_meta = admission
        adm_checks = explain_admission(archive)
        print(f"shed decisions : {len(sheds)} over {len(ticks)} tick(s) "
              f"(policy {adm_meta.get('policy', '?')})")
        print(render_admission(sheds, ticks, adm_checks, adm_meta))
        failed += sum(1 for _, ok, _, _ in adm_checks if not ok)
    if args.json:
        import dataclasses
        import json

        dec_payload = [
            {**dataclasses.asdict(rec), "check": bool(ok)}
            for rec, ok, _, _ in checks
        ]
        if admission is None:
            # decisions-only archives keep the historical list payload
            payload: object = dec_payload
        else:
            sheds, ticks, adm_meta = admission
            payload = {
                "decisions": dec_payload,
                "admission": {
                    "meta": adm_meta,
                    "sheds": [dataclasses.asdict(s) for s in sheds],
                    "ticks": [
                        {**dataclasses.asdict(t), "check": bool(ok)}
                        for t, ok, _, _ in adm_checks
                    ],
                },
            }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"json timeline  : {args.json}")
    if failed:
        print(f"cross-check    : {failed} record(s) FAILED against the "
              "archived delay columns", file=sys.stderr)
        return 1
    print("cross-check    : every record matches the archived delay columns")
    return 0


def _cmd_archive(args: argparse.Namespace) -> int:
    from .telemetry.archive import archive_diff, archive_info, read_archive

    if args.archive_command == "info":
        info = archive_info(read_archive(args.path))
        print(f"path           : {info['path']}")
        print(f"schema         : {info['schema']}")
        print(f"queries        : {info['n_queries']} "
              f"({info['dropped']} dropped)")
        print(f"columns        : {len(info['columns'])}")
        if "file_bytes" in info:
            print(f"file size      : {info['file_bytes']} B "
                  f"({info['bytes_per_query']:.1f} B/query)")
        if "mean_delay" in info:
            print(f"mean delay     : {info['mean_delay'] * 1000:.2f} ms")
            for q in (50, 95, 99):
                print(f"p{q} delay      : "
                      f"{info[f'p{q}_delay'] * 1000:.2f} ms")
        for k in sorted(info["meta"]):
            print(f"meta.{k:<10s}: {info['meta'][k]}")
        gate = args.gate_bytes_per_query
        if gate is not None:
            bpq = info.get("bytes_per_query")
            if bpq is None or not bpq == bpq or bpq > gate:  # NaN or over
                print(f"GATE FAIL: {bpq} bytes/query exceeds budget {gate:g}",
                      file=sys.stderr)
                return 1
            print(f"gate           : OK ({bpq:.1f} <= {gate:g} B/query)")
        if args.require_manifest:
            manifest = info["meta"].get("manifest")
            if not isinstance(manifest, dict) or "git_revision" not in manifest:
                print("GATE FAIL: archive carries no provenance manifest",
                      file=sys.stderr)
                return 1
            print(f"manifest       : OK (rev {manifest['git_revision']}, "
                  f"host {manifest.get('host', '?')})")
        return 0

    diff = archive_diff(read_archive(args.path_a), read_archive(args.path_b))
    for name in sorted(diff["columns"]):
        entry = diff["columns"][name]
        if entry["equal"]:
            print(f"{name:16s} equal ({entry['n_a']} values)")
        elif "missing_in" in entry:
            print(f"{name:16s} MISSING in archive {entry['missing_in']}")
        else:
            extra = ""
            if "max_abs_diff" in entry:
                extra = f", max |diff| {entry['max_abs_diff']:.3g}"
            print(f"{name:16s} DIFFERS at index "
                  f"{entry['first_divergence']}"
                  f" ({entry['n_a']} vs {entry['n_b']} values{extra})")
    key = "identical" if args.strict else "gated_identical"
    verdict = diff[key]
    scope = "all columns" if args.strict else "simulated-time columns"
    print(f"{'identical' if verdict else 'DIVERGENT'} ({scope})")
    return 0 if verdict else 1


def _cmd_traces(args: argparse.Namespace) -> int:
    from .traces import TraceFormatError, load_trace, loader_specs

    if args.info is None:
        print(f"{'loader':12s} {'aliases':12s} description")
        for row in loader_specs():
            aliases = ",".join(row["aliases"]) or "-"
            print(f"{row['name']:12s} {aliases:12s} {row['description']}")
        return 0
    try:
        trace = load_trace(args.info, loader=args.loader)
    except (TraceFormatError, ValueError) as exc:
        print(f"trace error: {exc}", file=sys.stderr)
        return 1
    print(f"source         : {args.info}")
    print(f"loader         : {trace.meta.get('loader', '?')}")
    print(f"queries        : {trace.n_queries}")
    print(f"updates        : {trace.n_updates}")
    print(f"horizon        : {trace.horizon:g} s")
    if trace.n_queries and trace.horizon > 0:
        print(f"mean rate      : {trace.n_queries / trace.horizon:.2f} "
              "queries/s")
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    from .scenarios import builtin_scenarios
    from .scenarios.runner import execute_scenario
    from .traces import TraceFormatError, read_recording, recording_to_archive

    if args.trace:
        from .scenarios.matrix import trace_scenario

        scenario = trace_scenario(
            args.trace, loader=args.trace_loader, n_servers=args.servers,
            p=args.p, dataset_size=args.dataset, seed=args.seed,
        )
    else:
        scenarios = builtin_scenarios(
            n_servers=args.servers, duration=args.duration, p=args.p,
            dataset_size=args.dataset, seed=args.seed, rate=args.rate,
        )
        by_name = {s.name: s for s in scenarios}
        if args.scenario not in by_name:
            print(f"unknown scenario {args.scenario!r}; "
                  f"known: {sorted(by_name)}", file=sys.stderr)
            return 2
        scenario = by_name[args.scenario]
    try:
        ex = execute_scenario(
            scenario, engine=args.engine, kernel=args.kernel,
            record_path=args.out,
        )
    except TraceFormatError as exc:
        print(f"trace error: {exc}", file=sys.stderr)
        return 2
    log = ex.deployment.log
    print(f"recorded       : {args.out}")
    print(f"scenario       : {scenario.name} ({ex.engine}/{ex.kernel})")
    print(f"queries        : {log.n_records} completed, {log.dropped} dropped")
    print(f"updates        : {ex.updates_applied} applied")
    print(f"horizon        : {ex.horizon:g} s")
    if args.archive:
        recording_to_archive(read_recording(args.out), args.archive)
        print(f"archive        : {args.archive}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .traces import replay_recording

    try:
        report = replay_recording(
            args.path, engine=args.engine, kernel=args.kernel,
            archive_path=args.archive, verify=not args.no_verify,
        )
    except (OSError, ValueError) as exc:
        print(f"cannot replay {args.path}: {exc}", file=sys.stderr)
        return 2
    rec = report.recording
    log = report.execution.deployment.log
    print(f"recording      : {args.path}")
    print(f"recorded on    : {rec.engine}/{rec.kernel}")
    print(f"replayed on    : {report.engine}/{report.kernel}")
    print(f"queries        : {log.n_records} completed, {log.dropped} dropped")
    if args.archive:
        print(f"archive        : {args.archive}")
    if not report.verified:
        print("verify         : skipped (--no-verify)")
        return 0
    if report.identical:
        print("verify         : identical "
              "(every simulated-time column byte-equal)")
        return 0
    print(f"verify         : DIVERGED in "
          f"{', '.join(report.mismatching_columns)}", file=sys.stderr)
    return 1


def _cmd_kernels(args: argparse.Namespace) -> int:
    from .kernels import kernel_specs

    print(f"{'kernel':14s} {'exact':6s} {'available':10s} description")
    for row in kernel_specs():
        exact = "-" if row["exact"] is None else ("yes" if row["exact"] else "no")
        avail = "yes" if row["available"] else "NO"
        desc = row["description"] or row["reason"] or ""
        print(f"{row['name']:14s} {exact:6s} {avail:10s} {desc}")
    if args.divergence:
        from .kernels.divergence import battery_divergence, render_divergence

        if args.servers < 2:
            print("--servers must be >= 2", file=sys.stderr)
            return 2
        p = min(5, args.servers)  # scenarios require p <= n_servers
        for row in kernel_specs():
            if not row["available"] or row["name"] == "exact_numpy":
                continue
            print(f"\n[{row['name']}] vs exact_numpy over the builtin battery "
                  f"(n={args.servers}, p={p}, {args.duration:g}s):")
            print(render_divergence(battery_divergence(
                row["name"], n_servers=args.servers, duration=args.duration,
                p=p,
            )))
    return 0


def _cmd_admission(args: argparse.Namespace) -> int:
    from .admission import policy_specs

    print(f"{'policy':14s} {'sheds':6s} description")
    for row in policy_specs():
        sheds = "no" if row["passthrough"] else "yes"
        print(f"{row['name']:14s} {sheds:6s} {row['description']}")
    return 0


def _cmd_pps_demo(args: argparse.Namespace) -> int:
    import random

    from .pps import (
        CorpusConfig,
        MetadataCodec,
        Predicate,
        generate_corpus,
        keygen_deterministic,
    )

    key = keygen_deterministic(f"cli-demo-{args.seed}")
    codec = MetadataCodec(key, max_content_keywords=10)
    files = generate_corpus(CorpusConfig(n_files=args.files, seed=args.seed))
    encrypted = [codec.encrypt_file(f) for f in files]
    keyword = args.keyword or files[0].keywords[0]
    query = codec.encrypt_predicate(Predicate("keyword", "=", keyword))
    hits = [f for f, e in zip(files, encrypted) if codec.match(e, query)]
    truth = [f for f in files if keyword in f.keywords]
    print(f"files          : {len(files)} "
          f"({codec.metadata_size_bytes()} B encrypted metadata each)")
    print(f"query keyword  : {keyword!r} (server never sees it)")
    print(f"matches        : {len(hits)} (plaintext ground truth {len(truth)})")
    for f in hits[:5]:
        print(f"  {f.path}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "compare": _cmd_compare,
        "deploy": _cmd_deploy,
        "plan": _cmd_plan,
        "control": _cmd_control,
        "matrix": _cmd_matrix,
        "bench": _cmd_bench,
        "profile": _cmd_profile,
        "explain": _cmd_explain,
        "kernels": _cmd_kernels,
        "admission": _cmd_admission,
        "archive": _cmd_archive,
        "traces": _cmd_traces,
        "record": _cmd_record,
        "replay": _cmd_replay,
        "pps-demo": _cmd_pps_demo,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
