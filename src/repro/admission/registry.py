"""The admission-policy registry.

Policies are looked up by name wherever an admission knob exists (the
engine's ``admission=`` parameter, the scenario ``AdmissionSpec.policy``
field, ``repro matrix --admission``).  Names accept the same optional
parameter suffix as scheduling kernels -- ``name:key=value[,...]`` --
forwarded to the policy constructor, e.g. ``aimd:floor=5,decrease=0.25``.
Third-party policies register through :func:`register_policy`.

Example::

    >>> sorted(policy_names())
    ['aimd', 'delay_gated', 'none']
    >>> get_policy("aimd:floor=3").floor
    3.0
    >>> resolve_admission("none") is None   # passthrough: engine sees None
    True
    >>> resolve_admission("delay_gated").name
    'delay_gated'
"""

from __future__ import annotations

import inspect
from typing import Callable, Optional, Union

from .base import AdmissionPolicy

__all__ = [
    "DEFAULT_POLICY",
    "build_admission",
    "canonical_spec",
    "get_policy",
    "is_known_policy",
    "policy_names",
    "policy_specs",
    "register_policy",
    "resolve_admission",
]

DEFAULT_POLICY = "none"

_FACTORIES: dict[str, Callable[..., AdmissionPolicy]] = {}
_ALIASES: dict[str, str] = {}


def register_policy(
    name: str,
    factory: Callable[..., AdmissionPolicy],
    aliases: tuple[str, ...] = (),
    replace: bool = False,
) -> None:
    """Register a policy factory under *name* (plus optional aliases)."""
    if not replace and (name in _FACTORIES or name in _ALIASES):
        raise ValueError(f"admission policy {name!r} is already registered")
    _FACTORIES[name] = factory
    for alias in aliases:
        if not replace and (alias in _FACTORIES or alias in _ALIASES):
            raise ValueError(
                f"admission policy alias {alias!r} is already registered"
            )
        _ALIASES[alias] = name


def policy_names() -> tuple[str, ...]:
    """Canonical registered policy names, registration order."""
    return tuple(_FACTORIES)


def _parse_spec(spec: str) -> tuple[str, dict[str, object]]:
    name, _, params = spec.partition(":")
    name = name.strip()
    kwargs: dict[str, object] = {}
    if params:
        for item in params.split(","):
            key, sep, raw = item.partition("=")
            if not sep:
                raise ValueError(
                    f"bad admission parameter {item!r} in {spec!r}; "
                    "expected key=value"
                )
            raw = raw.strip()
            try:
                value: object = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
            kwargs[key.strip()] = value
    return name, kwargs


def get_policy(spec: Union[str, AdmissionPolicy, None]) -> AdmissionPolicy:
    """Resolve *spec* to a policy instance.

    ``None`` means the default (:data:`DEFAULT_POLICY`, accept-all); an
    instance passes through; a string is looked up in the registry, with
    an optional ``:key=value,...`` parameter suffix.  Raises
    :class:`ValueError` for unknown names.
    """
    if spec is None:
        spec = DEFAULT_POLICY
    if isinstance(spec, AdmissionPolicy):
        return spec
    name, kwargs = _parse_spec(spec)
    name = _ALIASES.get(name, name)
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown admission policy {name!r}; registered: "
            f"{', '.join(policy_names())}"
        )
    return factory(**kwargs)


def resolve_admission(
    spec: Union[str, AdmissionPolicy, None],
) -> Optional[AdmissionPolicy]:
    """Resolve *spec* for the engine: passthrough policies become ``None``.

    This is the bit-identity guard: the default/"none" policy maps to
    ``None`` so the engine runs the exact pre-admission code path (bulk
    seam included) with zero admission branches taken.
    """
    policy = get_policy(spec)
    return None if policy.passthrough else policy


def build_admission(spec) -> Optional[AdmissionPolicy]:
    """Build the engine-side controller from a scenario ``AdmissionSpec``.

    Returns ``None`` for a missing spec or a passthrough policy.  The
    spec's tuning fields are forwarded to the policy constructor filtered
    by its signature, so third-party policies only receive the knobs they
    declare.
    """
    if spec is None:
        return None
    name, kwargs = _parse_spec(spec.policy)
    name = _ALIASES.get(name, name)
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown admission policy {name!r}; registered: "
            f"{', '.join(policy_names())}"
        )
    params = inspect.signature(factory).parameters
    accepts_any = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )
    for field in (
        "slo",
        "window",
        "cap_multiple",
        "floor",
        "capacity",
        "rate",
        "increase",
        "decrease",
        "burst",
        "slo_multiple",
    ):
        value = getattr(spec, field, None)
        if value is None or field in kwargs:
            continue
        if accepts_any or field in params:
            kwargs[field] = value
    return resolve_admission(factory(**kwargs))


def is_known_policy(spec: str) -> bool:
    """Cheap name-only validation (no instantiation)."""
    try:
        name, _ = _parse_spec(spec)
    except ValueError:
        return False
    return name in _FACTORIES or name in _ALIASES


def canonical_spec(spec: str) -> str:
    """Normalise *spec*: resolve aliases, keep any parameter suffix."""
    name, _ = _parse_spec(spec)  # validates the k=v syntax
    resolved = _ALIASES.get(name, name)
    if resolved not in _FACTORIES:
        raise ValueError(
            f"unknown admission policy {name!r}; registered: "
            f"{', '.join(policy_names())}"
        )
    _, _, params = spec.partition(":")
    return f"{resolved}:{params}" if params else resolved


def policy_specs() -> list[dict[str, object]]:
    """Inspection rows for ``repro admission``: name, passthrough, blurb."""
    rows: list[dict[str, object]] = []
    for name in policy_names():
        policy = get_policy(name)
        rows.append(
            {
                "name": name,
                "passthrough": policy.passthrough,
                "description": policy.description,
            }
        )
    return rows


def _register_builtins() -> None:
    from .policies import AIMDAdmission, DelayGatedAdmission, NoneAdmission

    register_policy("none", NoneAdmission, aliases=("accept-all",))
    register_policy("aimd", AIMDAdmission)
    register_policy("delay_gated", DelayGatedAdmission, aliases=("delay",))


_register_builtins()
