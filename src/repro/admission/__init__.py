"""Admission control & backpressure: per-frontend load-shedding policies.

The control plane (``repro.control``) scales *capacity*; this package
paces *load*.  An admission policy sits at the engine's arrival seam and
decides, per query, whether to schedule it or shed it -- using the
delay/backlog signals the queue mirrors already expose and queue caps
sized by buffer-sizing theory (see :mod:`repro.admission.base`).

The default policy is ``none`` (accept-all): every existing run stays
bit-identical because :func:`resolve_admission` maps it to ``None`` and
the engine takes the untouched code path.  See ``docs/admission.md``.
"""

from .base import AdmissionPolicy
from .policies import AIMDAdmission, DelayGatedAdmission, NoneAdmission
from .records import (
    AdmissionTick,
    ShedLog,
    ShedRecord,
    admission_from_archive,
    explain_admission,
    render_admission,
)
from .registry import (
    DEFAULT_POLICY,
    build_admission,
    canonical_spec,
    get_policy,
    is_known_policy,
    policy_names,
    policy_specs,
    register_policy,
    resolve_admission,
)

__all__ = [
    "AdmissionPolicy",
    "AIMDAdmission",
    "DelayGatedAdmission",
    "NoneAdmission",
    "AdmissionTick",
    "ShedLog",
    "ShedRecord",
    "admission_from_archive",
    "explain_admission",
    "render_admission",
    "DEFAULT_POLICY",
    "build_admission",
    "canonical_spec",
    "get_policy",
    "is_known_policy",
    "policy_names",
    "policy_specs",
    "register_policy",
    "resolve_admission",
]
