"""The built-in admission policies: none, aimd, delay_gated.

* ``none`` is today's accept-all.  It is *passthrough*: the engine never
  even sees it (:func:`~repro.admission.resolve_admission` maps it to
  ``None``), so the default stays bit-identical to every pre-admission
  run by construction.
* ``aimd`` paces admissions with a token bucket whose rate follows
  additive-increase / multiplicative-decrease (Garg & Young's online
  end-to-end congestion control, applied to the serving path): each tick
  the rate grows by ``increase`` queries/s while the windowed p99 sits
  within the SLO and the backlog stayed under the queue cap, and halves
  (``decrease``) on congestion.  The rate is clamped to
  ``[floor, capacity]`` at every adjustment.
* ``delay_gated`` sheds whenever the windowed p99 delay exceeds
  ``slo_multiple * slo`` -- a purely delay-triggered gate with no paced
  rate, the "robust but blunt" corner of the Contracts trade-off.

All three inherit the queue-cap backstop from
:class:`~repro.admission.base.AdmissionPolicy` (``none`` overrides it
away: accept-all means accept-all).

Example -- AIMD clamps its rate to [floor, capacity]::

    >>> pol = AIMDAdmission(slo=0.5, floor=5.0, capacity=50.0, rate=49.0,
    ...                     increase=4.0)
    >>> pol.tick(1.0)   # empty window: not congested -> additive increase
    >>> pol.current_rate()
    50.0
    >>> pol.observe(1.5, delay=2.0)  # one slow query: p99 > slo
    >>> for t in range(2, 9): pol.tick(float(t))
    >>> pol.current_rate()  # multiplicative decrease, floored
    5.0
"""

from __future__ import annotations

import math
from typing import Optional

from .base import AdmissionPolicy

__all__ = ["NoneAdmission", "AIMDAdmission", "DelayGatedAdmission"]


class NoneAdmission(AdmissionPolicy):
    """Accept-all: the bit-identity default (and a no-op if instantiated)."""

    name = "none"
    description = "accept every query (the pre-admission default)"
    passthrough = True

    def admit(self, query_index: int, now: float, backlog: float) -> Optional[str]:
        if backlog > self._backlog_hwm:
            self._backlog_hwm = backlog
        self.accepted += 1
        if backlog > self.max_admitted_backlog:
            self.max_admitted_backlog = backlog
        return None


class AIMDAdmission(AdmissionPolicy):
    """Token-bucket pacing with AIMD rate adaptation at ticks.

    Tokens accrue continuously at the current rate (up to *burst*); each
    admitted query spends one.  A query with no token available is shed
    with reason ``rate``.  At every tick the rate is adapted: congestion
    (windowed p99 above the SLO, or the backlog high-water mark at/over
    the queue cap) multiplies it by *decrease*, otherwise *increase*
    queries/s are added; the result is clamped to ``[floor, capacity]``.
    """

    name = "aimd"
    description = "AIMD token-rate pacing off delay/backlog signals"

    def __init__(
        self,
        slo: float = 1.0,
        window: float = 10.0,
        cap_multiple: float = 4.0,
        floor: float = 1.0,
        capacity: Optional[float] = None,
        rate: Optional[float] = None,
        increase: float = 2.0,
        decrease: float = 0.5,
        burst: float = 8.0,
    ) -> None:
        super().__init__(slo=slo, window=window, cap_multiple=cap_multiple)
        if floor <= 0:
            raise ValueError(f"floor must be positive, got {floor}")
        if capacity is not None and capacity < floor:
            raise ValueError(f"capacity {capacity} below floor {floor}")
        if not 0.0 < decrease < 1.0:
            raise ValueError(f"decrease must be in (0, 1), got {decrease}")
        if increase <= 0:
            raise ValueError(f"increase must be positive, got {increase}")
        if burst < 1.0:
            raise ValueError(f"burst must be >= 1 token, got {burst}")
        self.floor = float(floor)
        self.capacity = math.inf if capacity is None else float(capacity)
        if rate is None:
            rate = self.capacity if math.isfinite(self.capacity) else self.floor
        if not self.floor <= rate <= self.capacity:
            raise ValueError(
                f"initial rate {rate} outside [{self.floor}, {self.capacity}]"
            )
        self._rate = float(rate)
        self.increase = float(increase)
        self.decrease = float(decrease)
        self.burst = float(burst)
        self._tokens = self.burst
        self._accrued_at: Optional[float] = None

    def _accrue(self, now: float) -> None:
        if self._accrued_at is None:
            self._accrued_at = now
            return
        elapsed = now - self._accrued_at
        if elapsed > 0.0:
            self._tokens = min(self.burst, self._tokens + elapsed * self._rate)
            self._accrued_at = now

    def _decide(self, now: float, backlog: float) -> Optional[str]:
        self._accrue(now)
        return None if self._tokens >= 1.0 else "rate"

    def _consume(self, now: float) -> None:
        self._accrue(now)
        self._tokens -= 1.0

    def _adapt(self, now: float, p99: float) -> None:
        congested = (not math.isnan(p99) and p99 > self.slo) or (
            self._backlog_hwm >= self.queue_cap
        )
        if congested:
            self._rate = max(self.floor, self._rate * self.decrease)
        else:
            self._rate = min(self.capacity, self._rate + self.increase)

    def current_rate(self) -> float:
        return self._rate

    def signal(self, now: float) -> float:
        self._accrue(now)
        return self._tokens


class DelayGatedAdmission(AdmissionPolicy):
    """Shed while the windowed p99 delay exceeds ``slo_multiple * slo``."""

    name = "delay_gated"
    description = "shed when windowed p99 exceeds an SLO multiple"

    def __init__(
        self,
        slo: float = 1.0,
        window: float = 10.0,
        cap_multiple: float = 4.0,
        slo_multiple: float = 1.0,
    ) -> None:
        super().__init__(slo=slo, window=window, cap_multiple=cap_multiple)
        if slo_multiple <= 0:
            raise ValueError(f"slo_multiple must be positive, got {slo_multiple}")
        self.slo_multiple = float(slo_multiple)

    def _decide(self, now: float, backlog: float) -> Optional[str]:
        p99 = self.window.percentile(99, now)
        if not math.isnan(p99) and p99 > self.slo_multiple * self.slo:
            return "p99"
        return None

    def signal(self, now: float) -> float:
        return self.window.percentile(99, now)
